"""Zero-copy hot path: copy accounting, ``pread_into``, aliasing.

The PR's contract, unit-by-unit:

* :class:`~repro.pipeline.copies.CopyLedger` and the ``stats()["mem"]``
  section it backs — every budgeted copy site counted, nothing else;
* ``Backend.pread_into`` — the readinto-style read that lets the cache
  fill pooled buffers without the backend-boundary ``bytes``;
* the pwrite **aliasing contract** — backends consume the caller's
  buffer before returning, so mutating a ``bytearray`` the moment
  ``pwrite``/``write`` returns never corrupts what was written;
* :meth:`~repro.core.chunk.Chunk.fill_external` — the fetch path's
  zero-copy twin of ``append``;
* the read cache's deferred release — a multi-chunk read that evicts a
  chunk mid-collection must still serve the evicted chunk's bytes and
  leak nothing back to the pool;
* ``DRRScheduler.gather`` — the in-place scan preserves relative order
  around skipped items in both fair and fifo modes.
"""

import copy

import pytest

from repro.backends import (
    FaultRule,
    FaultyBackend,
    InstrumentedBackend,
    LocalDirBackend,
    MemBackend,
    TieredBackend,
)
from repro.backends.base import Backend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.core.chunk import Chunk
from repro.errors import FileStateError
from repro.perf.runner import run_scenario_sim
from repro.perf.scenarios import SCENARIOS
from repro.pipeline.copies import COPY_SITES, FETCH, INGEST, READ_BOUNDARY, CopyLedger
from repro.pipeline.events import CopyObserved
from repro.pipeline.stats import PipelineStats
from repro.pipeline.tenancy import DRRScheduler
from repro.units import KiB

CHUNK = 64 * KiB


# -- the ledger ---------------------------------------------------------------


class TestCopyLedger:
    def test_records_totals_and_sites(self):
        ledger = CopyLedger()
        ledger.record(INGEST, 100)
        ledger.record(INGEST, 50)
        ledger.record(READ_BOUNDARY, 7)
        snap = ledger.snapshot()
        assert snap["copies"] == 3
        assert snap["bytes_copied"] == 157
        assert snap["by_site"][INGEST] == {"copies": 2, "bytes": 150}
        assert snap["by_site"][READ_BOUNDARY] == {"copies": 1, "bytes": 7}

    def test_all_sites_preseeded_at_zero(self):
        snap = CopyLedger().snapshot()
        assert snap["bytes_copied"] == 0
        assert snap["copies"] == 0
        assert set(snap["by_site"]) == set(COPY_SITES)
        for site in COPY_SITES:
            assert snap["by_site"][site] == {"copies": 0, "bytes": 0}

    def test_unknown_site_admitted(self):
        ledger = CopyLedger()
        ledger.record("mystery", 9)
        snap = ledger.snapshot()
        assert snap["by_site"]["mystery"] == {"copies": 1, "bytes": 9}
        assert snap["bytes_copied"] == 9

    def test_snapshot_is_independent(self):
        ledger = CopyLedger()
        ledger.record(FETCH, 4)
        snap = ledger.snapshot()
        snap["by_site"][FETCH]["bytes"] = 999
        assert ledger.snapshot()["by_site"][FETCH]["bytes"] == 4


class TestStatsMemSection:
    def test_copy_events_feed_the_mem_section(self):
        stats = PipelineStats(chunk_size=CHUNK, pool_chunks=4)
        stats.on_event(CopyObserved(path="/f", site=INGEST, length=100))
        stats.on_event(CopyObserved(path="/f", site=INGEST, length=28))
        stats.on_event(CopyObserved(path="/f", site=FETCH, length=CHUNK))
        mem = stats.snapshot()["mem"]
        assert mem["copies"] == 3
        assert mem["bytes_copied"] == 128 + CHUNK
        assert mem["by_site"][INGEST] == {"copies": 2, "bytes": 128}
        assert mem["by_site"][FETCH] == {"copies": 1, "bytes": CHUNK}
        assert mem["by_site"][READ_BOUNDARY] == {"copies": 0, "bytes": 0}

    def test_idle_snapshot_keeps_full_schema(self):
        mem = PipelineStats().snapshot()["mem"]
        assert mem == {
            "bytes_copied": 0,
            "copies": 0,
            "by_site": {s: {"copies": 0, "bytes": 0} for s in COPY_SITES},
        }


# -- pread_into across backends -----------------------------------------------


@pytest.fixture(params=["mem", "localdir"])
def backend(request, tmp_path):
    if request.param == "mem":
        return MemBackend()
    return LocalDirBackend(str(tmp_path / "root"))


class TestPreadInto:
    def test_fills_buffer(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"0123456789", 0)
        buf = bytearray(4)
        assert backend.pread_into(fd, buf, 3) == 4
        assert bytes(buf) == b"3456"
        backend.close(fd)

    def test_short_read_at_eof(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"abc", 0)
        buf = bytearray(10)
        assert backend.pread_into(fd, buf, 1) == 2
        assert bytes(buf[:2]) == b"bc"
        backend.close(fd)

    def test_offset_past_eof_reads_nothing(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"abc", 0)
        buf = bytearray(b"\xff" * 8)
        assert backend.pread_into(fd, buf, 100) == 0
        assert bytes(buf) == b"\xff" * 8
        backend.close(fd)

    def test_memoryview_slice_destination(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"0123456789", 0)
        buf = bytearray(b"." * 10)
        assert backend.pread_into(fd, memoryview(buf)[2:6], 4) == 4
        assert bytes(buf) == b"..4567...."
        backend.close(fd)

    def test_base_default_splices_through_pread(self, backend):
        # The unbound base-class method is the pread-and-splice fallback
        # every backend inherits; it must agree with the overrides.
        fd = backend.open("/f")
        backend.pwrite(fd, b"0123456789", 0)
        buf = bytearray(6)
        assert Backend.pread_into(backend, fd, buf, 2) == 6
        assert bytes(buf) == b"234567"
        backend.close(fd)

    def test_tiered_serves_from_tier_zero(self):
        tiered = TieredBackend([MemBackend(), MemBackend()])
        try:
            fd = tiered.open("/f")
            tiered.pwrite(fd, b"staged bytes", 0)
            buf = bytearray(12)
            assert tiered.pread_into(fd, buf, 0) == 12
            assert bytes(buf) == b"staged bytes"
            tiered.close(fd)
        finally:
            tiered.shutdown()

    def test_instrumented_records_the_op(self):
        inst = InstrumentedBackend(MemBackend())
        fd = inst.open("/f")
        inst.pwrite(fd, b"xyzw", 0)
        buf = bytearray(4)
        inst.pread_into(fd, buf, 0)
        recs = inst.ops("pread_into")
        assert len(recs) == 1
        assert recs[0].size == 4
        assert recs[0].offset == 0
        inst.close(fd)

    def test_faulty_matches_pread_rules(self):
        # pread_into is the same logical op as pread: one rule vocabulary
        # covers both buffer-ownership variants.
        boom = OSError("injected")
        faulty = FaultyBackend(MemBackend(), [FaultRule(op="pread", error=boom)])
        fd = faulty.open("/f")
        faulty.pwrite(fd, b"abcd", 0)
        with pytest.raises(OSError, match="injected"):
            faulty.pread_into(fd, bytearray(4), 0)
        # The rule was one-shot (nth=1): the next read goes through.
        buf = bytearray(4)
        assert faulty.pread_into(fd, buf, 0) == 4
        assert bytes(buf) == b"abcd"
        faulty.close(fd)


# -- the aliasing contract ----------------------------------------------------


class TestAliasingContract:
    """Backends consume the caller's buffer before returning: mutating
    a ``bytearray`` the moment ``pwrite`` returns never changes what
    was written (the contract pinned on ``Backend.pwrite``)."""

    def test_backend_pwrite_snapshots(self, backend):
        buf = bytearray(b"payload!")
        fd = backend.open("/f")
        backend.pwrite(fd, buf, 0)
        buf[:] = b"XXXXXXXX"  # immediate recycle, as the pool does
        assert backend.pread(fd, 8, 0) == b"payload!"
        backend.close(fd)

    def test_backend_pwritev_snapshots(self, backend):
        parts = [bytearray(b"aaaa"), bytearray(b"bbbb")]
        fd = backend.open("/f")
        backend.pwritev(fd, [memoryview(p) for p in parts], 0)
        for p in parts:
            p[:] = b"!!!!"
        assert backend.pread(fd, 8, 0) == b"aaaabbbb"
        backend.close(fd)

    def test_mount_aggregated_write_snapshots_at_ingest(self):
        # The POSIX shim extends the same promise to applications: the
        # ingest copy into the pooled chunk is the snapshot point, so the
        # caller's buffer is dead to the pipeline once write() returns.
        mem = MemBackend()
        cfg = CRFSConfig(chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1)
        image = bytes((i % 251) + 1 for i in range(2 * CHUNK))
        buf = bytearray(image)
        with CRFS(mem, cfg) as fs:
            with fs.open("/ckpt") as f:
                f.write(buf)
                buf[:] = b"\x00" * len(buf)  # mutate before any drain
                f.fsync()
        fd = mem.open("/ckpt", create=False)
        assert mem.pread(fd, len(image), 0) == image
        mem.close(fd)

    def test_mount_write_through_snapshots_before_return(self):
        mem = MemBackend()
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            write_through_threshold=1,  # every write bypasses aggregation
        )
        image = bytes((i % 239) + 1 for i in range(CHUNK))
        buf = bytearray(image)
        with CRFS(mem, cfg) as fs:
            with fs.open("/ckpt") as f:
                f.write(buf)
                buf[:] = b"\xee" * len(buf)
        fd = mem.open("/ckpt", create=False)
        assert mem.pread(fd, len(image), 0) == image
        mem.close(fd)


# -- chunk fill_external ------------------------------------------------------


class TestChunkFillExternal:
    def test_advances_valid_without_copying(self):
        chunk = Chunk(0, 16)
        chunk.buffer[:4] = b"abcd"  # the external filler (pread_into)
        chunk.fill_external(4)
        assert chunk.valid == 4
        assert bytes(chunk.payload()) == b"abcd"

    def test_rejects_partial_chunk(self):
        chunk = Chunk(0, 16)
        chunk.append(b"xy", 0, 2)
        with pytest.raises(FileStateError, match="external fill"):
            chunk.fill_external(4)

    def test_rejects_overflow(self):
        chunk = Chunk(0, 16)
        with pytest.raises(FileStateError, match="overflows"):
            chunk.fill_external(17)

    def test_failed_fetch_leaves_chunk_clean(self):
        # The fetch path fills the buffer *before* open_for, so a fetch
        # that errors between the two leaves a perfectly reusable chunk.
        chunk = Chunk(0, 16)
        chunk.buffer[:8] = b"garbage!"
        chunk.open_for(owner=object(), file_offset=0)  # still clean
        chunk.reset()


# -- deferred release under eviction ------------------------------------------


class TestReadCacheDeferredRelease:
    def test_eviction_mid_read_serves_stale_views_safely(self):
        """A 3-chunk read against a 2-chunk cache: admitting the last
        chunk evicts the first while the shim still holds its view.  The
        deferred-release window parks the evicted payload until the join
        completes — the bytes must be right and the pool must get every
        buffer back."""
        image = bytes((i % 251) + 1 for i in range(3 * CHUNK))
        fs = CRFS(
            MemBackend(),
            CRFSConfig(
                chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
                read_cache_chunks=2, readahead_chunks=0,
            ),
        )
        with fs, fs.open("/ckpt") as f:
            f.write(image)
            f.fsync()
            got = f.pread(3 * CHUNK, 0)
        assert got == image
        assert fs.pool.free_chunks == fs.pool.nchunks  # nothing leaked


# -- DRR gather: in-place scan ------------------------------------------------


def _consecutive(tail, nxt):
    return nxt == tail + 1


class TestDRRGatherOrder:
    def test_fair_gather_preserves_order_around_skips(self):
        sched = DRRScheduler({"t": 1})
        for item in (1, 5, 2, 3, 9):
            sched.push("t", item)
        batch = sched.gather("t", limit=4, chain=_consecutive, tail=0)
        assert batch == [1, 2, 3]
        # Skipped items keep their relative order at the front.
        assert sched.depth("t") == 2
        assert sched.pop() == ("t", 5)
        assert sched.pop() == ("t", 9)
        assert sched.pop() is None

    def test_fair_gather_prefix_common_case(self):
        sched = DRRScheduler(None)
        for item in (1, 2, 3):
            sched.push("t", item)
        assert sched.gather("t", 8, _consecutive, 0) == [1, 2, 3]
        assert len(sched) == 0
        assert sched.pop() is None
        assert sched.service_counts["t"] == 3

    def test_fair_gather_charges_the_deficit(self):
        sched = DRRScheduler({"a": 1, "b": 1})
        for item in (1, 2, 3, 4):
            sched.push("a", item)
        sched.push("b", 100)
        sched.gather("a", 3, _consecutive, 0)
        # The coalesced run cost its length: b gets served before a's
        # remaining item despite a being first in the ring.
        assert sched.pop() == ("b", 100)
        assert sched.pop() == ("a", 4)

    def test_fifo_gather_scans_the_global_band(self):
        sched = DRRScheduler(None, fair=False)
        sched.push("t1", 1)
        sched.push("t2", 10)
        sched.push("t1", 2)
        batch = sched.gather("t1", limit=5, chain=_consecutive, tail=0)
        assert batch == [1, 2]
        assert sched.depth("t1") == 0
        assert sched.depth("t2") == 1
        assert sched.pop() == ("t2", 10)
        assert sched.pop() is None

    def test_fifo_gather_preserves_order_around_skips(self):
        sched = DRRScheduler(None, fair=False)
        for item in (1, 7, 8, 2, 9):
            sched.push("t", item)
        batch = sched.gather("t", limit=2, chain=_consecutive, tail=0)
        assert batch == [1, 2]
        assert [sched.pop()[1] for _ in range(3)] == [7, 8, 9]

    def test_gather_limit_zero_is_a_noop(self):
        sched = DRRScheduler(None)
        sched.push("t", 1)
        assert sched.gather("t", 0, _consecutive, 0) == []
        assert sched.depth("t") == 1


# -- the runner's copy metrics ------------------------------------------------


class TestZeroCopyScenarioMetrics:
    def test_sequential_write_path_pays_exactly_one_copy_per_byte(self):
        metrics = run_scenario_sim(SCENARIOS["zero_copy"], 2011, fast=True)
        mem = metrics["stats"]["mem"]
        assert metrics["bytes_copied"] == mem["bytes_copied"] == metrics["bytes_in"]
        assert metrics["copies"] == mem["copies"] > 0
        assert metrics["copy_ratio"] == 1.0
        assert mem["by_site"]["ingest"]["bytes"] == metrics["bytes_in"]
        assert mem["by_site"]["read_boundary"]["bytes"] == 0
        assert mem["by_site"]["fetch"]["bytes"] == 0

    def test_ledger_is_conserved(self):
        metrics = run_scenario_sim(SCENARIOS["zero_copy"], 2011, fast=True)
        mem = metrics["stats"]["mem"]
        assert mem["bytes_copied"] == sum(
            b["bytes"] for b in mem["by_site"].values()
        )
        assert mem["copies"] == sum(b["copies"] for b in mem["by_site"].values())


# -- cross-plane parity of the mem section ------------------------------------


class TestMemSectionCrossPlane:
    def test_functional_plane_counts_ingest_identically(self):
        # The emissions live in shared kernel code, so the threaded mount
        # produces the same ingest accounting the sim does: one copy per
        # byte written on the aggregated path.
        cfg = CRFSConfig(chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1)
        image = bytes((i % 251) + 1 for i in range(2 * CHUNK))
        with CRFS(MemBackend(), cfg) as fs:
            with fs.open("/ckpt") as f:
                f.write(image)
            stats = fs.stats()
        mem = stats["mem"]
        assert mem["by_site"]["ingest"]["bytes"] == len(image)
        assert mem["bytes_copied"] == len(image)
        assert mem["by_site"]["read_boundary"]["bytes"] == 0

    def test_write_through_pays_no_ingest_copy(self):
        # Write-through hands the caller's buffer straight to the
        # backend (which snapshots it) — there is no pooled-chunk copy,
        # and the ledger must say so.
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            write_through_threshold=1,
        )
        with CRFS(MemBackend(), cfg) as fs:
            with fs.open("/ckpt") as f:
                f.write(b"z" * CHUNK)
            stats = fs.stats()
        assert stats["mem"]["bytes_copied"] == 0
        assert stats["mem"]["copies"] == 0
