"""Tests for streaming stats, bucket histograms and percentiles."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, histogram_by_buckets, percentile, summarize

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.n == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.min == 5.0
        assert s.max == 5.0
        assert s.variance == 0.0

    def test_known_sequence(self):
        s = RunningStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))
        assert s.total == pytest.approx(40.0)

    @given(st.lists(floats, min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        s = RunningStats()
        s.extend(xs)
        assert s.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-6)
        assert s.min == min(xs)
        assert s.max == max(xs)

    @given(st.lists(floats, min_size=1, max_size=50), st.lists(floats, min_size=1, max_size=50))
    def test_merge_equals_concat(self, a, b):
        sa, sb, sc = RunningStats(), RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        sc.extend(a + b)
        merged = sa.merge(sb)
        assert merged.n == sc.n
        assert merged.mean == pytest.approx(sc.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(sc.variance, rel=1e-6, abs=1e-6)
        assert merged.min == sc.min
        assert merged.max == sc.max

    def test_merge_empty(self):
        s = RunningStats()
        s.add(1.0)
        merged = s.merge(RunningStats())
        assert merged.n == 1
        assert merged.mean == 1.0


class TestHistogram:
    def test_paper_table1_style_buckets(self):
        # Bucket edges mirroring Table I's write-size rows.
        edges = [0, 64, 256, 1024, 4096, 16384, 65536]
        sizes = [32, 32, 100, 5000, 20000, 70000, 70000]
        rows = histogram_by_buckets(sizes, edges)
        assert [r.count for r in rows] == [2, 1, 0, 0, 1, 1, 2]
        assert rows[0].weight == 64  # two 32-byte writes
        assert rows[-1].hi == math.inf

    def test_weights_override(self):
        rows = histogram_by_buckets([1, 1, 10], [0, 5], weights=[2.0, 3.0, 7.0])
        assert rows[0].weight == 5.0
        assert rows[1].weight == 7.0

    def test_counts_and_weights_are_partitions(self):
        rng = np.random.default_rng(1)
        sizes = rng.integers(1, 10**6, size=500)
        rows = histogram_by_buckets(sizes, [0, 64, 1024, 65536])
        assert sum(r.count for r in rows) == 500
        assert sum(r.weight for r in rows) == pytest.approx(sizes.sum())

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            histogram_by_buckets([1], [10, 0])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            histogram_by_buckets([1, 2], [0], weights=[1.0])

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            histogram_by_buckets([1], [])

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=100)
    )
    def test_partition_property(self, vals):
        rows = histogram_by_buckets(vals, [0, 10, 1000])
        assert sum(r.count for r in rows) == len(vals)
        assert sum(r.weight for r in rows) == pytest.approx(sum(vals), rel=1e-9, abs=1e-6)


class TestPercentileSummary:
    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["n"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0
        assert s["max"] == 3.0

    def test_summarize_empty(self):
        assert summarize([])["n"] == 0
