"""Property-based laws of the delta-checkpoint chain (Hypothesis).

Random generation chains — random image sizes (grow, shrink, empty)
and random declared-dirty chunk sets — on the functional plane,
checked against three laws:

1. **Reassembly law** — after every committed generation, restore
   returns the byte-exact current logical image, no matter how the
   chain's ownership is scattered across generation files.
2. **Degeneracy law** — generation 0 is exactly today's full-image
   behavior: the same workload-determined pipeline counters and the
   same backing bytes as a plain full write of the generation file.
3. **Savings law** — every generation writes ``dirty_bytes <=
   logical_bytes``, with equality exactly when no chunk was clean; the
   mount's ``stats()["delta"]`` section is the exact sum of the
   per-generation plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import MemBackend
from repro.backends.base import normalize_path
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB

pytestmark = pytest.mark.property

CHUNK = 4 * KiB
MAX_CHUNKS = 12


def small_config(**kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("pool_size", 8 * CHUNK)
    kw.setdefault("io_threads", 1)
    return CRFSConfig(**kw)


def pattern(n, salt):
    return bytes((i * 31 + salt * 7 + 13) % 256 for i in range(n))


#: One generation: (logical_size, declared_dirty | None).  Sizes cover
#: empty, sub-chunk, unaligned and multi-chunk images; dirty draws may
#: exceed the image and are clipped, None means "all chunks".
gen_step = st.tuples(
    st.integers(min_value=0, max_value=MAX_CHUNKS * CHUNK // 2 + 37),
    st.one_of(
        st.none(),
        st.sets(st.integers(min_value=0, max_value=MAX_CHUNKS - 1), max_size=8),
    ),
)
chains = st.lists(gen_step, min_size=1, max_size=6)


class TestGenerationChains:
    @given(chain=chains)
    @settings(max_examples=25, deadline=None)
    def test_restore_is_byte_identical_after_every_generation(self, chain):
        mem = MemBackend()
        path = "/ckpt"
        image = bytearray()
        expected_bytes = expected_logical = 0
        all_dirty_everywhere = True
        with CRFS(mem, small_config()) as fs:
            tracker = fs.kernel.delta(normalize_path(path))
            for salt, (size, declared) in enumerate(chain):
                nchunks = (size + CHUNK - 1) // CHUNK
                if declared is not None:
                    declared = {i for i in declared if i < nchunks}
                # Preview the plan (pure) to learn the *effective* dirty
                # set — declared plus the auto-dirtied growth/tail
                # chunks — and mutate only those regions, exactly what a
                # truthful workload is allowed to change.
                preview = tracker.plan_checkpoint(size, declared)
                if len(image) < size:
                    image.extend(bytes(size - len(image)))
                else:
                    del image[size:]
                for index in sorted(preview.dirty):
                    lo = index * CHUNK
                    hi = min(lo + CHUNK, size)
                    image[lo:hi] = pattern(hi - lo, salt=salt)

                plan = fs.delta_checkpoint(path, image, dirty=declared)
                assert plan.dirty == preview.dirty
                # savings law, per generation
                assert plan.dirty_bytes <= plan.logical_bytes
                assert (plan.dirty_bytes == plan.logical_bytes) == (
                    plan.clean_chunks == 0
                )
                all_dirty_everywhere &= plan.clean_chunks == 0
                expected_bytes += plan.dirty_bytes
                expected_logical += plan.logical_bytes

                # reassembly law, after every commit
                assert fs.delta_restore(path) == bytes(image)
            delta = fs.stats()["delta"]

        assert delta["generations"] == len(chain)
        assert delta["bytes_written"] == expected_bytes
        assert delta["logical_bytes"] == expected_logical
        assert delta["restores"] == len(chain)
        assert delta["bytes_written"] <= delta["logical_bytes"]
        assert (delta["bytes_written"] == delta["logical_bytes"]) == (
            all_dirty_everywhere
        )

    @given(
        size=st.integers(min_value=1, max_value=5 * CHUNK + 99),
        declared=st.one_of(
            st.none(), st.sets(st.integers(min_value=0, max_value=4), max_size=3)
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_generation_zero_degenerates_to_full_write(self, size, declared):
        """Whatever dirtiness is declared, generation 0 is a full dump
        with the same pipeline counters as a plain write of the same
        bytes to the same (generation) path."""
        data = pattern(size, salt=9)

        mem_plain = MemBackend()
        with CRFS(mem_plain, small_config()) as fs:
            f = fs.open("/ckpt.g0", create=True, truncate=True)
            f.pwrite(data, 0)
            f.fsync()
            f.close()
            plain = fs.stats()

        mem_delta = MemBackend()
        with CRFS(mem_delta, small_config()) as fs:
            plan = fs.delta_checkpoint("/ckpt", data, dirty=declared)
            dstats = fs.stats()

        assert plan.generation == 0 and plan.clean_chunks == 0
        for key in ("writes", "bytes_in", "chunks_written", "bytes_out"):
            assert dstats[key] == plain[key], key
        assert mem_delta.read_file("/ckpt.g0") == mem_plain.read_file("/ckpt.g0")
        assert dstats["delta"]["bytes_written"] == len(data)
