"""Tests for the NAS LU footprint model and the synthetic raw workload."""

import pytest

from repro.units import GiB, KiB, MB
from repro.workloads import LU_CLASSES, RawWriteWorkload, app_total_bytes, lu_class


class TestNASClasses:
    def test_three_classes(self):
        assert set(LU_CLASSES) == {"B", "C", "D"}

    def test_scaling_order(self):
        assert lu_class("B").app_total < lu_class("C").app_total < lu_class("D").app_total

    def test_class_d_roughly_10x_c(self):
        assert lu_class("D").app_total / lu_class("C").app_total == pytest.approx(
            10, rel=0.05
        )

    def test_case_insensitive(self):
        assert lu_class("b") is lu_class("B")

    def test_unknown_class(self):
        with pytest.raises(KeyError):
            lu_class("E")

    def test_per_rank(self):
        assert lu_class("C").per_rank(128) == lu_class("C").app_total // 128

    def test_app_total_bytes_helper(self):
        assert app_total_bytes("B") == lu_class("B").app_total

    def test_backed_out_of_mpich2_row(self):
        # Table II: MPICH2 LU.B.128 total = 497.8 MB = app + 128 * 0.4 MB
        assert lu_class("B").app_total / MB == pytest.approx(497.8 - 128 * 0.4, rel=0.01)


class TestRawWriteWorkload:
    def test_paper_defaults(self):
        w = RawWriteWorkload()
        assert w.processes == 8
        assert w.bytes_per_process == 1 * GiB
        assert w.write_size == 128 * KiB

    def test_total(self):
        assert RawWriteWorkload().total_bytes == 8 * GiB

    def test_write_sizes_sum(self):
        w = RawWriteWorkload(bytes_per_process=1_000_000, write_size=4096)
        sizes = w.write_sizes()
        assert sum(sizes) == 1_000_000
        assert sizes[-1] == 1_000_000 % 4096

    def test_exact_division_no_remainder(self):
        w = RawWriteWorkload(bytes_per_process=8192, write_size=4096)
        assert w.write_sizes() == [4096, 4096]

    def test_validation(self):
        with pytest.raises(ValueError):
            RawWriteWorkload(processes=0)
        with pytest.raises(ValueError):
            RawWriteWorkload(bytes_per_process=0)
        with pytest.raises(ValueError):
            RawWriteWorkload(write_size=0)
