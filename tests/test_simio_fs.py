"""Tests for the ext3 / NFS / Lustre / null filesystem models."""

import pytest

from repro.sim import SharedBandwidth, Simulator
from repro.simio import (
    Ext3Filesystem,
    LustreFilesystem,
    LustreServers,
    NFSFilesystem,
    NFSServer,
)
from repro.simio.nullfs import NullSimFilesystem
from repro.simio.params import DEFAULT_HW
from repro.units import MB, MiB
from repro.util.rng import rng_for


def make_sim():
    sim = Simulator()
    membus = SharedBandwidth(sim, DEFAULT_HW.membus_bandwidth)
    return sim, membus


def run_writer(sim, fs, sizes, path="/f", close=True):
    def proc():
        f = fs.open(path)
        t0 = sim.now
        for s in sizes:
            yield from fs.write(f, s)
        if close:
            yield from fs.close(f)
        return sim.now - t0

    p = sim.spawn(proc())
    sim.run_until_complete([p])
    return p.result


class TestExt3Model:
    def test_write_takes_time(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)
        t = run_writer(sim, fs, [8192] * 100)
        assert t > 0

    def test_small_writes_cheap(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)
        t_small = run_writer(sim, fs, [32] * 100, path="/a")
        sim2, membus2 = make_sim()
        fs2 = Ext3Filesystem(sim2, DEFAULT_HW, rng_for(1, "t"), membus2)
        t_medium = run_writer(sim2, fs2, [8192] * 100, path="/b")
        # Table I: sub-64B writes are absorbed, medium writes pay alloc
        assert t_medium > 5 * t_small

    def test_concurrent_writers_contend(self):
        # one writer vs 8 writers doing identical work: per-writer time
        # inflates under contention (the journal serialization).
        def run_n(n):
            sim, membus = make_sim()
            fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "c"), membus)
            procs = []
            for i in range(n):
                def proc(i=i):
                    f = fs.open(f"/f{i}")
                    t0 = sim.now
                    for _ in range(100):
                        yield from fs.write(f, 8192)
                    return sim.now - t0
                procs.append(sim.spawn(proc()))
            return max(sim.run_until_complete(procs))

        assert run_n(8) > 3 * run_n(1)

    def test_close_is_cheap_data_stays_dirty(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)
        run_writer(sim, fs, [8192] * 10)
        assert fs.cache.dirty_bytes > 0  # close did not flush

    def test_fsync_flushes_to_disk(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)

        def proc():
            f = fs.open("/f")
            for _ in range(10):
                yield from fs.write(f, 8192)
            yield from fs.fsync(f)

        sim.run_until_complete([sim.spawn(proc())])
        assert fs.cache.dirty_bytes_of("/f") == 0
        assert fs.disk.total_bytes >= 80_000

    def test_kjournald_commits_during_long_run(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)

        def proc():
            f = fs.open("/f")
            yield from fs.write(f, 1 * MiB)
            yield sim.timeout(3 * DEFAULT_HW.ext3_commit_interval)

        sim.run_until_complete([sim.spawn(proc())])
        assert fs.commits >= 1
        assert fs.disk.total_bytes >= 1 * MiB

    def test_bulk_writer_flag_skips_stalls(self):
        # same workload; bulk writer must never be slower than interactive
        def run_mode(bulk):
            sim, membus = make_sim()
            fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)
            # force writeback interference on
            fs.cache.writeback_active = True

            def proc():
                f = fs.open("/f")
                f.bulk_writer = bulk
                t0 = sim.now
                for _ in range(50):
                    yield from fs.write(f, 4 * MiB)
                return sim.now - t0

            p = sim.spawn(proc())
            sim.run_until_complete([p])
            return p.result

        assert run_mode(True) <= run_mode(False)

    def test_tracked_stats(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus)
        run_writer(sim, fs, [100, 200, 300])
        assert fs.total_writes == 3
        assert fs.total_bytes == 600


class TestNFSModel:
    def test_close_flushes_to_server(self):
        sim, membus = make_sim()
        server = NFSServer(sim, DEFAULT_HW)
        fs = NFSFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, server)
        run_writer(sim, fs, [8192] * 100)
        # close-to-open: all data reached the server disk
        assert server.disk.total_bytes >= 100 * 8192

    def test_fragmented_stream_hits_congested_path(self):
        sim, membus = make_sim()
        server = NFSServer(sim, DEFAULT_HW)
        fs = NFSFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, server)
        run_writer(sim, fs, [4096] * 500)  # many small fragments
        assert server.congested_rpcs > 0

    def test_bulk_stream_takes_clean_path(self):
        sim, membus = make_sim()
        server = NFSServer(sim, DEFAULT_HW)
        fs = NFSFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, server)
        run_writer(sim, fs, [4 * MiB] * 10)  # CRFS-chunk-like
        assert server.congested_rpcs == 0
        assert server.clean_rpcs > 0

    def test_congested_slower_than_clean(self):
        def run_sizes(sizes):
            sim, membus = make_sim()
            server = NFSServer(sim, DEFAULT_HW)
            fs = NFSFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, server)
            return run_writer(sim, fs, sizes)

        total = 8 * MiB
        t_frag = run_sizes([8192] * (total // 8192))
        t_bulk = run_sizes([4 * MiB] * (total // (4 * MiB)))
        assert t_frag > 1.5 * t_bulk

    def test_server_shared_across_clients(self):
        sim, _ = make_sim()
        server = NFSServer(sim, DEFAULT_HW)
        procs = []
        for n in range(4):
            membus = SharedBandwidth(sim, DEFAULT_HW.membus_bandwidth)
            fs = NFSFilesystem(
                sim, DEFAULT_HW, rng_for(1, f"n{n}"), membus, server, node=f"n{n}"
            )

            def proc(fs=fs, n=n):
                f = fs.open(f"/f{n}")
                for _ in range(20):
                    yield from fs.write(f, 64 * 1024)
                yield from fs.close(f)

            procs.append(sim.spawn(proc()))
        sim.run_until_complete(procs)
        assert server.disk.total_bytes == 4 * 20 * 64 * 1024


class TestLustreModel:
    def test_writes_absorbed_by_client_cache(self):
        sim, membus = make_sim()
        servers = LustreServers(sim, DEFAULT_HW)
        fs = LustreFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, servers)
        run_writer(sim, fs, [8192] * 100)
        # close does not flush on Lustre; data may still be cached
        assert fs.cache.dirty_bytes + servers.total_ost_bytes() >= 100 * 8192

    def test_striping_rotates_osts(self):
        sim, membus = make_sim()
        servers = LustreServers(sim, DEFAULT_HW)
        fs = LustreFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, servers)

        def proc():
            f = fs.open("/f")
            for _ in range(12):
                yield from fs.write(f, 1 * MiB)
            yield from fs.fsync(f)

        sim.run_until_complete([sim.spawn(proc())])
        touched = [d.total_bytes for d in servers.osts]
        assert all(b > 0 for b in touched)  # every OST got stripes

    def test_grant_throttling_kicks_in(self):
        # Writers outpace a deliberately slow OST fabric and pile into
        # the grant limit.
        sim, membus = make_sim()
        hw = DEFAULT_HW.with_(lustre_ost_bandwidth=5 * MB)
        servers = LustreServers(sim, hw)
        fs = LustreFilesystem(sim, hw, rng_for(1, "t"), membus, servers)
        per_writer = hw.lustre_client_cache // 2

        def proc(i):
            f = fs.open(f"/f{i}")
            written = 0
            while written < per_writer:
                yield from fs.write(f, 4 * MiB)
                written += 4 * MiB

        procs = [sim.spawn(proc(i)) for i in range(8)]
        sim.run_until_complete(procs)
        assert fs.cache.throttle_events > 0
        assert servers.total_ost_bytes() > 0

    def test_contention_dependent_client_cost(self):
        def run_n(n):
            sim, membus = make_sim()
            servers = LustreServers(sim, DEFAULT_HW)
            fs = LustreFilesystem(sim, DEFAULT_HW, rng_for(1, "t"), membus, servers)
            procs = []
            for i in range(n):
                def proc(i=i):
                    f = fs.open(f"/f{i}")
                    t0 = sim.now
                    for _ in range(200):
                        yield from fs.write(f, 8192)
                    return sim.now - t0
                procs.append(sim.spawn(proc()))
            return max(sim.run_until_complete(procs))

        t1, t8 = run_n(1), run_n(8)
        # 8 writers contend: much worse than 8x a lone writer's rate?
        # (superlinear because per-op cost grows with queue depth)
        assert t8 > 8 * t1


class TestNullSimFilesystem:
    def test_fixed_cost_per_write(self):
        sim, membus = make_sim()
        fs = NullSimFilesystem(sim, DEFAULT_HW, rng_for(1, "t"))
        t = run_writer(sim, fs, [4 * MiB] * 10, close=False)
        assert t == pytest.approx(10 * fs.op_cost, rel=0.01)
