"""Determinism and conservation properties across the whole stack.

Reproducibility is a deliverable: identical seeds must give identical
simulations, byte accounting must balance everywhere, and the functional
plane must survive concurrency stress without losing a byte.
"""

import threading

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.mpi import CheckpointCoordinator, MPICH2, MPIJob
from repro.sim import SharedBandwidth, Simulator
from repro.simio import Ext3Filesystem
from repro.simio.params import DEFAULT_HW
from repro.units import KiB
from repro.util.rng import rng_for
from repro.workloads import lu_class


class TestSimulationDeterminism:
    def _run_once(self, seed):
        sim = Simulator()
        membus = SharedBandwidth(sim, DEFAULT_HW.membus_bandwidth)
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(seed, "det"), membus)
        results = []

        def writer(i):
            f = fs.open(f"/f{i}")
            for _ in range(50):
                yield from fs.write(f, 8192)
            yield from fs.close(f)
            results.append((i, sim.now))

        procs = [sim.spawn(writer(i)) for i in range(4)]
        sim.run_until_complete(procs)
        return results

    def test_identical_seeds_identical_timelines(self):
        assert self._run_once(11) == self._run_once(11)

    def test_different_seeds_differ(self):
        assert self._run_once(11) != self._run_once(12)

    def test_coordinator_deterministic_across_runs(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        times = [
            CheckpointCoordinator(job, "lustre", use_crfs=True, seed=9).run().avg_local_time
            for _ in range(2)
        ]
        assert times[0] == times[1]


class TestByteConservation:
    def test_sim_fs_accounting(self):
        sim = Simulator()
        membus = SharedBandwidth(sim, DEFAULT_HW.membus_bandwidth)
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "c"), membus)

        def writer():
            f = fs.open("/f")
            for _ in range(100):
                yield from fs.write(f, 5000)
            yield from fs.fsync(f)

        sim.run_until_complete([sim.spawn(writer())])
        assert fs.total_bytes == 500_000
        # dirty + written-back == dirtied
        assert (
            fs.cache.dirty_bytes + fs.cache.total_written_back
            == fs.cache.total_dirtied
        )
        assert fs.cache.dirty_bytes_of("/f") == 0

    @given(
        nwriters=st.integers(min_value=1, max_value=6),
        writes=st.integers(min_value=1, max_value=40),
        size=st.sampled_from([17, 1000, 4096, 10_000]),
    )
    @settings(max_examples=20, deadline=None)
    def test_functional_plane_conservation(self, nwriters, writes, size):
        backend = MemBackend()
        cfg = CRFSConfig(chunk_size=8 * KiB, pool_size=64 * KiB, io_threads=2)
        with CRFS(backend, cfg) as fs:
            threads = []

            def writer(i):
                with fs.open(f"/f{i}") as f:
                    for _ in range(writes):
                        f.write(bytes([i]) * size)

            for i in range(nwriters):
                t = threading.Thread(target=writer, args=(i,))
                t.start()
                threads.append(t)
            for t in threads:
                t.join()
            stats = fs.stats()
            assert stats["bytes_in"] == nwriters * writes * size
            assert stats["bytes_out"] == stats["bytes_in"]
        for i in range(nwriters):
            assert backend.read_file(f"/f{i}") == bytes([i]) * (writes * size)


class TestConcurrencyStress:
    def test_shared_file_concurrent_appenders(self):
        """Many threads appending disjoint regions of one file through
        separate handles — the entry-level write lock must keep chunk
        state consistent."""
        backend = MemBackend()
        cfg = CRFSConfig(chunk_size=4 * KiB, pool_size=64 * KiB, io_threads=4)
        region = 10_000
        nthreads = 6
        with CRFS(backend, cfg) as fs:
            def writer(i):
                f = fs.open("/shared")
                for j in range(10):
                    f.pwrite(bytes([i]) * 1000, i * region + j * 1000)
                f.close()

            threads = [threading.Thread(target=writer, args=(i,)) for i in range(nthreads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        data = backend.read_file("/shared")
        for i in range(nthreads):
            assert data[i * region : i * region + 10_000] == bytes([i]) * 10_000

    def test_rapid_mount_unmount_cycles(self):
        backend = MemBackend()
        for cycle in range(10):
            cfg = CRFSConfig(chunk_size=4 * KiB, pool_size=16 * KiB, io_threads=2)
            with CRFS(backend, cfg) as fs:
                with fs.open(f"/cycle{cycle}") as f:
                    f.write(b"data" * 100)
        assert len(backend.listdir("/")) == 10

    def test_queue_stress_many_producers(self):
        from repro.core.workqueue import QueueClosed, WorkQueue

        q = WorkQueue(capacity=8)
        produced, consumed = [], []
        lock = threading.Lock()

        def producer(i):
            for j in range(50):
                q.put((i, j))
                with lock:
                    produced.append((i, j))

        def consumer():
            while True:
                try:
                    item = q.get(timeout=2.0)
                except (QueueClosed, TimeoutError):
                    return
                with lock:
                    consumed.append(item)

        consumers = [threading.Thread(target=consumer) for _ in range(3)]
        producers = [threading.Thread(target=producer, args=(i,)) for i in range(4)]
        for t in consumers + producers:
            t.start()
        for t in producers:
            t.join()
        q.close()
        for t in consumers:
            t.join()
        assert sorted(consumed) == sorted(produced)
        assert len(consumed) == 200
