"""Tests for trace capture and analysis (Table I / Figs 3, 10, 11
instruments)."""


import pytest

from repro.simio.disk import BlockTraceEntry
from repro.trace import (
    WriteRecord,
    WriteTrace,
    bucket_profile,
    completion_spread,
    cumulative_curves,
    render_profile,
    summarize_block_trace,
)


def make_trace():
    t = WriteTrace()
    t.add(rank=0, size=100, start=0.0, duration=0.1)
    t.add(rank=0, size=5000, start=0.1, duration=0.5)
    t.add(rank=1, size=100, start=0.0, duration=0.2)
    t.add(rank=1, size=2_000_000, start=0.2, duration=1.0)
    return t


class TestWriteTrace:
    def test_basic_accounting(self):
        t = make_trace()
        assert len(t) == 4
        assert t.total_bytes == 100 + 5000 + 100 + 2_000_000
        assert t.total_time == pytest.approx(1.8)

    def test_ranks_and_filtering(self):
        t = make_trace()
        assert t.ranks() == [0, 1]
        assert len(t.for_rank(0)) == 2

    def test_merge(self):
        t = make_trace()
        merged = t.merge(make_trace())
        assert len(merged) == 8

    def test_record_end(self):
        r = WriteRecord(rank=0, size=1, start=2.0, duration=0.5)
        assert r.end == 2.5

    def test_empty(self):
        t = WriteTrace()
        assert t.total_bytes == 0
        assert t.total_time == 0.0
        assert t.ranks() == []


class TestBucketProfile:
    def test_percentages_partition(self):
        rows = bucket_profile(make_trace())
        assert sum(r.pct_writes for r in rows) == pytest.approx(100.0)
        assert sum(r.pct_data for r in rows) == pytest.approx(100.0)
        assert sum(r.pct_time for r in rows) == pytest.approx(100.0)

    def test_bucket_assignment(self):
        rows = bucket_profile(make_trace())
        by = {r.label: r for r in rows}
        assert by["> 1M"].count == 1
        assert by["4K-16K"].count == 1
        assert by["64-256"].count == 2

    def test_empty_trace_all_zero(self):
        rows = bucket_profile(WriteTrace())
        assert all(r.pct_time == 0 for r in rows)

    def test_render_matches_table1_format(self):
        out = render_profile(bucket_profile(make_trace()), title="T")
        assert "Write Size" in out
        assert "% of Time" in out
        assert "> 1M" in out


class TestCumulative:
    def test_curves_sorted_by_size(self):
        curves = cumulative_curves(make_trace())
        sizes, cum = curves[0]
        assert list(sizes) == sorted(sizes)
        assert cum[-1] == pytest.approx(0.6)

    def test_spread(self):
        sp = completion_spread(make_trace())
        assert sp["min"] == pytest.approx(0.6)
        assert sp["max"] == pytest.approx(1.2)
        assert sp["spread_ratio"] == pytest.approx(2.0)

    def test_spread_empty(self):
        sp = completion_spread(WriteTrace())
        assert sp["spread_ratio"] == 0.0


def entries(specs):
    return [
        BlockTraceEntry(time=i * 0.01, block=b, nblocks=n, kind="W", stream=s)
        for i, (b, n, s) in enumerate(specs)
    ]


class TestBlockTraceSummary:
    def test_sequential_run_no_seeks(self):
        s = summarize_block_trace(entries([(0, 4, "f"), (4, 4, "f"), (8, 4, "f")]))
        assert s.seeks == 0
        assert s.seek_fraction == 0.0
        assert s.monotone_fraction == 1.0
        assert s.ios == 3

    def test_scattered_accesses_all_seek(self):
        s = summarize_block_trace(entries([(0, 1, "a"), (1000, 1, "b"), (5, 1, "a")]))
        assert s.seeks == 2
        assert s.seek_fraction == 1.0
        assert s.monotone_fraction == 0.5

    def test_mean_jump(self):
        s = summarize_block_trace(entries([(0, 1, "a"), (101, 1, "b")]))
        assert s.mean_abs_jump_blocks == 100.0

    def test_span(self):
        s = summarize_block_trace(entries([(10, 2, "a"), (100, 5, "b")]))
        assert s.span_blocks == 95

    def test_empty_and_single(self):
        assert summarize_block_trace([]).ios == 0
        one = summarize_block_trace(entries([(5, 2, "a")]))
        assert one.ios == 1
        assert one.seek_fraction == 0.0

    def test_bytes_counted(self):
        s = summarize_block_trace(entries([(0, 4, "a")]), block_size=4096)
        assert s.bytes == 4 * 4096
