"""The perf trend dashboard and the copy-metric compare extensions.

Everything in :mod:`repro.perf.trend` is a pure function of loaded
artifacts, so these tests fabricate minimal-but-valid BENCH histories
and assert on the computed structure; the CLI tests drive
``python -m repro.perf trend`` end-to-end through ``main``.  The
``OPTIONAL_METRICS`` tests pin the compatibility contract: copy
metrics gate only when both artifacts carry them, so historical
BENCHes that predate the ledger still compare cleanly.
"""

import copy
import json

from repro.perf.cli import check_baseline, main as perf_main
from repro.perf.compare import OPTIONAL_METRICS, POLICIES, compare_artifacts
from repro.perf.schema import (
    REQUIRED_METRICS,
    build_artifact,
    dump_artifact,
    load_artifact,
)
from repro.perf.trend import (
    CHECK_TOLERANCE,
    STALE_AFTER,
    TREND_METRICS,
    compute_trend,
    render_trend,
    sparkline,
)

SEED = 2011


def fake_metrics(goodput=100.0, **over):
    m = {
        "bytes_in": 8 << 20,
        "writes": 128,
        "elapsed_s": 0.02,
        "goodput_mib_s": goodput,
        "write_latency_p50_s": 1e-5,
        "write_latency_p95_s": 2e-5,
        "chunk_write_p50_s": 1e-4,
        "chunk_write_p95_s": 2e-4,
        "chunks_queued": 8,
        "chunks_written": 8,
        "drain_waits": 1,
        "drain_time_s": 1e-4,
        "stats": {},
    }
    m.update(over)
    return m


def fake_artifact(created, scenarios):
    return build_artifact(
        {"sim": scenarios}, seed=SEED, fast=True, created=created
    )


def history(*goodputs):
    """One single-scenario artifact per goodput, oldest first."""
    return [
        (
            f"BENCH_{i:02d}.json",
            fake_artifact(
                f"2026-08-0{i + 1}T00:00:00Z", {"seq": fake_metrics(g)}
            ),
        )
        for i, g in enumerate(goodputs)
    ]


# -- sparkline ----------------------------------------------------------------


class TestSparkline:
    def test_monotonic_ramp_spans_the_glyphs(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_constant_series_is_flat(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_gaps_render_as_dots(self):
        assert sparkline([1.0, None, 2.0]) == "▁·█"

    def test_all_gaps_is_empty(self):
        assert sparkline([None, None]) == ""


# -- compute_trend ------------------------------------------------------------


class TestComputeTrend:
    def test_series_and_deltas(self):
        trend = compute_trend(history(100.0, 110.0, 121.0))
        row = trend["table"]["seq"]["goodput_mib_s"]
        assert row["values"] == [100.0, 110.0, 121.0]
        assert row["first"] == 100.0
        assert row["last"] == 121.0
        assert row["best"] == 121.0
        assert abs(row["first_to_last"] - 0.21) < 1e-12
        assert row["best_to_last"] == 0.0
        assert trend["metrics"] == list(TREND_METRICS)

    def test_best_is_min_for_time_metrics(self):
        arts = history(100.0, 100.0)
        arts[0][1]["planes"]["sim"]["seq"]["drain_time_s"] = 2e-4
        arts[1][1]["planes"]["sim"]["seq"]["drain_time_s"] = 5e-4
        row = compute_trend(arts)["table"]["seq"]["drain_time_s"]
        assert row["best"] == 2e-4
        assert row["best_to_last"] > 0  # head is worse than its best

    def test_missing_metric_shows_a_gap_not_an_error(self):
        arts = history(100.0, 100.0)
        arts[1][1]["planes"]["sim"]["seq"]["bytes_copied"] = 42
        row = compute_trend(arts)["table"]["seq"]["bytes_copied"]
        assert row["values"] == [None, 42]

    def test_regression_is_newest_vs_previous_only(self):
        # A historical dip (artifact 2) doesn't trip the gate; only the
        # newest-vs-previous pair is judged.
        trend = compute_trend(history(100.0, 50.0, 100.0, 99.0))
        assert trend["check"]["regressions"] == []
        trend = compute_trend(history(100.0, 100.0, 100.0, 80.0))
        regs = trend["check"]["regressions"]
        assert len(regs) == 1
        assert regs[0]["scenario"] == "seq"
        assert regs[0]["previous_artifact"] == "BENCH_02.json"
        assert regs[0]["latest_artifact"] == "BENCH_03.json"
        assert abs(regs[0]["change"] + 0.2) < 1e-12

    def test_drop_within_tolerance_passes(self):
        trend = compute_trend(history(100.0, 100.0 * (1 - CHECK_TOLERANCE + 0.01)))
        assert trend["check"]["regressions"] == []

    def test_single_artifact_has_no_check_pairs(self):
        trend = compute_trend(history(100.0))
        assert trend["check"]["regressions"] == []
        assert trend["staleness"] is None

    def test_staleness_counts_newer_benches(self):
        arts = history(*([100.0] * (STALE_AFTER + 1)))
        baseline = fake_artifact(
            arts[0][1]["created"], {"seq": fake_metrics(100.0)}
        )
        stale = compute_trend(arts, baseline=baseline)["staleness"]
        assert stale["benches_newer"] == STALE_AFTER
        assert stale["stale"] is True
        fresh_baseline = fake_artifact(
            arts[-1][1]["created"], {"seq": fake_metrics(100.0)}
        )
        stale = compute_trend(arts, baseline=fresh_baseline)["staleness"]
        assert stale["benches_newer"] == 0
        assert stale["stale"] is False


class TestRenderTrend:
    def test_renders_sparkline_table_and_verdict(self):
        out = render_trend(compute_trend(history(100.0, 110.0)))
        assert "Perf trend dashboard" in out
        assert "goodput_mib_s" in out
        assert "▁" in out and "█" in out
        assert "check: newest BENCH within" in out

    def test_renders_regression_and_staleness_lines(self):
        arts = history(*([100.0] * STALE_AFTER), 50.0)
        baseline = fake_artifact("2026-08-01T00:00:00Z", {"seq": fake_metrics()})
        out = render_trend(compute_trend(arts, baseline=baseline))
        assert "REGRESSION: seq goodput_mib_s" in out
        assert "WARNING: baseline" in out
        assert "update-baseline" in out


# -- the trend CLI ------------------------------------------------------------


class TestTrendCLI:
    def _write_history(self, tmp_path, *goodputs):
        for name, art in history(*goodputs):
            dump_artifact(art, tmp_path / name)

    def test_json_output_parses(self, tmp_path, capsys):
        self._write_history(tmp_path, 100.0, 110.0)
        rc = perf_main(["trend", "--dir", str(tmp_path), "--json"])
        assert rc == 0
        trend = json.loads(capsys.readouterr().out)
        assert trend["artifacts"] == ["BENCH_00.json", "BENCH_01.json"]
        assert trend["table"]["seq"]["goodput_mib_s"]["last"] == 110.0

    def test_check_gates_a_goodput_regression(self, tmp_path, capsys):
        self._write_history(tmp_path, 100.0, 80.0)
        assert perf_main(["trend", "--dir", str(tmp_path), "--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_passes_a_steady_history(self, tmp_path, capsys):
        self._write_history(tmp_path, 100.0, 98.0)
        assert perf_main(["trend", "--dir", str(tmp_path), "--check"]) == 0
        capsys.readouterr()

    def test_without_check_a_regression_is_advisory(self, tmp_path, capsys):
        self._write_history(tmp_path, 100.0, 80.0)
        assert perf_main(["trend", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_empty_dir_exits_nonzero(self, tmp_path, capsys):
        assert perf_main(["trend", "--dir", str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

    def test_committed_history_renders_clean(self, capsys):
        # The repo's own BENCH history must always render — this is the
        # CI perf job's `trend --check` against the committed artifacts.
        assert perf_main(["trend", "--check"]) == 0
        out = capsys.readouterr().out
        assert "Perf trend dashboard" in out
        assert "zero_copy" in out


# -- optional copy metrics in compare -----------------------------------------


class TestOptionalCopyMetrics:
    def test_optional_metrics_are_disjoint_from_required(self):
        assert not set(OPTIONAL_METRICS) & set(REQUIRED_METRICS)
        assert not set(OPTIONAL_METRICS) & set(POLICIES)

    def _pair(self):
        base = fake_artifact(
            "2026-08-01T00:00:00Z", {"seq": fake_metrics(100.0)}
        )
        new = copy.deepcopy(base)
        return new, base

    def test_absent_on_either_side_is_not_judged(self):
        new, base = self._pair()
        new["planes"]["sim"]["seq"]["bytes_copied"] = 999  # only in new
        assert compare_artifacts(new, base).ok
        new, base = self._pair()
        base["planes"]["sim"]["seq"]["bytes_copied"] = 999  # only in base
        assert compare_artifacts(new, base).ok

    def test_drift_when_both_present_is_a_regression(self):
        new, base = self._pair()
        base["planes"]["sim"]["seq"]["bytes_copied"] = 1000
        new["planes"]["sim"]["seq"]["bytes_copied"] = 1001
        report = compare_artifacts(new, base)
        assert not report.ok
        assert [(d.scenario, d.metric) for d in report.regressions] == [
            ("seq", "bytes_copied")
        ]

    def test_equal_copy_metrics_pass(self):
        new, base = self._pair()
        for art in (new, base):
            art["planes"]["sim"]["seq"]["bytes_copied"] = 4096
            art["planes"]["sim"]["seq"]["copies"] = 7
        assert compare_artifacts(new, base).ok


# -- check-baseline: the zero_copy pins ---------------------------------------


class TestCheckBaselineZeroCopyPins:
    def _baseline(self):
        return copy.deepcopy(load_artifact("benchmarks/baselines/baseline.json"))

    def test_committed_baseline_pins_zero_copy(self):
        baseline = self._baseline()
        assert check_baseline(baseline) == []
        zc = baseline["planes"]["sim"]["zero_copy"]
        assert zc["stats"]["mem"]["bytes_copied"] == zc["bytes_in"]

    def test_extra_copies_are_reported(self):
        baseline = self._baseline()
        baseline["planes"]["sim"]["zero_copy"]["stats"]["mem"][
            "bytes_copied"
        ] += 1
        problems = check_baseline(baseline)
        assert any("exactly one" in p for p in problems)

    def test_read_side_copies_in_a_write_only_scenario_are_reported(self):
        baseline = self._baseline()
        mem = baseline["planes"]["sim"]["zero_copy"]["stats"]["mem"]
        mem["by_site"]["read_boundary"]["bytes"] = 512
        problems = check_baseline(baseline)
        assert any("read_boundary" in p for p in problems)

    def test_missing_copy_metric_is_reported(self):
        baseline = self._baseline()
        del baseline["planes"]["sim"]["zero_copy"]["copy_ratio"]
        problems = check_baseline(baseline)
        assert any("copy_ratio" in p for p in problems)
