"""Tests for the write-through ablation (large writes bypass aggregation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import InstrumentedBackend, MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.core.planner import SealReason, WritePlanner
from repro.errors import ConfigError
from repro.units import KiB


def wt_config(threshold=64 * KiB):
    return CRFSConfig(
        chunk_size=16 * KiB,
        pool_size=128 * KiB,
        io_threads=2,
        write_through_threshold=threshold,
    )


class TestPlannerExternalWrite:
    def test_seals_partial_then_repositions(self):
        p = WritePlanner(chunk_size=100)
        p.write(0, 40)
        ops = p.note_external_write(40, 500)
        assert len(ops) == 1
        assert ops[0].reason == SealReason.FLUSH
        assert ops[0].length == 40
        assert p.append_point == 540
        assert not p.has_partial

    def test_no_partial_no_seal(self):
        p = WritePlanner(chunk_size=100)
        assert p.note_external_write(0, 500) == []
        assert p.append_point == 500

    def test_subsequent_writes_continue_after(self):
        p = WritePlanner(chunk_size=100)
        p.note_external_write(0, 250)
        ops = p.write(250, 30)
        assert len(ops) == 1  # one Fill, no gap seal
        assert p.chunk_file_offset == 250

    def test_stats_counted(self):
        p = WritePlanner(chunk_size=100)
        p.note_external_write(0, 500)
        assert p.total_writes == 1
        assert p.total_bytes == 500

    def test_negative_rejected(self):
        p = WritePlanner(chunk_size=100)
        with pytest.raises(ValueError):
            p.note_external_write(-1, 10)


class TestWriteThroughMount:
    def test_large_write_goes_straight_to_backend(self):
        backend = InstrumentedBackend(MemBackend())
        with CRFS(backend, wt_config()) as fs:
            with fs.open("/f") as f:
                f.write(b"L" * (64 * KiB))  # at threshold -> direct
            assert fs.write_through_bytes == 64 * KiB
        # the direct write is a single backend pwrite of the full size
        assert 64 * KiB in backend.write_sizes()

    def test_small_writes_still_aggregate(self):
        backend = InstrumentedBackend(MemBackend())
        with CRFS(backend, wt_config()) as fs:
            with fs.open("/f") as f:
                for _ in range(32):
                    f.write(b"s" * 1024)  # 32 KiB -> 2 chunks of 16 KiB
            assert fs.write_through_bytes == 0
        assert max(backend.write_sizes()) <= 16 * KiB

    def test_mixed_stream_content_correct(self):
        backend = MemBackend()
        with CRFS(backend, wt_config()) as fs:
            with fs.open("/f") as f:
                f.write(b"a" * 1000)          # buffered
                f.write(b"B" * (64 * KiB))    # direct (flushes the partial first)
                f.write(b"c" * 500)           # buffered again
        expected = b"a" * 1000 + b"B" * (64 * KiB) + b"c" * 500
        assert backend.read_file("/f") == expected

    def test_partial_chunk_flushed_not_lost(self):
        # The buffered prefix is sealed (asynchronously) when the direct
        # write happens; ranges are disjoint so order doesn't matter, but
        # both must reach the backend by close().
        backend = InstrumentedBackend(MemBackend())
        with CRFS(backend, wt_config()) as fs:
            with fs.open("/f") as f:
                f.write(b"x" * 1000)
                f.write(b"Y" * (64 * KiB))
        ops = backend.ops("pwrite")
        assert {op.offset for op in ops} == {0, 1000}
        assert backend.inner.read_file("/f") == b"x" * 1000 + b"Y" * (64 * KiB)

    def test_disabled_by_default(self):
        backend = InstrumentedBackend(MemBackend())
        cfg = CRFSConfig(chunk_size=16 * KiB, pool_size=128 * KiB)
        with CRFS(backend, cfg) as fs:
            with fs.open("/f") as f:
                f.write(b"L" * (256 * KiB))
            assert fs.write_through_bytes == 0
        assert max(backend.write_sizes()) <= 16 * KiB

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            CRFSConfig(write_through_threshold=-1)

    def test_stats_exposed(self):
        with CRFS(MemBackend(), wt_config()) as fs:
            with fs.open("/f") as f:
                f.write(b"L" * (64 * KiB))
            assert fs.stats()["write_through_bytes"] == 64 * KiB

    @given(
        sizes=st.lists(
            st.sampled_from([64, 1024, 8 * KiB, 64 * KiB, 100 * KiB]),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property_with_write_through(self, sizes):
        backend = MemBackend()
        with CRFS(backend, wt_config()) as fs:
            expected = bytearray()
            with fs.open("/f") as f:
                for i, s in enumerate(sizes):
                    payload = bytes([i % 256]) * s
                    f.write(payload)
                    expected.extend(payload)
        assert backend.read_file("/f") == bytes(expected)
