"""Tests for the experiments registry CLI and export."""

import json

import pytest

from repro.experiments.base import Check, ExperimentResult
from repro.experiments.registry import export_result, main


class TestExport:
    def _result(self, ok=True):
        return ExperimentResult(
            name="toy",
            title="Toy experiment",
            table="a  b\n1  2",
            measured={"x": 1.5},
            paper={"x": 1.4},
            checks=[Check("works", ok, "detail")],
        )

    def test_export_writes_txt_and_json(self, tmp_path):
        export_result(self._result(), tmp_path)
        txt = (tmp_path / "toy.txt").read_text()
        assert "Toy experiment" in txt
        assert "[PASS] works" in txt
        data = json.loads((tmp_path / "toy.json").read_text())
        assert data["name"] == "toy"
        assert data["ok"] is True
        assert data["measured"]["x"] == 1.5
        assert data["checks"][0]["passed"] is True

    def test_export_failing_result(self, tmp_path):
        export_result(self._result(ok=False), tmp_path)
        data = json.loads((tmp_path / "toy.json").read_text())
        assert data["ok"] is False

    def test_export_creates_directory(self, tmp_path):
        export_result(self._result(), tmp_path / "deep" / "dir")
        assert (tmp_path / "deep" / "dir" / "toy.json").exists()


class TestMain:
    def test_main_runs_named_experiment(self, tmp_path, capsys):
        rc = main(["table2", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert (tmp_path / "table2.json").exists()
        data = json.loads((tmp_path / "table2.json").read_text())
        assert data["ok"]

    def test_main_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["fig99"])
