"""Concurrency stress: many writers, a tiny buffer pool, and a flaky,
slow backend — the drain and recycling invariants must hold anyway.

What is asserted (per ISSUE, the concurrency stress satellite):

* at every successful close, the file's drain invariant holds:
  ``complete_chunk_count == write_chunk_count``;
* no chunk leaks: after unmount every pool chunk is back on the free
  list, whatever errors were latched along the way;
* files that closed cleanly are byte-identical in the backing store;
* the stats registry stays internally consistent under races
  (chunks accounted = seals, bytes conserved).

Faults here are probabilistic (seeded), so rare retry exhaustion is
tolerated — the assertions are invariants, not exact outcomes.
"""

import threading

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import BackendIOError
from repro.units import KiB

pytestmark = pytest.mark.stress

CHUNK = 16 * KiB
NWRITERS = 8
PER_WRITER = 8 * CHUNK  # bytes each writer streams


def pattern(i: int) -> bytes:
    return bytes([(i * 37 + 11) % 256]) * PER_WRITER


def stress_config(**kw):
    kw.setdefault("retry_backoff", 1e-4)
    kw.setdefault("retry_backoff_max", 1e-3)
    return CRFSConfig(
        chunk_size=CHUNK,
        pool_size=3 * CHUNK,  # tiny: constant pool backpressure
        io_threads=3,
        **kw,
    )


def run_writers(fs, results):
    """NWRITERS threads, each streaming its own file in odd-sized slices."""

    def writer(i):
        data = pattern(i)
        f = fs.open(f"/rank{i}.img")
        entry = f._entry
        try:
            pos = 0
            step = 3 * KiB + i * 511  # misaligned on purpose
            while pos < len(data):
                f.write(data[pos : pos + step])
                pos += step
        except BackendIOError:
            # fail-fast echo of a latched error: still close the file so
            # its buffers drain and the latch surfaces (and is consumed)
            results[i] = "latched"
            try:
                f.close()
            except BackendIOError:
                pass
            return
        try:
            f.close()
        except BackendIOError:
            results[i] = "latched"
            return
        # drain invariant at close: every queued chunk completed
        assert (
            entry.pipeline.complete_chunk_count == entry.pipeline.write_chunk_count
        )
        results[i] = "clean"

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(NWRITERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=90)
    assert not any(t.is_alive() for t in threads), "stress writers hung"


@pytest.mark.timeout(120)
class TestStressFlakyBackend:
    def test_invariants_under_faults_and_delays(self):
        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [
                FaultRule(op="pwrite", p=0.2, seed=11, error=OSError("EIO")),
                FaultRule(op="pwrite", p=0.3, seed=13, delay=0.001),
            ],
        )
        fs = CRFS(backend, stress_config(retry_attempts=6)).mount()
        results = {}
        run_writers(fs, results)
        stats = fs.stats()
        fs.unmount()

        # no chunk leaks: the whole pool is back on the free list
        assert fs.pool.free_chunks == fs.pool.nchunks == 3

        # accounting is consistent despite races:
        # every sealed chunk was either written or errored, exactly once
        assert sum(stats["seals"].values()) == (
            stats["chunks_written"] + stats["io_errors"]
        )
        assert stats["bytes_out"] <= stats["bytes_in"]
        assert stats["pool"]["acquires"] == sum(stats["seals"].values())

        # with a 6-attempt budget, p=0.2 faults virtually always recover;
        # the schedule certainly injected faults and retries happened
        assert backend.faults_fired > 0
        assert stats["resilience"]["chunks_retried"] > 0
        assert stats["resilience"]["errors_latched"] == sum(
            1 for r in results.values() if r == "latched"
        )

        # every cleanly-closed file is byte-identical in the backing store
        assert sum(1 for r in results.values() if r == "clean") > 0
        for i, outcome in results.items():
            if outcome == "clean":
                h = mem.open(f"/rank{i}.img", create=False)
                assert mem.pread(h, PER_WRITER, 0) == pattern(i), f"rank{i}"

    def test_invariants_with_breaker_enabled(self):
        """Same stress with the circuit breaker armed: writers may also
        see synchronous degraded-write failures, but pool integrity and
        the clean-unmount contract must survive breaker flapping."""
        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [FaultRule(op="pwrite", p=0.3, seed=7, error=OSError("EIO"))],
        )
        fs = CRFS(
            backend, stress_config(retry_attempts=2, breaker_threshold=2)
        ).mount()

        outcomes = []

        def writer(i):
            data = pattern(i)
            f = fs.open(f"/rank{i}.img")
            try:
                pos = 0
                while pos < len(data):
                    f.write(data[pos : pos + 4 * KiB])
                    pos += 4 * KiB
                f.close()
                outcomes.append("clean")
            except OSError:  # latched at close OR raised by a degraded write
                outcomes.append("error")
                try:
                    f.close()
                except OSError:
                    pass

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(NWRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert not any(t.is_alive() for t in threads), "stress writers hung"

        stats = fs.stats()
        fs.unmount()
        assert fs.pool.free_chunks == fs.pool.nchunks
        assert len(outcomes) == NWRITERS
        assert sum(stats["seals"].values()) == (
            stats["chunks_written"] + stats["io_errors"]
        )
        # breaker transitions are paired: every trip is either recovered
        # or still open at the end (at most one dangling)
        trips = stats["resilience"]["breaker_trips"]
        recoveries = stats["resilience"]["breaker_recoveries"]
        assert recoveries <= trips <= recoveries + 1


@pytest.mark.timeout(120)
class TestStressReadersAndWriters:
    def test_readback_under_pool_contention_leaks_nothing(self):
        """NWRITERS threads each write their image then read it back
        through the readahead cache, all sharing a 3-chunk pool: demand
        fetches, prefetch drops, and LRU evictions race with write-path
        acquires — after unmount every chunk must be back on the free
        list and every byte read must be correct."""
        mem = MemBackend()
        fs = CRFS(
            mem,
            stress_config(read_cache_chunks=3, readahead_chunks=1),
        ).mount()

        failures = []

        def worker(i):
            data = pattern(i)
            try:
                f = fs.open(f"/rank{i}.img")
                pos, step = 0, 3 * KiB + i * 511
                while pos < len(data):
                    f.write(data[pos : pos + step])
                    pos += step
                f.fsync()
                # sequential read-back in chunk-misaligned requests
                pos, req = 0, 5 * KiB + i * 257
                while pos < len(data):
                    part = f.pread(min(req, len(data) - pos), pos)
                    if part != data[pos : pos + len(part)] or not part:
                        failures.append(f"rank{i}: bad bytes @{pos}")
                        return
                    pos += len(part)
                f.close()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"rank{i}: {exc!r}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(NWRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert not any(t.is_alive() for t in threads), "stress workers hung"
        assert not failures, failures

        stats = fs.stats()
        fs.unmount()
        # the no-leak contract: cache entries, in-flight prefetches and
        # write buffers all returned their pool chunks
        assert fs.pool.free_chunks == fs.pool.nchunks == 3
        read = stats["read"]
        assert read["bytes_read"] == NWRITERS * PER_WRITER
        assert read["hits"] + read["misses"] > 0
        # every issued prefetch resolved exactly one way
        assert read["prefetch_wasted"] <= read["prefetched"]
        assert stats["resilience"]["errors_latched"] == 0


@pytest.mark.timeout(120)
class TestMultiHandleInterleaving:
    """Two handles on ONE path writing adjacent regions concurrently:
    both route through the shared FileEntry's single pipeline, so the
    drain invariant, pool integrity, and the final backing-store layout
    must all hold regardless of how the two write streams interleave —
    with the drain-stage gather either off or on."""

    @pytest.mark.parametrize("batch", [1, 8])
    def test_adjacent_regions_from_two_handles(self, batch):
        mem = MemBackend()
        fs = CRFS(mem, stress_config(writeback_batch_chunks=batch)).mount()

        fa = fs.open("/shared.img")
        fb = fs.open("/shared.img")
        # both handles share one refcounted entry (one pipeline)
        assert fa._entry is fb._entry
        entry = fa._entry

        region = {0: b"\xa5" * PER_WRITER, 1: b"\x5a" * PER_WRITER}
        barrier = threading.Barrier(2)
        failures = []

        def writer(idx, handle):
            data, base = region[idx], idx * PER_WRITER
            try:
                barrier.wait(timeout=30)
                pos, step = 0, 3 * KiB + 257  # chunk-misaligned on purpose
                while pos < len(data):
                    handle.pwrite(data[pos : pos + step], base + pos)
                    pos += step
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"handle{idx}: {exc!r}")

        threads = [
            threading.Thread(target=writer, args=(0, fa)),
            threading.Thread(target=writer, args=(1, fb)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90)
        assert not any(t.is_alive() for t in threads), "interleaving writers hung"
        assert not failures, failures

        fa.close()
        fb.close()  # last close drains the shared entry
        assert (
            entry.pipeline.complete_chunk_count == entry.pipeline.write_chunk_count
        )
        stats = fs.stats()
        fs.unmount()

        # no buffer-pool leak whatever the interleaving (or batching) did
        assert fs.pool.free_chunks == fs.pool.nchunks == 3
        assert stats["resilience"]["errors_latched"] == 0
        assert stats["bytes_in"] == stats["bytes_out"] == 2 * PER_WRITER

        # both regions byte-identical in the backing store
        h = mem.open("/shared.img", create=False)
        assert mem.pread(h, PER_WRITER, 0) == region[0]
        assert mem.pread(h, PER_WRITER, PER_WRITER) == region[1]
