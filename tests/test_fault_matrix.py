"""The fault matrix: {pwrite, pread, fsync, close} x {first op, every
op, probabilistic} x {retry succeeds, retry exhausted}.

The invariants each cell is checked against:

* **pwrite** faults are asynchronous: the application ``write()`` that
  produced the chunk never raises; the error (if retries exhaust)
  latches and surfaces at the next ``close()``/``fsync()`` — and a cell
  whose retries succeed leaves the backing file byte-identical to a
  fault-free run.
* **pread** faults split by origin: a *prefetch* failure is silent (the
  entry is dropped and refetched on demand), a *demand* (foreground)
  failure raises :class:`BackendIOError` at the read call itself; both
  count toward the circuit breaker.
* **fsync/close** faults are synchronous backend calls: they raise at
  the call site itself, regardless of the retry budget (the retry
  policy covers chunk writeback only).

Probabilistic rules are seeded, so every cell is deterministic.
"""

import threading
import time

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import BackendIOError
from repro.units import KiB

CHUNK = 64 * KiB
NCHUNKS = 4
DATA = bytes(range(256)) * (CHUNK // 256) * NCHUNKS  # 4 whole chunks

FAST = dict(retry_backoff=1e-4, retry_backoff_max=1e-3)


def make_rules(op: str, schedule: str) -> list[FaultRule]:
    err = OSError(f"injected-{op}")
    if schedule == "first":
        return [FaultRule(op=op, nth=1, error=err)]
    if schedule == "every":
        return [FaultRule(op=op, nth=1, every=True, error=err)]
    if schedule == "prob":  # p=1.0: the probabilistic branch, made certain
        return [FaultRule(op=op, p=1.0, seed=5, error=err)]
    raise ValueError(schedule)


def mount(rules, attempts):
    mem = MemBackend()
    backend = FaultyBackend(mem, rules, sleep=lambda s: None)
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        retry_attempts=attempts, **FAST,
    )
    return mem, backend, CRFS(backend, cfg)


def backing(mem, path, n):
    return mem.pread(mem.open(path, create=False), n, 0)


class TestPwriteCells:
    """Asynchronous writeback faults: latch-at-close semantics."""

    @pytest.mark.parametrize("schedule", ["first", "every", "prob"])
    @pytest.mark.parametrize("attempts", [1, 4])
    def test_cell(self, schedule, attempts):
        recovers = schedule == "first" and attempts > 1
        mem, backend, fs = mount(make_rules("pwrite", schedule), attempts)
        with fs:
            f = fs.open("/ckpt")
            write_errors = 0
            for i in range(NCHUNKS):
                try:
                    # one whole chunk per call: the write that carries the
                    # faulty chunk itself never raises; only a *later*
                    # write may fail fast on the already-latched error
                    f.write(DATA[i * CHUNK : (i + 1) * CHUNK])
                except BackendIOError as exc:
                    assert "earlier async chunk write failed" in str(exc)
                    write_errors += 1
            if recovers:
                f.close()
            else:
                with pytest.raises(BackendIOError, match="injected-pwrite"):
                    f.close()
            stats = fs.stats()

        assert backend.faults_fired > 0
        if recovers:
            assert write_errors == 0
            assert stats["resilience"]["errors_latched"] == 0
            assert stats["resilience"]["chunks_retried"] == 1
            assert backing(mem, "/ckpt", len(DATA)) == DATA
        else:
            assert stats["resilience"]["errors_latched"] == 1
            if attempts > 1:  # exhausted after real retrying
                assert stats["resilience"]["chunks_retried"] > 0

    @pytest.mark.parametrize("attempts", [1, 6])
    def test_probabilistic_half(self, attempts):
        """p=0.5 with a fixed seed: whatever the (deterministic) draws
        decide, the outcome must be internally consistent — either a
        clean close with a byte-identical backing file, or a latched
        error surfaced at close and nowhere else."""
        mem, backend, fs = mount(
            [FaultRule(op="pwrite", p=0.5, seed=17, error=OSError("flaky"))],
            attempts,
        )
        close_error = None
        with fs:
            f = fs.open("/ckpt")
            for i in range(NCHUNKS):
                try:
                    f.write(DATA[i * CHUNK : (i + 1) * CHUNK])
                except BackendIOError as exc:
                    # only ever the fail-fast echo of an earlier latch
                    assert "earlier async chunk write failed" in str(exc)
            try:
                f.close()
            except BackendIOError as exc:
                close_error = exc
            stats = fs.stats()

        if close_error is None:
            # every faulted chunk recovered within its budget
            assert stats["resilience"]["errors_latched"] == 0
            assert backing(mem, "/ckpt", len(DATA)) == DATA
        else:
            assert stats["resilience"]["errors_latched"] >= 1
        if attempts == 1:
            assert stats["resilience"]["chunks_retried"] == 0

    def test_recovered_run_matches_fault_free_run(self):
        """Byte-identity across the whole matrix row: recovered output
        equals a run with no fault injection at all."""
        mem_clean, _, fs_clean = mount([], 1)
        with fs_clean, fs_clean.open("/ckpt") as f:
            f.write(DATA)
        mem_faulty, _, fs_faulty = mount(
            [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))], 3
        )
        with fs_faulty, fs_faulty.open("/ckpt") as f:
            f.write(DATA)
        assert (
            backing(mem_clean, "/ckpt", len(DATA))
            == backing(mem_faulty, "/ckpt", len(DATA))
            == DATA
        )


def read_mount(rules, **overrides):
    """A mount with the readahead cache on (pool 4 chunks, cache 4,
    window 2) over a faulty MemBackend."""
    mem = MemBackend()
    backend = FaultyBackend(mem, rules, sleep=lambda s: None)
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        read_cache_chunks=4, readahead_chunks=2,
        retry_attempts=1, **FAST, **overrides,
    )
    return mem, backend, CRFS(backend, cfg)


def wait_read_stats(fs, predicate, timeout=10.0):
    """Poll stats()["read"] until the background prefetches settle."""
    deadline = time.monotonic() + timeout
    while True:
        section = fs.stats()["read"]
        if predicate(section):
            return section
        assert time.monotonic() < deadline, f"read section stuck: {section}"
        time.sleep(0.001)


class TestPreadCells:
    """Read-plane faults: demand reads are loud, prefetches silent."""

    def test_demand_read_fault_raises(self):
        """A foreground (demand) pread failure surfaces at the read call
        as a BackendIOError — never silently short data — and the chunk
        is refetched cleanly on the next demand."""
        _, backend, fs = read_mount(make_rules("pread", "first"))
        with fs:
            f = fs.open("/ckpt")
            f.write(DATA)
            f.fsync()
            with pytest.raises(BackendIOError, match="demand read"):
                f.pread(CHUNK, 0)
            stats = fs.stats()
            assert stats["read"]["misses"] == 1
            assert stats["read"]["hits"] == 0
            assert stats["resilience"]["errors_latched"] == 0
            # one-shot rule: the demand refetch serves the bytes
            assert f.pread(CHUNK, 0) == DATA[:CHUNK]
        assert backend.faults_fired == 1

    def test_prefetch_fault_is_silent_and_refetched_on_demand(self):
        """pread #1 is the demand fetch of chunk 0; #2 is the queued
        prefetch of chunk 1.  Failing #2 must not surface anywhere — the
        entry drops, and reading chunk 1 refetches it on demand."""
        _, backend, fs = read_mount(
            [FaultRule(op="pread", nth=2, error=OSError("injected-prefetch"))]
        )
        with fs:
            f = fs.open("/ckpt")
            f.write(DATA)
            f.fsync()
            assert f.pread(CHUNK, 0) == DATA[:CHUNK]
            # both issued prefetches (chunks 1 and 2) must resolve: the
            # faulted one as a drop, the other as a delivery
            section = wait_read_stats(
                fs, lambda r: r["prefetched"] + r["prefetch_dropped"] == 2
            )
            assert section["prefetch_dropped"] == 1
            assert section["prefetched"] == 1
            # the dropped chunk comes back on demand, byte-identical
            assert f.pread(CHUNK, CHUNK) == DATA[CHUNK : 2 * CHUNK]
            stats = fs.stats()
            assert stats["read"]["misses"] == 2  # chunk 0 + the refetch
            assert stats["resilience"]["errors_latched"] == 0
        assert backend.faults_fired == 1

    def test_read_failures_count_toward_breaker(self):
        """Consecutive demand-read failures trip the circuit breaker;
        while it is open the cache is bypassed entirely (synchronous
        passthrough, no prefetch issue)."""
        rules = [
            FaultRule(op="pread", nth=1, every=True, until=2,
                      error=OSError("injected-pread"))
        ]
        _, _, fs = read_mount(rules, breaker_threshold=2)
        with fs:
            f = fs.open("/ckpt")
            f.write(DATA)
            f.fsync()
            for _ in range(2):
                with pytest.raises(BackendIOError, match="demand read"):
                    f.pread(CHUNK, 0)
            stats = fs.stats()
            assert stats["resilience"]["breaker_trips"] == 1
            assert fs.health.degraded
            # the outage is over (until=2) and the breaker is open:
            # reads pass through and never touch the cache
            assert f.pread(CHUNK, 0) == DATA[:CHUNK]
            after = fs.stats()["read"]
            assert after["misses"] == stats["read"]["misses"]
            assert after["prefetched"] == 0


class TestSimPreadCells:
    """The same pread cells on the timing plane, via the shared
    FaultSchedule — deterministic on the virtual clock."""

    def _run(self, rules, proc_body):
        from repro.sim import SharedBandwidth, Simulator
        from repro.simcrfs import SimCRFS
        from repro.simio.faulty import FaultySimFilesystem
        from repro.simio.nullfs import NullSimFilesystem
        from repro.simio.params import DEFAULT_HW
        from repro.util.rng import rng_for

        sim = Simulator()
        hw = DEFAULT_HW
        membus = SharedBandwidth(sim, hw.membus_bandwidth)
        backend = FaultySimFilesystem(
            NullSimFilesystem(sim, hw, rng_for(1, "fault-pread")), rules
        )
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            read_cache_chunks=4, readahead_chunks=2,
            retry_attempts=1, **FAST,
        )
        crfs = SimCRFS(sim, hw, cfg, backend, membus)
        sim.run_until_complete([sim.spawn(proc_body(crfs))])
        crfs.shutdown()
        return backend, crfs.stats()

    def test_sim_demand_read_fault_raises(self):
        errors = []

        def proc(crfs):
            f = crfs.open("/ckpt")
            for _ in range(NCHUNKS):
                yield from crfs.write(f, CHUNK)
            yield from crfs.fsync(f)
            crfs.seek(f, 0)
            try:
                yield from crfs.read(f, CHUNK)
            except BackendIOError as exc:
                errors.append(exc)
            yield from crfs.read(f, CHUNK)  # clean demand refetch
            yield from crfs.close(f)

        backend, stats = self._run(make_rules("pread", "first"), proc)
        assert len(errors) == 1 and "demand read" in str(errors[0])
        assert stats["read"]["misses"] == 2
        assert stats["read"]["hits"] == 0
        assert backend.faults_fired == 1

    def test_sim_prefetch_fault_silent(self):
        """Sequential read-back with the chunk-1 prefetch faulted: no
        error escapes, the drop is accounted, every byte is read."""

        def proc(crfs):
            f = crfs.open("/ckpt")
            for _ in range(NCHUNKS):
                yield from crfs.write(f, CHUNK)
            yield from crfs.fsync(f)
            crfs.seek(f, 0)
            for _ in range(NCHUNKS):
                yield from crfs.read(f, CHUNK)
            yield from crfs.close(f)

        rules = [FaultRule(op="pread", nth=2, error=OSError("injected-prefetch"))]
        backend, stats = self._run(rules, proc)
        read = stats["read"]
        assert read["bytes_read"] == NCHUNKS * CHUNK
        assert read["prefetch_dropped"] == 1
        assert read["prefetched"] == 2
        assert read["misses"] == 2  # chunk 0, plus the dropped chunk 1
        assert read["prefetch_wasted"] == 0
        assert stats["resilience"]["errors_latched"] == 0
        assert backend.faults_fired == 1


class TestFsyncCells:
    """Synchronous fsync faults raise at the fsync() call itself."""

    @pytest.mark.parametrize("schedule", ["first", "every", "prob"])
    @pytest.mark.parametrize("attempts", [1, 4])
    def test_cell(self, schedule, attempts):
        mem, backend, fs = mount(make_rules("fsync", schedule), attempts)
        with fs:
            f = fs.open("/ckpt")
            f.write(DATA)
            with pytest.raises(OSError, match="injected-fsync"):
                f.fsync()
            stats = fs.stats()
            # the data itself still drained through the chunk pipeline
            assert stats["resilience"]["errors_latched"] == 0
            assert backing(mem, "/ckpt", len(DATA)) == DATA
            if schedule == "first":
                f.fsync()  # one-shot rule: the next fsync is clean
            f.close()  # close never touches backend fsync: always clean

    def test_budget_does_not_retry_fsync(self):
        """The retry policy covers chunk writeback only: a one-shot fsync
        fault raises even with a generous budget."""
        _, backend, fs = mount(make_rules("fsync", "first"), 8)
        with fs:
            f = fs.open("/ckpt")
            f.write(b"x" * CHUNK)
            with pytest.raises(OSError, match="injected-fsync"):
                f.fsync()
        assert backend.faults_fired == 1  # fired once, never re-driven


class TestCloseCells:
    """Synchronous close faults raise at the close() call itself."""

    @pytest.mark.parametrize("schedule", ["first", "every", "prob"])
    @pytest.mark.parametrize("attempts", [1, 4])
    def test_cell(self, schedule, attempts):
        mem, backend, fs = mount(make_rules("close", schedule), attempts)
        fs.mount()
        try:
            f = fs.open("/ckpt")
            f.write(DATA)
            with pytest.raises(OSError, match="injected-close"):
                f.close()
            stats = fs.stats()
            # all chunks drained before the backend close failed: no data lost
            assert stats["resilience"]["errors_latched"] == 0
            assert stats["bytes_out"] == len(DATA)
            assert backing(mem, "/ckpt", len(DATA)) == DATA
        finally:
            # the failed close already dropped the table entry, so the
            # unmount has nothing left to close and is clean
            fs.unmount()

    def test_both_latch_and_close_fault_are_visible(self):
        """With both a pwrite latch and a close fault pending, close()
        raises the backend-close error with the latched writeback error
        chained as its context — neither failure is swallowed."""
        _, _, fs = mount(
            [
                FaultRule(op="pwrite", nth=1, every=True, error=OSError("wb-dead")),
                FaultRule(op="close", nth=1, every=True, error=OSError("cl-dead")),
            ],
            1,
        )
        fs.mount()
        try:
            f = fs.open("/ckpt")
            f.write(b"x" * CHUNK)
            with pytest.raises(OSError, match="cl-dead") as excinfo:
                f.close()
            context = excinfo.value.__context__
            assert isinstance(context, BackendIOError)
            assert "wb-dead" in str(context)
        finally:
            fs.unmount()


#: Coalesced-writeback cells: a 16-chunk run drained by one gated worker
#: with ``writeback_batch_chunks=8`` — two full gathers, deterministic
#: because the run is fully queued before the worker reaches it.
RUN_CHUNKS = 16
RUN = b"".join(bytes([i + 1]) * CHUNK for i in range(RUN_CHUNKS))


def gated_batched_mount(extra_rules, **overrides):
    """A batching mount whose lone worker blocks inside the gate file's
    first pwrite until ``gate`` is set."""
    gate = threading.Event()
    rules = [FaultRule(op="pwrite", nth=1, delay=1.0, path="/gate*")]
    rules.extend(extra_rules)
    mem = MemBackend()
    backend = FaultyBackend(mem, rules, sleep=lambda _s: gate.wait())
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=20 * CHUNK, io_threads=1,
        writeback_batch_chunks=8, **{**dict(retry_attempts=1, **FAST), **overrides},
    )
    return mem, backend, CRFS(backend, cfg), gate


class TestPwritevCells:
    """The batch is one backend op: one fault decision, one retry
    schedule, and a failure attributed to every chunk it carried."""

    def test_midbatch_failure_latches_every_chunk(self):
        mem, backend, fs, gate = gated_batched_mount(
            [FaultRule(op="pwritev", nth=1, every=True,
                       error=OSError("injected-pwritev"))]
        )
        with fs:
            fa = fs.open("/gate.img")
            fa.write(b"\x00" * CHUNK)
            fb = fs.open("/run.img")
            fb.write(RUN)
            gate.set()
            fa.close()
            with pytest.raises(BackendIOError, match="injected-pwritev"):
                fb.close()
            stats = fs.stats()
        # every chunk the failed batches carried errored...
        assert stats["io_errors"] == RUN_CHUNKS
        # ...but the file latched (and surfaced) the error exactly once
        assert stats["resilience"]["errors_latched"] == 1
        assert stats["batch"]["errors"] == 2  # both gathers failed
        assert stats["batch"]["batches"] == 0
        assert stats["batch"]["broken"] == 0
        assert backend.faults_fired == 2
        # nothing from the failed batches reached the backing store
        assert mem.file_size(mem.open("/run.img", create=False)) == 0
        assert fs.pool.free_chunks == fs.pool.nchunks

    def test_batch_retries_as_one_op(self):
        """A one-shot pwritev fault with budget: the whole batch reissues
        as one op (one ChunkRetried at the batch base), then recovers
        byte-identically."""
        mem, backend, fs, gate = gated_batched_mount(
            [FaultRule(op="pwritev", nth=1, error=OSError("transient"))],
            retry_attempts=4,
        )
        with fs:
            fa = fs.open("/gate.img")
            fa.write(b"\x00" * CHUNK)
            fb = fs.open("/run.img")
            fb.write(RUN)
            gate.set()
            fa.close()
            fb.close()  # clean: the retry recovered the batch
            stats = fs.stats()
        assert stats["resilience"]["chunks_retried"] == 1  # one op, one retry
        assert stats["resilience"]["errors_latched"] == 0
        assert stats["batch"]["batches"] == 2
        assert stats["batch"]["chunks"] == RUN_CHUNKS
        assert stats["batch"]["errors"] == 0
        assert backend.faults_fired == 1
        h = mem.open("/run.img", create=False)
        assert mem.pread(h, len(RUN), 0) == RUN

    def test_open_breaker_breaks_batch_into_degraded_singles(self):
        """With the breaker already open when the worker gathers, the
        batch is broken (BatchBroken) and its chunks written one by one;
        the first success recovers the breaker, so the next gather
        batches normally."""
        mem, backend, fs, gate = gated_batched_mount(
            [FaultRule(op="pwrite", nth=1, error=OSError("EIO"))],
            breaker_threshold=1,
        )
        with fs:
            fa = fs.open("/gate.img")
            fa.write(b"\x00" * CHUNK)  # its pwrite trips the breaker
            fb = fs.open("/run.img")
            fb.write(RUN)
            gate.set()
            with pytest.raises(BackendIOError, match="EIO"):
                fa.close()
            fb.close()
            stats = fs.stats()
        assert stats["batch"]["broken"] == 1  # first gather hit the open breaker
        assert stats["batch"]["batches"] == 1  # second gather: breaker recovered
        assert stats["batch"]["per_batch"] == {"8": 1}
        assert stats["resilience"]["breaker_trips"] == 1
        assert stats["resilience"]["breaker_recoveries"] == 1
        h = mem.open("/run.img", create=False)
        assert mem.pread(h, len(RUN), 0) == RUN


class TestSimPwritevCells:
    """The same pwritev cells on the timing plane — the shared
    FaultSchedule speaks "pwritev" there too (one count per vectored
    write), so the cells must land on identical numbers."""

    def _run(self, rules, **overrides):
        from repro.sim import SharedBandwidth, Simulator
        from repro.simcrfs import SimCRFS
        from repro.simio.faulty import FaultySimFilesystem
        from repro.simio.nullfs import NullSimFilesystem
        from repro.simio.params import DEFAULT_HW
        from repro.util.rng import rng_for

        sim = Simulator()
        hw = DEFAULT_HW
        membus = SharedBandwidth(sim, hw.membus_bandwidth)
        all_rules = [FaultRule(op="pwrite", nth=1, delay=1.0, path="/gate*")]
        all_rules.extend(rules)
        backend = FaultySimFilesystem(
            NullSimFilesystem(sim, hw, rng_for(1, "fault-pwritev")), all_rules
        )
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=20 * CHUNK, io_threads=1,
            writeback_batch_chunks=8,
            **{**dict(retry_attempts=1, **FAST), **overrides},
        )
        crfs = SimCRFS(sim, hw, cfg, backend, membus)
        errors = []

        def proc():
            fa = crfs.open("/gate.img")
            yield from crfs.write(fa, CHUNK)
            fb = crfs.open("/run.img")
            for _ in range(RUN_CHUNKS):
                yield from crfs.write(fb, CHUNK)
            try:
                yield from crfs.close(fb)
            except BackendIOError as exc:
                errors.append(("run", exc))
            try:
                yield from crfs.close(fa)
            except BackendIOError as exc:
                errors.append(("gate", exc))

        sim.run_until_complete([sim.spawn(proc())])
        crfs.shutdown()
        return backend, crfs.stats(), errors

    def test_sim_midbatch_failure_latches_every_chunk(self):
        backend, stats, errors = self._run(
            [FaultRule(op="pwritev", nth=1, every=True,
                       error=OSError("injected-pwritev"))]
        )
        assert [name for name, _ in errors] == ["run"]
        assert "injected-pwritev" in str(errors[0][1])
        assert stats["io_errors"] == RUN_CHUNKS
        assert stats["resilience"]["errors_latched"] == 1
        assert stats["batch"]["errors"] == 2
        assert stats["batch"]["batches"] == 0
        assert backend.faults_fired == 2

    def test_sim_batch_retries_as_one_op(self):
        backend, stats, errors = self._run(
            [FaultRule(op="pwritev", nth=1, error=OSError("transient"))],
            retry_attempts=4,
        )
        assert not errors
        assert stats["resilience"]["chunks_retried"] == 1
        assert stats["batch"]["batches"] == 2
        assert stats["batch"]["chunks"] == RUN_CHUNKS
        assert backend.faults_fired == 1

    def test_sim_open_breaker_breaks_batch(self):
        backend, stats, errors = self._run(
            [FaultRule(op="pwrite", nth=1, error=OSError("EIO"))],
            breaker_threshold=1,
        )
        assert [name for name, _ in errors] == ["gate"]
        assert stats["batch"]["broken"] == 1
        assert stats["batch"]["batches"] == 1
        assert stats["batch"]["per_batch"] == {"8": 1}
        assert stats["resilience"]["breaker_trips"] == 1
        assert stats["resilience"]["breaker_recoveries"] == 1


class TestProbabilisticSchedule:
    """Branch coverage for seeded p-rules, without pipeline races."""

    def rule(self, seed, p=0.5):
        return FaultRule(op="pwrite", p=p, seed=seed, error=OSError("x"))

    def test_p_half_fires_some_but_not_all(self):
        from repro.backends.faulty import FaultSchedule

        sched = FaultSchedule([self.rule(17)])
        fired = sum(
            1 for _ in range(200) if sched.decide("pwrite")[1] is not None
        )
        assert 0 < fired < 200
        assert sched.faults_fired == fired

    def test_same_seed_same_schedule(self):
        from repro.backends.faulty import FaultSchedule

        def seq(seed):
            sched = FaultSchedule([self.rule(seed)])
            return [sched.decide("pwrite")[1] is not None for _ in range(50)]

        assert seq(17) == seq(17)
        assert seq(17) != seq(18)

    def test_p_extremes(self):
        from repro.backends.faulty import FaultSchedule

        always = FaultSchedule([self.rule(1, p=1.0)])
        never = FaultSchedule([self.rule(1, p=0.0)])
        for _ in range(20):
            assert always.decide("pwrite")[1] is not None
            assert never.decide("pwrite")[1] is None

    def test_p_validation(self):
        with pytest.raises(ValueError):
            FaultRule(op="pwrite", p=1.5)
        with pytest.raises(ValueError):
            FaultRule(op="pwrite", until=2, nth=3)
        with pytest.raises(ValueError):
            FaultRule(op="pwrite", period=-1)


class TestPathScopedRules:
    """Per-path matching: a glob-scoped rule leaves other files alone."""

    def test_rule_scoped_to_one_path(self):
        mem, backend, fs = mount(
            [
                FaultRule(
                    op="pwrite", nth=1, every=True, path="/bad*",
                    error=OSError("EIO"),
                )
            ],
            1,
        )
        with fs:
            with fs.open("/good-a") as f:
                f.write(DATA)
            g = fs.open("/bad-b")
            g.write(b"x" * CHUNK)
            with pytest.raises(BackendIOError):
                g.close()
            stats = fs.stats()
        assert stats["resilience"]["errors_latched"] == 1
        assert backing(mem, "/good-a", len(DATA)) == DATA

    def test_metadata_ops_are_checkable(self):
        """file_size / exists / stat / listdir now route through the
        fault schedule."""
        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [
                FaultRule(op="exists", nth=1, error=OSError("e-exists")),
                FaultRule(op="stat", nth=1, error=OSError("e-stat")),
                FaultRule(op="listdir", nth=1, error=OSError("e-list")),
                FaultRule(op="file_size", nth=1, error=OSError("e-size")),
            ],
        )
        h = backend.open("/f")
        backend.pwrite(h, b"data", 0)
        with pytest.raises(OSError, match="e-exists"):
            backend.exists("/f")
        with pytest.raises(OSError, match="e-stat"):
            backend.stat("/f")
        with pytest.raises(OSError, match="e-list"):
            backend.listdir("/")
        with pytest.raises(OSError, match="e-size"):
            backend.file_size(h)
        # one-shot rules: everything works on the second call
        assert backend.exists("/f")
        assert backend.stat("/f").size == 4
        assert backend.listdir("/") == ["f"]
        assert backend.file_size(h) == 4
        assert backend.faults_fired == 4


# -- per-tier cells: faults on the deep tier of a staging chain ----------------
#
# A tiered mount accepts writes at tier 0 and pumps them deeper in the
# background, so a deep-tier fault is *never* an application-write
# fault: the invariant in every cell is degrade-to-shallower-tier —
# writes keep completing, tier 0 keeps the full byte image, the mount's
# own resilience counters never move, and the failure is attributed to
# the faulty tier's breaker alone.  Retry exhaustion strands extents at
# tier 0 and surfaces only from a deep-durability fsync.
#
# Determinism without gating: one IO thread seals in order, one pump
# thread with batch 1 migrates in order, so the deep tier sees its ops
# in extent order and every seeded schedule lands identically.

#: Tier counters a free-running run still fully determines (the
#: pump-queue depth gauge is timing-dependent and excluded).
TIER_DETERMINISTIC = (
    "chunks_staged",
    "bytes_staged",
    "chunks_migrated",
    "bytes_migrated",
    "chunks_stranded",
    "bytes_stranded",
    "migrate_errors",
    "migrate_retries",
    "breaker_trips",
    "breaker_recoveries",
)


def tier_cell_functional(rules, attempts, nchunks=NCHUNKS, gated=False, batch=1):
    """One cell on the threaded plane: write ``nchunks`` chunks through
    a mem -> faulty-mem staging chain, fsync to deep durability
    (catching the strand error), close, unmount.  ``gated`` holds the
    pump in the gate file's first deep pwrite until the whole run is
    queued (for deterministic batch formation)."""
    from repro.backends import TieredBackend

    gate = threading.Event()
    popped = threading.Event()

    def hold(_s):
        popped.set()
        gate.wait()

    all_rules = list(rules)
    if gated:
        all_rules.insert(0, FaultRule(op="pwrite", nth=1, delay=1.0, path="/gate*"))
    tier0 = MemBackend()
    deep_mem = MemBackend()
    deep = FaultyBackend(deep_mem, all_rules, sleep=hold if gated else lambda s: None)
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=(nchunks + 4) * CHUNK, io_threads=1,
        retry_attempts=attempts, breaker_threshold=2,
        tier_pump_threads=1, tier_pump_batch_chunks=batch, **FAST,
    )
    sync_errors = []
    with CRFS(TieredBackend([tier0, deep]), cfg) as fs:
        if gated:
            fg = fs.open("/gate.img")
            fg.write(b"\x00" * CHUNK)
            assert popped.wait(timeout=30), "tier pump never reached the gate"
        f = fs.open("/run.img")
        for i in range(nchunks):
            # staging is asynchronous: the write itself never raises
            f.write(bytes([i + 1]) * CHUNK)
        if gated:
            gate.set()
        try:
            f.fsync()  # durability through the deep tier
        except OSError as exc:
            sync_errors.append(exc)
        f.close()
        if gated:
            fg.close()
        stats = fs.stats()
    return stats, sync_errors, tier0, deep_mem


def tier_cell_sim(rules, attempts, nchunks=NCHUNKS, gated=False, batch=1, seed=1):
    """The same cell on the timing plane (virtual-clock gate)."""
    from repro.sim import SharedBandwidth, Simulator
    from repro.simcrfs import SimCRFS
    from repro.simio.faulty import FaultySimFilesystem
    from repro.simio.nullfs import NullSimFilesystem
    from repro.simio.params import DEFAULT_HW
    from repro.simio.tiered import TieredSimFilesystem
    from repro.util.rng import rng_for

    sim = Simulator()
    hw = DEFAULT_HW
    from repro.sim import SharedBandwidth as _SB

    membus = _SB(sim, hw.membus_bandwidth)
    all_rules = list(rules)
    if gated:
        all_rules.insert(0, FaultRule(op="pwrite", nth=1, delay=1.0, path="/gate*"))
    deep = FaultySimFilesystem(
        NullSimFilesystem(sim, hw, rng_for(seed, "tiercell/deep")), all_rules
    )
    backend = TieredSimFilesystem(
        [NullSimFilesystem(sim, hw, rng_for(seed, "tiercell/t0")), deep]
    )
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=(nchunks + 4) * CHUNK, io_threads=1,
        retry_attempts=attempts, breaker_threshold=2,
        tier_pump_threads=1, tier_pump_batch_chunks=batch, **FAST,
    )
    crfs = SimCRFS(sim, hw, cfg, backend, membus)
    sync_errors = []

    def proc():
        if gated:
            fg = crfs.open("/gate.img")
            yield from crfs.write(fg, CHUNK)
        f = crfs.open("/run.img")
        for _ in range(nchunks):
            yield from crfs.write(f, CHUNK)
        try:
            yield from crfs.fsync(f)
        except OSError as exc:
            sync_errors.append(exc)
        yield from crfs.close(f)
        if gated:
            yield from crfs.close(fg)

    sim.run_until_complete([sim.spawn(proc())])
    sim.run_until_complete([sim.spawn(crfs.drain_staging(), name="drain")])
    crfs.shutdown()
    return crfs.stats(), sync_errors


def tier_comparable(stats):
    """The workload-determined slice of the ``tiers`` section."""
    return {
        level: {k: counters[k] for k in TIER_DETERMINISTIC}
        for level, counters in stats["tiers"]["per_tier"].items()
    }


class TestTierPwriteCells:
    """Deep-tier pwrite faults: strand-at-tier-0, never write-through."""

    @pytest.mark.parametrize("schedule", ["first", "every", "prob"])
    @pytest.mark.parametrize("attempts", [1, 4])
    def test_cell(self, schedule, attempts):
        recovers = schedule == "first" and attempts > 1
        stats, sync_errors, tier0, deep_mem = tier_cell_functional(
            make_rules("pwrite", schedule), attempts
        )
        tiers = stats["tiers"]["per_tier"]
        run = b"".join(bytes([i + 1]) * CHUNK for i in range(NCHUNKS))

        # degrade-to-shallower-tier: the mount pipeline never saw a fault
        assert stats["io_errors"] == 0
        assert stats["resilience"]["errors_latched"] == 0
        assert stats["resilience"]["chunks_retried"] == 0
        assert stats["resilience"]["breaker_trips"] == 0
        # and tier 0 holds the full image no matter what the deep tier did
        assert backing(tier0, "/run.img", len(run)) == run
        assert tiers["0"]["chunks_staged"] == NCHUNKS

        if recovers:
            assert sync_errors == []
            assert tiers["1"]["chunks_stranded"] == 0
            assert tiers["1"]["migrate_retries"] == 1
            assert tiers["1"]["breaker_trips"] == 0
            assert stats["tiers"]["sync_through"] == 1
            assert backing(deep_mem, "/run.img", len(run)) == run
        elif schedule == "first":  # one-shot fault, no retry budget
            assert len(sync_errors) == 1
            assert "injected-pwrite" in str(sync_errors[0])
            # only the first extent strands; the rest land deep
            assert tiers["1"]["chunks_stranded"] == 1
            assert tiers["1"]["chunks_staged"] == NCHUNKS - 1
            assert tiers["1"]["breaker_trips"] == 0
            assert backing(deep_mem, "/run.img", len(run))[CHUNK:] == run[CHUNK:]
        else:  # every / prob(p=1): the deep tier is gone for good
            assert len(sync_errors) == 1
            assert tiers["1"]["chunks_stranded"] == NCHUNKS
            assert tiers["1"]["chunks_staged"] == 0
            # consecutive failures trip the *tier's* breaker exactly once
            assert tiers["1"]["breaker_trips"] == 1
            assert deep_mem.stat("/run.img").size == 0
            if attempts > 1:
                assert tiers["1"]["migrate_retries"] == NCHUNKS * (attempts - 1)


class TestTierPwritevCells:
    """Batched migrations are one deep op: one fault decision, one retry
    schedule, and a strand attributed to every chunk the batch carried."""

    RUN = 16  # two full gathers at batch limit 8

    @pytest.mark.parametrize("schedule", ["first", "every", "prob"])
    @pytest.mark.parametrize("attempts", [1, 4])
    def test_cell(self, schedule, attempts):
        recovers = schedule == "first" and attempts > 1
        stats, sync_errors, tier0, deep_mem = tier_cell_functional(
            make_rules("pwritev", schedule), attempts,
            nchunks=self.RUN, gated=True, batch=8,
        )
        tiers = stats["tiers"]["per_tier"]
        run = b"".join(bytes([i + 1]) * CHUNK for i in range(self.RUN))

        assert stats["resilience"]["errors_latched"] == 0
        assert stats["resilience"]["breaker_trips"] == 0
        assert backing(tier0, "/run.img", len(run)) == run

        if recovers:
            assert sync_errors == []
            assert tiers["1"]["chunks_stranded"] == 0
            assert tiers["1"]["migrate_retries"] == 1  # the batch, as one op
            assert backing(deep_mem, "/run.img", len(run)) == run
        elif schedule == "first":  # first gather strands whole, second lands
            assert len(sync_errors) == 1
            assert tiers["1"]["chunks_stranded"] == 8
            assert tiers["1"]["migrate_errors"] == 1
            assert tiers["1"]["breaker_trips"] == 0
            half = 8 * CHUNK
            assert backing(deep_mem, "/run.img", len(run))[half:] == run[half:]
        else:  # both gathers strand; the tier breaker trips once
            assert len(sync_errors) == 1
            assert "injected-pwritev" in str(sync_errors[0])
            assert tiers["1"]["chunks_stranded"] == self.RUN
            assert tiers["1"]["migrate_errors"] == 2
            assert tiers["1"]["breaker_trips"] == 1


class TestTierFsyncCells:
    """A deep-tier fsync fault is synchronous: it raises at the
    deep-durability fsync itself, after the migrations all landed."""

    @pytest.mark.parametrize("schedule", ["first", "every", "prob"])
    def test_cell(self, schedule):
        stats, sync_errors, tier0, deep_mem = tier_cell_functional(
            make_rules("fsync", schedule), attempts=4
        )
        run = b"".join(bytes([i + 1]) * CHUNK for i in range(NCHUNKS))
        assert len(sync_errors) == 1
        assert "injected-fsync" in str(sync_errors[0])
        # the data was never the problem: everything migrated deep
        assert stats["tiers"]["per_tier"]["1"]["chunks_stranded"] == 0
        assert stats["tiers"]["per_tier"]["1"]["chunks_staged"] == NCHUNKS
        assert backing(deep_mem, "/run.img", len(run)) == run
        # and no breaker anywhere counts a synchronous fsync fault
        assert stats["tiers"]["per_tier"]["1"]["breaker_trips"] == 0
        assert stats["tiers"]["sync_through"] == -1

    def test_one_shot_fsync_fault_then_clean(self):
        """After the one-shot fault fires, the next deep-durability
        fsync is clean and records sync_through."""
        from repro.backends import TieredBackend

        deep_mem = MemBackend()
        deep = FaultyBackend(
            deep_mem, make_rules("fsync", "first"), sleep=lambda s: None
        )
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            tier_pump_threads=1, **FAST,
        )
        with CRFS(TieredBackend([MemBackend(), deep]), cfg) as fs:
            f = fs.open("/run.img")
            f.write(DATA)
            with pytest.raises(OSError, match="injected-fsync"):
                f.fsync()
            f.fsync()  # clean
            assert fs.stats()["tiers"]["sync_through"] == 1
            f.close()


class TestSimTierCellParity:
    """Every cell above, run on both planes: the workload-determined
    tier counters and the strand-error surface must land identically."""

    CELLS = [
        ("pwrite", "first", 1, NCHUNKS, False, 1),
        ("pwrite", "first", 4, NCHUNKS, False, 1),
        ("pwrite", "every", 1, NCHUNKS, False, 1),
        ("pwrite", "every", 4, NCHUNKS, False, 1),
        ("pwrite", "prob", 4, NCHUNKS, False, 1),
        ("pwritev", "first", 4, 16, True, 8),
        ("pwritev", "every", 1, 16, True, 8),
        ("fsync", "every", 4, NCHUNKS, False, 1),
    ]

    @pytest.mark.parametrize("op,schedule,attempts,nchunks,gated,batch", CELLS)
    def test_cell_parity(self, op, schedule, attempts, nchunks, gated, batch):
        func_stats, func_sync, _, _ = tier_cell_functional(
            make_rules(op, schedule), attempts,
            nchunks=nchunks, gated=gated, batch=batch,
        )
        sim_stats, sim_sync = tier_cell_sim(
            make_rules(op, schedule), attempts,
            nchunks=nchunks, gated=gated, batch=batch,
        )
        assert tier_comparable(func_stats) == tier_comparable(sim_stats)
        assert func_stats["tiers"]["sync_through"] == sim_stats["tiers"]["sync_through"]
        assert len(func_sync) == len(sim_sync)
        if func_sync:
            assert str(func_sync[0]) == str(sim_sync[0])
        # tier faults never leak into the mount resilience section
        for stats in (func_stats, sim_stats):
            assert stats["resilience"]["chunks_retried"] == 0
            assert stats["resilience"]["breaker_trips"] == 0


# -- delta-checkpoint cells: manifest and generation-file faults ---------------


def delta_mount(rules, attempts=1, **cfg_kw):
    mem = MemBackend()
    backend = FaultyBackend(mem, rules, sleep=lambda s: None)
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        retry_attempts=attempts, **FAST, **cfg_kw,
    )
    return mem, backend, CRFS(backend, cfg)


def manifest_rules(op, schedule):
    # Op counts are global per op name (the gen-file data writes consume
    # the early pwrite counts), so path-scoped cells use persistent
    # schedules; the "first fault, then recovery" column disarms the
    # rule between attempts instead of relying on ``nth``.
    err = OSError(f"injected-{op}")
    if schedule == "every":
        return [FaultRule(op=op, path="*.manifest", nth=1, every=True, error=err)]
    if schedule == "prob":
        return [FaultRule(op=op, path="*.manifest", p=1.0, seed=5, error=err)]
    raise ValueError(schedule)


class TestDeltaManifestCells:
    """Manifest writes are the chain's synchronous commit point: a
    faulted manifest pwrite/fsync raises at the checkpoint call, never
    advances the generation, and latches the torn flag — restore must
    refuse loudly rather than silently reassemble a stale generation,
    until a clean commit replaces the manifest."""

    @pytest.mark.parametrize("op", ["pwrite", "fsync"])
    @pytest.mark.parametrize("schedule", ["every", "prob"])
    def test_persistent_fault_cell(self, op, schedule):
        from repro.errors import ManifestError

        mem, backend, fs = delta_mount(manifest_rules(op, schedule))
        with fs:
            for _ in range(2):  # a retry fares no better
                with pytest.raises(OSError, match=f"injected-{op}"):
                    fs.delta_checkpoint("/ckpt", DATA)
                with pytest.raises(ManifestError, match="torn"):
                    fs.delta_restore("/ckpt")
            tracker = fs.kernel.delta("/ckpt")
            assert tracker.generation == -1  # the chain never advanced
            delta = fs.stats()["delta"]

        assert backend.faults_fired >= 2
        # only clean commits count
        assert delta["generations"] == 0
        assert delta["manifest_writes"] == 0

    @pytest.mark.parametrize("op", ["pwrite", "fsync"])
    def test_first_fault_then_recovery_cell(self, op):
        from repro.errors import ManifestError

        mem, backend, fs = delta_mount(manifest_rules(op, "every"))
        with fs:
            with pytest.raises(OSError, match=f"injected-{op}"):
                fs.delta_checkpoint("/ckpt", DATA)
            tracker = fs.kernel.delta("/ckpt")
            assert tracker.generation == -1 and tracker.torn
            with pytest.raises(ManifestError, match="torn"):
                fs.delta_restore("/ckpt")

            backend.rules.clear()  # the outage ends
            fs.delta_checkpoint("/ckpt", DATA)  # clean re-commit
            assert tracker.generation == 0 and not tracker.torn
            assert fs.delta_restore("/ckpt") == DATA
            delta = fs.stats()["delta"]

        assert backend.faults_fired == 1
        assert delta["generations"] == 1
        assert delta["manifest_writes"] == 1

    def test_torn_second_generation_never_loses_gen0_silently(self):
        """A tear while replacing the manifest mid-chain: the chain
        stays at generation 0, but restore refuses (the on-disk head is
        suspect) until the re-commit lands — then the full post-gen-1
        image reassembles."""
        from repro.errors import ManifestError

        mem, backend, fs = delta_mount([])
        with fs:
            image = bytearray(DATA)
            fs.delta_checkpoint("/ckpt", image)
            backend.add_rule(
                FaultRule(
                    op="pwrite", path="*.manifest", nth=1, every=True,
                    error=OSError("injected-tear"),
                )
            )
            image[CHUNK : 2 * CHUNK] = bytes(CHUNK)
            with pytest.raises(OSError, match="injected-tear"):
                fs.delta_checkpoint("/ckpt", image, dirty=[1])
            tracker = fs.kernel.delta("/ckpt")
            assert tracker.generation == 0
            with pytest.raises(ManifestError, match="torn"):
                fs.delta_restore("/ckpt")

            backend.rules.clear()
            fs.delta_checkpoint("/ckpt", image, dirty=[1])
            assert tracker.generation == 1
            assert fs.delta_restore("/ckpt") == bytes(image)

    def test_manifest_sync_off_skips_the_faulted_fsync(self):
        """``delta_manifest_sync=False`` is the knob's ablation arm: a
        manifest fsync rule can never fire because the fsync is never
        issued."""
        mem, backend, fs = delta_mount(
            manifest_rules("fsync", "every"), delta_manifest_sync=False
        )
        with fs:
            fs.delta_checkpoint("/ckpt", DATA)
            assert fs.delta_restore("/ckpt") == DATA
        assert backend.faults_fired == 0


class TestDeltaDataCells:
    """Generation-file data writes ride the normal asynchronous
    pipeline: an exhausted writeback fault surfaces at the checkpoint's
    internal fsync/close, the manifest write is never attempted (no
    torn latch), and the previous chain head stays fully restorable."""

    def test_gen0_data_fault_leaves_no_chain(self):
        from repro.errors import ManifestError

        rules = [
            FaultRule(
                op="pwrite", path="*.g0", nth=1, every=True,
                error=OSError("injected-data"),
            )
        ]
        mem, backend, fs = delta_mount(rules)
        with fs:
            with pytest.raises(BackendIOError, match="injected-data"):
                fs.delta_checkpoint("/ckpt", DATA)
            tracker = fs.kernel.delta("/ckpt")
            assert tracker.generation == -1 and not tracker.torn
            with pytest.raises(ManifestError, match="no committed"):
                fs.delta_restore("/ckpt")

    def test_gen1_data_fault_keeps_gen0_restorable(self):
        mem, backend, fs = delta_mount([])
        with fs:
            fs.delta_checkpoint("/ckpt", DATA)
            backend.add_rule(
                FaultRule(
                    op="pwrite", path="*.g1", nth=1, every=True,
                    error=OSError("injected-data"),
                )
            )
            mutated = bytearray(DATA)
            mutated[:CHUNK] = bytes(CHUNK)
            with pytest.raises(BackendIOError, match="injected-data"):
                fs.delta_checkpoint("/ckpt", mutated, dirty=[0])
            tracker = fs.kernel.delta("/ckpt")
            assert tracker.generation == 0 and not tracker.torn
            # the old chain head is intact and reassembles gen 0's bytes
            assert fs.delta_restore("/ckpt") == DATA

    def test_data_fault_retry_recovers_byte_identically(self):
        rules = [
            FaultRule(
                op="pwrite", path="*.g0", nth=1, error=OSError("injected-data")
            )
        ]
        mem, backend, fs = delta_mount(rules, attempts=4)
        with fs:
            fs.delta_checkpoint("/ckpt", DATA)
            assert fs.delta_restore("/ckpt") == DATA
            stats = fs.stats()
        assert backend.faults_fired == 1
        assert stats["resilience"]["chunks_retried"] == 1
        assert stats["resilience"]["errors_latched"] == 0


class TestSimDeltaManifestCells:
    """The same manifest cells on the timing plane, via the shared
    FaultSchedule — plus cross-plane parity of the delta section for
    the full tear-refuse-recover sequence."""

    def _run(self, rules, proc_body):
        from repro.sim import SharedBandwidth, Simulator
        from repro.simcrfs import SimCRFS
        from repro.simio.faulty import FaultySimFilesystem
        from repro.simio.nullfs import NullSimFilesystem
        from repro.simio.params import DEFAULT_HW
        from repro.util.rng import rng_for

        sim = Simulator()
        hw = DEFAULT_HW
        membus = SharedBandwidth(sim, hw.membus_bandwidth)
        backend = FaultySimFilesystem(
            NullSimFilesystem(sim, hw, rng_for(1, "fault-delta")), rules
        )
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            retry_attempts=1, **FAST,
        )
        crfs = SimCRFS(sim, hw, cfg, backend, membus)
        sim.run_until_complete([sim.spawn(proc_body(crfs))])
        crfs.shutdown()
        return backend, crfs.stats()

    @pytest.mark.parametrize("op", ["pwrite", "fsync"])
    def test_sim_manifest_fault_latches_torn_and_refuses_restore(self, op):
        from repro.errors import ManifestError

        outcomes = {}

        def proc(crfs):
            tracker = crfs.kernel.delta("/ckpt")
            try:
                yield from crfs.delta_checkpoint("/ckpt", len(DATA))
            except OSError as exc:
                outcomes["checkpoint"] = str(exc)
            outcomes["generation"] = tracker.generation
            outcomes["torn"] = tracker.torn
            try:
                yield from crfs.delta_restore("/ckpt")
            except ManifestError as exc:
                outcomes["restore"] = str(exc)

        backend, stats = self._run(manifest_rules(op, "every"), proc)
        assert outcomes["checkpoint"] == f"injected-{op}"
        assert outcomes["generation"] == -1 and outcomes["torn"]
        assert "torn" in outcomes["restore"]
        assert backend.faults_fired >= 1
        assert stats["delta"]["generations"] == 0

    def test_tear_refuse_recover_parity_with_functional_plane(self):
        """Drive the identical gen0-commit / gen1-tear / refused
        restore / clean re-commit / chain restore sequence on both
        planes: the delta sections and the workload-determined write
        counters must be bit-identical."""
        from repro.errors import ManifestError

        tear = OSError("injected-tear")

        # functional plane
        mem, fbackend, fs = delta_mount([])
        with fs:
            image = bytearray(DATA)
            fs.delta_checkpoint("/ckpt", image)
            fbackend.add_rule(
                FaultRule(op="pwrite", path="*.manifest", nth=1,
                          every=True, error=tear)
            )
            image[CHUNK : 2 * CHUNK] = bytes(CHUNK)
            with pytest.raises(OSError, match="injected-tear"):
                fs.delta_checkpoint("/ckpt", image, dirty=[1])
            with pytest.raises(ManifestError, match="torn"):
                fs.delta_restore("/ckpt")
            fbackend.rules.clear()
            fs.delta_checkpoint("/ckpt", image, dirty=[1])
            assert fs.delta_restore("/ckpt") == bytes(image)
            func = fs.stats()

        # timing plane, same sequence
        def proc(crfs):
            backend = crfs.backend
            yield from crfs.delta_checkpoint("/ckpt", len(DATA))
            backend.add_rule(
                FaultRule(op="pwrite", path="*.manifest", nth=1,
                          every=True, error=tear)
            )
            try:
                yield from crfs.delta_checkpoint("/ckpt", len(DATA), dirty=[1])
            except OSError:
                pass
            try:
                yield from crfs.delta_restore("/ckpt")
            except ManifestError:
                pass
            backend.rules.clear()
            yield from crfs.delta_checkpoint("/ckpt", len(DATA), dirty=[1])
            yield from crfs.delta_restore("/ckpt")

        _, timing = self._run([], proc)

        assert func["delta"] == timing["delta"]
        for key in ("writes", "bytes_in", "chunks_written", "bytes_out", "seals"):
            assert func[key] == timing[key], key
        assert func["delta"]["generations"] == 2
        assert func["delta"]["restores"] == 1
