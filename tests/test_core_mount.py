"""Integration tests for the CRFS mount — the paper's Section IV semantics
end-to-end on the functional plane."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    FaultRule,
    FaultyBackend,
    InstrumentedBackend,
    MemBackend,
    NullBackend,
)
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import BackendIOError, FileStateError, MountError
from repro.units import KiB


def small_config(**kw):
    defaults = dict(chunk_size=4 * KiB, pool_size=32 * KiB, io_threads=2)
    defaults.update(kw)
    return CRFSConfig(**defaults)


@pytest.fixture
def backend():
    return MemBackend()


@pytest.fixture
def fs(backend):
    f = CRFS(backend, small_config()).mount()
    yield f
    f.unmount()


class TestLifecycle:
    def test_mount_unmount(self, backend):
        fs = CRFS(backend, small_config())
        assert not fs.mounted
        fs.mount()
        assert fs.mounted
        fs.unmount()
        assert not fs.mounted

    def test_double_mount_rejected(self, fs):
        with pytest.raises(MountError):
            fs.mount()

    def test_ops_require_mount(self, backend):
        fs = CRFS(backend, small_config())
        with pytest.raises(MountError):
            fs.open("/f")
        with pytest.raises(MountError):
            fs.mkdir("/d")

    def test_context_manager(self, backend):
        with CRFS(backend, small_config()) as fs:
            with fs.open("/f") as f:
                f.write(b"data")
        assert backend.read_file("/f") == b"data"

    def test_unmount_idempotent(self, backend):
        fs = CRFS(backend, small_config()).mount()
        fs.unmount()
        fs.unmount()

    def test_unmount_flushes_open_files(self, backend):
        fs = CRFS(backend, small_config()).mount()
        f = fs.open("/f")
        f.write(b"buffered but never closed")
        fs.unmount()
        assert backend.read_file("/f") == b"buffered but never closed"


class TestWriteReadRoundtrip:
    def test_simple(self, fs, backend):
        with fs.open("/ckpt") as f:
            f.write(b"hello crfs")
        assert backend.read_file("/ckpt") == b"hello crfs"

    def test_write_smaller_than_chunk_held_until_close(self, fs, backend):
        f = fs.open("/f")
        f.write(b"tiny")
        # data may not be on the backend yet (aggregation is the point)
        f.close()
        assert backend.read_file("/f") == b"tiny"

    def test_write_spanning_many_chunks(self, fs, backend):
        data = bytes(range(256)) * 256  # 64 KiB, 16 chunks of 4 KiB
        with fs.open("/big") as f:
            f.write(data)
        assert backend.read_file("/big") == data

    def test_many_small_writes_coalesce(self, fs, backend):
        inner = backend
        with fs.open("/f") as f:
            for i in range(1000):
                f.write(bytes([i % 256]) * 16)  # 16 KB total... 16*1000=16000
        expected = b"".join(bytes([i % 256]) * 16 for i in range(1000))
        assert backend.read_file("/f") == expected
        # Aggregation: 1000 writes became few backend pwrites.
        assert inner.total_pwrites <= 5

    def test_positional_writes_with_gap(self, fs, backend):
        with fs.open("/f") as f:
            f.pwrite(b"AAAA", 0)
            f.pwrite(b"BBBB", 100)
        data = backend.read_file("/f")
        assert data[0:4] == b"AAAA"
        assert data[100:104] == b"BBBB"
        assert data[4:100] == b"\x00" * 96

    def test_rewind_overwrite(self, fs, backend):
        with fs.open("/f") as f:
            f.pwrite(b"xxxxxxxx", 0)
            f.pwrite(b"YY", 2)
        assert backend.read_file("/f") == b"xxYYxxxx"

    def test_read_after_fsync_sees_data(self, fs):
        f = fs.open("/f")
        f.write(b"durable")
        f.fsync()
        assert f.pread(7, 0) == b"durable"
        f.close()

    def test_cursor_io(self, fs):
        f = fs.open("/f")
        f.write(b"0123456789")
        f.fsync()
        f.seek(0)
        assert f.read(4) == b"0123"
        assert f.tell() == 4
        f.seek(-2, 2)
        assert f.read() == b"89"
        f.close()

    def test_size_includes_buffered(self, fs):
        f = fs.open("/f")
        f.write(b"x" * 100)
        assert f.size() == 100  # still buffered, not yet on backend
        f.close()

    def test_empty_file(self, fs, backend):
        with fs.open("/empty") as f:
            pass
        assert backend.read_file("/empty") == b""

    def test_write_exactly_chunk_size(self, fs, backend):
        data = b"z" * (4 * KiB)
        with fs.open("/f") as f:
            f.write(data)
        assert backend.read_file("/f") == data


class TestCloseAndDrainSemantics:
    def test_close_blocks_until_chunks_written(self, backend):
        # Paper IV-C: close waits for complete_chunk_count == write_chunk_count.
        fs = CRFS(backend, small_config()).mount()
        f = fs.open("/f")
        f.write(b"q" * (20 * KiB))  # 5 chunks
        f.close()
        assert backend.read_file("/f") == b"q" * (20 * KiB)
        fs.unmount()

    def test_close_idempotent(self, fs):
        f = fs.open("/f")
        f.write(b"x")
        f.close()
        f.close()

    def test_use_after_close_rejected(self, fs):
        f = fs.open("/f")
        f.close()
        with pytest.raises(FileStateError):
            f.write(b"x")
        with pytest.raises(FileStateError):
            f.read(1)

    def test_refcounted_double_open(self, fs, backend):
        f1 = fs.open("/shared")
        f2 = fs.open("/shared")
        f1.write(b"one")
        f1.close()
        # entry still alive through f2
        f2.pwrite(b"two", 3)
        f2.close()
        assert backend.read_file("/shared") == b"onetwo"

    def test_flush_is_async(self, fs):
        f = fs.open("/f")
        f.write(b"x")
        f.flush()  # seals, does not wait
        f.close()


class TestFsync:
    def test_fsync_pushes_to_backend(self, fs, backend):
        f = fs.open("/f")
        f.write(b"must be durable")
        f.fsync()
        assert backend.read_file("/f") == b"must be durable"
        assert backend.total_fsyncs == 1
        f.close()

    def test_fsync_then_more_writes(self, fs, backend):
        f = fs.open("/f")
        f.write(b"part1")
        f.fsync()
        f.write(b"part2")
        f.close()
        assert backend.read_file("/f") == b"part1part2"


class TestNamespacePassthrough:
    def test_mkdir_listdir_rmdir(self, fs):
        fs.mkdir("/d")
        assert fs.listdir("/") == ["d"]
        assert fs.stat("/d").is_dir
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_unlink(self, fs):
        with fs.open("/f") as f:
            f.write(b"x")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_open_file_refused(self, fs):
        f = fs.open("/f")
        with pytest.raises(FileStateError):
            fs.unlink("/f")
        f.close()

    def test_rename_and_truncate(self, fs):
        with fs.open("/a") as f:
            f.write(b"123456")
        fs.rename("/a", "/b")
        fs.truncate("/b", 3)
        assert fs.stat("/b").size == 3

    def test_rename_open_file_refused(self, fs):
        f = fs.open("/f")
        with pytest.raises(FileStateError):
            fs.rename("/f", "/g")
        f.close()


class TestErrorPaths:
    def test_async_write_error_surfaces_at_close(self):
        backend = FaultyBackend(
            MemBackend(), [FaultRule(op="pwrite", nth=1, every=True, error=OSError("EIO"))]
        )
        fs = CRFS(backend, small_config()).mount()
        f = fs.open("/f")
        f.write(b"x" * (8 * KiB))  # 2 chunks, both will fail
        with pytest.raises(BackendIOError):
            f.close()
        fs.iopool.shutdown()

    def test_async_write_error_surfaces_at_fsync(self):
        backend = FaultyBackend(
            MemBackend(), [FaultRule(op="pwrite", nth=1, error=OSError("EIO"))]
        )
        fs = CRFS(backend, small_config()).mount()
        f = fs.open("/f")
        f.write(b"x" * (4 * KiB))  # exactly 1 chunk -> queued -> fails
        with pytest.raises(BackendIOError):
            f.fsync()
        fs.iopool.shutdown()

    def test_open_missing_no_create(self, fs):
        from repro.errors import FileNotFound

        with pytest.raises(FileNotFound):
            fs.open("/missing", create=False)


class TestConcurrency:
    def test_parallel_writers_distinct_files(self, backend):
        # The paper's workload: N processes, each checkpointing to its own
        # file, concurrently.
        fs = CRFS(backend, small_config(pool_size=64 * KiB, io_threads=4)).mount()
        nwriters, nwrites, wsize = 8, 200, 512
        errors = []

        def writer(i):
            try:
                with fs.open(f"/ckpt/rank{i}.img") as f:
                    for j in range(nwrites):
                        f.write(bytes([i]) * wsize)
            except Exception as e:  # noqa: BLE001
                errors.append(e)

        fs.mkdir("/ckpt")
        threads = [threading.Thread(target=writer, args=(i,)) for i in range(nwriters)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(nwriters):
            assert backend.read_file(f"/ckpt/rank{i}.img") == bytes([i]) * (
                nwrites * wsize
            )
        fs.unmount()

    def test_pool_backpressure_does_not_deadlock(self, backend):
        # Pool of exactly 1 chunk: every fill must wait for writeback.
        fs = CRFS(
            backend, small_config(chunk_size=4 * KiB, pool_size=4 * KiB, io_threads=1)
        ).mount()
        with fs.open("/f") as f:
            f.write(b"d" * (64 * KiB))
        assert backend.read_file("/f") == b"d" * (64 * KiB)
        fs.unmount()

    def test_stats_after_workload(self, backend):
        fs = CRFS(backend, small_config()).mount()
        with fs.open("/f") as f:
            f.write(b"x" * (10 * KiB))
        stats = fs.stats()
        assert stats["writes"] == 1
        assert stats["bytes_in"] == 10 * KiB
        assert stats["bytes_out"] == 10 * KiB
        assert stats["seals"]["full"] == 2
        assert stats["seals"]["flush"] == 1
        assert stats["open_files"] == 0
        fs.unmount()


class TestAggregationEffect:
    def test_backend_sees_chunk_sized_writes(self):
        inner = MemBackend()
        instrumented = InstrumentedBackend(inner)
        fs = CRFS(instrumented, small_config()).mount()
        with fs.open("/f") as f:
            for _ in range(64):
                f.write(b"a" * 256)  # 16 KiB total, 4 chunks of 4 KiB
        sizes = instrumented.write_sizes()
        assert sizes == [4 * KiB] * 4
        fs.unmount()

    def test_null_backend_fig5_rig(self):
        # Figure 5's method: chunks discarded by the null backend.
        null = NullBackend()
        fs = CRFS(null, small_config()).mount()
        with fs.open("/f") as f:
            f.write(b"x" * (40 * KiB))
        assert null.total_bytes == 40 * KiB
        fs.unmount()


class TestPropertyRoundtrip:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30000),
                st.binary(min_size=0, max_size=9000),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_write_pattern_matches_reference(self, writes):
        """CRFS-through-aggregation equals a plain positional-write model,
        for any pattern of offsets/sizes (gaps, overlaps, rewinds)."""
        backend = MemBackend()
        fs = CRFS(backend, small_config()).mount()
        reference = bytearray()
        with fs.open("/f") as f:
            for offset, data in writes:
                f.pwrite(data, offset)
                if not data:
                    continue  # POSIX: zero-length writes do not extend files
                end = offset + len(data)
                if end > len(reference):
                    reference.extend(b"\x00" * (end - len(reference)))
                reference[offset:end] = data
        assert backend.read_file("/f") == bytes(reference)
        fs.unmount()
