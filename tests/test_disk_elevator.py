"""Tests for the C-LOOK elevator disk scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.simio.disk import RotationalDisk
from repro.simio.params import DEFAULT_HW


def make(scheduler="elevator"):
    sim = Simulator()
    return sim, RotationalDisk(sim, DEFAULT_HW, name="d", scheduler=scheduler)


def submit_batch(sim, disk, blocks, nbytes=4096):
    """Submit all requests at t=0, return completion order of blocks."""
    order = []

    def proc(block):
        yield disk.io(block, nbytes, "W", f"s{block}")
        order.append(block)

    for b in blocks:
        sim.spawn(proc(b))
    sim.run()
    return order


class TestElevatorOrdering:
    def test_sweeps_ascending(self):
        sim, disk = make()
        # first request (block 50) starts service immediately; the rest
        # queue and are served in ascending block order
        order = submit_batch(sim, disk, [50, 400, 100, 300, 200])
        assert order == [50, 100, 200, 300, 400]

    def test_clook_wraps_to_lowest(self):
        sim, disk = make()
        # head ends past 500 after first; 100 < head -> served after the
        # ascending pass wraps
        order = submit_batch(sim, disk, [500, 100, 600])
        assert order == [500, 600, 100]

    def test_fifo_preserves_arrival_order(self):
        sim, disk = make("fifo")
        order = submit_batch(sim, disk, [50, 400, 100, 300, 200])
        assert order == [50, 400, 100, 300, 200]

    def test_elevator_reduces_seek_cost(self):
        blocks = [0, 100000, 10, 100010, 20, 100020]
        sim_f, disk_f = make("fifo")
        submit_batch(sim_f, disk_f, blocks)
        t_fifo = sim_f.now
        sim_e, disk_e = make("elevator")
        submit_batch(sim_e, disk_e, blocks)
        t_elev = sim_e.now
        assert t_elev < t_fifo
        assert disk_e.busy_time < disk_f.busy_time

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            RotationalDisk(Simulator(), DEFAULT_HW, scheduler="noop")

    def test_stats_consistent(self):
        sim, disk = make()
        submit_batch(sim, disk, [10, 30, 20])
        assert disk.total_ios == 3
        assert disk.seeks + disk.sequential_ios == 3
        assert len(disk.trace) == 3

    def test_queue_stats(self):
        sim, disk = make()
        submit_batch(sim, disk, [1000, 2000, 3000, 4000])
        assert disk.max_queue >= 3
        assert disk.total_wait > 0
