"""Tests for the checkpoint substrate: size distribution, images, BLCR
writer, restart."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkpoint import (
    BLCRWriter,
    ProcessImage,
    TABLE1_BUCKETS,
    WriteSizeDistribution,
    restore_image,
    verify_roundtrip,
)
from repro.checkpoint.restart import RestartError
from repro.units import KiB, MB
from repro.util.rng import rng_for


class TestTable1Buckets:
    def test_fractions_sum_to_one(self):
        assert sum(b.write_frac for b in TABLE1_BUCKETS) == pytest.approx(1.0, abs=0.01)
        assert sum(b.data_frac for b in TABLE1_BUCKETS) == pytest.approx(1.0, abs=0.01)

    def test_buckets_are_contiguous(self):
        for prev, cur in zip(TABLE1_BUCKETS, TABLE1_BUCKETS[1:]):
            assert prev.hi == cur.lo

    def test_labels(self):
        assert TABLE1_BUCKETS[0].label == "0-64"
        assert TABLE1_BUCKETS[-1].label == "> 1M"
        assert TABLE1_BUCKETS[4].label == "4K-16K"


class TestWriteSizeDistribution:
    def setup_method(self):
        self.dist = WriteSizeDistribution()

    def test_plan_sums_exactly(self):
        for mb in (1, 3.9, 7.1, 23, 106.7):
            size = int(mb * MB)
            stream = self.dist.plan(size, rng_for(1, f"t/{mb}"))
            assert sum(stream) == size

    def test_count_scaling_anchored(self):
        # ~975 writes for the 23 MB reference image.
        assert 950 <= self.dist.write_count(23 * MB) <= 1000

    def test_count_scaling_sublinear(self):
        n_small = self.dist.write_count(7 * MB)
        n_big = self.dist.write_count(107 * MB)
        assert n_big > n_small
        assert n_big / n_small < 107 / 7  # sublinear

    def test_reference_shares_match_table1(self):
        desc = self.dist.describe(23 * MB, rng_for(1, "ref"))
        assert desc["0-64"]["count_frac"] == pytest.approx(0.5086, abs=0.02)
        assert desc["4K-16K"]["count_frac"] == pytest.approx(0.3649, abs=0.02)
        assert desc["4K-16K"]["data_frac"] == pytest.approx(0.1136, abs=0.03)
        assert desc["> 1M"]["data_frac"] == pytest.approx(0.6121, abs=0.05)

    def test_sizes_within_buckets_mostly(self):
        stream = self.dist.plan(23 * MB, rng_for(1, "b"))
        # no zero/negative sizes; every size positive
        assert all(s > 0 for s in stream)

    def test_empty_image(self):
        assert self.dist.plan(0, rng_for(1, "z")) == []

    def test_tiny_image_still_sums(self):
        for size in (1, 100, 5000, 70_000):
            stream = self.dist.plan(size, rng_for(1, f"tiny{size}"))
            assert sum(stream) == size

    def test_deterministic_given_rng(self):
        a = self.dist.plan(5 * MB, rng_for(9, "x"))
        b = self.dist.plan(5 * MB, rng_for(9, "x"))
        assert a == b

    def test_bad_fractions_rejected(self):
        from repro.checkpoint.sizedist import BucketSpec

        with pytest.raises(ValueError):
            WriteSizeDistribution(buckets=[BucketSpec(0, 64, 0.5, 0.5)])

    @given(mb=st.floats(min_value=0.1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_plan_sums_property(self, mb):
        size = int(mb * MB)
        stream = self.dist.plan(size, rng_for(3, f"p/{mb}"))
        assert sum(stream) == size
        assert all(s > 0 for s in stream)


class TestProcessImage:
    def test_synthesize_size(self):
        img = ProcessImage.synthesize(rank=0, image_size=1_000_000, seed=1)
        assert img.total_bytes == 1_000_000

    def test_deterministic(self):
        a = ProcessImage.synthesize(rank=2, image_size=100_000, seed=5)
        b = ProcessImage.synthesize(rank=2, image_size=100_000, seed=5)
        assert a == b

    def test_rank_changes_content(self):
        a = ProcessImage.synthesize(rank=1, image_size=100_000, seed=5)
        b = ProcessImage.synthesize(rank=2, image_size=100_000, seed=5)
        assert a != b

    def test_has_expected_regions(self):
        img = ProcessImage.synthesize(rank=0, image_size=10_000_000, seed=1)
        names = [r.name for r in img.regions]
        assert "heap" in names
        assert "comm-buffers" in names

    def test_region_addresses_disjoint(self):
        img = ProcessImage.synthesize(rank=0, image_size=1_000_000, seed=1)
        regions = sorted(img.regions, key=lambda r: r.start)
        for a, b in zip(regions, regions[1:]):
            assert a.start + a.size <= b.start

    def test_small_image(self):
        img = ProcessImage.synthesize(rank=0, image_size=100, seed=1)
        assert img.total_bytes == 100


class TestBLCRRoundtrip:
    def test_roundtrip_exact(self):
        img = ProcessImage.synthesize(rank=7, image_size=3_000_000, seed=11)
        buf = io.BytesIO()
        stats = BLCRWriter().checkpoint(img, buf)
        assert stats.total_bytes == buf.getbuffer().nbytes
        buf.seek(0)
        restored = restore_image(buf)
        verify_roundtrip(img, restored)

    def test_write_pattern_has_small_and_large(self):
        img = ProcessImage.synthesize(rank=0, image_size=5_000_000, seed=3)
        buf = io.BytesIO()
        stats = BLCRWriter().checkpoint(img, buf)
        sizes = stats.write_sizes
        assert any(s <= 64 for s in sizes)  # metadata records
        assert any(s >= 256 * KiB for s in sizes)  # region data
        assert stats.regions == len(img.regions)

    def test_data_write_max_respected(self):
        img = ProcessImage.synthesize(rank=0, image_size=5_000_000, seed=3)
        buf = io.BytesIO()
        stats = BLCRWriter(data_write_max=64 * KiB).checkpoint(img, buf)
        assert max(stats.write_sizes) <= 64 * KiB + 512  # headers are small
        buf.seek(0)
        verify_roundtrip(img, restore_image(buf))

    def test_tiny_write_max_rejected(self):
        with pytest.raises(ValueError):
            BLCRWriter(data_write_max=100)

    def test_truncated_file_raises(self):
        img = ProcessImage.synthesize(rank=0, image_size=100_000, seed=3)
        buf = io.BytesIO()
        BLCRWriter().checkpoint(img, buf)
        data = buf.getvalue()[:-10]
        with pytest.raises(RestartError, match="truncated"):
            restore_image(io.BytesIO(data))

    def test_bad_magic_raises(self):
        with pytest.raises(RestartError, match="magic"):
            restore_image(io.BytesIO(b"NOPE" + bytes(100)))

    def test_verify_detects_corruption(self):
        img = ProcessImage.synthesize(rank=0, image_size=50_000, seed=3)
        buf = io.BytesIO()
        BLCRWriter().checkpoint(img, buf)
        raw = bytearray(buf.getvalue())
        raw[-1] ^= 0xFF  # flip a data byte
        restored = restore_image(io.BytesIO(bytes(raw)))
        with pytest.raises(RestartError, match="diverged"):
            verify_roundtrip(img, restored)

    @given(size=st.integers(min_value=1, max_value=300_000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, size):
        img = ProcessImage.synthesize(rank=1, image_size=size, seed=17)
        buf = io.BytesIO()
        BLCRWriter().checkpoint(img, buf)
        buf.seek(0)
        verify_roundtrip(img, restore_image(buf))


class TestCheckpointThroughCRFS:
    """The paper's end-to-end property: checkpoint through CRFS, restart
    directly from the backend without CRFS."""

    def test_checkpoint_crfs_restart_from_backend(self):
        from repro.backends import MemBackend
        from repro.config import CRFSConfig
        from repro.core import CRFS
        from repro.units import KiB

        backend = MemBackend()
        img = ProcessImage.synthesize(rank=4, image_size=2_000_000, seed=23)
        cfg = CRFSConfig(chunk_size=64 * KiB, pool_size=512 * KiB, io_threads=2)
        with CRFS(backend, cfg) as fs:
            fs.mkdir("/ckpt")
            with fs.open("/ckpt/rank4.img") as f:
                BLCRWriter().checkpoint(img, f)
        # restart WITHOUT CRFS: read the backend file directly
        data = backend.read_file("/ckpt/rank4.img")
        restored = restore_image(io.BytesIO(data))
        verify_roundtrip(img, restored)

    def test_many_ranks_parallel(self):
        import threading

        from repro.backends import MemBackend
        from repro.config import CRFSConfig
        from repro.core import CRFS
        from repro.units import KiB

        backend = MemBackend()
        cfg = CRFSConfig(chunk_size=64 * KiB, pool_size=1024 * KiB, io_threads=4)
        images = {
            r: ProcessImage.synthesize(rank=r, image_size=300_000 + r * 1000, seed=29)
            for r in range(6)
        }
        with CRFS(backend, cfg) as fs:
            fs.mkdir("/ckpt")

            def dump(rank):
                with fs.open(f"/ckpt/rank{rank}.img") as f:
                    BLCRWriter().checkpoint(images[rank], f)

            threads = [threading.Thread(target=dump, args=(r,)) for r in images]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for rank, img in images.items():
            data = backend.read_file(f"/ckpt/rank{rank}.img")
            verify_roundtrip(img, restore_image(io.BytesIO(data)))

    def test_restart_through_readahead_mount(self):
        """Checkpoint through CRFS, restart through a mount with the
        readahead cache on: the parser's stream of small header/region
        reads is served out of prefetched chunks, byte-identical to the
        raw-backend restart."""
        from repro.backends import MemBackend
        from repro.checkpoint import restore_via_mount
        from repro.config import CRFSConfig
        from repro.core import CRFS
        from repro.units import KiB

        backend = MemBackend()
        img = ProcessImage.synthesize(rank=7, image_size=2_000_000, seed=31)
        cfg = CRFSConfig(
            chunk_size=64 * KiB, pool_size=512 * KiB, io_threads=2,
            read_cache_chunks=4, readahead_chunks=2,
        )
        with CRFS(backend, cfg) as fs:
            fs.mkdir("/ckpt")
            with fs.open("/ckpt/rank7.img") as f:
                BLCRWriter().checkpoint(img, f)
            restored = restore_via_mount(fs, "/ckpt/rank7.img")
            stats = fs.stats()
        verify_roundtrip(img, restored)
        # the restart actually ran through the cache, not the passthrough
        read = stats["read"]
        assert read["bytes_read"] > 0
        assert read["hits"] > 0
        assert read["prefetched"] > 0
        # and matches the no-mount restart bit-for-bit
        data = backend.read_file("/ckpt/rank7.img")
        verify_roundtrip(restored, restore_image(io.BytesIO(data)))

    def test_restart_via_mount_passthrough_default(self):
        """restore_via_mount on a default (cache-off) mount is the
        paper's passthrough restart: same image, zero cache traffic."""
        from repro.backends import MemBackend
        from repro.checkpoint import restore_via_mount
        from repro.config import CRFSConfig
        from repro.core import CRFS
        from repro.units import KiB

        backend = MemBackend()
        img = ProcessImage.synthesize(rank=2, image_size=600_000, seed=37)
        cfg = CRFSConfig(chunk_size=64 * KiB, pool_size=512 * KiB, io_threads=2)
        with CRFS(backend, cfg) as fs:
            with fs.open("/rank2.img") as f:
                BLCRWriter().checkpoint(img, f)
            restored = restore_via_mount(fs, "/rank2.img")
            stats = fs.stats()
        verify_roundtrip(img, restored)
        assert stats["read"]["hits"] == stats["read"]["misses"] == 0
        assert stats["read"]["prefetched"] == 0
