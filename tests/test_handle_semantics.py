"""Edge-case tests for CRFSFile handle semantics and mount namespace ops."""

import pytest

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import FileStateError
from repro.units import KiB


@pytest.fixture
def fs():
    f = CRFS(
        MemBackend(), CRFSConfig(chunk_size=4 * KiB, pool_size=32 * KiB, io_threads=2)
    ).mount()
    yield f
    f.unmount()


class TestSeekWhence:
    def test_seek_set(self, fs):
        f = fs.open("/f")
        f.write(b"0123456789")
        assert f.seek(3) == 3
        assert f.tell() == 3
        f.close()

    def test_seek_cur(self, fs):
        f = fs.open("/f")
        f.write(b"0123456789")
        f.seek(2)
        assert f.seek(3, 1) == 5
        f.close()

    def test_seek_end(self, fs):
        f = fs.open("/f")
        f.write(b"0123456789")
        assert f.seek(-4, 2) == 6
        f.close()

    def test_seek_negative_rejected(self, fs):
        f = fs.open("/f")
        with pytest.raises(ValueError):
            f.seek(-1)
        f.close()

    def test_bad_whence(self, fs):
        f = fs.open("/f")
        with pytest.raises(ValueError):
            f.seek(0, 3)
        f.close()

    def test_seek_past_end_then_write_sparse(self, fs):
        f = fs.open("/f")
        f.seek(100)
        f.write(b"tail")
        f.fsync()
        assert f.pread(4, 100) == b"tail"
        assert f.pread(4, 0) == b"\x00" * 4
        f.close()


class TestReadSemantics:
    def test_read_all_default(self, fs):
        f = fs.open("/f")
        f.write(b"abcdef")
        f.fsync()
        f.seek(0)
        assert f.read() == b"abcdef"
        f.close()

    def test_read_zero(self, fs):
        f = fs.open("/f")
        f.write(b"abc")
        f.fsync()
        f.seek(0)
        assert f.read(0) == b""
        f.close()

    def test_read_moves_cursor(self, fs):
        f = fs.open("/f")
        f.write(b"abcdef")
        f.fsync()
        f.seek(0)
        f.read(2)
        assert f.read(2) == b"cd"
        f.close()

    def test_read_past_eof_empty(self, fs):
        f = fs.open("/f")
        f.write(b"abc")
        f.fsync()
        f.seek(100)
        assert f.read(10) == b""
        f.close()

    def test_writable_readable_seekable(self, fs):
        f = fs.open("/f")
        assert f.writable() and f.readable() and f.seekable()
        f.close()
        assert not f.writable() and not f.readable()


class TestHandleLifecycle:
    def test_double_context_exit_safe(self, fs):
        f = fs.open("/f")
        with f:
            f.write(b"x")
        f.close()  # idempotent

    def test_path_property(self, fs):
        f = fs.open("/dir/../name")
        assert f.path == "/name"
        f.close()

    def test_repr_shows_state(self, fs):
        f = fs.open("/f")
        assert "/f" in repr(f)
        f.close()
        assert "closed" in repr(f)

    def test_flush_then_close(self, fs):
        f = fs.open("/f")
        f.write(b"x" * 100)
        f.flush()
        f.flush()  # no partial left, no-op
        f.close()

    def test_pread_does_not_move_cursor(self, fs):
        f = fs.open("/f")
        f.write(b"abcdef")
        f.fsync()
        pos = f.tell()
        f.pread(3, 0)
        assert f.tell() == pos
        f.close()


class TestMountNamespace:
    def test_listdir_reflects_crfs_writes(self, fs):
        fs.mkdir("/d")
        with fs.open("/d/a") as f:
            f.write(b"1")
        with fs.open("/d/b") as f:
            f.write(b"2")
        assert fs.listdir("/d") == ["a", "b"]

    def test_stat_size_after_close(self, fs):
        with fs.open("/f") as f:
            f.write(b"x" * 12345)
        assert fs.stat("/f").size == 12345

    def test_exists_lifecycle(self, fs):
        assert not fs.exists("/f")
        f = fs.open("/f")
        f.close()
        assert fs.exists("/f")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_truncate_open_file_refused(self, fs):
        f = fs.open("/f")
        with pytest.raises(FileStateError):
            fs.truncate("/f", 0)
        f.close()

    def test_size_tracks_largest_view(self, fs):
        f = fs.open("/f")
        f.write(b"x" * 5000)  # buffered: 1 chunk sealed + partial
        assert f.size() == 5000
        f.fsync()
        assert f.size() == 5000
        f.close()
