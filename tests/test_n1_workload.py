"""N-1 (shared-file) checkpointing through CRFS.

The paper positions CRFS against PLFS (Related Work): PLFS handles only
N-1 workloads (all ranks write one shared file), while MPI system-level
checkpointing is N-N (one file per rank) — CRFS's case.  CRFS itself is
agnostic: ranks writing *disjoint regions of one shared file* aggregate
per-open-handle... no — per file entry, shared.  These tests pin down
the semantics: concurrent disjoint-region writers to one CRFS file are
correct, so CRFS covers the N-1 pattern too.
"""

import threading


from repro.backends import InstrumentedBackend, MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB


def cfg():
    return CRFSConfig(chunk_size=16 * KiB, pool_size=256 * KiB, io_threads=4)


class TestN1SharedFile:
    def test_disjoint_regions_correct(self):
        backend = MemBackend()
        nranks, region = 8, 64 * KiB
        with CRFS(backend, cfg()) as fs:
            def rank_writer(r):
                f = fs.open("/shared.ckpt")
                base = r * region
                for j in range(0, region, 4 * KiB):
                    f.pwrite(bytes([r]) * (4 * KiB), base + j)
                f.close()

            threads = [threading.Thread(target=rank_writer, args=(r,))
                       for r in range(nranks)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        data = backend.read_file("/shared.ckpt")
        assert len(data) == nranks * region
        for r in range(nranks):
            assert data[r * region : (r + 1) * region] == bytes([r]) * region

    def test_shared_entry_is_single_pipeline(self):
        # all handles share one file entry (the paper's hash table)
        with CRFS(MemBackend(), cfg()) as fs:
            handles = [fs.open("/shared") for _ in range(4)]
            assert len({id(h._entry) for h in handles}) == 1
            assert handles[0]._entry.refcount == 4
            for h in handles:
                h.close()

    def test_interleaved_ranks_still_aggregate(self):
        # even with N ranks interleaving, backend writes stay chunk-sized
        backend = InstrumentedBackend(MemBackend())
        with CRFS(backend, cfg()) as fs:
            f1 = fs.open("/shared")
            f2 = fs.open("/shared")
            # rank 0 and rank 1 strictly alternate 4 KiB strides of their
            # own halves — worst-case interleave for a shared entry
            for j in range(16):
                f1.pwrite(b"a" * (4 * KiB), j * 4 * KiB)
                f2.pwrite(b"b" * (4 * KiB), 256 * KiB + j * 4 * KiB)
            f1.close()
            f2.close()
        sizes = backend.write_sizes()
        # alternation forces GAP seals: writes are 4 KiB each, so every
        # backend write is one stride — aggregation degrades to
        # write-through-ish behaviour but correctness holds
        assert sum(sizes) == 32 * 4 * KiB

    def test_n1_vs_nn_same_bytes(self):
        # N-N: per-rank files; N-1: one shared file with rank offsets —
        # identical data lands on the backend either way.
        region = 32 * KiB
        nranks = 4

        def run_nn():
            backend = MemBackend()
            with CRFS(backend, cfg()) as fs:
                for r in range(nranks):
                    with fs.open(f"/rank{r}") as f:
                        f.write(bytes([r]) * region)
            return b"".join(backend.read_file(f"/rank{r}") for r in range(nranks))

        def run_n1():
            backend = MemBackend()
            with CRFS(backend, cfg()) as fs:
                with fs.open("/shared") as f:
                    for r in range(nranks):
                        f.pwrite(bytes([r]) * region, r * region)
            return backend.read_file("/shared")

        assert run_nn() == run_n1()
