"""Tests for text-table rendering."""

import pytest

from repro.util.tables import TextTable


class TestTextTable:
    def test_basic_render(self):
        t = TextTable(["fs", "time"])
        t.add_row(["ext3", 1.9])
        out = t.render()
        lines = out.splitlines()
        assert "fs" in lines[0] and "time" in lines[0]
        assert set(lines[1].replace(" ", "")) == {"-"}
        assert "ext3" in lines[2] and "1.90" in lines[2]

    def test_title(self):
        t = TextTable(["a"], title="Table I")
        t.add_row([1])
        assert t.render().splitlines()[0] == "Table I"

    def test_column_count_enforced(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = TextTable(["x"])
        t.add_row([0.0])
        t.add_row([12345.6])
        t.add_row([0.001])
        t.add_row([3.14159])
        body = t.render().splitlines()[2:]
        assert body[0].strip() == "0"
        assert "1.23e+04" in body[1]
        assert "0.001" in body[2]
        assert "3.14" in body[3]

    def test_alignment(self):
        t = TextTable(["name", "v"])
        t.add_row(["a", 1])
        t.add_row(["longer", 100])
        lines = t.render().splitlines()
        # all lines equal width (right-justified columns)
        assert len({len(l) for l in lines[1:]}) == 1

    def test_str_is_render(self):
        t = TextTable(["a"])
        t.add_row([1])
        assert str(t) == t.render()
