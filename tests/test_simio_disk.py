"""Tests for the rotational disk model and allocators."""

import pytest

from repro.sim import Simulator
from repro.simio.disk import ExtentAllocator, RotationalDisk
from repro.simio.pagecache import ReservingAllocator
from repro.simio.params import DEFAULT_HW


def make_disk():
    sim = Simulator()
    return sim, RotationalDisk(sim, DEFAULT_HW, name="d")


class TestSeekPricing:
    def test_contiguous_continuation_is_free(self):
        sim, disk = make_disk()
        assert disk.seek_cost(100, 100) == 0.0

    def test_min_seek_for_short_jump(self):
        sim, disk = make_disk()
        cost = disk.seek_cost(100, 101)
        assert cost >= DEFAULT_HW.disk_min_seek
        assert cost < DEFAULT_HW.disk_seek_time

    def test_long_seek_approaches_max(self):
        sim, disk = make_disk()
        far = DEFAULT_HW.disk_short_seek_span // DEFAULT_HW.disk_block * 10
        cost = disk.seek_cost(0, far)
        assert cost == pytest.approx(DEFAULT_HW.disk_seek_time, rel=0.01)

    def test_seek_monotone_in_distance(self):
        sim, disk = make_disk()
        costs = [disk.seek_cost(0, d) for d in (1, 10, 1000, 100000)]
        assert costs == sorted(costs)


class TestDiskIO:
    def test_sequential_stream_only_first_seeks(self):
        sim, disk = make_disk()

        def proc():
            yield disk.io(1000, 8192, "W", "f")
            yield disk.io(1002, 8192, "W", "f")  # contiguous
            yield disk.io(1004, 8192, "W", "f")

        sim.run_all([sim.spawn(proc())])
        assert disk.seeks == 1
        assert disk.sequential_ios == 2

    def test_interleaved_streams_seek(self):
        sim, disk = make_disk()

        def proc():
            yield disk.io(1000, 4096, "W", "a")
            yield disk.io(9000, 4096, "W", "b")
            yield disk.io(1001, 4096, "W", "a")

        sim.run_all([sim.spawn(proc())])
        assert disk.seeks == 3

    def test_service_time_includes_transfer(self):
        sim, disk = make_disk()
        nbytes = 8 * 1024 * 1024

        def proc():
            yield disk.io(0, nbytes, "W", "f")
            return sim.now

        (t,) = sim.run_all([sim.spawn(proc())])
        expected = disk.seek_cost(0, 0) + nbytes / disk.bandwidth
        assert t == pytest.approx(expected)

    def test_trace_capture(self):
        sim, disk = make_disk()

        def proc():
            yield disk.io(500, 4096, "W", "x")
            yield disk.io(900, 8192, "R", "y")

        sim.run_all([sim.spawn(proc())])
        assert len(disk.trace) == 2
        assert disk.trace[0].block == 500
        assert disk.trace[1].kind == "R"
        assert disk.trace_blocks()[0][1] == 500

    def test_trace_can_be_disabled(self):
        sim, disk = make_disk()
        disk.capture_trace = False

        def proc():
            yield disk.io(0, 4096, "W", "x")

        sim.run_all([sim.spawn(proc())])
        assert disk.trace == []

    def test_fifo_under_contention(self):
        sim, disk = make_disk()
        done = []

        def proc(name):
            yield disk.io(0 if name == "a" else 10**6, 4096, "W", name)
            done.append(name)

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert done == ["a", "b"]
        assert disk.total_ios == 2

    def test_stats(self):
        sim, disk = make_disk()

        def proc():
            yield disk.io(0, 10000, "W", "x")

        sim.run_all([sim.spawn(proc())])
        assert disk.total_bytes == 10000
        assert disk.busy_time > 0
        assert 0 < disk.utilization(sim.now) <= 1.0


class TestExtentAllocator:
    def test_bump_contiguous(self):
        a = ExtentAllocator(4096, start_block=0)
        b1 = a.alloc(8192)
        b2 = a.alloc(4096)
        assert b2 == b1 + 2

    def test_partial_block_rounds_up(self):
        a = ExtentAllocator(4096, start_block=0)
        a.alloc(1)
        assert a.next_block == 1


class TestReservingAllocator:
    def test_single_stream_contiguous(self):
        a = ReservingAllocator(4096, reservation=64 * 1024, start_block=0)
        blocks = [a.alloc("f", 4096) for _ in range(10)]
        assert blocks == list(range(10))

    def test_interleaved_streams_separate_windows(self):
        a = ReservingAllocator(4096, reservation=64 * 1024, start_block=0)
        f1 = a.alloc("f1", 4096)
        g1 = a.alloc("g1", 4096)
        f2 = a.alloc("f1", 4096)
        # f's second alloc continues f's window, not g's position
        assert f2 == f1 + 1
        assert g1 != f2

    def test_window_exhaustion_starts_new_window(self):
        a = ReservingAllocator(4096, reservation=8192, start_block=0)
        a.alloc("f", 8192)  # fills window
        a.alloc("g", 4096)  # g takes next space
        f2 = a.alloc("f", 4096)  # f needs a fresh window
        assert f2 > 2

    def test_large_alloc_contiguous(self):
        a = ReservingAllocator(4096, reservation=8192, start_block=0)
        block = a.alloc("f", 4 * 1024 * 1024)
        # one contiguous run despite exceeding the reservation
        assert a.alloc("f", 4096) == block + 1024
