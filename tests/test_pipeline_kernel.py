"""Property tests for the plane-agnostic pipeline kernel.

The invariants the planes rely on, checked over random op sequences:

* ``complete_chunk_count <= write_chunk_count`` at every step;
* ``drained`` holds exactly when the counts are equal;
* a latched writeback error is raised exactly once (the POSIX
  close()/fsync() contract) and fail-fasts new writes until consumed;
* completing a chunk that was never queued is a state error.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BackendIOError, FileStateError
from repro.pipeline import (
    ChunkSealed,
    ChunkWritten,
    ErrorLatched,
    FilePipeline,
    PipelineKernel,
    Seal,
    SealReason,
)

CHUNK = 64


def _seal(offset=0, length=CHUNK):
    return Seal(file_offset=offset, length=length, reason=SealReason.FULL)


# One random op: queue a chunk, complete one (maybe failing), or drain-check.
OPS = st.lists(
    st.one_of(
        st.just(("queue",)),
        st.tuples(st.just("complete"), st.booleans()),
    ),
    max_size=60,
)


class TestCounterInvariants:
    @given(ops=OPS)
    @settings(max_examples=200, deadline=None)
    def test_complete_never_exceeds_write(self, ops):
        p = FilePipeline("/f", CHUNK)
        for op in ops:
            if op[0] == "queue":
                p.note_queued(_seal())
            else:
                if p.outstanding == 0:
                    with pytest.raises(FileStateError):
                        p.note_complete(length=CHUNK)
                else:
                    err = RuntimeError("disk on fire") if op[1] else None
                    p.note_complete(length=CHUNK, error=err)
            assert 0 <= p.complete_chunk_count <= p.write_chunk_count
            assert p.drained == (p.complete_chunk_count == p.write_chunk_count)
            assert p.outstanding == p.write_chunk_count - p.complete_chunk_count

    @given(n=st.integers(min_value=0, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_drain_iff_all_completed(self, n):
        p = FilePipeline("/f", CHUNK)
        for _ in range(n):
            p.note_queued(_seal())
        for i in range(n):
            assert not p.drained
            drained = p.note_complete(length=CHUNK)
            assert drained == (i == n - 1)
        assert p.drained

    def test_complete_without_queue_rejected(self):
        p = FilePipeline("/f", CHUNK)
        with pytest.raises(FileStateError):
            p.note_complete(length=CHUNK)


class TestErrorLatch:
    def _failed_pipeline(self, errors=1, total=3):
        p = FilePipeline("/f", CHUNK)
        for _ in range(total):
            p.note_queued(_seal())
        for i in range(total):
            err = OSError("EIO") if i < errors else None
            p.note_complete(length=CHUNK, error=err)
        return p

    @given(errors=st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_raised_exactly_once(self, errors):
        p = self._failed_pipeline(errors=errors)
        with pytest.raises(BackendIOError):
            p.raise_latched()
        # second close()/fsync() succeeds: the latch was consumed
        p.raise_latched()
        assert p.peek_error() is None

    def test_first_error_wins(self):
        p = FilePipeline("/f", CHUNK)
        p.note_queued(_seal())
        p.note_queued(_seal())
        p.note_complete(length=CHUNK, error=OSError("first"))
        p.note_complete(length=CHUNK, error=OSError("second"))
        assert "first" in str(p.peek_error())

    def test_plan_write_fails_fast_while_latched(self):
        p = self._failed_pipeline()
        before = (p.planner.total_writes, p.planner.total_bytes)
        with pytest.raises(BackendIOError):
            p.plan_write(0, 10)
        with pytest.raises(BackendIOError):
            p.plan_write_through(0, 10)
        # the failed attempts consumed nothing from the planner
        assert (p.planner.total_writes, p.planner.total_bytes) == before
        # and did not consume the latch itself
        assert p.peek_error() is not None

    def test_latch_emits_error_latched_event_once(self):
        events = []
        p = FilePipeline("/f", CHUNK, emit=events.append)
        p.note_queued(_seal())
        p.note_queued(_seal())
        p.note_complete(length=CHUNK, error=OSError("x"))
        p.note_complete(length=CHUNK, error=OSError("y"))
        assert sum(isinstance(e, ErrorLatched) for e in events) == 1


class TestEventStream:
    def test_events_mirror_state_transitions(self):
        kernel = PipelineKernel(CHUNK)
        events = []
        kernel.subscribe(type("Obs", (), {"on_event": lambda self, e: events.append(e)})())
        p = kernel.file("/f")
        p.note_queued(_seal(0))
        p.note_queued(_seal(CHUNK))
        p.note_complete(length=CHUNK, file_offset=0)
        p.note_complete(length=CHUNK, file_offset=CHUNK)
        assert sum(isinstance(e, ChunkSealed) for e in events) == 2
        assert sum(isinstance(e, ChunkWritten) for e in events) == 2
        # the kernel's stats observer counted the same stream
        assert kernel.stats.chunks_written == 2
        assert kernel.stats.bytes_out == 2 * CHUNK
        assert kernel.stats.seal_counts[SealReason.FULL] == 2

    @given(ops=OPS)
    @settings(max_examples=100, deadline=None)
    def test_stats_agree_with_pipeline_counts(self, ops):
        kernel = PipelineKernel(CHUNK)
        p = kernel.file("/f")
        for op in ops:
            if op[0] == "queue":
                p.note_queued(_seal())
            elif p.outstanding > 0:
                err = RuntimeError("boom") if op[1] else None
                p.note_complete(length=CHUNK, error=err)
        snap = kernel.snapshot()
        assert sum(snap["seals"].values()) == p.write_chunk_count
        assert snap["chunks_written"] + snap["io_errors"] == p.complete_chunk_count
        assert snap["bytes_out"] == snap["chunks_written"] * CHUNK
