"""Tests for the page-cache model: dirty accounting, merging, flusher,
throttling."""

import pytest

from repro.sim import Simulator
from repro.simio.disk import RotationalDisk
from repro.simio.ext3 import _DiskBacking
from repro.simio.pagecache import DirtyExtent, PageCache, ReservingAllocator
from repro.simio.params import DEFAULT_HW
from repro.units import KiB, MiB


def make_cache(dirty_limit=64 * MiB, background=None, **kw):
    sim = Simulator()
    disk = RotationalDisk(sim, DEFAULT_HW, name="d")
    allocator = ReservingAllocator(DEFAULT_HW.disk_block, DEFAULT_HW.ext3_reservation)
    backing = _DiskBacking(disk, allocator)
    cache = PageCache(
        sim, DEFAULT_HW, backing, dirty_limit=dirty_limit,
        background_limit=background, **kw,
    )
    return sim, disk, cache


def drive(sim, gen):
    """Run one generator as a process to completion."""
    p = sim.spawn(gen)
    sim.run_until_complete([p])
    return p.result


class TestDirtyAccounting:
    def test_dirty_accumulates(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("f", 10000)
            yield from cache.dirty("f", 5000)

        drive(sim, proc())
        assert cache.dirty_bytes == 15000
        assert cache.total_dirtied == 15000

    def test_sequential_writes_merge_into_one_extent(self):
        sim, disk, cache = make_cache()

        def proc():
            for _ in range(100):
                yield from cache.dirty("f", 1000)

        drive(sim, proc())
        assert len(cache._dirty["f"]) == 1
        extent = cache._dirty["f"][0]
        assert extent.nbytes == 100_000
        assert extent.fragments == 100

    def test_sub_block_writes_extend_without_alloc(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("f", 100)
            yield from cache.dirty("f", 100)

        drive(sim, proc())
        extent = cache._dirty["f"][0]
        assert extent.nbytes == 200
        assert extent.nblocks == 1  # both fit the first block

    def test_merge_cap_respected(self):
        sim, disk, cache = make_cache()

        def proc():
            # two writes that together exceed the merge cap
            yield from cache.dirty("f", 3 * MiB, merge_cap=4 * MiB)
            yield from cache.dirty("f", 3 * MiB, merge_cap=4 * MiB)

        drive(sim, proc())
        assert len(cache._dirty["f"]) == 2

    def test_streams_tracked_separately(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("a", 1000)
            yield from cache.dirty("b", 1000)

        drive(sim, proc())
        assert set(cache._dirty) == {"a", "b"}
        assert cache.dirty_bytes_of("a") == 1000

    def test_zero_bytes_noop(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("f", 0)

        drive(sim, proc())
        assert cache.dirty_bytes == 0


class TestSync:
    def test_sync_stream_writes_everything_to_disk(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("f", 100_000)
            yield from cache.sync_stream("f")

        drive(sim, proc())
        assert cache.dirty_bytes == 0
        assert disk.total_bytes == 100_000
        assert cache.total_written_back == 100_000

    def test_sync_all(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("a", 50_000)
            yield from cache.dirty("b", 70_000)
            yield from cache.sync_all()

        drive(sim, proc())
        assert cache.dirty_bytes == 0
        assert disk.total_bytes == 120_000

    def test_sync_quota_partial(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.dirty("a", 10 * MiB)
            yield from cache.sync_quota(2 * MiB)

        drive(sim, proc())
        assert cache.total_written_back >= 2 * MiB
        assert cache.dirty_bytes < 10 * MiB

    def test_sync_empty_stream_noop(self):
        sim, disk, cache = make_cache()

        def proc():
            yield from cache.sync_stream("missing")

        drive(sim, proc())
        assert disk.total_ios == 0


class TestBackgroundFlusher:
    def test_flusher_activates_above_background(self):
        sim, disk, cache = make_cache(dirty_limit=100 * MiB, background=1 * MiB)

        def proc():
            yield from cache.dirty("f", 10 * MiB)
            # give the flusher time to work
            yield sim.timeout(10.0)

        drive(sim, proc())
        assert cache.total_written_back > 0
        assert disk.total_bytes > 0

    def test_flusher_idle_below_background(self):
        sim, disk, cache = make_cache(dirty_limit=100 * MiB, background=50 * MiB)

        def proc():
            yield from cache.dirty("f", 1 * MiB)
            yield sim.timeout(10.0)

        drive(sim, proc())
        assert cache.total_written_back == 0

    def test_small_tail_deferred(self):
        sim, disk, cache = make_cache(dirty_limit=100 * MiB, background=1)

        def proc():
            yield from cache.dirty("f", 8 * KiB)  # tiny growing tail
            yield sim.timeout(5.0)

        drive(sim, proc())
        # the tiny tail stays cached (write gathering)
        assert cache.dirty_bytes == 8 * KiB

    def test_commit_interval_forces_full_flush(self):
        sim, disk, cache = make_cache(
            dirty_limit=100 * MiB, background=50 * MiB, commit_interval=2.0
        )

        def proc():
            yield from cache.dirty("f", 1 * MiB)
            yield sim.timeout(10.0)

        drive(sim, proc())
        assert cache.dirty_bytes == 0  # commit flushed despite low dirty


class TestThrottling:
    def test_writer_blocks_at_dirty_limit(self):
        sim, disk, cache = make_cache(dirty_limit=4 * MiB, background=1 * MiB)
        timeline = {}

        def proc():
            yield from cache.dirty("f", 3 * MiB)
            timeline["first"] = sim.now
            yield from cache.dirty("f", 8 * MiB)  # crosses the limit
            timeline["second"] = sim.now

        drive(sim, proc())
        assert cache.throttle_events > 0
        # the throttled write had to wait for real (disk-speed) time
        assert timeline["second"] > timeline["first"]
        assert timeline["second"] >= 1 * MiB / DEFAULT_HW.disk_bandwidth

    def test_hysteresis_releases_below_limit(self):
        sim, disk, cache = make_cache(dirty_limit=8 * MiB, background=1 * MiB)

        def proc():
            for _ in range(32):
                yield from cache.dirty("f", 1 * MiB)

        drive(sim, proc())
        # all 32 MiB accepted eventually; dirty ended at/below the limit
        assert cache.total_dirtied == 32 * MiB
        assert cache.dirty_bytes <= 8 * MiB

    def test_no_deadlock_with_only_small_tails(self):
        # dirty over the limit purely from many small streams' tails: the
        # flusher must fall back to flushing small tails.
        sim, disk, cache = make_cache(dirty_limit=256 * KiB, background=64 * KiB)

        def proc(i):
            yield from cache.dirty(f"s{i}", 100 * KiB)

        procs = [sim.spawn(proc(i)) for i in range(8)]
        sim.run_until_complete(procs)  # completing at all proves no deadlock


class TestExtentSplitting:
    def test_pop_splits_at_window(self):
        sim, disk, cache = make_cache(writeback_window=1 * MiB)

        def proc():
            yield from cache.dirty("f", 5 * MiB, merge_cap=16 * MiB)

        drive(sim, proc())
        first = cache._pop_from("f")
        assert first.nbytes == 1 * MiB
        rest = cache._dirty["f"][0]
        assert rest.nbytes == 4 * MiB
        assert rest.block == first.block + first.nblocks

    def test_sync_stream_writes_whole_extents(self):
        sim, disk, cache = make_cache(writeback_window=1 * MiB)

        def proc():
            yield from cache.dirty("f", 5 * MiB, merge_cap=16 * MiB)
            yield from cache.sync_stream("f")

        drive(sim, proc())
        assert disk.total_bytes == 5 * MiB

    def test_fragments_preserved_across_split(self):
        ext = DirtyExtent(stream="f", block=0, nbytes=2 * MiB, fragments=100)
        sim, disk, cache = make_cache(writeback_window=1 * MiB)
        cache._dirty["f"] = __import__("collections").deque([ext])
        cache.dirty_bytes = ext.nbytes
        first = cache._pop_from("f")
        rest = cache._dirty["f"][0]
        assert first.fragments + rest.fragments == 100

    def test_fragment_density(self):
        ext = DirtyExtent(stream="f", block=0, nbytes=1 * MiB, fragments=50)
        assert ext.fragment_density == pytest.approx(50.0)
