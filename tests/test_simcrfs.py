"""Tests for the timing-plane CRFS model: FUSE splitting, pipeline
semantics, backpressure, drain-on-close."""

import pytest

from repro.config import CRFSConfig
from repro.sim import SharedBandwidth, Simulator
from repro.simcrfs import SimCRFS, fuse_requests
from repro.simio.nullfs import NullSimFilesystem
from repro.simio.params import DEFAULT_HW
from repro.units import KiB, MiB
from repro.util.rng import rng_for


class TestFuseRequests:
    def test_small_write_one_request(self):
        assert list(fuse_requests(1000, 128 * KiB)) == [1000]

    def test_exact_multiple(self):
        assert list(fuse_requests(256 * KiB, 128 * KiB)) == [128 * KiB, 128 * KiB]

    def test_remainder(self):
        assert list(fuse_requests(300 * KiB, 128 * KiB)) == [
            128 * KiB,
            128 * KiB,
            44 * KiB,
        ]

    def test_zero_write_still_round_trips(self):
        assert list(fuse_requests(0, 128 * KiB)) == [0]

    def test_bad_max_rejected(self):
        with pytest.raises(ValueError):
            list(fuse_requests(100, 0))

    def test_conservation(self):
        for n in (1, 127, 128 * KiB, 999_999, 5 * MiB):
            assert sum(fuse_requests(n, 128 * KiB)) == n


def make_crfs(config=None, backend_cls=NullSimFilesystem):
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    backend = backend_cls(sim, hw, rng_for(1, "b"))
    crfs = SimCRFS(sim, hw, config or CRFSConfig(), backend, membus)
    return sim, crfs, backend


class TestSimCRFSPipeline:
    def test_write_close_accounts_all_bytes(self):
        sim, crfs, backend = make_crfs()

        def proc():
            f = crfs.open("/f")
            for _ in range(10):
                yield from crfs.write(f, 1 * MiB)
            yield from crfs.close(f)

        sim.run_until_complete([sim.spawn(proc())])
        assert crfs.bytes_written == 10 * MiB
        assert backend.total_bytes == 10 * MiB

    def test_chunks_sealed_at_chunk_size(self):
        cfg = CRFSConfig(chunk_size=1 * MiB, pool_size=4 * MiB)
        sim, crfs, backend = make_crfs(cfg)

        def proc():
            f = crfs.open("/f")
            yield from crfs.write(f, 3 * MiB + 512 * KiB)
            yield from crfs.close(f)
            return f

        p = sim.spawn(proc())
        sim.run_until_complete([p])
        f = p.result
        assert f.write_chunk_count == 4  # 3 full + 1 flush
        assert f.complete_chunk_count == 4

    def test_close_waits_for_drain(self):
        sim, crfs, backend = make_crfs()

        def proc():
            f = crfs.open("/f")
            yield from crfs.write(f, 8 * MiB)
            yield from crfs.close(f)
            # Section IV-C: after close, counts must match
            assert f.drained
            return f.complete_chunk_count

        p = sim.spawn(proc())
        sim.run_until_complete([p])
        assert p.result == 2  # two 4 MiB chunks

    def test_pool_backpressure_with_slow_backend(self):
        # backend so slow that the pool (4 chunks) must stall the writer
        class SlowNull(NullSimFilesystem):
            def _write(self, f, nbytes):
                yield self.sim.timeout(0.1)

        sim, crfs, backend = make_crfs(backend_cls=SlowNull)

        def proc():
            f = crfs.open("/f")
            t0 = sim.now
            yield from crfs.write(f, 40 * MiB)  # 10 chunks through a 4-chunk pool
            return sim.now - t0

        p = sim.spawn(proc())
        sim.run_until_complete([p])
        # with 4 io threads at 0.1s/chunk, 10 chunks -> >= 2 waves of stall
        assert p.result >= 0.1

    def test_fsync_drains(self):
        sim, crfs, backend = make_crfs()

        def proc():
            f = crfs.open("/f")
            yield from crfs.write(f, 1 * MiB)  # partial chunk
            yield from crfs.fsync(f)
            return f

        p = sim.spawn(proc())
        sim.run_until_complete([p])
        assert p.result.drained
        assert backend.total_bytes == 1 * MiB

    def test_multiple_files_interleaved(self):
        sim, crfs, backend = make_crfs()

        def proc(i):
            f = crfs.open(f"/f{i}")
            for _ in range(5):
                yield from crfs.write(f, 1 * MiB)
            yield from crfs.close(f)
            return f.complete_chunk_count

        procs = [sim.spawn(proc(i)) for i in range(4)]
        results = sim.run_until_complete(procs)
        assert backend.total_bytes == 20 * MiB
        assert all(r >= 2 for r in results)

    def test_backend_file_marked_bulk(self):
        sim, crfs, backend = make_crfs()
        f = crfs.open("/f")
        assert f.backend_file.bulk_writer

    def test_shutdown_stops_io_threads(self):
        sim, crfs, backend = make_crfs()

        def proc():
            f = crfs.open("/f")
            yield from crfs.write(f, 4 * MiB)
            yield from crfs.close(f)

        sim.run_until_complete([sim.spawn(proc())])
        crfs.shutdown()
        sim.run()  # io threads exit cleanly; no deadlock error

    def test_empty_file_close(self):
        sim, crfs, backend = make_crfs()

        def proc():
            f = crfs.open("/empty")
            yield from crfs.close(f)
            return f.write_chunk_count

        p = sim.spawn(proc())
        sim.run_until_complete([p])
        assert p.result == 0


class TestAggregationTiming:
    def test_aggregation_faster_than_native_medium_writes(self):
        """The headline mechanism: the same medium-write stream through
        CRFS (into a fast backend) beats writing natively."""
        from repro.simio import Ext3Filesystem

        def run(use_crfs):
            sim = Simulator()
            hw = DEFAULT_HW
            membus = SharedBandwidth(sim, hw.membus_bandwidth)
            fs = Ext3Filesystem(sim, hw, rng_for(1, "agg"), membus)
            crfs = SimCRFS(sim, hw, CRFSConfig(), fs, membus) if use_crfs else None
            procs = []
            for i in range(8):
                def proc(i=i):
                    tgt = crfs or fs
                    f = tgt.open(f"/f{i}")
                    t0 = sim.now
                    for _ in range(400):
                        yield from tgt.write(f, 8192)
                    yield from tgt.close(f)
                    return sim.now - t0
                procs.append(sim.spawn(proc()))
            return max(sim.run_until_complete(procs))

        t_native = run(False)
        t_crfs = run(True)
        assert t_crfs < t_native / 2
