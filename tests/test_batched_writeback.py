"""Coalesced vectored writeback: the batch gather, the pwritev backend
capability, and the batch accounting.

Batch formation depends on queue depth at gather time, so every
end-to-end test here gates the lone IO worker behind a fault-injected
delay on a one-chunk sacrificial file: by the time the worker reaches
the real file, its whole contiguous run is queued and the gather
outcome is a pure function of the workload (the same trick the
``crossplane`` experiment uses for its batch-parity arm).
"""

import threading

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend
from repro.backends.base import Backend
from repro.backends.instrumented import InstrumentedBackend
from repro.backends.localdir import LocalDirBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.core.workqueue import QueueClosed, QueueFullTimeout, WorkQueue
from repro.errors import BackendIOError
from repro.units import KiB, MiB

CHUNK = 64 * KiB
NCHUNKS = 16  # the gated run: two full gathers at batch limit 8

FAST = dict(retry_backoff=1e-4, retry_backoff_max=1e-3, retry_jitter=0.0)


def run_data() -> bytes:
    """NCHUNKS chunks, each filled with its own byte value."""
    return b"".join(bytes([i + 1]) * CHUNK for i in range(NCHUNKS))


def batched_config(**overrides) -> CRFSConfig:
    kw = dict(
        chunk_size=CHUNK,
        pool_size=2 * MiB,  # gate chunk + the whole run fit: no backpressure
        io_threads=1,
        writeback_batch_chunks=8,
        **FAST,
    )
    kw.update(overrides)
    return CRFSConfig(**kw)


def gated_mount(extra_rules=(), **overrides):
    """A mount whose lone worker blocks inside the gate file's pwrite
    until ``gate`` is set; returns (mem, backend, fs, gate)."""
    gate = threading.Event()
    rules = [FaultRule(op="pwrite", nth=1, delay=1.0, path="/gate*")]
    rules.extend(extra_rules)
    mem = MemBackend()
    backend = FaultyBackend(mem, rules, sleep=lambda _s: gate.wait())
    fs = CRFS(backend, batched_config(**overrides))
    return mem, backend, fs, gate


def write_gated_run(fs, gate, data=None):
    """One gate chunk, then the full run; lifts the gate after queueing.
    Returns the run file handle (still open)."""
    fa = fs.open("/gate.img")
    fa.write(b"\x00" * CHUNK)
    fb = fs.open("/run.img")
    fb.write(data if data is not None else run_data())
    gate.set()
    fa.close()
    return fb


# -- WorkQueue.get_batch ------------------------------------------------------


def contiguous(prev, nxt):
    """Chain predicate over (writer, seq) tuples."""
    return prev[0] == nxt[0] and nxt[1] == prev[1] + 1


class TestGetBatch:
    def test_gathers_contiguous_run_up_to_limit(self):
        q = WorkQueue()
        for i in range(5):
            q.put(("a", i))
        assert q.get_batch(3, contiguous) == [("a", 0), ("a", 1), ("a", 2)]
        assert q.get_batch(8, contiguous) == [("a", 3), ("a", 4)]

    def test_skips_nonmatching_and_preserves_their_order(self):
        """Interleaved writers: the gather walks past the other writer's
        items without consuming them or reordering them."""
        q = WorkQueue()
        for item in [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2)]:
            q.put(item)
        assert q.get_batch(8, contiguous) == [("a", 0), ("a", 1), ("a", 2)]
        assert q.get_batch(8, contiguous) == [("b", 0), ("b", 1)]

    def test_limit_one_is_plain_get(self):
        q = WorkQueue()
        q.put(("a", 0))
        q.put(("a", 1))
        assert q.get_batch(1, contiguous) == [("a", 0)]
        assert len(q) == 1

    def test_limit_below_one_rejected(self):
        with pytest.raises(ValueError):
            WorkQueue().get_batch(0, contiguous)

    def test_low_band_items_never_batched(self):
        q = WorkQueue()
        q.put(("a", 0), low=True)
        q.put(("a", 1), low=True)
        assert q.get_batch(8, contiguous) == [("a", 0)]
        assert q.get_batch(8, contiguous) == [("a", 1)]

    def test_high_band_drains_before_low(self):
        q = WorkQueue()
        q.put(("low", 0), low=True)
        q.put(("a", 0))
        assert q.get_batch(8, contiguous) == [("a", 0)]
        assert q.get_batch(8, contiguous) == [("low", 0)]

    def test_close_semantics_match_get(self):
        q = WorkQueue()
        q.put(("a", 0))
        q.close()
        assert q.get_batch(8, contiguous) == [("a", 0)]  # drain-then-stop
        with pytest.raises(QueueClosed):
            q.get_batch(8, contiguous)

    def test_timeout_raises(self):
        with pytest.raises(TimeoutError):
            WorkQueue().get_batch(8, contiguous, timeout=0.01)


class TestPutContract:
    """The two bands' blocking/timeout/close contracts."""

    def test_full_high_band_put_times_out(self):
        q = WorkQueue(capacity=1)
        q.put("x")
        with pytest.raises(QueueFullTimeout):
            q.put("y", timeout=0.01)

    def test_low_band_put_rejects_explicit_timeout(self):
        q = WorkQueue(capacity=1)
        q.put("x")  # band full — a low put must still not block
        with pytest.raises(ValueError, match="never block"):
            q.put("y", timeout=0.01, low=True)

    def test_low_band_put_never_blocks_at_capacity(self):
        q = WorkQueue(capacity=1)
        q.put("x")
        q.put("y", low=True)  # returns immediately despite the full band
        assert len(q) == 2

    def test_both_bands_reject_put_after_close(self):
        q = WorkQueue()
        q.close()
        with pytest.raises(QueueClosed):
            q.put("x")
        with pytest.raises(QueueClosed):
            q.put("y", low=True)

    def test_close_drains_both_bands_in_priority_order(self):
        q = WorkQueue()
        q.put("lo", low=True)
        q.put("hi")
        q.close()
        assert q.get() == "hi"
        assert q.get() == "lo"
        with pytest.raises(QueueClosed):
            q.get()

    def test_close_wakes_blocked_high_put(self):
        q = WorkQueue(capacity=1)
        q.put("x")
        errors = []

        def blocked_put():
            try:
                q.put("y", timeout=None)
            except QueueClosed as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked_put)
        t.start()
        q.close()
        t.join(timeout=5)
        assert not t.is_alive() and len(errors) == 1

    def test_queue_full_timeout_is_a_shutdown_error(self):
        from repro.errors import ShutdownError

        assert issubclass(QueueFullTimeout, ShutdownError)


# -- SimQueue.take_adjacent ---------------------------------------------------


class TestSimTakeAdjacent:
    def test_gather_skips_and_preserves_order(self):
        from repro.sim import Simulator
        from repro.sim.primitives import SimQueue

        sim = Simulator()
        q = SimQueue(sim)
        out = {}

        def producer():
            for item in [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2)]:
                yield q.put(item)

        def consumer():
            first = yield q.get()
            out["first"] = first
            out["batch"] = q.take_adjacent(first, 7, contiguous)
            out["left"] = list(q._items)

        sim.run_until_complete([sim.spawn(producer())])
        sim.run_until_complete([sim.spawn(consumer())])
        assert out["first"] == ("a", 0)
        assert out["batch"] == [("a", 1), ("a", 2)]
        assert out["left"] == [("b", 0), ("b", 1)]

    def test_limit_zero_and_empty_queue_return_nothing(self):
        from repro.sim import Simulator
        from repro.sim.primitives import SimQueue

        q = SimQueue(Simulator())
        assert q.take_adjacent(("a", 0), 0, contiguous) == []
        assert q.take_adjacent(("a", 0), 5, contiguous) == []


# -- the pwritev backend capability -------------------------------------------


class TestBackendPwritev:
    VIEWS = [b"aa", b"bbb", memoryview(b"cccc")]

    def test_base_fallback_loops_pwrite(self):
        mem = MemBackend()
        h = mem.open("/f")
        n = Backend.pwritev(mem, h, self.VIEWS, 5)
        assert n == 9
        assert mem.pread(h, 9, 5) == b"aabbbcccc"
        assert mem.total_pwrites == 3  # the fallback is per-view pwrites

    def test_mem_backend_is_one_op(self):
        mem = MemBackend()
        h = mem.open("/f")
        assert mem.pwritev(h, self.VIEWS, 5) == 9
        assert mem.pread(h, 9, 5) == b"aabbbcccc"
        assert mem.total_pwrites == 1
        assert mem.total_bytes_written == 9

    def test_mem_backend_empty_batch(self):
        mem = MemBackend()
        h = mem.open("/f")
        assert mem.pwritev(h, [], 0) == 0
        assert mem.total_pwrites == 0

    def test_localdir_backend(self, tmp_path):
        backend = LocalDirBackend(str(tmp_path))
        h = backend.open("/f")
        try:
            assert backend.pwritev(h, self.VIEWS, 5) == 9
            assert backend.pread(h, 9, 5) == b"aabbbcccc"
            assert backend.pwritev(h, [b"", b""], 0) == 0  # empties filtered
        finally:
            backend.close(h)

    def test_faulty_backend_counts_one_op_per_batch(self):
        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [FaultRule(op="pwritev", nth=2, error=OSError("injected"))],
            sleep=lambda s: None,
        )
        h = backend.open("/f")
        assert backend.pwritev(h, self.VIEWS, 0) == 9  # op #1: clean
        with pytest.raises(OSError, match="injected"):
            backend.pwritev(h, self.VIEWS, 9)  # op #2 (not #4): the batch
        assert backend.faults_fired == 1
        assert mem.total_pwrites == 1  # the failed batch never reached mem

    def test_instrumented_backend_records_one_op(self):
        backend = InstrumentedBackend(MemBackend())
        h = backend.open("/f")
        backend.pwritev(h, self.VIEWS, 0)
        recs = backend.ops("pwritev")
        assert len(recs) == 1
        assert recs[0].size == 9


# -- end-to-end functional batching -------------------------------------------


@pytest.mark.timeout(60)
class TestBatchedMount:
    def test_batch_stats_zero_by_default(self):
        fs = CRFS(MemBackend(), CRFSConfig(chunk_size=CHUNK, pool_size=4 * CHUNK))
        with fs, fs.open("/f") as f:
            f.write(b"x" * 4 * CHUNK)
        assert fs.stats()["batch"] == {
            "batches": 0,
            "chunks": 0,
            "bytes": 0,
            "errors": 0,
            "broken": 0,
            "per_batch": {},
        }

    def test_gated_run_batches_and_is_byte_identical(self):
        mem, _, fs, gate = gated_mount()
        data = run_data()
        with fs:
            fb = write_gated_run(fs, gate, data)
            entry = fb._entry
            fb.close()
            assert (
                entry.pipeline.complete_chunk_count
                == entry.pipeline.write_chunk_count
            )
            stats = fs.stats()
        h = mem.open("/run.img", create=False)
        assert mem.pread(h, len(data), 0) == data
        assert stats["batch"] == {
            "batches": 2,
            "chunks": NCHUNKS,
            "bytes": NCHUNKS * CHUNK,
            "errors": 0,
            "broken": 0,
            "per_batch": {"8": 2},
        }
        # vectored writes replaced per-chunk ones in the backend op count:
        # 1 gate pwrite + 2 pwritevs
        assert mem.total_pwrites == 3
        assert fs.pool.free_chunks == fs.pool.nchunks

    def test_batch_disabled_matches_enabled_byte_for_byte(self):
        data = run_data()
        outputs = {}
        for batch in (1, 8):
            mem, _, fs, gate = gated_mount(writeback_batch_chunks=batch)
            with fs:
                write_gated_run(fs, gate, data).close()
                stats = fs.stats()
            h = mem.open("/run.img", create=False)
            outputs[batch] = mem.pread(h, len(data), 0)
            if batch == 1:
                assert stats["batch"]["batches"] == 0
            else:
                assert stats["batch"]["batches"] > 0
            # workload-determined accounting is batching-invariant
            assert stats["chunks_written"] == NCHUNKS + 1
            assert stats["bytes_out"] == (NCHUNKS + 1) * CHUNK
        assert outputs[1] == outputs[8] == data


# -- degraded-path lock hold (regression) -------------------------------------


@pytest.mark.timeout(60)
class TestDegradedWriteLockHold:
    def test_slow_probe_does_not_stall_concurrent_writer(self):
        """While one writer sleeps inside the degraded probe, a second
        writer to the *same file* must still make progress — the probe
        runs outside ``entry.write_lock`` (regression: it used to sleep
        under it, stalling every writer for the full retry budget)."""
        entered = threading.Event()
        gate = threading.Event()

        def sleeper(_s):
            entered.set()
            gate.wait()

        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [
                # pwrite #1 (the first chunk writeback) trips the breaker;
                # pwrite #2 (writer 1's degraded probe) sleeps on the gate.
                FaultRule(op="pwrite", nth=1, error=OSError("EIO")),
                FaultRule(op="pwrite", nth=2, delay=1.0),
            ],
            sleep=sleeper,
        )
        fs = CRFS(
            backend,
            CRFSConfig(
                chunk_size=CHUNK,
                pool_size=4 * CHUNK,
                io_threads=1,
                retry_attempts=1,
                breaker_threshold=1,
                **FAST,
            ),
        ).mount()
        try:
            fa = fs.open("/shared.img")
            fb = fs.open("/shared.img")
            with pytest.raises(BackendIOError):
                fa.write(b"\x01" * CHUNK)  # latched async -> breaker trips
                fa.fsync()  # surfaces the latch; by now the mount is degraded
            assert fs.health.degraded

            slow = threading.Thread(
                target=lambda: fa.pwrite(b"\x02" * 100, CHUNK)
            )
            slow.start()
            assert entered.wait(timeout=10), "probe write never started"
            # writer 2, same entry, while writer 1 sleeps in its probe
            fast = threading.Thread(
                target=lambda: fb.pwrite(b"\x03" * 100, 2 * CHUNK)
            )
            fast.start()
            fast.join(timeout=10)
            stalled = fast.is_alive()
            still_probing = slow.is_alive()
            gate.set()
            slow.join(timeout=10)
            assert not slow.is_alive()
            assert still_probing, "probe finished early — gate test is moot"
            assert not stalled, "concurrent writer stalled behind the probe"
        finally:
            gate.set()
            fs.unmount()
        assert mem.pread(mem.open("/shared.img", create=False), 100, 2 * CHUNK) == b"\x03" * 100


# -- the sim plane end-to-end -------------------------------------------------


def run_sim_batched(config, rules=(), nchunks=NCHUNKS, shutdown=True):
    """The gated-run workload on the virtual clock; returns
    (backend, stats, errors raised at close)."""
    from repro.sim import SharedBandwidth, Simulator
    from repro.simcrfs import SimCRFS
    from repro.simio.faulty import FaultySimFilesystem
    from repro.simio.nullfs import NullSimFilesystem
    from repro.simio.params import DEFAULT_HW
    from repro.util.rng import rng_for

    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    all_rules = [FaultRule(op="pwrite", nth=1, delay=1.0, path="/gate*")]
    all_rules.extend(rules)
    backend = FaultySimFilesystem(
        NullSimFilesystem(sim, hw, rng_for(1, "batched")), all_rules
    )
    crfs = SimCRFS(sim, hw, config, backend, membus)
    errors = []

    def proc():
        fa = crfs.open("/gate.img")
        yield from crfs.write(fa, config.chunk_size)
        fb = crfs.open("/run.img")
        for _ in range(nchunks):
            yield from crfs.write(fb, config.chunk_size)
        try:
            yield from crfs.close(fb)
        except BackendIOError as exc:
            errors.append(exc)
        yield from crfs.close(fa)

    sim.run_until_complete([sim.spawn(proc())])
    if shutdown:
        crfs.shutdown()
    return backend, crfs.stats(), errors


@pytest.mark.timeout(60)
class TestSimBatchedWriteback:
    def test_gated_run_batches(self):
        backend, stats, errors = run_sim_batched(batched_config())
        assert not errors
        assert stats["batch"] == {
            "batches": 2,
            "chunks": NCHUNKS,
            "bytes": NCHUNKS * CHUNK,
            "errors": 0,
            "broken": 0,
            "per_batch": {"8": 2},
        }
        # 1 gate write + 2 vectored writes reached the backend
        assert backend.total_writes == 3

    def test_batch_limit_one_never_batches(self):
        _, stats, errors = run_sim_batched(
            batched_config(writeback_batch_chunks=1)
        )
        assert not errors
        assert stats["batch"]["batches"] == 0
        assert stats["chunks_written"] == NCHUNKS + 1
