"""Tests for the Link model and engine run_until_complete semantics."""

import pytest

from repro.errors import DeadlockError
from repro.sim import SimEvent, Simulator
from repro.simio.network import Link


class TestLink:
    def test_send_costs_half_rtt_plus_transfer(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0, rtt=0.2)

        def proc():
            yield from link.send(50.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run_all([p])
        assert p.result == pytest.approx(0.1 + 0.5)

    def test_roundtrip_costs_full_rtt(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0, rtt=0.2)

        def proc():
            yield from link.roundtrip(50.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run_all([p])
        assert p.result == pytest.approx(0.2 + 0.5)

    def test_bandwidth_shared(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0, rtt=0.0)
        ends = []

        def proc():
            yield from link.send(100.0)
            ends.append(sim.now)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        assert ends[0] == pytest.approx(2.0)

    def test_message_and_byte_counters(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0, rtt=0.01)

        def proc():
            yield from link.send(30.0)
            yield from link.roundtrip(20.0)

        sim.run_all([sim.spawn(proc())])
        assert link.total_messages == 2
        assert link.total_bytes == pytest.approx(50.0)

    def test_zero_rtt_no_latency_event(self):
        sim = Simulator()
        link = Link(sim, bandwidth=100.0, rtt=0.0)

        def proc():
            yield from link.send(10.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run_all([p])
        assert p.result == pytest.approx(0.1)


class TestRunUntilComplete:
    def test_stops_despite_background_timers(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(1.0)

        def workload():
            yield sim.timeout(3.5)
            return "done"

        sim.spawn(forever(), "bg")
        w = sim.spawn(workload(), "w")
        results = sim.run_until_complete([w])
        assert results == ["done"]
        assert sim.now == pytest.approx(3.5)

    def test_abandons_blocked_daemons(self):
        sim = Simulator()
        ev = SimEvent(sim)

        def daemon():
            yield ev  # never fires

        def workload():
            yield sim.timeout(1.0)

        sim.spawn(daemon(), "d")
        w = sim.spawn(workload(), "w")
        sim.run_until_complete([w])  # no DeadlockError: daemon abandoned

    def test_deadlocked_workload_detected(self):
        sim = Simulator()
        ev = SimEvent(sim)

        def workload():
            yield ev

        w = sim.spawn(workload(), "w")
        with pytest.raises(DeadlockError):
            sim.run_until_complete([w])

    def test_workload_error_reraised(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        w = sim.spawn(bad(), "w")
        with pytest.raises(ValueError, match="boom"):
            sim.run_until_complete([w])

    def test_multiple_workloads_all_complete(self):
        sim = Simulator()

        def proc(d):
            yield sim.timeout(d)
            return d

        procs = [sim.spawn(proc(d)) for d in (3.0, 1.0, 2.0)]
        assert sim.run_until_complete(procs) == [3.0, 1.0, 2.0]


class TestIOPoolShutdown:
    def test_shutdown_timeout_raises_on_stuck_thread(self):
        import time

        from repro.backends import MemBackend
        from repro.core.buffer_pool import BufferPool
        from repro.core.filetable import FileEntry
        from repro.core.iopool import IOThreadPool, WorkItem
        from repro.core.workqueue import WorkQueue

        class HangingBackend(MemBackend):
            def pwrite(self, handle, data, offset):
                time.sleep(0.8)
                return super().pwrite(handle, data, offset)

        backend = HangingBackend()
        queue = WorkQueue()
        pool = BufferPool(64, 256)
        iop = IOThreadPool(backend, queue, pool, 1)
        iop.start()
        fd = backend.open("/f")
        entry = FileEntry("/f", fd, 64)
        chunk = pool.acquire()
        chunk.open_for(entry, 0)
        chunk.append(b"x", 0, 1)
        entry.note_chunk_queued()
        queue.put(WorkItem(chunk=chunk, entry=entry))
        with pytest.raises(TimeoutError):
            iop.shutdown(timeout=0.05)
        # let the hung write finish so the thread exits cleanly
        entry.wait_drained(timeout=5.0)
        iop._threads.clear()
