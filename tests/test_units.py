"""Tests for byte-size parsing and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_size,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_bare_number_string(self):
        assert parse_size("512") == 512

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4K", 4 * KiB),
            ("4k", 4 * KiB),
            ("4KB", 4 * KiB),
            ("4KiB", 4 * KiB),
            ("128KiB", 128 * KiB),
            ("4M", 4 * MiB),
            ("16 MB", 16 * MiB),
            ("2G", 2 * GiB),
            ("1GiB", GiB),
            ("0", 0),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_fractional_sizes_allowed_when_whole_bytes(self):
        assert parse_size("0.5M") == 512 * KiB

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3")

    @pytest.mark.parametrize("bad", ["", "M", "4Q", "abc", "4 4M"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_roundtrip_plain(self, n):
        assert parse_size(str(n)) == n

    @given(
        st.integers(min_value=0, max_value=4096),
        st.sampled_from([("K", KiB), ("M", MiB), ("G", GiB)]),
    )
    def test_roundtrip_suffixed(self, n, unit):
        suffix, mult = unit
        assert parse_size(f"{n}{suffix}") == n * mult


class TestFormat:
    def test_format_size_bytes(self):
        assert format_size(42) == "42 B"

    def test_format_size_mib(self):
        assert format_size(4 * MiB) == "4.0 MiB"

    def test_format_size_gib(self):
        assert format_size(6 * GiB) == "6.0 GiB"

    def test_format_bandwidth_mb(self):
        assert format_bandwidth(700e6) == "700.0 MB/s"

    def test_format_bandwidth_gb(self):
        assert format_bandwidth(1.75e9) == "1.75 GB/s"
