"""Multi-tenant mount: registry, pool ledger, DRR scheduler, and the
tenant-aware threaded pipeline (plus the buffer-pool timeout/release
regressions that rode along with the tenancy refactor)."""

import threading
import time
from unittest import mock

import pytest

from repro.backends import MemBackend
from repro.config import CRFSConfig, TenantSpec
from repro.core import CRFS
from repro.core.buffer_pool import BufferPool
from repro.core.workqueue import QueueFullTimeout, WorkQueue
from repro.errors import ConfigError, ShutdownError
from repro.pipeline import PipelineStats
from repro.pipeline.tenancy import (
    DEFAULT_TENANT,
    DRRScheduler,
    PoolLedger,
    TenantRegistry,
)
from repro.sim import SimTenantPool, Simulator
from repro.units import KiB


# -- registry ------------------------------------------------------------------


class TestTenantRegistry:
    def test_resolution_precedence(self):
        reg = TenantRegistry(
            [
                TenantSpec("a", patterns=("/a/*",)),
                TenantSpec("b", patterns=("/b/*", "/a/*")),
            ]
        )
        # Explicit id wins over any pattern; first matching spec wins
        # the tie; unmatched paths fall back to the default tenant.
        assert reg.resolve("/a/x.img", tenant="b") == "b"
        assert reg.resolve("/a/x.img") == "a"
        assert reg.resolve("/b/x.img") == "b"
        assert reg.resolve("/elsewhere.img") == DEFAULT_TENANT

    def test_explicit_unknown_tenant_served_on_default_terms(self):
        reg = TenantRegistry([TenantSpec("a", weight=4)])
        assert reg.resolve("/x", tenant="guest") == "guest"
        spec = reg.spec("guest")
        assert (spec.weight, spec.pool_reserved, spec.queue_quota) == (1, 0, 0)

    def test_names_sorted_and_include_default(self):
        reg = TenantRegistry([TenantSpec("zeta"), TenantSpec("alpha")])
        assert reg.names == ("alpha", "default", "zeta")
        assert reg.active

    def test_empty_registry_is_single_tenant(self):
        reg = TenantRegistry()
        assert not reg.active
        assert reg.names == (DEFAULT_TENANT,)
        assert reg.resolve("/anything") == DEFAULT_TENANT

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            TenantRegistry([TenantSpec("a"), TenantSpec("a")])

    def test_overcommitted_reservations_rejected(self):
        with pytest.raises(ConfigError):
            TenantRegistry(
                [TenantSpec("a", pool_reserved=3), TenantSpec("b", pool_reserved=2)],
                pool_chunks=4,
            )

    @pytest.mark.parametrize(
        "kw",
        [
            {"weight": 0},
            {"weight": 1.5},
            {"pool_reserved": -1},
            {"queue_quota": -1},
        ],
    )
    def test_bad_spec_fields_rejected(self, kw):
        with pytest.raises(ConfigError):
            TenantSpec("a", **kw)

    def test_config_validates_tenants(self):
        with pytest.raises(ConfigError):
            CRFSConfig(
                chunk_size=64 * KiB,
                pool_size=2 * 64 * KiB,
                tenants=(TenantSpec("a", pool_reserved=3),),
            )


# -- pool ledger ---------------------------------------------------------------


class TestPoolLedger:
    def test_reserved_consumed_before_shared(self):
        ledger = PoolLedger(4, {"a": 2})
        ledger.acquire("a")
        ledger.acquire("a")
        assert ledger.shared_used == 0  # both came from the reservation
        ledger.acquire("a")
        assert ledger.shared_used == 1
        assert ledger.held("a") == 3

    def test_shared_released_before_reserved(self):
        ledger = PoolLedger(4, {"a": 2})
        for _ in range(3):
            ledger.acquire("a")
        ledger.release("a")
        assert ledger.shared_used == 0  # overflow slot went back first
        assert ledger.held("a") == 2

    def test_storm_cannot_take_another_tenants_reservation(self):
        ledger = PoolLedger(4, {"victim": 2})
        ledger.acquire("storm")
        ledger.acquire("storm")
        assert not ledger.can_acquire("storm")  # shared region exhausted
        assert ledger.can_acquire("victim")  # reservation untouched
        ledger.acquire("victim")
        ledger.acquire("victim")
        assert ledger.in_use == 4

    def test_idle_node_gives_one_tenant_the_whole_shared_region(self):
        ledger = PoolLedger(4)
        for _ in range(4):
            ledger.acquire("a")
        assert not ledger.can_acquire("a")
        assert ledger.in_use == 4

    def test_release_without_hold_rejected(self):
        with pytest.raises(ConfigError):
            PoolLedger(2).release("a")

    def test_blind_acquire_rejected(self):
        ledger = PoolLedger(1)
        ledger.acquire("a")
        with pytest.raises(ConfigError):
            ledger.acquire("b")


# -- DRR scheduler -------------------------------------------------------------


class TestDRRScheduler:
    def test_single_tenant_degrades_to_fifo(self):
        sched = DRRScheduler()
        for i in range(5):
            sched.push(DEFAULT_TENANT, i)
        assert [sched.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]
        assert sched.pop() is None

    def test_weighted_service_under_contention(self):
        sched = DRRScheduler(weights={"a": 3, "b": 1})
        for i in range(6):
            sched.push("a", f"a{i}")
            sched.push("b", f"b{i}")
        # Per round: three of a's items, then one of b's.
        served = [sched.pop()[0] for _ in range(8)]
        assert served == ["a", "a", "a", "b", "a", "a", "a", "b"]

    def test_high_band_strictly_before_low(self):
        sched = DRRScheduler(weights={"a": 1, "b": 8})
        sched.push("b", "prefetch", low=True)
        sched.push("a", "writeback")
        assert sched.pop() == ("a", "writeback")  # weight never trumps band
        assert sched.pop() == ("b", "prefetch")

    def test_empty_queue_forfeits_residual_deficit(self):
        sched = DRRScheduler(weights={"a": 4, "b": 1})
        sched.push("a", "a0")
        sched.push("b", "b0")
        assert sched.pop() == ("a", "a0")
        # a left the ring with 3 quantum unspent; refilling must not
        # let it burst past its share (no banking across idle periods).
        assert sched._deficit["a"] == 0
        assert sched.pop() == ("b", "b0")

    def test_gather_stays_within_tenant_and_charges_deficit(self):
        sched = DRRScheduler(weights={"a": 2, "b": 2})
        for i in range(4):
            sched.push("a", ("a", i))
            sched.push("b", ("b", i))
        tenant, head = sched.pop()
        assert (tenant, head) == ("a", ("a", 0))
        batch = sched.gather("a", 3, lambda prev, nxt: nxt[0] == prev[0], head)
        assert batch == [("a", 1), ("a", 2), ("a", 3)]  # never spans tenants
        # The 4-item run overdrew a's quantum of 2: b is served twice
        # (its own quantum) before a's debt amortizes.
        assert sched.depth("a") == 0 and sched.depth("b") == 4
        assert [sched.pop()[0] for _ in range(4)] == ["b", "b", "b", "b"]

    def test_gather_skip_preserves_relative_order(self):
        sched = DRRScheduler()
        for item in ("x1", "y1", "x2", "y2"):
            sched.push(DEFAULT_TENANT, item)
        _, head = sched.pop()
        batch = sched.gather(
            DEFAULT_TENANT, 4, lambda prev, nxt: nxt.startswith("x"), head
        )
        assert batch == ["x2"]
        assert [sched.pop()[1] for _ in range(2)] == ["y1", "y2"]

    def test_fifo_mode_ignores_weights(self):
        sched = DRRScheduler(weights={"a": 100, "b": 1}, fair=False)
        order = ["b", "a", "b", "a"]
        for i, tenant in enumerate(order):
            sched.push(tenant, i)
        assert [sched.pop()[0] for _ in range(4)] == order
        assert sched.depth("a") == 0 and sched.depth("b") == 0


# -- work queue admission ------------------------------------------------------


class TestWorkQueueAdmission:
    def test_quota_blocks_only_the_offending_tenant(self):
        stats = PipelineStats(tenants=("default", "storm"))
        q = WorkQueue(stats=stats, quotas={"storm": 2})
        q.put("s0", tenant="storm")
        q.put("s1", tenant="storm")
        with pytest.raises(QueueFullTimeout):
            q.put("s2", timeout=0.05, tenant="storm")
        q.put("v0")  # another tenant's put is untouched
        snap = stats.snapshot()
        assert snap["queue"]["admission_waits"] == 1
        assert snap["tenants"]["storm"]["admission_waits"] == 1

    def test_service_readmits_quota_blocked_putter(self):
        q = WorkQueue(quotas={"storm": 1})
        q.put("s0", tenant="storm")
        done = threading.Event()

        def blocked_put():
            q.put("s1", timeout=5.0, tenant="storm")
            done.set()

        t = threading.Thread(target=blocked_put)
        t.start()
        try:
            assert not done.wait(0.1)  # parked at admission
            assert q.get() == "s0"
            assert done.wait(2.0)  # the freed quota admits the put
        finally:
            t.join()
        assert q.get() == "s1"

    def test_put_timeout_is_a_deadline_not_rearmed(self):
        """Regression: wakeups that do not admit the put must wait only
        on the remainder, not restart the full timeout."""
        q = WorkQueue(capacity=1)
        q.put("full")
        stop = threading.Event()

        def tease():
            while not stop.is_set():
                with q._lock:
                    q._not_full.notify_all()
                time.sleep(0.02)

        t = threading.Thread(target=tease)
        t.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(QueueFullTimeout):
                q.put("late", timeout=0.3)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            t.join()
        assert 0.25 <= elapsed < 2.0


# -- buffer pool: ledger, release fast path, deadline regression ---------------


class TestBufferPoolTenancy:
    def test_reservation_survives_a_storm(self):
        ledger = PoolLedger(3, {"victim": 1})
        pool = BufferPool(64 * KiB, 3 * 64 * KiB, ledger=ledger)
        held = [pool.acquire(tenant="storm"), pool.acquire(tenant="storm")]
        assert pool.try_acquire(tenant="storm") is None  # shared exhausted
        chunk = pool.try_acquire(tenant="victim")  # reservation intact
        assert chunk is not None
        pool.release(chunk)
        for c in held:
            pool.release(c)

    def test_release_emits_pool_pressure_event(self):
        pool = BufferPool(64 * KiB, 2 * 64 * KiB)
        chunk = pool.acquire()
        snap = pool.stats.snapshot()
        assert snap["pool"]["releases"] == 0
        pool.release(chunk)
        snap = pool.stats.snapshot()
        assert snap["pool"]["acquires"] == 1
        assert snap["pool"]["releases"] == 1

    def test_release_already_reset_skips_the_reset(self):
        pool = BufferPool(64 * KiB, 64 * KiB)
        chunk = pool.acquire()
        chunk.open_for("owner", 0)
        chunk.append(b"x" * 16, 0, 16)
        # The fast path trusts the caller: the dirty metadata survives.
        pool.release(chunk, already_reset=True)
        chunk = pool.acquire()
        assert chunk.valid == 16 and chunk.owner == "owner"
        # The default path scrubs it.
        chunk.reset()
        chunk.open_for("owner", 0)
        chunk.append(b"x" * 16, 0, 16)
        pool.release(chunk)
        chunk = pool.acquire()
        assert chunk.valid == 0 and chunk.owner is None
        pool.release(chunk)

    def test_acquire_timeout_is_a_deadline_not_rearmed(self):
        """Regression for the re-armed acquire timeout: a waiter racing
        with other acquirers must not block past the advertised bound."""
        pool = BufferPool(64 * KiB, 64 * KiB)
        pool.acquire()  # drain the single chunk and never release it
        stop = threading.Event()

        def tease():
            # Wake the waiter every 20 ms without ever freeing a chunk;
            # pre-fix, each wakeup restarted the full timeout and the
            # acquire below never returned.
            while not stop.is_set():
                with pool._lock:
                    pool._available.notify_all()
                time.sleep(0.02)

        t = threading.Thread(target=tease)
        t.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(ShutdownError):
                pool.acquire(timeout=0.3)
            elapsed = time.monotonic() - t0
        finally:
            stop.set()
            t.join()
        assert 0.25 <= elapsed < 2.0


# -- sim-plane tenant pool -----------------------------------------------------


class TestSimTenantPool:
    def test_parked_storm_cannot_delay_a_reserved_acquire(self):
        """Admission is per-tenant, not strict global FIFO: a storm
        parked on the full shared region must not queue ahead of a
        victim drawing on its own reservation."""
        sim = Simulator()
        pool = SimTenantPool(sim, PoolLedger(3, {"victim": 1}))
        order = []

        def storm():
            for i in range(3):  # third acquire parks (shared holds 2)
                yield pool.acquire("storm")
                order.append(("storm", i, sim.now))

        def victim():
            yield sim.timeout(1.0)  # arrive after the storm has parked
            yield pool.acquire("victim")
            order.append(("victim", 0, sim.now))
            yield sim.timeout(1.0)
            pool.release("victim")

        s = sim.spawn(storm())
        v = sim.spawn(victim())
        # The storm's parked acquire never resolves (the victim's
        # reserved-slot release does not grow the shared region), so run
        # to the victim's completion and abandon the storm.
        sim.run_until_complete([v])
        # The victim got its reserved chunk instantly at t=1.0 ...
        assert ("victim", 0, 1.0) in order
        # ... while the storm's third acquire stayed parked forever
        # (the victim's reserved-slot release does not admit it).
        assert ("storm", 2, mock.ANY) not in order
        assert s.alive and not v.alive
        assert pool.total_waits == 1

    def test_release_resumes_first_admissible_waiter(self):
        sim = Simulator()
        pool = SimTenantPool(sim, PoolLedger(2, {"victim": 1}))
        got = []

        def holder():
            yield pool.acquire("storm")  # takes the single shared chunk
            yield sim.timeout(5.0)
            pool.release("storm")

        def storm_waiter():
            yield pool.acquire("storm")  # parks: shared full
            got.append(("storm", sim.now))

        def victim_waiter():
            yield sim.timeout(1.0)
            yield pool.acquire("victim")  # reserved: no wait
            got.append(("victim", sim.now))

        sim.spawn(holder())
        sim.spawn(storm_waiter())
        sim.spawn(victim_waiter())
        sim.run()
        assert got == [("victim", 1.0), ("storm", 5.0)]


# -- the tenant-aware mount (threaded, end to end) -----------------------------


def _tenant_config() -> CRFSConfig:
    return CRFSConfig(
        chunk_size=64 * KiB,
        pool_size=8 * 64 * KiB,
        io_threads=2,
        tenants=(
            TenantSpec("a", weight=2, pool_reserved=2, patterns=("/a*",)),
            TenantSpec("b", weight=1, patterns=("/b*",)),
        ),
    )


class TestMultiTenantMount:
    def test_per_tenant_accounting_end_to_end(self):
        fs = CRFS(MemBackend(), _tenant_config())
        with fs:
            with fs.open("/a0.img") as f:
                f.write(b"\x00" * (2 * 64 * KiB))
            with fs.open("/b0.img") as f:
                f.write(b"\x00" * (64 * KiB))
            with fs.open("/other.img") as f:
                f.write(b"\x00" * (64 * KiB))
        tenants = fs.stats()["tenants"]
        assert set(tenants) == {"a", "b", "default"}
        assert tenants["a"]["chunks_written"] == 2
        assert tenants["a"]["bytes_out"] == 2 * 64 * KiB
        assert tenants["b"]["chunks_written"] == 1
        assert tenants["default"]["chunks_written"] == 1
        assert tenants["a"]["drain_waits"] == 1

    def test_explicit_tenant_overrides_patterns(self):
        fs = CRFS(MemBackend(), _tenant_config())
        with fs:
            with fs.open("/b0.img", tenant="a") as f:
                f.write(b"\x00" * (64 * KiB))
        tenants = fs.stats()["tenants"]
        assert tenants["a"]["chunks_written"] == 1
        assert tenants["b"]["chunks_written"] == 0

    def test_file_table_sharded_by_tenant(self):
        fs = CRFS(MemBackend(), _tenant_config())
        with fs:
            with fs.open("/a0.img"), fs.open("/a1.img"), fs.open("/b0.img"):
                assert fs.table.tenants() == ["a", "b"]
                assert fs.table.paths("a") == ["/a0.img", "/a1.img"]
                assert fs.table.paths("b") == ["/b0.img"]
                assert set(fs.table.paths()) == {"/a0.img", "/a1.img", "/b0.img"}
            assert fs.table.tenants() == []

    def test_single_tenant_mount_unchanged(self):
        fs = CRFS(MemBackend(), CRFSConfig(chunk_size=64 * KiB, pool_size=512 * KiB))
        with fs:
            with fs.open("/x.img") as f:
                f.write(b"\x00" * (3 * 64 * KiB))
        stats = fs.stats()
        assert set(stats["tenants"]) == {DEFAULT_TENANT}
        assert stats["tenants"]["default"]["chunks_written"] == 3
        assert stats["tenants"]["default"]["bytes_in"] == stats["bytes_in"]
