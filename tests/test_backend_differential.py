"""Differential property tests: MemBackend and LocalDirBackend must agree
on every operation sequence — one model checks the other."""

from hypothesis import given, settings, strategies as st

from repro.backends import LocalDirBackend, MemBackend
from repro.errors import CRFSError


@st.composite
def op_sequences(draw):
    """Random op scripts over a tiny namespace."""
    names = ["/a", "/b", "/d/x", "/d/y"]
    ops = []
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["mkdir_d", "write", "read", "unlink", "rename", "truncate", "stat"]
            )
        )
        path = draw(st.sampled_from(names))
        ops.append(
            (
                kind,
                path,
                draw(st.integers(min_value=0, max_value=5000)),  # offset/size
                draw(st.binary(min_size=0, max_size=300)),  # data
            )
        )
    return ops


def apply_ops(backend, ops):
    """Run the script, capturing results and error *types* per step."""
    log = []
    for kind, path, num, data in ops:
        try:
            if kind == "mkdir_d":
                backend.mkdir("/d")
                log.append(("ok", None))
            elif kind == "write":
                fd = backend.open(path)
                backend.pwrite(fd, data, num)
                backend.close(fd)
                log.append(("ok", None))
            elif kind == "read":
                fd = backend.open(path, create=False)
                out = backend.pread(fd, 64, num)
                backend.close(fd)
                log.append(("data", out))
            elif kind == "unlink":
                backend.unlink(path)
                log.append(("ok", None))
            elif kind == "rename":
                backend.rename(path, path + "_r")
                backend.rename(path + "_r", path)
                log.append(("ok", None))
            elif kind == "truncate":
                backend.truncate(path, num)
                log.append(("ok", None))
            elif kind == "stat":
                log.append(("size", backend.stat(path).size))
        except CRFSError as exc:
            log.append(("err", type(exc).__name__))
    return log


class TestBackendsAgree:
    @given(ops=op_sequences())
    @settings(max_examples=40, deadline=None)
    def test_mem_and_localdir_equivalent(self, ops, tmp_path_factory):
        mem = MemBackend()
        local = LocalDirBackend(str(tmp_path_factory.mktemp("diff")))
        assert apply_ops(mem, ops) == apply_ops(local, ops)


class TestReadConsistencyOption:
    def test_passthrough_may_lag(self):
        # documentation-by-test: with passthrough (paper mode), a read
        # racing buffered data may see stale bytes; no assertion on
        # staleness (timing-dependent), just that nothing breaks.
        from repro.config import CRFSConfig
        from repro.core import CRFS
        from repro.units import KiB

        cfg = CRFSConfig(chunk_size=64 * KiB, pool_size=256 * KiB, io_threads=1)
        with CRFS(MemBackend(), cfg) as fs:
            with fs.open("/f") as f:
                f.write(b"x" * 100)
                f.pread(100, 0)  # allowed; content unspecified pre-drain

    def test_read_your_writes_mode(self):
        from repro.config import CRFSConfig
        from repro.core import CRFS
        from repro.units import KiB

        cfg = CRFSConfig(
            chunk_size=64 * KiB,
            pool_size=256 * KiB,
            io_threads=1,
            read_passthrough=False,
        )
        with CRFS(MemBackend(), cfg) as fs:
            with fs.open("/f") as f:
                f.write(b"fresh bytes")
                # read-your-writes: flushes + drains before reading
                assert f.pread(11, 0) == b"fresh bytes"
                f.write(b"MORE")
                assert f.pread(4, 11) == b"MORE"
