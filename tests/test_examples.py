"""The examples must actually run — they are part of the public API
surface (and the README points at them)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "aggregated them into" in out
        assert "restart: image restored" in out

    def test_failure_injection(self):
        out = run_example("failure_injection.py")
        assert "close() raised" in out
        assert "retry succeeded" in out
        assert "intact on the backend" in out

    @pytest.mark.slow
    def test_tuning_sweep(self):
        out = run_example("tuning_sweep.py")
        assert "timing plane" in out
        assert "functional plane" in out
        assert "io threads" in out

    @pytest.mark.slow
    def test_mpi_checkpoint_class_b(self):
        out = run_example("mpi_checkpoint.py", "B")
        assert "LU.B.128" in out
        assert "ext3" in out and "lustre" in out and "nfs" in out

    @pytest.mark.slow
    def test_trace_analysis(self):
        out = run_example("trace_analysis.py")
        assert "Table I (this run)" in out
        assert "spread:" in out
        assert "seek fraction" in out
