"""Tests for the POSIX fd-style facade."""

import pytest

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.core.posix import (
    O_APPEND,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    SEEK_END,
    SEEK_SET,
    PosixShim,
)
from repro.errors import BadFileDescriptor, FileExists, FileNotFound
from repro.units import KiB


@pytest.fixture
def rig():
    backend = MemBackend()
    fs = CRFS(
        backend, CRFSConfig(chunk_size=4 * KiB, pool_size=32 * KiB, io_threads=2)
    ).mount()
    yield PosixShim(fs), backend
    fs.unmount()


class TestOpenFlags:
    def test_creat_and_write(self, rig):
        px, backend = rig
        fd = px.open("/f", O_WRONLY | O_CREAT)
        assert px.write(fd, b"hello") == 5
        px.close(fd)
        assert backend.read_file("/f") == b"hello"

    def test_open_missing_without_creat(self, rig):
        px, _ = rig
        with pytest.raises(FileNotFound):
            px.open("/missing", O_RDONLY)

    def test_excl_on_existing(self, rig):
        px, _ = rig
        fd = px.open("/f", O_CREAT)
        px.close(fd)
        with pytest.raises(FileExists):
            px.open("/f", O_CREAT | O_EXCL)

    def test_trunc_clears(self, rig):
        px, backend = rig
        fd = px.open("/f", O_CREAT)
        px.write(fd, b"old contents")
        px.close(fd)
        fd = px.open("/f", O_WRONLY | O_TRUNC)
        px.write(fd, b"new")
        px.close(fd)
        assert backend.read_file("/f") == b"new"

    def test_append_mode(self, rig):
        px, backend = rig
        fd = px.open("/f", O_CREAT)
        px.write(fd, b"start")
        px.fsync(fd)
        px.close(fd)
        fd = px.open("/f", O_WRONLY | O_APPEND)
        px.write(fd, b"+more")
        px.close(fd)
        assert backend.read_file("/f") == b"start+more"

    def test_fd_numbers_unique(self, rig):
        px, _ = rig
        fds = [px.open(f"/f{i}", O_CREAT) for i in range(5)]
        assert len(set(fds)) == 5
        assert px.open_fds() == 5
        for fd in fds:
            px.close(fd)
        assert px.open_fds() == 0


class TestIO:
    def test_pwrite_pread(self, rig):
        px, _ = rig
        fd = px.open("/f", O_CREAT)
        px.pwrite(fd, b"ABCD", 10)
        px.fsync(fd)
        assert px.pread(fd, 4, 10) == b"ABCD"
        px.close(fd)

    def test_lseek_and_read(self, rig):
        px, _ = rig
        fd = px.open("/f", O_CREAT)
        px.write(fd, b"0123456789")
        px.fsync(fd)
        assert px.lseek(fd, 4, SEEK_SET) == 4
        assert px.read(fd, 3) == b"456"
        assert px.lseek(fd, -2, SEEK_END) == 8
        assert px.read(fd, 2) == b"89"
        px.close(fd)

    def test_fstat_size(self, rig):
        px, _ = rig
        fd = px.open("/f", O_CREAT)
        px.write(fd, b"x" * 1234)
        assert px.fstat_size(fd) == 1234
        px.close(fd)

    def test_bad_fd(self, rig):
        px, _ = rig
        with pytest.raises(BadFileDescriptor):
            px.write(999, b"x")
        with pytest.raises(BadFileDescriptor):
            px.close(999)

    def test_double_close_rejected(self, rig):
        px, _ = rig
        fd = px.open("/f", O_CREAT)
        px.close(fd)
        with pytest.raises(BadFileDescriptor):
            px.close(fd)


class TestNamespace:
    def test_mkdir_listdir_rename_unlink(self, rig):
        px, _ = rig
        px.mkdir("/d")
        fd = px.open("/d/f", O_CREAT)
        px.close(fd)
        assert px.listdir("/d") == ["f"]
        px.rename("/d/f", "/d/g")
        assert px.listdir("/d") == ["g"]
        px.unlink("/d/g")
        px.rmdir("/d")
        assert px.listdir("/") == []


class TestBLCRThroughShim:
    def test_checkpoint_via_fd_interface(self, rig):
        """A writer that only knows fds can checkpoint through CRFS."""
        import io

        from repro.checkpoint import (
            BLCRWriter,
            ProcessImage,
            restore_image,
            verify_roundtrip,
        )

        px, backend = rig

        class FdFile:
            def __init__(self, px, fd):
                self.px, self.fd = px, fd

            def write(self, data):
                return self.px.write(self.fd, data)

        img = ProcessImage.synthesize(rank=1, image_size=500_000, seed=31)
        fd = px.open("/ckpt.img", O_WRONLY | O_CREAT | O_TRUNC)
        BLCRWriter().checkpoint(img, FdFile(px, fd))
        px.close(fd)
        restored = restore_image(io.BytesIO(backend.read_file("/ckpt.img")))
        verify_roundtrip(img, restored)
