"""Golden calibration anchors.

The experiment shape checks tolerate drift by design; these anchors pin
a handful of headline cells to the paper's absolute values within broad
bands, so a model edit that silently decalibrates the testbed fails CI
instead of shipping.  If you *intend* to recalibrate, update the bands
together with EXPERIMENTS.md.
"""

import pytest

from repro.experiments.common import run_cell

pytestmark = pytest.mark.slow

#: (stack, class, fs, crfs?) -> (paper seconds, relative tolerance)
GOLDEN = {
    ("MVAPICH2", "C", "ext3", False): (2.9, 0.5),
    ("MVAPICH2", "C", "ext3", True): (0.9, 0.7),
    ("MVAPICH2", "C", "lustre", False): (6.0, 0.5),
    ("MVAPICH2", "C", "lustre", True): (1.1, 0.7),
    ("MVAPICH2", "B", "nfs", False): (35.5, 0.4),
    ("MVAPICH2", "B", "nfs", True): (10.4, 0.5),
    ("MVAPICH2", "D", "lustre", False): (29.3, 0.4),
    ("MVAPICH2", "D", "lustre", True): (20.7, 0.4),
    ("MVAPICH2", "D", "nfs", False): (159.4, 0.4),
    ("MVAPICH2", "D", "nfs", True): (163.4, 0.4),
}


@pytest.mark.parametrize("cell", sorted(GOLDEN, key=str))
def test_golden_cell(cell):
    stack, cls, fs, crfs = cell
    paper, tol = GOLDEN[cell]
    measured = run_cell(stack, cls, fs, use_crfs=crfs).avg_local_time
    lo, hi = paper * (1 - tol), paper * (1 + tol)
    assert lo <= measured <= hi, (
        f"{stack} LU.{cls} {fs} {'CRFS' if crfs else 'native'}: "
        f"measured {measured:.2f}s outside [{lo:.2f}, {hi:.2f}] "
        f"(paper {paper}s ± {int(tol * 100)}%)"
    )
