"""Perf-regression harness: schema, determinism, comparator, CLI, and
the drain-time counters it reads from the stats registry.

The contract under test (per ISSUE 3's acceptance criteria): two
sim-plane runs at the same seed produce byte-identical metric sections,
``compare`` passes on identical artifacts, and an injected 20% goodput
drop (or any gated-counter drift) exits nonzero.
"""

import copy
import json

import pytest

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.perf.cli import main as perf_main
from repro.perf.compare import POLICIES, MetricPolicy, compare_artifacts, render_report
from repro.perf.runner import percentile, run_scenario_real, run_scenario_sim, run_suite
from repro.perf.scenarios import SCENARIOS, default_scenarios
from repro.perf.schema import (
    REQUIRED_METRICS,
    SCHEMA_VERSION,
    ArtifactError,
    artifact_filename,
    build_artifact,
    canonical_metrics,
    dump_artifact,
    load_artifact,
)
from repro.pipeline.stats import flatten_snapshot
from repro.units import KiB

SEED = 2011


@pytest.fixture(scope="module")
def sim_artifact():
    """One fast sim-plane artifact, shared by the read-only tests."""
    return build_artifact(
        run_suite(["sim"], seed=SEED, fast=True), seed=SEED, fast=True
    )


# -- schema -------------------------------------------------------------------


class TestSchema:
    def test_round_trip(self, sim_artifact, tmp_path):
        path = dump_artifact(sim_artifact, tmp_path / "BENCH_test.json")
        assert load_artifact(path) == sim_artifact

    def test_artifact_filename_is_compact_stamp(self):
        assert artifact_filename("2026-08-05T12:00:00Z") == "BENCH_20260805T120000Z.json"

    def test_every_required_metric_present(self, sim_artifact):
        for name, metrics in sim_artifact["planes"]["sim"].items():
            for metric in REQUIRED_METRICS:
                assert metric in metrics, (name, metric)
            assert "stats" in metrics

    def test_unknown_schema_version_rejected(self, sim_artifact, tmp_path):
        bad = copy.deepcopy(sim_artifact)
        bad["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ArtifactError, match="schema version"):
            load_artifact(path)

    def test_missing_metric_rejected(self, sim_artifact):
        bad = copy.deepcopy(sim_artifact)
        del bad["planes"]["sim"]["single_writer_seq"]["goodput_mib_s"]
        with pytest.raises(ArtifactError, match="goodput_mib_s"):
            dump_artifact(bad, "/dev/null")

    def test_non_json_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(ArtifactError, match="not JSON"):
            load_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such artifact"):
            load_artifact(tmp_path / "absent.json")


# -- determinism --------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_sim_runs_byte_identical(self, sim_artifact):
        again = build_artifact(
            run_suite(["sim"], seed=SEED, fast=True), seed=SEED, fast=True
        )
        assert canonical_metrics(sim_artifact) == canonical_metrics(again)

    def test_different_seed_changes_metrics(self, sim_artifact):
        other = build_artifact(
            run_suite(["sim"], seed=SEED + 1, fast=True), seed=SEED + 1, fast=True
        )
        assert canonical_metrics(sim_artifact) != canonical_metrics(other)

    def test_scenario_sizes_are_seed_deterministic(self):
        s = SCENARIOS["single_writer_seq"]
        assert s.sizes(SEED, 0, True) == s.sizes(SEED, 0, True)
        assert s.sizes(SEED, 0, True) != s.sizes(SEED, 1, True)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="nonesuch"):
            default_scenarios(["nonesuch"])


# -- comparator ---------------------------------------------------------------


class TestCompare:
    def test_identical_artifacts_pass(self, sim_artifact):
        report = compare_artifacts(sim_artifact, sim_artifact)
        assert report.ok
        assert not report.regressions
        assert "gate: PASS" in render_report(report)

    def test_goodput_drop_20pct_fails(self, sim_artifact):
        slower = copy.deepcopy(sim_artifact)
        slower["planes"]["sim"]["single_writer_seq"]["goodput_mib_s"] *= 0.8
        report = compare_artifacts(slower, sim_artifact)
        assert not report.ok
        assert [(d.scenario, d.metric) for d in report.regressions] == [
            ("single_writer_seq", "goodput_mib_s")
        ]
        assert "REGRESSION" in render_report(report)

    def test_goodput_drop_within_tolerance_passes(self, sim_artifact):
        slightly = copy.deepcopy(sim_artifact)
        slightly["planes"]["sim"]["single_writer_seq"]["goodput_mib_s"] *= 0.95
        assert compare_artifacts(slightly, sim_artifact).ok

    def test_goodput_improvement_passes(self, sim_artifact):
        faster = copy.deepcopy(sim_artifact)
        faster["planes"]["sim"]["single_writer_seq"]["goodput_mib_s"] *= 1.5
        assert compare_artifacts(faster, sim_artifact).ok

    def test_exact_counter_drift_fails(self, sim_artifact):
        drifted = copy.deepcopy(sim_artifact)
        drifted["planes"]["sim"]["fsync_heavy"]["chunks_written"] += 1
        report = compare_artifacts(drifted, sim_artifact)
        assert not report.ok
        assert any(d.metric == "chunks_written" for d in report.regressions)

    def test_missing_scenario_fails_gate(self, sim_artifact):
        shrunk = copy.deepcopy(sim_artifact)
        del shrunk["planes"]["sim"]["degraded_retry"]
        report = compare_artifacts(shrunk, sim_artifact)
        assert not report.ok
        assert report.missing == ["sim/degraded_retry"]

    def test_real_plane_is_advisory(self, sim_artifact):
        base = copy.deepcopy(sim_artifact)
        base["planes"]["real"] = copy.deepcopy(base["planes"]["sim"])
        worse = copy.deepcopy(base)
        worse["planes"]["real"]["single_writer_seq"]["goodput_mib_s"] *= 0.5
        report = compare_artifacts(worse, base)
        assert report.ok  # real-plane drop does not gate
        assert any(d.metric == "goodput_mib_s" for d in report.advisories)

    def test_seed_mismatch_fails_gate(self, sim_artifact):
        other = copy.deepcopy(sim_artifact)
        other["seed"] = SEED + 1
        report = compare_artifacts(other, sim_artifact)
        assert not report.ok
        assert report.mismatches

    def test_every_required_metric_has_a_policy(self):
        assert set(REQUIRED_METRICS) <= set(POLICIES)

    def test_policy_directions(self):
        assert MetricPolicy("higher", 0.1).regressed(100.0, 80.0)
        assert not MetricPolicy("higher", 0.1).regressed(100.0, 95.0)
        assert MetricPolicy("lower", 0.1).regressed(1.0, 1.2)
        assert not MetricPolicy("lower", 0.1, abs_floor=0.5).regressed(1.0, 1.2)
        assert MetricPolicy("exact").regressed(3, 4)
        with pytest.raises(ValueError, match="direction"):
            MetricPolicy("sideways").regressed(1.0, 1.0)


# -- runner internals ---------------------------------------------------------


class TestRunner:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 100) == 4.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 95) == 7.0

    def test_real_plane_scenario_runs(self):
        metrics = run_scenario_real(SCENARIOS["single_writer_seq"], SEED, fast=True)
        assert metrics["bytes_in"] == SCENARIOS["single_writer_seq"].total_bytes(True)
        assert metrics["goodput_mib_s"] > 0
        assert metrics["stats"]["io_errors"] == 0

    def test_degraded_scenario_exercises_resilience(self):
        metrics = run_scenario_sim(SCENARIOS["degraded_retry"], SEED, fast=True)
        resilience = metrics["stats"]["resilience"]
        assert resilience["chunks_retried"] > 0
        assert resilience["breaker_trips"] >= 1
        assert resilience["breaker_recoveries"] >= 1
        assert metrics["stats"]["io_errors"] == 0  # outage outlasted by retries

    def test_fsync_scenario_counts_extra_drains(self):
        plain = run_scenario_sim(SCENARIOS["single_writer_seq"], SEED, fast=True)
        fsync = run_scenario_sim(SCENARIOS["fsync_heavy"], SEED, fast=True)
        assert fsync["drain_waits"] > plain["drain_waits"]

    def test_unknown_plane_rejected(self):
        with pytest.raises(KeyError, match="quantum"):
            run_suite(["quantum"], seed=SEED, fast=True)


# -- drain counters (satellite: stats surface, not caller re-timing) ----------


class TestDrainCounters:
    def test_functional_plane_drain_section(self):
        fs = CRFS(MemBackend(), CRFSConfig(chunk_size=16 * KiB, pool_size=64 * KiB))
        with fs:
            with fs.open("/a") as f:
                f.write(b"x" * (40 * KiB))
        stats = fs.stats()
        # one close drain + one unmount sweep; shutdown emitted exactly once
        assert stats["drain"]["waits"] >= 1
        assert stats["drain"]["waits_blocked"] >= 0
        assert stats["drain"]["time_total"] >= 0.0
        assert stats["drain"]["time_max"] <= stats["drain"]["time_total"]
        assert stats["drain"]["shutdown_drains"] == 1

    def test_sim_plane_drain_deterministic(self):
        a = run_scenario_sim(SCENARIOS["fsync_heavy"], SEED, fast=True)
        b = run_scenario_sim(SCENARIOS["fsync_heavy"], SEED, fast=True)
        assert a["drain_time_s"] == b["drain_time_s"]
        assert a["drain_time_s"] > 0.0

    def test_flatten_snapshot(self):
        flat = flatten_snapshot({"a": 1, "pool": {"waits": 2, "sub": {"x": 3}}})
        assert flat == {"a": 1, "pool.waits": 2, "pool.sub.x": 3}


# -- CLI ----------------------------------------------------------------------


class TestCLI:
    def test_run_compare_update_baseline_loop(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        baseline = tmp_path / "baseline.json"
        assert (
            perf_main(
                ["run", "--plane", "sim", "--fast", "--out", str(out),
                 "--scenario", "single_writer_seq"]
            )
            == 0
        )
        artifacts = sorted(out.glob("BENCH_*.json"))
        assert len(artifacts) == 1
        assert (
            perf_main(
                ["update-baseline", "--fast", "--baseline", str(baseline),
                 "--from-artifact", str(artifacts[0])]
            )
            == 0
        )
        assert (
            perf_main(["compare", str(artifacts[0]), "--baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()

    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        metrics = run_scenario_sim(SCENARIOS["single_writer_seq"], SEED, fast=True)
        base = build_artifact(
            {"sim": {"single_writer_seq": metrics}}, seed=SEED, fast=True
        )
        slower = copy.deepcopy(base)
        slower["planes"]["sim"]["single_writer_seq"]["goodput_mib_s"] *= 0.8
        base_path = dump_artifact(base, tmp_path / "base.json")
        new_path = dump_artifact(slower, tmp_path / "new.json")
        assert perf_main(["compare", str(new_path), "--baseline", str(base_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_update_baseline_refuses_simless_artifact(self, tmp_path, capsys):
        metrics = run_scenario_real(SCENARIOS["single_writer_seq"], SEED, fast=True)
        artifact = build_artifact(
            {"real": {"single_writer_seq": metrics}}, seed=SEED, fast=True
        )
        path = dump_artifact(artifact, tmp_path / "realonly.json")
        assert (
            perf_main(
                ["update-baseline", "--from-artifact", str(path),
                 "--baseline", str(tmp_path / "b.json")]
            )
            == 2
        )
        capsys.readouterr()


# -- check-baseline: structural gate on the committed artifact ----------------


class TestCheckBaseline:
    def test_committed_baseline_is_structurally_sound(self):
        from repro.perf.cli import check_baseline

        baseline = load_artifact("benchmarks/baselines/baseline.json")
        assert check_baseline(baseline) == []

    def test_cli_passes_on_committed_baseline(self, capsys):
        assert perf_main(["check-baseline"]) == 0
        assert "baseline ok" in capsys.readouterr().out

    def test_missing_scenario_is_reported_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        from repro.perf.cli import check_baseline

        baseline = load_artifact("benchmarks/baselines/baseline.json")
        broken = copy.deepcopy(baseline)
        del broken["planes"]["sim"]["restart_storm"]
        problems = check_baseline(broken)
        assert any("restart_storm" in p and "missing" in p for p in problems)
        path = dump_artifact(broken, tmp_path / "broken.json")
        assert perf_main(["check-baseline", "--baseline", str(path)]) == 1
        assert "restart_storm" in capsys.readouterr().err

    def test_unknown_pinned_scenario_is_reported(self):
        from repro.perf.cli import check_baseline

        baseline = copy.deepcopy(
            load_artifact("benchmarks/baselines/baseline.json")
        )
        baseline["planes"]["sim"]["mystery"] = copy.deepcopy(
            baseline["planes"]["sim"]["single_writer_seq"]
        )
        assert any(
            "mystery" in p for p in check_baseline(baseline)
        )

    def test_disengaged_machinery_is_reported(self):
        from repro.perf.cli import check_baseline

        baseline = copy.deepcopy(
            load_artifact("benchmarks/baselines/baseline.json")
        )
        baseline["planes"]["sim"]["batched_writeback"]["stats"]["batch"][
            "batches"
        ] = 0
        del baseline["planes"]["sim"]["restart_storm"]["stats"]["read"][
            "window_grown"
        ]
        problems = check_baseline(baseline)
        assert any("gather never coalesced" in p for p in problems)
        assert any("window_grown" in p for p in problems)

    def test_unreadable_baseline_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "absent.json"
        assert perf_main(["check-baseline", "--baseline", str(missing)]) == 2
        capsys.readouterr()


# -- restart storm: adaptive readahead under contention -----------------------


class TestRestartStorm:
    def test_restore_metrics_surface_on_both_planes(self):
        sim = run_scenario_sim(SCENARIOS["restart_storm"], SEED, fast=True)
        real = run_scenario_real(SCENARIOS["restart_storm"], SEED, fast=True)
        for m in (sim, real):
            assert m["restore_span_s"] > 0
            assert m["restore_latency_max_s"] > 0
            # span covers first restart to last byte, so it bounds the
            # slowest single rank's restore from above
            assert m["restore_span_s"] >= m["restore_latency_max_s"]
        # every rank's image came back through the read path
        assert sim["stats"]["read"]["bytes_read"] == sim["bytes_in"]

    def test_adaptive_beats_static_and_off_under_contention(self):
        import dataclasses

        storm = SCENARIOS["restart_storm"]
        adaptive = run_scenario_sim(storm, SEED, fast=True)
        static = run_scenario_sim(
            dataclasses.replace(
                storm, config=storm.config.with_(readahead_adaptive=False)
            ),
            SEED,
            fast=True,
        )
        off = run_scenario_sim(
            dataclasses.replace(
                storm,
                config=storm.config.with_(
                    readahead_chunks=0, readahead_adaptive=False
                ),
            ),
            SEED,
            fast=True,
        )
        assert adaptive["restore_span_s"] < static["restore_span_s"]
        assert adaptive["restore_span_s"] < off["restore_span_s"]
        # the mis-tuned static window thrashes; the clamp does not
        assert adaptive["stats"]["read"]["prefetch_wasted"] == 0
        assert static["stats"]["read"]["prefetch_wasted"] > 0

    def test_storm_scenario_is_seed_deterministic(self):
        a = run_scenario_sim(SCENARIOS["restart_storm"], SEED, fast=True)
        b = run_scenario_sim(SCENARIOS["restart_storm"], SEED, fast=True)
        assert a["restore_span_s"] == b["restore_span_s"]
        assert a["stats"]["read"] == b["stats"]["read"]


# -- committed baseline stays reproducible ------------------------------------


class TestCommittedBaseline:
    def test_committed_baseline_loads_and_gates_green(self):
        """The repo's own baseline must match what this tree produces —
        the same check CI's perf job runs (full sizes, default seed)."""
        baseline = load_artifact("benchmarks/baselines/baseline.json")
        fresh = build_artifact(
            run_suite(["sim"], seed=baseline["seed"], fast=baseline["fast"]),
            seed=baseline["seed"],
            fast=baseline["fast"],
        )
        report = compare_artifacts(fresh, baseline)
        assert report.ok, render_report(report)


# -- hierarchical staging acceptance ------------------------------------------


class TestTieredStagingGoodput:
    """The staging hierarchy's reason to exist: writers complete at
    tier-0 (staging) speed while the pump migrates in the background.
    Same scenario, same seed, same workload — only the backend chain
    differs — so the elapsed ratio is a pure staging win."""

    def test_staging_beats_direct_deep_writes_2x(self):
        import dataclasses

        staged_scenario = SCENARIOS["tiered_staging"]
        # identical name => identical seed-derived write streams; the
        # twin just writes straight into the deep NFS model
        direct_scenario = dataclasses.replace(staged_scenario, sim_backend="nfs")
        staged = run_scenario_sim(staged_scenario, SEED, fast=True)
        direct = run_scenario_sim(direct_scenario, SEED, fast=True)
        assert direct["elapsed_s"] / staged["elapsed_s"] >= 2.0

        # the win is real only if the deep tier actually received the
        # image: the drain settled every chunk, none stranded
        tiers = staged["stats"]["tiers"]["per_tier"]
        assert tiers["1"]["chunks_staged"] > 0
        assert tiers["1"]["chunks_stranded"] == 0
        assert staged["stats"]["tiers"]["levels"] == 2

    def test_tiered_scenario_is_seed_deterministic(self):
        a = run_scenario_sim(SCENARIOS["tiered_staging"], SEED, fast=True)
        b = run_scenario_sim(SCENARIOS["tiered_staging"], SEED, fast=True)
        assert a["stats"]["tiers"] == b["stats"]["tiers"]
        assert a["elapsed_s"] == b["elapsed_s"]
