"""Unit tests for the restart readahead cache (functional plane).

Covers the knobs, the accounting, and the two safety contracts the
design leans on:

* **shutdown safety** — ``IOThreadPool.shutdown`` must never deadlock
  with prefetches queued behind a full pool (prefetch uses
  ``try_acquire`` and is dropped when starved; teardown marks in-flight
  entries evicted and the worker releases the buffer itself);
* **breaker bypass** — with the circuit breaker open the cache is
  bypassed entirely: reads degrade to the synchronous passthrough.
"""

import threading
import time

import pytest

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB

CHUNK = 64 * KiB


def ra_config(**over):
    base = dict(
        chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        read_cache_chunks=4, readahead_chunks=2,
    )
    base.update(over)
    return CRFSConfig(**base)


def image(nchunks):
    return bytes((i % 251) + 1 for i in range(nchunks * CHUNK))


class TestConfigKnobs:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="read_cache_chunks"):
            CRFSConfig(read_cache_chunks=-1)
        with pytest.raises(ValueError, match="readahead_chunks"):
            CRFSConfig(readahead_chunks=-1)

    def test_readahead_requires_cache(self):
        with pytest.raises(ValueError, match="requires a read cache"):
            CRFSConfig(readahead_chunks=2)

    def test_window_must_fit_inside_cache(self):
        with pytest.raises(ValueError, match="must exceed"):
            ra_config(read_cache_chunks=2, readahead_chunks=2)

    def test_cache_bounded_by_pool(self):
        with pytest.raises(ValueError, match="exceeds"):
            CRFSConfig(
                chunk_size=CHUNK, pool_size=2 * CHUNK,
                read_cache_chunks=3, readahead_chunks=1,
            )
        # equality is allowed: the cache may use the whole pool
        CRFSConfig(
            chunk_size=CHUNK, pool_size=2 * CHUNK,
            read_cache_chunks=2, readahead_chunks=1,
        )

    def test_default_is_off(self):
        cfg = CRFSConfig()
        assert cfg.read_cache_chunks == 0
        assert cfg.readahead_chunks == 0
        assert cfg.read_passthrough is True


class TestCacheServesReads:
    def test_sequential_readback_hits_cache(self):
        data = image(4)
        fs = CRFS(MemBackend(), ra_config())
        with fs, fs.open("/ckpt") as f:
            f.write(data)
            f.fsync()
            got = b"".join(f.pread(CHUNK, i * CHUNK) for i in range(4))
            stats = fs.stats()
        assert got == data
        read = stats["read"]
        assert read["bytes_read"] == len(data)
        assert read["misses"] >= 1
        assert read["hits"] >= 1
        assert read["hits"] + read["misses"] >= 4

    def test_cache_serves_repeat_reads_without_backend(self):
        data = image(2)
        mem = MemBackend()
        fs = CRFS(mem, ra_config())
        with fs, fs.open("/ckpt") as f:
            f.write(data)
            f.fsync()
            first = f.pread(CHUNK, 0)
            before = fs.stats()["read"]["misses"]
            again = f.pread(CHUNK, 0)  # same chunk: resident, pure hit
            after = fs.stats()["read"]
        assert first == again == data[:CHUNK]
        assert after["misses"] == before
        assert after["hits"] >= 1

    def test_unaligned_requests_span_chunks(self):
        data = image(3)
        fs = CRFS(MemBackend(), ra_config())
        with fs, fs.open("/ckpt") as f:
            f.write(data)
            f.fsync()
            # a read straddling two chunk boundaries
            lo = CHUNK // 2
            got = f.pread(2 * CHUNK, lo)
        assert got == data[lo : lo + 2 * CHUNK]

    def test_reads_past_eof_clamp(self):
        data = image(1)
        fs = CRFS(MemBackend(), ra_config())
        with fs, fs.open("/ckpt") as f:
            f.write(data)
            f.fsync()
            assert f.pread(4 * CHUNK, 0) == data
            assert f.pread(CHUNK, 10 * CHUNK) == b""


class TestPoolStarvation:
    def test_starved_prefetch_is_dropped_not_blocked(self):
        """A writer's open partial chunk pins a pool buffer; with a
        2-chunk pool the demand fetch takes the last one and the
        prefetch finds the pool empty — it must drop, not wait."""
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=2 * CHUNK, io_threads=1,
            read_cache_chunks=2, readahead_chunks=1,
        )
        data = image(2)
        fs = CRFS(MemBackend(), cfg)
        with fs:
            with fs.open("/ckpt") as f:
                f.write(data)
                f.fsync()
                with fs.open("/other") as g:
                    g.write(b"x" * (CHUNK // 2))  # pins one pool chunk
                    assert f.pread(CHUNK, 0) == data[:CHUNK]
                    # the issued prefetch of chunk 1 found no free
                    # buffer; the worker resolves it as a drop
                    deadline = time.monotonic() + 10
                    while True:
                        read = fs.stats()["read"]
                        if read["prefetched"] + read["prefetch_dropped"] >= 1:
                            break
                        assert time.monotonic() < deadline, read
                        time.sleep(0.001)
                    assert read["prefetch_dropped"] >= 1
                    # dropped silently: the data still arrives on demand
                    assert f.pread(CHUNK, CHUNK) == data[CHUNK:]

    @pytest.mark.timeout(60)
    def test_full_cache_sheds_for_a_starved_writer(self):
        """Cache capacity == pool capacity: once readback populates
        every entry, the cache leases the whole pool.  A write into
        uncached territory must shed those leases and proceed — the
        regression was a 30 s pool stall mid-write that poisoned the
        planner and broke the file's close path."""
        data = image(4)
        fs = CRFS(MemBackend(), ra_config())
        with fs:
            f = fs.open("/ckpt")
            f.write(data)
            f.fsync()
            for i in range(4):
                assert f.pread(CHUNK, i * CHUNK) == data[i * CHUNK : (i + 1) * CHUNK]
            # settle: the cache now pins all four pool chunks
            deadline = time.monotonic() + 10
            while fs.pool.free_chunks > 0:
                assert time.monotonic() < deadline, fs.stats()["read"]
                time.sleep(0.001)
            t0 = time.monotonic()
            f.write(b"Y" * CHUNK)  # appends past the cached range
            f.fsync()
            assert time.monotonic() - t0 < 10.0  # no pool-deadline stall
            assert f.pread(CHUNK, 4 * CHUNK) == b"Y" * CHUNK
            f.close()
            assert fs.pool.free_chunks == 4  # every lease returned

    @pytest.mark.timeout(60)
    def test_sim_plane_sheds_instead_of_deadlocking_the_clock(self):
        """Same shape on the virtual clock: with no real pool deadline
        to fire, a cache pinning the whole pool would deadlock the
        simulator outright unless the writer sheds the leases."""
        from repro.sim import SharedBandwidth, Simulator
        from repro.simcrfs import SimCRFS
        from repro.simio.nullfs import NullSimFilesystem
        from repro.simio.params import DEFAULT_HW
        from repro.util.rng import rng_for

        sim = Simulator()
        hw = DEFAULT_HW
        crfs = SimCRFS(
            sim, hw, ra_config(),
            NullSimFilesystem(sim, hw, rng_for(1, "shed/backend")),
            SharedBandwidth(sim, hw.membus_bandwidth),
        )

        def proc():
            f = crfs.open("/ckpt")
            yield from crfs.write(f, 4 * CHUNK)
            yield from crfs.fsync(f)
            crfs.seek(f, 0)
            for _ in range(4):
                yield from crfs.read(f, CHUNK)
            yield from crfs.write(f, CHUNK)  # must shed, not park forever
            yield from crfs.fsync(f)
            yield from crfs.close(f)

        sim.run_until_complete([sim.spawn(proc())])
        crfs.shutdown()
        assert crfs.stats()["open_files"] == 0


class TestShutdownSafety:
    @pytest.mark.timeout(30)
    def test_shutdown_with_queued_prefetches_does_not_deadlock(self):
        """Unmount with prefetches still queued behind a 2-chunk pool:
        teardown must complete (the regression this suite pins)."""
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=2 * CHUNK, io_threads=1,
            read_cache_chunks=2, readahead_chunks=1,
        )
        data = image(6)
        fs = CRFS(MemBackend(), cfg)
        with fs:
            f = fs.open("/ckpt")
            f.write(data)
            f.fsync()
            for i in range(6):
                f.pread(CHUNK, i * CHUNK)
            f.close()  # clear() with prefetches possibly still queued
        # unmount returned: no deadlock, and no buffer leaked
        assert fs.pool.free_chunks == fs.pool.nchunks

    @pytest.mark.timeout(30)
    def test_shutdown_with_inflight_prefetch_does_not_deadlock(self):
        """Close while a prefetch pread is *in flight*: clear() marks the
        entry evicted and the worker must release the buffer itself."""
        release = threading.Event()
        started = threading.Event()

        class SlowReads(MemBackend):
            def pread_into(self, handle, buf, offset):
                if offset >= CHUNK:  # only prefetches (demand is chunk 0)
                    started.set()
                    assert release.wait(timeout=20)
                return super().pread_into(handle, buf, offset)

        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=2 * CHUNK, io_threads=1,
            read_cache_chunks=2, readahead_chunks=1,
        )
        data = image(2)
        fs = CRFS(SlowReads(), cfg)
        fs.mount()
        f = fs.open("/ckpt")
        f.write(data)
        f.fsync()
        assert f.pread(CHUNK, 0) == data[:CHUNK]
        assert started.wait(timeout=20)  # the chunk-1 prefetch is in flight
        closer = threading.Thread(target=f.close)
        closer.start()
        release.set()
        closer.join(timeout=20)
        assert not closer.is_alive()
        fs.unmount()
        assert fs.pool.free_chunks == fs.pool.nchunks


class TestBreakerBypass:
    def test_degraded_mode_bypasses_cache(self):
        data = image(2)
        fs = CRFS(MemBackend(), ra_config(breaker_threshold=1))
        with fs, fs.open("/ckpt") as f:
            f.write(data)
            f.fsync()
            fs.health.record_failure()  # trip the breaker directly
            assert fs.health.degraded
            assert f.pread(CHUNK, 0) == data[:CHUNK]
            read = fs.stats()["read"]
        # passthrough: counted as a read, but the cache never engaged
        assert read["reads"] == 1
        assert read["hits"] == read["misses"] == 0
        assert read["prefetched"] == read["prefetch_dropped"] == 0


class TestEvictionAccounting:
    def test_long_scan_evicts_without_leaking(self):
        """An 8-chunk scan through a 4-entry cache churns the LRU; every
        evicted buffer must return to the pool by unmount."""
        data = image(8)
        fs = CRFS(MemBackend(), ra_config(pool_size=4 * CHUNK))
        with fs:
            with fs.open("/ckpt") as f:
                f.write(data)
                f.fsync()
                got = b"".join(f.pread(CHUNK, i * CHUNK) for i in range(8))
            stats = fs.stats()
        assert got == data
        assert fs.pool.free_chunks == fs.pool.nchunks
        read = stats["read"]
        assert read["prefetched"] + read["prefetch_dropped"] >= 1
        assert read["prefetch_wasted"] <= read["prefetched"]
