"""Property suite for buffer-type round-trips at the backend boundary.

The zero-copy refactor pushes ``memoryview``s through the whole data
path, so the Backend contract must hold for *every* buffer flavour a
caller can hand over: ``bytes``, ``bytearray``, and ``memoryview`` —
including views carved at a non-zero offset out of a larger buffer,
which is exactly what the pipeline produces (chunk payloads, coalesced
writeback iovecs).  For each flavour, on every backend:

* ``pwrite`` then ``pread`` returns byte-identical data;
* ``pread_into`` fills a caller buffer with the same bytes;
* the aliasing contract holds — mutating the source ``bytearray``
  immediately after ``pwrite`` returns never changes what was stored.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import LocalDirBackend, MemBackend, TieredBackend

pytestmark = pytest.mark.property

#: Small enough for Hypothesis throughput, large enough to cross the
#: boundary-handling paths (sparse gaps, overlapping rewrites).
MAX_LEN = 2048
MAX_OFF = 4096

_payloads = st.binary(min_size=1, max_size=MAX_LEN)
_offsets = st.integers(min_value=0, max_value=MAX_OFF)
_flavours = st.sampled_from(["bytes", "bytearray", "view", "sliced_view"])


def as_flavour(payload: bytes, flavour: str):
    """``payload`` wrapped as the requested buffer type.

    ``sliced_view`` embeds the payload at a non-zero offset of a larger
    buffer and returns the interior slice — the backend must honour the
    view's bounds, not the underlying object's.
    """
    if flavour == "bytes":
        return payload
    if flavour == "bytearray":
        return bytearray(payload)
    if flavour == "view":
        return memoryview(bytearray(payload))
    framed = bytearray(b"\xaa" * 16) + bytearray(payload) + bytearray(b"\xbb" * 16)
    return memoryview(framed)[16 : 16 + len(payload)]


def make_backend(kind: str, tmp_path):
    if kind == "mem":
        return MemBackend()
    if kind == "localdir":
        return LocalDirBackend(str(tmp_path / "root"))
    return TieredBackend([MemBackend(), MemBackend()])


def close_backend(backend):
    if isinstance(backend, TieredBackend):
        backend.shutdown()


# Parametrized via the mark (not a fixture): Hypothesis re-runs the
# test body per generated example, and a function-scoped fixture would
# not be re-created between examples — the tests below therefore build
# and tear down their backend inside the body.
@pytest.mark.parametrize("backend_kind", ["mem", "localdir", "tiered"])
class TestBufferRoundTrip:
    @given(
        writes=st.lists(
            st.tuples(_payloads, _offsets, _flavours), min_size=1, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_pwrite_pread_identity_for_every_flavour(
        self, backend_kind, tmp_path_factory, writes
    ):
        backend = make_backend(backend_kind, tmp_path_factory.mktemp("rt"))
        try:
            fd = backend.open("/f")
            shadow = bytearray()
            for payload, offset, flavour in writes:
                if offset > len(shadow):
                    shadow.extend(b"\x00" * (offset - len(shadow)))
                shadow[offset : offset + len(payload)] = payload
                assert (
                    backend.pwrite(fd, as_flavour(payload, flavour), offset)
                    == len(payload)
                )
            assert backend.file_size(fd) == len(shadow)
            assert backend.pread(fd, len(shadow), 0) == bytes(shadow)
            buf = bytearray(len(shadow))
            assert backend.pread_into(fd, buf, 0) == len(shadow)
            assert buf == shadow
            backend.close(fd)
        finally:
            close_backend(backend)

    @given(payload=_payloads, offset=_offsets, flavour=_flavours)
    @settings(max_examples=30, deadline=None)
    def test_mutating_the_source_after_pwrite_is_harmless(
        self, backend_kind, tmp_path_factory, payload, offset, flavour
    ):
        if flavour == "bytes":
            flavour = "bytearray"  # bytes is immutable; nothing to mutate
        backend = make_backend(backend_kind, tmp_path_factory.mktemp("alias"))
        try:
            fd = backend.open("/f")
            src = as_flavour(payload, flavour)
            backend.pwrite(fd, src, offset)
            mutable = src.obj if isinstance(src, memoryview) else src
            for i in range(len(mutable)):
                mutable[i] = (mutable[i] + 1) % 256
            assert backend.pread(fd, len(payload), offset) == payload
            backend.close(fd)
        finally:
            close_backend(backend)

    @given(payload=_payloads, offset=_offsets)
    @settings(max_examples=30, deadline=None)
    def test_pwritev_of_sliced_views_round_trips(
        self, backend_kind, tmp_path_factory, payload, offset
    ):
        # The coalesced-writeback shape: one vectored write of interior
        # slices, back-to-back from ``offset``.
        backend = make_backend(backend_kind, tmp_path_factory.mktemp("vec"))
        try:
            fd = backend.open("/f")
            cut = len(payload) // 2
            views = [
                as_flavour(payload[:cut], "sliced_view"),
                as_flavour(payload[cut:], "sliced_view"),
            ]
            views = [v for v in views if len(v)]
            assert backend.pwritev(fd, views, offset) == len(payload)
            assert backend.pread(fd, len(payload), offset) == payload
            backend.close(fd)
        finally:
            close_backend(backend)
