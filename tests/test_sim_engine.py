"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.engine import Timeout


class TestClockAndTimeouts:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_single_timeout(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(3.5)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.result == 3.5
        assert sim.now == 3.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.result == 3.0

    def test_timeout_value_passes_through(self):
        sim = Simulator()

        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        p = sim.spawn(proc())
        sim.run()
        assert p.result == "hello"

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_parallel_processes_interleave(self):
        sim = Simulator()
        order = []

        def proc(name, delay):
            yield sim.timeout(delay)
            order.append((name, sim.now))

        sim.spawn(proc("slow", 5.0))
        sim.spawn(proc("fast", 1.0))
        sim.run()
        assert order == [("fast", 1.0), ("slow", 5.0)]

    def test_fifo_order_among_simultaneous_events(self):
        sim = Simulator()
        order = []

        def proc(name):
            yield sim.timeout(1.0)
            order.append(name)

        for i in range(5):
            sim.spawn(proc(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestRunControl:
    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(10.0)
            return "done"

        p = sim.spawn(proc())
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert p.alive
        sim.run()
        assert p.result == "done"
        assert sim.now == 10.0

    def test_schedule_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        h = sim.schedule(1.0, fired.append, "x")
        h.cancel()
        sim.run()
        assert fired == []

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]


class TestJoinAndErrors:
    def test_join_waits_for_child(self):
        sim = Simulator()

        def child():
            yield sim.timeout(5.0)
            return 42

        def parent():
            c = sim.spawn(child())
            got = yield c
            return (got, sim.now)

        p = sim.spawn(parent())
        sim.run()
        assert p.result == (42, 5.0)

    def test_join_already_finished_child(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            return "early"

        def parent(c):
            yield sim.timeout(10.0)
            got = yield c
            return got

        c = sim.spawn(child())
        p = sim.spawn(parent(c))
        sim.run()
        assert p.result == "early"

    def test_child_error_propagates_to_joiner(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def parent():
            c = sim.spawn(child())
            try:
                yield c
            except ValueError as e:
                return f"caught {e}"

        p = sim.spawn(parent())
        sim.run()
        assert p.result == "caught boom"

    def test_unobserved_error_raises_at_end(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("unseen")

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="unobserved"):
            sim.run()

    def test_run_all_reraises_process_error(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        p = sim.spawn(bad())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run_all([p])

    def test_run_all_returns_results(self):
        sim = Simulator()

        def proc(v):
            yield sim.timeout(v)
            return v

        procs = [sim.spawn(proc(v)) for v in (3.0, 1.0, 2.0)]
        assert sim.run_all(procs) == [3.0, 1.0, 2.0]

    def test_yield_non_waitable_is_error(self):
        sim = Simulator()

        def bad():
            yield 42  # type: ignore[misc]

        p = sim.spawn(bad())
        with pytest.raises(SimulationError, match="not a Waitable"):
            sim.run_all([p])

    def test_process_timestamps(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(2.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.started_at == 0.0
        assert p.finished_at == 2.0
