"""Property-based tests for the processor-sharing bandwidth model —
the resource every network link and memory bus in the testbed uses."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import SharedBandwidth, Simulator


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    jobs = []
    for _ in range(n):
        jobs.append(
            (
                draw(st.floats(min_value=0.0, max_value=5.0)),  # arrival
                draw(st.floats(min_value=1.0, max_value=1000.0)),  # bytes
            )
        )
    return jobs


class TestSharedBandwidthProperties:
    @given(jobs=workloads(), capacity=st.floats(min_value=10.0, max_value=500.0))
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, jobs, capacity):
        """Completion never beats the capacity bound: the last job ends
        no earlier than total_bytes/capacity after the first arrival, and
        every job takes at least bytes/capacity."""
        sim = Simulator()
        link = SharedBandwidth(sim, capacity)
        spans = []

        def proc(arrival, nbytes):
            yield sim.timeout(arrival)
            t0 = sim.now
            yield link.transfer(nbytes)
            spans.append((arrival, nbytes, t0, sim.now))

        procs = [sim.spawn(proc(a, b)) for a, b in jobs]
        sim.run_all(procs)
        total = sum(b for _, b in jobs)
        first = min(a for a, _ in jobs)
        assert sim.now >= first + total / capacity - 1e-6
        for arrival, nbytes, t0, t1 in spans:
            assert t1 - t0 >= nbytes / capacity - 1e-6

    @given(jobs=workloads())
    @settings(max_examples=40, deadline=None)
    def test_all_jobs_complete_and_accounted(self, jobs):
        sim = Simulator()
        link = SharedBandwidth(sim, 100.0)
        done = []

        def proc(arrival, nbytes):
            yield sim.timeout(arrival)
            yield link.transfer(nbytes)
            done.append(nbytes)

        procs = [sim.spawn(proc(a, b)) for a, b in jobs]
        sim.run_all(procs)
        assert len(done) == len(jobs)
        assert link.total_bytes == pytest.approx(sum(b for _, b in jobs))
        assert link.active_jobs == 0

    @given(
        n=st.integers(min_value=1, max_value=10),
        nbytes=st.floats(min_value=10.0, max_value=500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_simultaneous_equal_jobs_finish_together(self, n, nbytes):
        """Fairness: identical simultaneous transfers finish at the same
        instant, exactly n*bytes/capacity later."""
        sim = Simulator()
        link = SharedBandwidth(sim, 100.0)
        ends = []

        def proc():
            yield link.transfer(nbytes)
            ends.append(sim.now)

        procs = [sim.spawn(proc()) for _ in range(n)]
        sim.run_all(procs)
        assert all(e == pytest.approx(ends[0]) for e in ends)
        assert ends[0] == pytest.approx(n * nbytes / 100.0)

    @given(cap=st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_per_job_cap_is_floor_on_duration(self, cap):
        sim = Simulator()
        link = SharedBandwidth(sim, 1000.0, per_job_cap=cap)

        def proc():
            yield link.transfer(100.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run_all([p])
        assert p.result == pytest.approx(100.0 / cap)
