"""Property suite for the restart read plane.

The readahead cache must be *semantically invisible*: for any
interleaving of pwrite/pread/write/read/seek/fsync, a mount with the
cache on returns byte-for-byte what a pass-through mount returns — and
both leave the backing file identical.  That includes read-your-writes
of data still sitting in undrained chunks (the read path flushes and
drains first on both configurations).

The reference mount uses ``read_passthrough=False`` — the flush+drain
pass-through — because that is the semantics the cache claims to
preserve; the default ``read_passthrough=True`` skips the drain and has
weaker (paper Section IV-D1, checkpoint-only) read semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB

pytestmark = pytest.mark.property

CHUNK = 4 * KiB
#: Offsets stay within this span: a handful of chunks, so random ops
#: actually collide with chunk boundaries and cached entries.
SPAN = 4 * CHUNK


def cached_config():
    return CRFSConfig(
        chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        read_cache_chunks=4, readahead_chunks=2,
    )


def passthrough_config():
    return CRFSConfig(
        chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        read_cache_chunks=0, read_passthrough=False,
    )


def _payload(tag: int, size: int) -> bytes:
    """Deterministic, tag-distinct bytes so overwrites are observable."""
    pattern = bytes(((tag * 37 + i) % 251) + 1 for i in range(min(size, 256)))
    reps = -(-size // len(pattern))
    return (pattern * reps)[:size]


# -- the op language ----------------------------------------------------------

_sizes = st.integers(min_value=1, max_value=int(1.5 * CHUNK))
_offsets = st.integers(min_value=0, max_value=SPAN)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("pwrite"), _offsets, _sizes),
        st.tuples(st.just("write"), st.just(0), _sizes),
        st.tuples(st.just("pread"), _offsets, _sizes),
        st.tuples(st.just("read"), st.just(0), _sizes),
        st.tuples(st.just("seek"), _offsets, st.just(0)),
        st.tuples(st.just("fsync"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=25,
)


def apply_op(f, op, arg1, arg2, tag):
    """Run one op on a handle; returns the bytes the op observed."""
    if op == "pwrite":
        f.pwrite(_payload(tag, arg2), arg1)
        return b""
    if op == "write":
        f.write(_payload(tag, arg2))
        return b""
    if op == "pread":
        return f.pread(arg2, arg1)
    if op == "read":
        return f.read(arg2)
    if op == "seek":
        f.seek(arg1)
        return b""
    if op == "fsync":
        f.fsync()
        return b""
    raise AssertionError(op)


def run_sequence(ops, config):
    """Apply the op sequence on a fresh mount; return (observations,
    final backing bytes, stats snapshot)."""
    mem = MemBackend()
    observed = []
    fs = CRFS(mem, config)
    with fs:
        with fs.open("/ckpt") as f:
            for tag, (op, arg1, arg2) in enumerate(ops):
                observed.append(apply_op(f, op, arg1, arg2, tag))
    handle = mem.open("/ckpt", create=False)
    size = mem.file_size(handle)
    content = mem.pread(handle, size, 0)
    mem.close(handle)
    return observed, content, fs.stats()


class TestReadPathProperties:
    @given(ops=OPS)
    @settings(max_examples=30, deadline=None)
    def test_cache_is_semantically_invisible(self, ops):
        cached_obs, cached_bytes, cached_stats = run_sequence(ops, cached_config())
        plain_obs, plain_bytes, plain_stats = run_sequence(ops, passthrough_config())
        assert cached_obs == plain_obs
        assert cached_bytes == plain_bytes
        # and the write plane was untouched by the read plane
        assert cached_stats["bytes_in"] == plain_stats["bytes_in"]
        assert cached_stats["bytes_out"] == plain_stats["bytes_out"]

    @given(
        sizes=st.lists(_sizes, min_size=1, max_size=10),
        request=st.integers(min_value=1, max_value=2 * CHUNK),
    )
    @settings(max_examples=30, deadline=None)
    def test_read_your_writes_of_undrained_data(self, sizes, request):
        """A read issued immediately after writes — no fsync, chunks
        still buffered/queued — sees every byte, on both configs."""
        expected = b"".join(_payload(i, n) for i, n in enumerate(sizes))

        def collect(config):
            fs = CRFS(MemBackend(), config)
            with fs, fs.open("/ckpt") as f:
                for i, n in enumerate(sizes):
                    f.write(_payload(i, n))
                f.seek(0)
                parts, got = [], 0
                while got < len(expected):
                    part = f.read(min(request, len(expected) - got))
                    assert part, "short read before EOF"
                    parts.append(part)
                    got += len(part)
            return b"".join(parts)

        assert collect(cached_config()) == expected
        assert collect(passthrough_config()) == expected

    @given(ops=OPS)
    @settings(max_examples=20, deadline=None)
    def test_cache_accounting_invariants(self, ops):
        """Whatever the interleaving: every issued prefetch resolves to
        exactly one of delivered/dropped, and hit+miss covers every
        cache lookup (reads never vanish)."""
        _, _, stats = run_sequence(ops, cached_config())
        read = stats["read"]
        assert read["prefetch_dropped"] >= 0
        assert read["prefetch_wasted"] <= read["prefetched"]
        nreads = sum(1 for op, _, _ in ops if op in ("pread", "read"))
        assert read["reads"] == nreads
        if read["bytes_read"] == 0:
            assert read["hits"] == 0

    def test_default_config_read_section_is_zero(self):
        """readahead off (the default): the read plane stays the paper's
        pure passthrough — no cache activity at all."""
        ops = [("write", 0, CHUNK), ("pread", 0, CHUNK), ("fsync", 0, 0),
               ("pread", 0, 2 * CHUNK)]
        _, _, stats = run_sequence(ops, CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
        ))
        read = stats["read"]
        assert read["reads"] == 2
        assert read["hits"] == read["misses"] == 0
        assert read["prefetched"] == read["prefetch_dropped"] == 0
        assert read["prefetch_wasted"] == 0


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
