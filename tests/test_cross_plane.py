"""Cross-plane validation: the functional (threaded) CRFS and the
timing-plane (DES) CRFS drive the same pipeline kernel
(:mod:`repro.pipeline`), so for identical write streams they must seal
identical chunk sequences AND report field-identical ``stats()``
snapshots.

This is the test that justifies claiming both planes implement *the same
filesystem*."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    FaultRule,
    FaultyBackend,
    InstrumentedBackend,
    MemBackend,
    PipelineOpRecorder,
)
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.sim import SharedBandwidth, Simulator
from repro.simcrfs import SimCRFS
from repro.simio.faulty import FaultySimFilesystem
from repro.simio.nullfs import NullSimFilesystem
from repro.simio.params import DEFAULT_HW
from repro.units import KiB
from repro.util.rng import rng_for


def functional_seals(write_sizes, chunk_size):
    """Chunk (offset, length) sequence the threaded plane writes out."""
    backend = InstrumentedBackend(MemBackend())
    cfg = CRFSConfig(
        chunk_size=chunk_size, pool_size=chunk_size * 4, io_threads=1
    )
    with CRFS(backend, cfg) as fs:
        with fs.open("/f") as f:
            for size in write_sizes:
                f.write(b"x" * size)
    return [(op.offset, op.size) for op in backend.ops("pwrite")]


def timing_seals(write_sizes, chunk_size):
    """Chunk (offset, length) sequence the DES plane writes out."""
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)

    seals = []

    class RecordingNull(NullSimFilesystem):
        def _write(self, f, nbytes):
            seals.append((f.pos, nbytes))
            yield self.sim.timeout(self.op_cost)

    backend = RecordingNull(sim, hw, rng_for(1, "xp"))
    crfs = SimCRFS(
        sim,
        hw,
        CRFSConfig(chunk_size=chunk_size, pool_size=chunk_size * 4, io_threads=1),
        backend,
        membus,
    )

    def proc():
        f = crfs.open("/f")
        for size in write_sizes:
            yield from crfs.write(f, size)
        yield from crfs.close(f)

    sim.run_until_complete([sim.spawn(proc())])
    return seals


class TestCrossPlaneEquivalence:
    @pytest.mark.parametrize(
        "sizes",
        [
            [100, 200, 300],
            [4096] * 20,
            [10 * KiB, 64, 64, 5 * KiB, 40 * KiB],
            [64 * KiB],  # exactly one chunk
            [65 * KiB],  # one chunk + spill
            [1],
        ],
    )
    def test_same_chunk_sequence(self, sizes):
        chunk = 64 * KiB
        func = functional_seals(sizes, chunk)
        timing = timing_seals(sizes, chunk)
        # the functional plane records (offset, size) per pwrite; the DES
        # plane records per chunk write: sizes must match exactly and the
        # offsets must tile identically
        assert [s for _, s in func] == [s for _, s in timing]
        assert [o for o, _ in func] == [o for o, _ in timing]

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=200 * KiB), min_size=1,
                       max_size=30),
        chunk_kib=st.sampled_from([16, 64, 128]),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_chunk_sequence_property(self, sizes, chunk_kib):
        chunk = chunk_kib * KiB
        func = functional_seals(sizes, chunk)
        timing = timing_seals(sizes, chunk)
        assert func == timing

    def test_total_bytes_conserved_both_planes(self):
        sizes = [7 * KiB] * 33
        chunk = 32 * KiB
        func = functional_seals(sizes, chunk)
        timing = timing_seals(sizes, chunk)
        assert sum(s for _, s in func) == sum(sizes)
        assert sum(s for _, s in timing) == sum(sizes)


# -- the unified event stream / stats() differential -------------------------


def functional_run(write_sizes, chunk_size):
    """(chunk-write ops, stats snapshot) from the threaded plane, both
    taken off the unified pipeline event stream."""
    rec = PipelineOpRecorder()
    cfg = CRFSConfig(chunk_size=chunk_size, pool_size=chunk_size * 4, io_threads=1)
    fs = CRFS(MemBackend(), cfg, observers=[rec])
    with fs:
        with fs.open("/rank0.img") as f:
            for size in write_sizes:
                f.write(b"x" * size)
    return rec, fs.stats()


def timing_run(write_sizes, chunk_size):
    """(chunk-write ops, stats snapshot) from the DES plane — same
    observer type, same snapshot code path."""
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    rec = PipelineOpRecorder()
    backend = NullSimFilesystem(sim, hw, rng_for(1, "xp-stats"))
    crfs = SimCRFS(
        sim,
        hw,
        CRFSConfig(chunk_size=chunk_size, pool_size=chunk_size * 4, io_threads=1),
        backend,
        membus,
        observers=[rec],
    )

    def proc():
        f = crfs.open("/rank0.img")
        for size in write_sizes:
            yield from crfs.write(f, size)
        yield from crfs.close(f)

    sim.run_until_complete([sim.spawn(proc())])
    return rec, crfs.stats()


# Snapshot fields that must be bit-identical across planes for the same
# workload.  (pool waits/max_in_use and queue max_depth are genuinely
# timing-dependent and excluded.)
DETERMINISTIC_FIELDS = (
    "writes",
    "bytes_in",
    "write_through_bytes",
    "chunks_written",
    "bytes_out",
    "io_errors",
    "seals",
    "open_files",
    "batch",  # all-zero with the default writeback_batch_chunks=1
)


class TestCrossPlaneStatsDifferential:
    @pytest.mark.parametrize(
        "sizes",
        [
            [100, 200, 300],
            [4096] * 20,
            [10 * KiB, 64, 64, 5 * KiB, 40 * KiB],
            [65 * KiB],
            [1],
        ],
    )
    def test_stats_field_identical(self, sizes):
        chunk = 64 * KiB
        _, func = functional_run(sizes, chunk)
        _, timing = timing_run(sizes, chunk)
        for key in DETERMINISTIC_FIELDS:
            assert func[key] == timing[key], key
        # structural + deterministic pressure counters
        assert func["pool"]["chunks"] == timing["pool"]["chunks"]
        assert func["pool"]["chunk_size"] == timing["pool"]["chunk_size"]
        assert func["pool"]["acquires"] == timing["pool"]["acquires"]
        assert func["queue"]["puts"] == timing["queue"]["puts"]

    def test_snapshot_schema_identical(self):
        _, func = functional_run([10 * KiB] * 5, 16 * KiB)
        _, timing = timing_run([10 * KiB] * 5, 16 * KiB)
        assert set(func) == set(timing)
        assert set(func["pool"]) == set(timing["pool"])
        assert set(func["queue"]) == set(timing["queue"])
        assert set(func["seals"]) == set(timing["seals"])

    def test_seal_reason_histograms_match(self):
        sizes = [10 * KiB, 64, 64, 5 * KiB, 40 * KiB, 130 * KiB]
        _, func = functional_run(sizes, 32 * KiB)
        _, timing = timing_run(sizes, 32 * KiB)
        assert func["seals"] == timing["seals"]
        assert sum(func["seals"].values()) == func["chunks_written"]

    def test_chunk_stream_identical_via_observers(self):
        sizes = [7 * KiB] * 33
        func_rec, _ = functional_run(sizes, 32 * KiB)
        timing_rec, _ = timing_run(sizes, 32 * KiB)
        func_chunks = [(r.offset, r.size) for r in func_rec.ops("chunk_write")]
        timing_chunks = [(r.offset, r.size) for r in timing_rec.ops("chunk_write")]
        assert func_chunks == timing_chunks
        # and both recorded the same application write stream
        assert func_rec.write_sizes() == timing_rec.write_sizes() == sizes

    def test_accounting_consistency_within_each_plane(self):
        sizes = [11 * KiB] * 13
        for _, snap in (functional_run(sizes, 16 * KiB), timing_run(sizes, 16 * KiB)):
            assert snap["writes"] == len(sizes)
            assert snap["bytes_in"] == sum(sizes)
            assert snap["bytes_out"] == snap["bytes_in"]
            assert snap["chunks_written"] == sum(snap["seals"].values())
            assert snap["pool"]["acquires"] == snap["queue"]["puts"]
            assert snap["open_files"] == 0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=200 * KiB), min_size=1,
                       max_size=20),
        chunk_kib=st.sampled_from([16, 64]),
    )
    @settings(max_examples=15, deadline=None)
    def test_stats_differential_property(self, sizes, chunk_kib):
        chunk = chunk_kib * KiB
        _, func = functional_run(sizes, chunk)
        _, timing = timing_run(sizes, chunk)
        for key in DETERMINISTIC_FIELDS:
            assert func[key] == timing[key], key


# -- the restart read plane differential --------------------------------------


def _read_config(chunk_size):
    """Readahead config whose read accounting is workload-determined on
    both planes: reads start only after the write stream drains, so the
    whole pool (4 chunks) is free for the cache (4 chunks) and the
    prefetch try-acquire can never starve; cache capacity >= readahead
    window + 2 keeps sequential reads from churning the LRU window."""
    return CRFSConfig(
        chunk_size=chunk_size,
        pool_size=chunk_size * 4,
        io_threads=1,
        read_cache_chunks=4,
        readahead_chunks=2,
    )


def _read_plan(total, request):
    out = []
    while total > 0:
        out.append(min(request, total))
        total -= out[-1]
    return out


def functional_read_run(write_sizes, read_request, chunk_size):
    """stats snapshot from the threaded plane after write + sequential
    read-back through the readahead cache."""
    fs = CRFS(MemBackend(), _read_config(chunk_size))
    with fs:
        with fs.open("/rank0.img") as f:
            for size in write_sizes:
                f.write(b"x" * size)
            f.seek(0)
            for size in _read_plan(sum(write_sizes), read_request):
                f.read(size)
    return fs.stats()


def timing_read_run(write_sizes, read_request, chunk_size):
    """stats snapshot from the DES plane — same workload, same snapshot
    code path."""
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    backend = NullSimFilesystem(sim, hw, rng_for(1, "xp-read"))
    crfs = SimCRFS(sim, hw, _read_config(chunk_size), backend, membus)

    def proc():
        f = crfs.open("/rank0.img")
        for size in write_sizes:
            yield from crfs.write(f, size)
        crfs.seek(f, 0)
        for size in _read_plan(sum(write_sizes), read_request):
            yield from crfs.read(f, size)
        yield from crfs.close(f)

    sim.run_until_complete([sim.spawn(proc())])
    return crfs.stats()


class TestCrossPlaneReadDifferential:
    """The ``read`` section — hits, misses, prefetched, dropped, wasted —
    is a pure function of the access sequence, so it must be
    bit-identical across planes for the same workload."""

    @pytest.mark.parametrize(
        "sizes,request_size",
        [
            ([100 * KiB, 100 * KiB, 56 * KiB], 48 * KiB),
            ([4096] * 40, 7 * KiB),       # sub-chunk requests
            ([65 * KiB], 65 * KiB),       # one chunk + spill, one read
            ([300 * KiB], 96 * KiB),      # requests spanning chunks
            ([1], 1),
        ],
    )
    def test_read_section_identical(self, sizes, request_size):
        chunk = 64 * KiB
        func = functional_read_run(sizes, request_size, chunk)
        timing = timing_read_run(sizes, request_size, chunk)
        assert func["read"] == timing["read"]
        # reads ride the same pool/queue as writes: the acquire and put
        # counters stay workload-determined too
        assert func["pool"]["acquires"] == timing["pool"]["acquires"]
        assert func["queue"]["puts"] == timing["queue"]["puts"]

    def test_read_back_hits_cache_on_both_planes(self):
        sizes = [70 * KiB] * 6
        func = functional_read_run(sizes, 48 * KiB, 64 * KiB)
        timing = timing_read_run(sizes, 48 * KiB, 64 * KiB)
        for snap in (func, timing):
            assert snap["read"]["bytes_read"] == sum(sizes)
            assert snap["read"]["hits"] > 0
            assert snap["read"]["misses"] >= 1
            assert snap["read"]["prefetched"] > 0

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=150 * KiB), min_size=1,
                       max_size=15),
        request_kib=st.sampled_from([4, 48, 100]),
    )
    @settings(max_examples=15, deadline=None)
    def test_read_differential_property(self, sizes, request_kib):
        chunk = 64 * KiB
        func = functional_read_run(sizes, request_kib * KiB, chunk)
        timing = timing_read_run(sizes, request_kib * KiB, chunk)
        assert func["read"] == timing["read"]
        for key in DETERMINISTIC_FIELDS:
            assert func[key] == timing[key], key


# -- the coalesced-writeback differential --------------------------------------
#
# Batch formation depends on queue occupancy at gather time, so a
# free-running workload would be racy on the functional plane.  Both
# planes run the same gated workload instead: a one-chunk gate file's
# backend pwrite is held open (threading.Event functionally, a long
# virtual delay in the DES) while a second file's whole run is queued.
# The lone worker reaches the run only after the gate lifts, making
# batch formation a pure function of (nchunks, batch limit) — and
# forcing ``stats()["batch"]`` to be bit-identical across planes.


def _batched_config(nchunks, batch):
    chunk = 64 * KiB
    return CRFSConfig(
        chunk_size=chunk,
        pool_size=(nchunks + 4) * chunk,  # gate + run fit: no backpressure
        io_threads=1,
        writeback_batch_chunks=batch,
    )


def functional_batched_run(nchunks, batch):
    config = _batched_config(nchunks, batch)
    gate = threading.Event()
    backend = FaultyBackend(
        MemBackend(),
        [FaultRule(op="pwrite", nth=1, delay=1.0)],
        sleep=lambda _s: gate.wait(),
    )
    fs = CRFS(backend, config)
    with fs:
        with fs.open("/gate.img") as fa, fs.open("/rank0.img") as fb:
            fa.write(b"\x00" * config.chunk_size)
            for _ in range(nchunks):
                fb.write(b"\x00" * config.chunk_size)
            gate.set()
    return fs.stats()


def timing_batched_run(nchunks, batch):
    config = _batched_config(nchunks, batch)
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    backend = FaultySimFilesystem(
        NullSimFilesystem(sim, hw, rng_for(1, "xp-batched")),
        [FaultRule(op="pwrite", nth=1, delay=1.0)],
    )
    crfs = SimCRFS(sim, hw, config, backend, membus)

    def proc():
        fa = crfs.open("/gate.img")
        yield from crfs.write(fa, config.chunk_size)
        fb = crfs.open("/rank0.img")
        for _ in range(nchunks):
            yield from crfs.write(fb, config.chunk_size)
        yield from crfs.close(fb)
        yield from crfs.close(fa)

    sim.run_until_complete([sim.spawn(proc())])
    return crfs.stats()


class TestCrossPlaneBatchDifferential:
    """``stats()["batch"]`` — batches, chunks, bytes, per-batch size
    histogram — is a pure function of the gated workload, so it must be
    bit-identical across planes."""

    @pytest.mark.parametrize(
        "nchunks,batch,per_batch",
        [
            (16, 8, {"8": 2}),           # two full gathers
            (5, 3, {"3": 1, "2": 1}),    # full gather + remainder
            (5, 8, {"5": 1}),            # one under-limit gather
            (1, 8, {}),                  # a single chunk never batches
        ],
    )
    def test_batch_section_identical(self, nchunks, batch, per_batch):
        func = functional_batched_run(nchunks, batch)
        timing = timing_batched_run(nchunks, batch)
        assert func["batch"] == timing["batch"]
        assert func["batch"]["per_batch"] == per_batch
        batched = sum(int(k) * v for k, v in per_batch.items())
        assert func["batch"]["chunks"] == batched
        assert func["batch"]["errors"] == func["batch"]["broken"] == 0
        # the full workload (gate + run) drains on both planes either way
        for snap in (func, timing):
            assert snap["chunks_written"] == nchunks + 1
            assert snap["bytes_out"] == (nchunks + 1) * 64 * KiB

    def test_batching_disabled_zeroes_section_on_both_planes(self):
        func = functional_batched_run(16, 1)
        timing = timing_batched_run(16, 1)
        assert func["batch"] == timing["batch"]
        assert func["batch"]["batches"] == func["batch"]["chunks"] == 0


# -- tiered staging differential ----------------------------------------------


class TestCrossPlaneTieredDifferential:
    """``stats()["tiers"]`` under the gated two-tier workload is a pure
    function of the workload (the gate pins the pop-vs-stage race), so
    the whole section — every per-tier counter *including* the
    pump-queue gauge — must be bit-identical across planes, and a
    faulted arm's strand error must surface identically too.  Reuses
    the crossplane experiment's arm builders so the test and the
    experiment can never drift apart."""

    @pytest.mark.parametrize("faulted", [False, True], ids=["clean", "deep_dead"])
    def test_tiers_section_identical(self, faulted):
        from repro.experiments.crossplane import (
            _error_key,
            _functional_tiered_stats,
            _tiered_config,
            _timing_tiered_stats,
        )

        config = _tiered_config(faulted)
        func = _functional_tiered_stats(config, faulted)
        timing = _timing_tiered_stats(config, seed=1, faulted=faulted)

        assert func["tiers"] == timing["tiers"]
        assert _error_key(func["_sync_error"]) == _error_key(
            timing["_sync_error"]
        )

        per_tier = func["tiers"]["per_tier"]
        if faulted:
            # the dead deep tier strands the run; only the gate chunk
            # (written before the outage rule arms) lands deep
            assert func["_sync_error"] is not None
            assert per_tier["1"]["chunks_stranded"] == 6
            assert per_tier["1"]["chunks_staged"] == 1
            assert per_tier["1"]["breaker_trips"] == 1
            assert per_tier["0"]["breaker_trips"] == 0
        else:
            assert func["_sync_error"] is None
            assert per_tier["1"]["chunks_staged"] == 7
            assert per_tier["1"]["chunks_stranded"] == 0
            assert per_tier["1"]["pump_queue_max"] == 6
            assert func["tiers"]["sync_through"] == 1


class TestCrossPlaneDeltaDifferential:
    """Delta-checkpoint chains on both planes: the whole workload-
    determined stats surface — including the ``delta`` section — must
    be bit-identical for the same cadence schedule, and the restore
    read traffic must agree on the deterministic read counters.
    Prefetch lifecycle counters are excluded: in-flight prefetches at
    generation-file close are drop-accounted racily on the threaded
    plane (same reason the write differential above excludes the read
    section).  Reuses the crossplane experiment's arm builders so the
    test and the experiment can never drift apart."""

    def test_delta_section_identical(self):
        from repro.experiments.crossplane import (
            _DELTA_ITERATIONS,
            DELTA_COMPARED_FIELDS,
            DELTA_READ_FIELDS,
            _delta_config,
            _functional_delta_stats,
            _timing_delta_stats,
        )

        config = _delta_config()
        func = _functional_delta_stats(config, seed=7)
        timing = _timing_delta_stats(config, seed=7)

        for key in DELTA_COMPARED_FIELDS:
            assert func[key] == timing[key], key
        assert {k: func["read"][k] for k in DELTA_READ_FIELDS} == {
            k: timing["read"][k] for k in DELTA_READ_FIELDS
        }

        delta = func["delta"]
        assert delta["generations"] == 2 * _DELTA_ITERATIONS
        assert delta["clean_chunks"] > 0  # the chain actually shared chunks
        assert delta["restores"] == 2
        assert 0 < delta["bytes_written"] < delta["logical_bytes"]
        assert delta["manifest_writes"] == delta["generations"]
