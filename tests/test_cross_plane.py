"""Cross-plane validation: the functional (threaded) CRFS and the
timing-plane (DES) CRFS drive the same WritePlanner, so for identical
write streams they must seal identical chunk sequences.

This is the test that justifies claiming both planes implement *the same
filesystem*."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import InstrumentedBackend, MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.sim import SharedBandwidth, Simulator
from repro.simcrfs import SimCRFS
from repro.simio.nullfs import NullSimFilesystem
from repro.simio.params import DEFAULT_HW
from repro.units import KiB
from repro.util.rng import rng_for


def functional_seals(write_sizes, chunk_size):
    """Chunk (offset, length) sequence the threaded plane writes out."""
    backend = InstrumentedBackend(MemBackend())
    cfg = CRFSConfig(
        chunk_size=chunk_size, pool_size=chunk_size * 4, io_threads=1
    )
    with CRFS(backend, cfg) as fs:
        with fs.open("/f") as f:
            for size in write_sizes:
                f.write(b"x" * size)
    return [(op.offset, op.size) for op in backend.ops("pwrite")]


def timing_seals(write_sizes, chunk_size):
    """Chunk (offset, length) sequence the DES plane writes out."""
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)

    seals = []

    class RecordingNull(NullSimFilesystem):
        def _write(self, f, nbytes):
            seals.append((f.pos, nbytes))
            yield self.sim.timeout(self.op_cost)

    backend = RecordingNull(sim, hw, rng_for(1, "xp"))
    crfs = SimCRFS(
        sim,
        hw,
        CRFSConfig(chunk_size=chunk_size, pool_size=chunk_size * 4, io_threads=1),
        backend,
        membus,
    )

    def proc():
        f = crfs.open("/f")
        for size in write_sizes:
            yield from crfs.write(f, size)
        yield from crfs.close(f)

    sim.run_until_complete([sim.spawn(proc())])
    return seals


class TestCrossPlaneEquivalence:
    @pytest.mark.parametrize(
        "sizes",
        [
            [100, 200, 300],
            [4096] * 20,
            [10 * KiB, 64, 64, 5 * KiB, 40 * KiB],
            [64 * KiB],  # exactly one chunk
            [65 * KiB],  # one chunk + spill
            [1],
        ],
    )
    def test_same_chunk_sequence(self, sizes):
        chunk = 64 * KiB
        func = functional_seals(sizes, chunk)
        timing = timing_seals(sizes, chunk)
        # the functional plane records (offset, size) per pwrite; the DES
        # plane records per chunk write: sizes must match exactly and the
        # offsets must tile identically
        assert [s for _, s in func] == [s for _, s in timing]
        assert [o for o, _ in func] == [o for o, _ in timing]

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=200 * KiB), min_size=1,
                       max_size=30),
        chunk_kib=st.sampled_from([16, 64, 128]),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_chunk_sequence_property(self, sizes, chunk_kib):
        chunk = chunk_kib * KiB
        func = functional_seals(sizes, chunk)
        timing = timing_seals(sizes, chunk)
        assert func == timing

    def test_total_bytes_conserved_both_planes(self):
        sizes = [7 * KiB] * 33
        chunk = 32 * KiB
        func = functional_seals(sizes, chunk)
        timing = timing_seals(sizes, chunk)
        assert sum(s for _, s in func) == sum(sizes)
        assert sum(s for _, s in timing) == sum(sizes)
