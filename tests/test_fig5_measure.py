"""Tests for the Figure 5 measurement rig (raw aggregation bandwidth)."""

import math


from repro.experiments.fig5 import measure
from repro.units import KiB, MB, MiB


class TestMeasure:
    def test_returns_positive_bandwidth(self):
        bw = measure(16 * MiB, 1 * MiB, bytes_per_proc=16 * MiB, seed=1)
        assert bw > 100 * MB

    def test_pool_smaller_than_chunk_undefined(self):
        assert math.isnan(measure(1 * MiB, 4 * MiB, bytes_per_proc=4 * MiB, seed=1))

    def test_deterministic(self):
        a = measure(16 * MiB, 512 * KiB, bytes_per_proc=8 * MiB, seed=3)
        b = measure(16 * MiB, 512 * KiB, bytes_per_proc=8 * MiB, seed=3)
        assert a == b

    def test_bandwidth_below_membus(self):
        from repro.simio.params import DEFAULT_HW

        bw = measure(64 * MiB, 4 * MiB, bytes_per_proc=32 * MiB, seed=1)
        assert bw < DEFAULT_HW.membus_bandwidth

    def test_tiny_pool_slower_than_big_pool(self):
        small = measure(4 * MiB, 4 * MiB, bytes_per_proc=32 * MiB, seed=1)
        big = measure(64 * MiB, 4 * MiB, bytes_per_proc=32 * MiB, seed=1)
        assert big >= small


class TestCoordinatorServerTraces:
    def test_nfs_trace_comes_from_server_disk(self):
        from repro.mpi import CheckpointCoordinator, MPICH2, MPIJob
        from repro.workloads import lu_class

        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        res = CheckpointCoordinator(job, "nfs", use_crfs=False, seed=3).run()
        assert len(res.node0_disk_trace) > 0  # close-to-open flush hit the disk

    def test_lustre_trace_comes_from_ost0(self):
        from repro.mpi import CheckpointCoordinator, MPICH2, MPIJob
        from repro.workloads import lu_class

        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        res = CheckpointCoordinator(job, "lustre", use_crfs=True, seed=3).run()
        assert isinstance(res.node0_disk_trace, list)
