"""Smoke + shape tests for the experiment modules.

The heavyweight grid experiments (fig6-9) are exercised in ``fast``
mode here; the full-fidelity runs live in benchmarks/ where their cost
is expected.  Cheap experiments run at full fidelity.
"""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.base import Check, ExperimentResult
from repro.experiments.common import pct_reduction, run_cell, speedup


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) == float("inf")

    def test_pct_reduction(self):
        assert pct_reduction(10.0, 7.0) == pytest.approx(30.0)
        assert pct_reduction(0.0, 1.0) == 0.0

    def test_run_cell_memoized(self):
        a = run_cell("MPICH2", "B", "ext3", False, nprocs=8, nnodes=2, seed=1)
        b = run_cell("MPICH2", "B", "ext3", False, nprocs=8, nnodes=2, seed=1)
        assert a is b


class TestFramework:
    def test_check_str(self):
        assert "PASS" in str(Check("x", True))
        assert "FAIL" in str(Check("x", False, "why"))

    def test_result_ok(self):
        r = ExperimentResult(name="x", title="t", table="")
        assert r.ok
        r.checks.append(Check("bad", False))
        assert not r.ok

    def test_render_contains_checks(self):
        r = ExperimentResult(name="x", title="T", table="body")
        r.checks.append(Check("something", True))
        out = r.render()
        assert "== x: T ==" in out
        assert "[PASS] something" in out

    def test_registry_contents(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig3", "fig5", "table2",
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "restart", "internode", "crossplane", "faultsweep", "perfbench",
            "tenant_storm", "restart_storm", "llm_cadence",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestCheapExperiments:
    """Full-fidelity runs for the experiments that are quick."""

    def test_table2_passes(self):
        r = run_experiment("table2")
        assert r.ok, r.render()

    def test_crossplane_fast_passes(self):
        r = run_experiment("crossplane", fast=True)
        assert r.ok, r.render()
        assert r.measured["functional"]["seals"] == r.measured["timing"]["seals"]

    def test_tenant_storm_fast_passes(self):
        r = run_experiment("tenant_storm", fast=True)
        assert r.ok, r.render()
        # The isolation headline: fairness bounds the victims, the
        # FIFO ablation demonstrably does not.
        assert r.measured["fair_ratio"] <= 1.25
        assert r.measured["unfair_ratio"] >= 2.0

    def test_llm_cadence_fast_passes(self):
        r = run_experiment("llm_cadence", fast=True)
        assert r.ok, r.render()
        assert all(
            r.measured["sim"][k] == v for k, v in r.measured["expected"].items()
        )

    def test_fig5_fast_passes(self):
        r = run_experiment("fig5", fast=True)
        assert r.ok, r.render()
        # sanity: the grid includes the paper's (16M, 4M) operating point
        assert "pool=16M,chunk=4096K" in r.measured


@pytest.mark.slow
class TestGridExperiments:
    """LU.C.64-based experiments — a couple of minutes total, marked slow."""

    def test_table1_passes(self):
        r = run_experiment("table1")
        assert r.ok, r.render()

    def test_fig3_passes(self):
        r = run_experiment("fig3")
        assert r.ok, r.render()

    def test_fig10_passes(self):
        r = run_experiment("fig10")
        assert r.ok, r.render()

    def test_fig11_passes(self):
        r = run_experiment("fig11")
        assert r.ok, r.render()

    def test_fig6_fast_passes(self):
        r = run_experiment("fig6", fast=True)
        assert r.ok, r.render()

    def test_fig9_fast_passes(self):
        r = run_experiment("fig9", fast=True)
        assert r.ok, r.render()
