"""Tests for the timing-plane read path (restart) and file-affine
scheduling — the Section V-F and Section VII extensions."""


from repro.config import CRFSConfig
from repro.sim import SharedBandwidth, Simulator
from repro.simcrfs import SimCRFS
from repro.simio import (
    Ext3Filesystem,
    LustreFilesystem,
    LustreServers,
    NFSFilesystem,
    NFSServer,
)
from repro.simio.nullfs import NullSimFilesystem
from repro.simio.params import DEFAULT_HW
from repro.units import MiB
from repro.util.rng import rng_for


def make_sim():
    sim = Simulator()
    membus = SharedBandwidth(sim, DEFAULT_HW.membus_bandwidth)
    return sim, membus


def run_reader(sim, fs, total, chunk=1 * MiB, path="/ckpt"):
    def proc():
        f = fs.open(path)
        t0 = sim.now
        remaining = total
        while remaining > 0:
            take = min(chunk, remaining)
            yield from fs.read(f, take)
            remaining -= take
        return sim.now - t0

    p = sim.spawn(proc())
    sim.run_until_complete([p])
    return p.result


class TestExt3Read:
    def test_read_takes_disk_time(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "r"), membus)
        t = run_reader(sim, fs, 16 * MiB)
        # at least the streaming transfer time
        assert t >= 16 * MiB / DEFAULT_HW.disk_bandwidth * 0.9

    def test_readahead_issues_large_disk_reads(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "r"), membus)
        run_reader(sim, fs, 4 * MiB, chunk=4096)  # many small reads
        reads = [t for t in fs.disk.trace if t.kind == "R"]
        assert len(reads) == 4 * MiB // DEFAULT_HW.readahead_window
        assert fs.total_reads == 4 * MiB // 4096

    def test_sequential_reads_mostly_seek_free(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "r"), membus)
        run_reader(sim, fs, 8 * MiB)
        # one initial seek, then streaming
        assert fs.disk.seeks <= 1


class TestNFSLustreRead:
    def test_nfs_read_crosses_the_wire(self):
        sim, membus = make_sim()
        server = NFSServer(sim, DEFAULT_HW)
        fs = NFSFilesystem(sim, DEFAULT_HW, rng_for(1, "r"), membus, server)
        run_reader(sim, fs, 4 * MiB)
        assert server.link.total_bytes >= 4 * MiB
        assert server.disk.total_bytes >= 4 * MiB

    def test_lustre_read_stripes_over_osts(self):
        sim, membus = make_sim()
        servers = LustreServers(sim, DEFAULT_HW)
        fs = LustreFilesystem(sim, DEFAULT_HW, rng_for(1, "r"), membus, servers)
        run_reader(sim, fs, 12 * MiB)
        assert all(d.total_bytes > 0 for d in servers.osts)


class TestCRFSReadPassthrough:
    def test_crfs_read_equals_backend_read_plus_fuse(self):
        sim, membus = make_sim()
        fs = Ext3Filesystem(sim, DEFAULT_HW, rng_for(1, "r"), membus)
        crfs = SimCRFS(sim, DEFAULT_HW, CRFSConfig(), fs, membus)

        def proc():
            f = crfs.open("/ckpt")
            t0 = sim.now
            yield from crfs.read(f, 8 * MiB)
            return sim.now - t0

        p = sim.spawn(proc())
        sim.run_until_complete([p])
        t_crfs = p.result

        sim2, membus2 = make_sim()
        fs2 = Ext3Filesystem(sim2, DEFAULT_HW, rng_for(1, "r"), membus2)
        t_native = run_reader(sim2, fs2, 8 * MiB, chunk=8 * MiB)
        # passthrough: only the FUSE request overhead on top
        assert t_crfs >= t_native
        assert t_crfs <= t_native * 1.10


class TestFileAffinity:
    def _run(self, affine):
        sim, membus = make_sim()
        backend = NullSimFilesystem(sim, DEFAULT_HW, rng_for(1, "a"),
                                    op_cost=0.05)
        # big pool + slow backend: a deep backlog builds up, so the IO
        # threads' scheduling policy actually has choices to make
        cfg = CRFSConfig(pool_size=256 * MiB)
        crfs = SimCRFS(sim, DEFAULT_HW, cfg, backend, membus,
                       file_affine=affine)
        finish = {}
        procs = []
        # more files than IO threads, so scheduling policy matters
        for i in range(8):
            def proc(i=i):
                f = crfs.open(f"/f{i}")
                for _ in range(8):
                    yield from crfs.write(f, 4 * MiB)
                yield from crfs.close(f)
                finish[i] = sim.now
            procs.append(sim.spawn(proc(), f"w{i}"))
        sim.run_until_complete(procs)
        return finish, crfs

    def test_affine_writes_all_data(self):
        finish, crfs = self._run(affine=True)
        assert crfs.bytes_written == 8 * 8 * 4 * MiB
        assert len(finish) == 8

    def test_affine_and_fifo_same_totals(self):
        _, crfs_a = self._run(affine=True)
        _, crfs_f = self._run(affine=False)
        assert crfs_a.bytes_written == crfs_f.bytes_written
        assert crfs_a.chunks_written == crfs_f.chunks_written

    def test_affinity_staggers_completions(self):
        finish_a, _ = self._run(affine=True)
        finish_f, _ = self._run(affine=False)
        spread_a = max(finish_a.values()) - min(finish_a.values())
        spread_f = max(finish_f.values()) - min(finish_f.values())
        # affine scheduling finishes files one after another (wide spread);
        # FIFO finishes them together (narrow spread)
        assert spread_a > spread_f
