"""Property suite for the weighted DRR scheduler.

Pure-kernel properties on :class:`repro.pipeline.tenancy.DRRScheduler`
— no threads, no clock.  The contract under test:

* under saturation (every tenant backlogged), service counts converge
  to the configured weights: after any whole number of rounds, each
  tenant has been served its weight's share, give or take one quantum;
* no starvation: in any window of ``sum(weights)`` consecutive pops
  with every tenant backlogged, every tenant is served at least once;
* a single tenant reduces to exact FIFO;
* ``fair=False`` (the ablation arm) preserves global arrival order
  regardless of weights.

This file runs in the CI stress/property step, not the tier-1 lane.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.pipeline.tenancy import DEFAULT_TENANT, DRRScheduler

pytestmark = pytest.mark.property

#: tenant name -> weight; two to four tenants, small integer weights so
#: a full DRR round (sum of weights) stays cheap to saturate.
_weights = st.dictionaries(
    keys=st.sampled_from(["a", "b", "c", "d"]),
    values=st.integers(min_value=1, max_value=5),
    min_size=2,
    max_size=4,
)


def _saturate(sched: DRRScheduler, weights: dict[str, int], rounds: int) -> None:
    """Backlog every tenant deeply enough to survive ``rounds`` rounds."""
    for tenant, weight in weights.items():
        for i in range(weight * rounds + 1):
            sched.push(tenant, (tenant, i))


class TestWeightConvergence:
    @given(weights=_weights, rounds=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_service_counts_match_weights_after_whole_rounds(self, weights, rounds):
        sched = DRRScheduler(weights=weights)
        _saturate(sched, weights, rounds)
        quantum_sum = sum(weights.values())
        served: dict[str, int] = {t: 0 for t in weights}
        for _ in range(quantum_sum * rounds):
            tenant, _item = sched.pop()
            served[tenant] += 1
        # With unit-cost items and no banking, whole rounds are exact.
        assert served == {t: w * rounds for t, w in weights.items()}

    @given(weights=_weights)
    @settings(max_examples=60, deadline=None)
    def test_no_tenant_starves_within_one_round(self, weights):
        sched = DRRScheduler(weights=weights)
        _saturate(sched, weights, rounds=3)
        window = sum(weights.values())
        # Slide three windows across the pop sequence; every tenant must
        # appear in each one.
        for _ in range(3):
            seen = {sched.pop()[0] for _ in range(window)}
            assert seen == set(weights)

    @given(weights=_weights)
    @settings(max_examples=40, deadline=None)
    def test_within_tenant_order_is_fifo(self, weights):
        sched = DRRScheduler(weights=weights)
        _saturate(sched, weights, rounds=2)
        last: dict[str, int] = {t: -1 for t in weights}
        for _ in range(sum(weights.values()) * 2):
            tenant, (_, i) = sched.pop()
            assert i == last[tenant] + 1
            last[tenant] = i


class TestDegenerateShapes:
    @given(items=st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_single_tenant_is_exact_fifo(self, items):
        sched = DRRScheduler()
        for item in items:
            sched.push(DEFAULT_TENANT, item)
        assert [sched.pop()[1] for _ in items] == items
        assert sched.pop() is None

    @given(
        weights=_weights,
        order=st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_unfair_mode_preserves_global_arrival_order(self, weights, order):
        sched = DRRScheduler(weights=weights, fair=False)
        for i, tenant in enumerate(order):
            sched.push(tenant, i)
        assert [sched.pop()[1] for _ in order] == list(range(len(order)))
        assert all(sched.depth(t) == 0 for t in set(order))

    @given(weights=_weights, drained=st.sampled_from(["a", "b", "c", "d"]))
    @settings(max_examples=40, deadline=None)
    def test_idle_tenant_forfeits_its_share(self, weights, drained):
        """A tenant with nothing queued must not slow the others: the
        backlogged tenants split every pop among themselves."""
        weights = dict(weights)
        weights.setdefault(drained, 1)
        busy = {t: w for t, w in weights.items() if t != drained}
        if not busy:
            return
        sched = DRRScheduler(weights=weights)
        _saturate(sched, busy, rounds=2)
        for _ in range(sum(busy.values()) * 2):
            tenant, _ = sched.pop()
            assert tenant != drained
