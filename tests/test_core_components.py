"""Tests for Chunk, BufferPool, WorkQueue and IOThreadPool."""

import threading
import time

import pytest

from repro.backends import MemBackend
from repro.core.buffer_pool import BufferPool
from repro.core.chunk import Chunk
from repro.core.filetable import FileEntry, OpenFileTable
from repro.core.iopool import IOThreadPool, WorkItem
from repro.core.planner import SealReason
from repro.core.workqueue import QueueClosed, WorkQueue
from repro.errors import (
    BackendIOError,
    ConfigError,
    FileStateError,
    ShutdownError,
)


class TestChunk:
    def test_append_tracks_valid(self):
        c = Chunk(0, 64)
        c.open_for("owner", 100)
        c.append(b"hello", 0, 5)
        assert c.valid == 5
        assert c.room == 59
        assert bytes(c.payload()) == b"hello"

    def test_append_at_wrong_point_rejected(self):
        c = Chunk(0, 64)
        c.open_for("o", 0)
        with pytest.raises(FileStateError):
            c.append(b"x", 5, 1)

    def test_append_overflow_rejected(self):
        c = Chunk(0, 4)
        c.open_for("o", 0)
        with pytest.raises(FileStateError):
            c.append(b"hello", 0, 5)

    def test_reset_clears_everything(self):
        c = Chunk(0, 64)
        c.open_for("o", 7)
        c.append(b"abc", 0, 3)
        c.seal(SealReason.FLUSH)
        c.reset()
        assert c.valid == 0
        assert c.owner is None
        assert c.seal_reason is None

    def test_open_dirty_chunk_rejected(self):
        c = Chunk(0, 64)
        c.open_for("o", 0)
        c.append(b"x", 0, 1)
        with pytest.raises(FileStateError):
            c.open_for("p", 0)

    def test_payload_is_zero_copy_view(self):
        c = Chunk(0, 64)
        c.open_for("o", 0)
        c.append(b"abcd", 0, 4)
        view = c.payload()
        assert isinstance(view, memoryview)
        assert len(view) == 4


class TestBufferPool:
    def test_pool_size_chunking(self):
        pool = BufferPool(chunk_size=1024, pool_size=4096)
        assert pool.nchunks == 4
        assert pool.free_chunks == 4

    def test_acquire_release_cycle(self):
        pool = BufferPool(1024, 2048)
        a = pool.acquire()
        b = pool.acquire()
        assert pool.free_chunks == 0
        assert pool.in_use == 2
        pool.release(a)
        assert pool.free_chunks == 1
        c = pool.acquire()
        assert c is a  # recycled

    def test_acquire_blocks_until_release(self):
        pool = BufferPool(64, 64)
        held = pool.acquire()
        got = []

        def taker():
            got.append(pool.acquire(timeout=5.0))

        t = threading.Thread(target=taker)
        t.start()
        time.sleep(0.05)
        assert not got  # blocked
        pool.release(held)
        t.join(timeout=5.0)
        assert len(got) == 1
        assert pool.total_waits == 1

    def test_acquire_timeout_raises(self):
        pool = BufferPool(64, 64)
        pool.acquire()
        with pytest.raises(ShutdownError, match="exhausted"):
            pool.acquire(timeout=0.05)

    def test_close_wakes_waiters(self):
        pool = BufferPool(64, 64)
        pool.acquire()
        errs = []

        def taker():
            try:
                pool.acquire(timeout=5.0)
            except ShutdownError as e:
                errs.append(e)

        t = threading.Thread(target=taker)
        t.start()
        time.sleep(0.05)
        pool.close()
        t.join(timeout=5.0)
        assert len(errs) == 1

    def test_double_release_rejected(self):
        pool = BufferPool(64, 128)
        c = pool.acquire()
        pool.release(c)
        with pytest.raises(ShutdownError):
            pool.release(c)

    def test_too_small_pool_rejected(self):
        with pytest.raises(ConfigError):
            BufferPool(1024, 512)

    def test_max_in_use_stat(self):
        pool = BufferPool(64, 256)
        chunks = [pool.acquire() for _ in range(3)]
        for c in chunks:
            pool.release(c)
        assert pool.max_in_use == 3


class TestWorkQueue:
    def test_fifo(self):
        q = WorkQueue()
        q.put(1)
        q.put(2)
        assert q.get() == 1
        assert q.get() == 2

    def test_get_blocks_until_put(self):
        q = WorkQueue()
        got = []

        def getter():
            got.append(q.get())

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.put("item")
        t.join(timeout=5.0)
        assert got == ["item"]

    def test_bounded_put_blocks(self):
        q = WorkQueue(capacity=1)
        q.put(1)
        done = []

        def putter():
            q.put(2, timeout=5.0)
            done.append(True)

        t = threading.Thread(target=putter)
        t.start()
        time.sleep(0.05)
        assert not done
        q.get()
        t.join(timeout=5.0)
        assert done

    def test_close_drains_then_raises(self):
        q = WorkQueue()
        q.put("x")
        q.close()
        assert q.get() == "x"
        with pytest.raises(QueueClosed):
            q.get()

    def test_put_after_close_rejected(self):
        q = WorkQueue()
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_close_wakes_blocked_getter(self):
        q = WorkQueue()
        errs = []

        def getter():
            try:
                q.get()
            except QueueClosed as e:
                errs.append(e)

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=5.0)
        assert len(errs) == 1

    def test_stats(self):
        q = WorkQueue()
        for i in range(5):
            q.put(i)
        assert q.total_puts == 5
        assert q.max_depth == 5
        assert len(q) == 5

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            WorkQueue(capacity=-1)


class TestFileEntryDrain:
    def test_counts_match_after_completion(self):
        e = FileEntry("/f", 3, 1024)
        e.note_chunk_queued()
        e.note_chunk_queued()
        assert e.outstanding == 2
        e.note_chunk_complete()
        e.note_chunk_complete()
        assert e.outstanding == 0
        e.wait_drained(timeout=0.1)  # returns immediately

    def test_wait_drained_blocks_until_complete(self):
        e = FileEntry("/f", 3, 1024)
        e.note_chunk_queued()
        waited = []

        def completer():
            time.sleep(0.05)
            e.note_chunk_complete()

        t = threading.Thread(target=completer)
        t.start()
        e.wait_drained(timeout=5.0)
        t.join()
        assert e.outstanding == 0

    def test_error_latched_and_raised_once(self):
        e = FileEntry("/f", 3, 1024)
        e.note_chunk_queued()
        e.note_chunk_complete(error=OSError("disk on fire"))
        with pytest.raises(BackendIOError, match="disk on fire"):
            e.wait_drained(timeout=0.1)
        # error was consumed
        e.wait_drained(timeout=0.1)

    def test_wait_drained_timeout(self):
        e = FileEntry("/f", 3, 1024)
        e.note_chunk_queued()
        with pytest.raises(FileStateError, match="stuck"):
            e.wait_drained(timeout=0.05)


class TestOpenFileTable:
    def test_open_creates_then_refcounts(self):
        t = OpenFileTable()
        made = []

        def make():
            e = FileEntry("/a", 1, 64)
            made.append(e)
            return e

        e1 = t.open("/a", make)
        e2 = t.open("/a", make)
        assert e1 is e2
        assert len(made) == 1
        assert e1.refcount == 2

    def test_close_drops_reference(self):
        t = OpenFileTable()
        t.open("/a", lambda: FileEntry("/a", 1, 64))
        t.open("/a", lambda: FileEntry("/a", 1, 64))
        _, last = t.close("/a")
        assert not last
        _, last = t.close("/a")
        assert last
        assert len(t) == 0

    def test_close_unknown_rejected(self):
        with pytest.raises(FileStateError):
            OpenFileTable().close("/nope")

    def test_paths(self):
        t = OpenFileTable()
        t.open("/a", lambda: FileEntry("/a", 1, 64))
        t.open("/b", lambda: FileEntry("/b", 2, 64))
        assert sorted(t.paths()) == ["/a", "/b"]


class TestIOThreadPool:
    def _rig(self, nthreads=2):
        backend = MemBackend()
        queue = WorkQueue()
        pool = BufferPool(64, 64 * 8)
        iop = IOThreadPool(backend, queue, pool, nthreads)
        iop.start()
        return backend, queue, pool, iop

    def test_chunks_written_to_backend(self):
        backend, queue, pool, iop = self._rig()
        fd = backend.open("/out")
        # Completion accounting flows over the event stream: wire the
        # standalone entry to the io-pool's stats registry.
        entry = FileEntry("/out", fd, 64, emit=iop.stats.on_event)
        chunk = pool.acquire()
        chunk.open_for(entry, 0)
        chunk.append(b"payload!", 0, 8)
        entry.note_chunk_queued()
        queue.put(WorkItem(chunk=chunk, entry=entry))
        entry.wait_drained(timeout=5.0)
        assert backend.read_file("/out") == b"payload!"
        assert iop.chunks_written == 1
        assert iop.bytes_written == 8
        iop.shutdown()

    def test_chunk_recycled_after_write(self):
        backend, queue, pool, iop = self._rig()
        fd = backend.open("/out")
        entry = FileEntry("/out", fd, 64)
        chunk = pool.acquire()
        chunk.open_for(entry, 0)
        chunk.append(b"x", 0, 1)
        entry.note_chunk_queued()
        queue.put(WorkItem(chunk=chunk, entry=entry))
        entry.wait_drained(timeout=5.0)
        deadline = time.time() + 5.0
        while pool.free_chunks != pool.nchunks and time.time() < deadline:
            time.sleep(0.01)
        assert pool.free_chunks == pool.nchunks
        iop.shutdown()

    def test_write_error_latches_into_entry(self):
        backend, queue, pool, iop = self._rig()
        # bogus fd -> pwrite fails
        entry = FileEntry("/out", 999999, 64, emit=iop.stats.on_event)
        chunk = pool.acquire()
        chunk.open_for(entry, 0)
        chunk.append(b"x", 0, 1)
        entry.note_chunk_queued()
        queue.put(WorkItem(chunk=chunk, entry=entry))
        with pytest.raises(BackendIOError):
            entry.wait_drained(timeout=5.0)
        assert iop.errors == 1
        iop.shutdown()

    def test_shutdown_joins_threads(self):
        _, queue, _, iop = self._rig(nthreads=3)
        iop.shutdown()
        assert not iop._threads

    def test_bad_thread_count(self):
        backend = MemBackend()
        with pytest.raises(ValueError):
            IOThreadPool(backend, WorkQueue(), BufferPool(64, 64), 0)

    def test_concurrent_chunks_across_files(self):
        backend, queue, pool, iop = self._rig(nthreads=4)
        entries = []
        for i in range(8):
            fd = backend.open(f"/f{i}")
            e = FileEntry(f"/f{i}", fd, 64)
            entries.append(e)
            chunk = pool.acquire()
            chunk.open_for(e, 0)
            payload = bytes([i]) * 16
            chunk.append(payload, 0, 16)
            e.note_chunk_queued()
            queue.put(WorkItem(chunk=chunk, entry=e))
        for e in entries:
            e.wait_drained(timeout=5.0)
        for i in range(8):
            assert backend.read_file(f"/f{i}") == bytes([i]) * 16
        iop.shutdown()
