"""Tests for all storage backends against the shared Backend contract."""

import threading

import pytest

from repro.backends import (
    FaultRule,
    FaultyBackend,
    InstrumentedBackend,
    LocalDirBackend,
    MemBackend,
    NullBackend,
)
from repro.backends.base import normalize_path, split_path
from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)


class TestPathHelpers:
    @pytest.mark.parametrize(
        "raw,norm",
        [
            ("/a/b", "/a/b"),
            ("a/b", "/a/b"),
            ("/a//b/", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/../b", "/b"),
            ("/../..", "/"),
            ("/", "/"),
            ("", "/"),
        ],
    )
    def test_normalize(self, raw, norm):
        assert normalize_path(raw) == norm

    def test_split(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        assert split_path("/a") == ("/", "a")
        assert split_path("/") == ("/", "")


def make_mem():
    return MemBackend()


def make_localdir(tmp_path):
    return LocalDirBackend(str(tmp_path / "root"))


@pytest.fixture(params=["mem", "localdir"])
def backend(request, tmp_path):
    if request.param == "mem":
        return make_mem()
    return make_localdir(tmp_path)


class TestBackendContract:
    """Shared semantics every real backend must satisfy."""

    def test_write_read_roundtrip(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"hello world", 0)
        assert backend.pread(fd, 11, 0) == b"hello world"
        backend.close(fd)

    def test_positional_writes(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"BBBB", 4)
        backend.pwrite(fd, b"AAAA", 0)
        assert backend.pread(fd, 8, 0) == b"AAAABBBB"
        backend.close(fd)

    def test_sparse_write_zero_fills(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"X", 10)
        assert backend.file_size(fd) == 11
        assert backend.pread(fd, 11, 0) == b"\x00" * 10 + b"X"
        backend.close(fd)

    def test_short_read_at_eof(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"abc", 0)
        assert backend.pread(fd, 100, 0) == b"abc"
        assert backend.pread(fd, 10, 50) == b""
        backend.close(fd)

    def test_overwrite(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"aaaa", 0)
        backend.pwrite(fd, b"bb", 1)
        assert backend.pread(fd, 4, 0) == b"abba"
        backend.close(fd)

    def test_open_no_create_missing(self, backend):
        with pytest.raises(FileNotFound):
            backend.open("/missing", create=False)

    def test_open_truncate(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"data", 0)
        backend.close(fd)
        fd = backend.open("/f", truncate=True)
        assert backend.file_size(fd) == 0
        backend.close(fd)

    def test_exists_and_stat(self, backend):
        assert not backend.exists("/f")
        fd = backend.open("/f")
        backend.pwrite(fd, b"12345", 0)
        backend.close(fd)
        assert backend.exists("/f")
        st = backend.stat("/f")
        assert st.size == 5
        assert not st.is_dir

    def test_stat_missing(self, backend):
        with pytest.raises(FileNotFound):
            backend.stat("/missing")

    def test_mkdir_listdir(self, backend):
        backend.mkdir("/d")
        fd = backend.open("/d/f")
        backend.close(fd)
        assert backend.listdir("/d") == ["f"]
        assert backend.stat("/d").is_dir

    def test_mkdir_exists(self, backend):
        backend.mkdir("/d")
        with pytest.raises(FileExists):
            backend.mkdir("/d")

    def test_mkdir_missing_parent(self, backend):
        with pytest.raises(FileNotFound):
            backend.mkdir("/no/such/parent")

    def test_unlink(self, backend):
        fd = backend.open("/f")
        backend.close(fd)
        backend.unlink("/f")
        assert not backend.exists("/f")

    def test_unlink_missing(self, backend):
        with pytest.raises(FileNotFound):
            backend.unlink("/missing")

    def test_rmdir_empty_only(self, backend):
        backend.mkdir("/d")
        fd = backend.open("/d/f")
        backend.close(fd)
        with pytest.raises(DirectoryNotEmpty):
            backend.rmdir("/d")
        backend.unlink("/d/f")
        backend.rmdir("/d")
        assert not backend.exists("/d")

    def test_rename(self, backend):
        fd = backend.open("/a")
        backend.pwrite(fd, b"data", 0)
        backend.close(fd)
        backend.rename("/a", "/b")
        assert not backend.exists("/a")
        assert backend.stat("/b").size == 4

    def test_rename_missing(self, backend):
        with pytest.raises(FileNotFound):
            backend.rename("/missing", "/x")

    def test_truncate_shrink_and_grow(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"123456", 0)
        backend.close(fd)
        backend.truncate("/f", 3)
        assert backend.stat("/f").size == 3
        backend.truncate("/f", 10)
        assert backend.stat("/f").size == 10

    def test_fsync_ok(self, backend):
        fd = backend.open("/f")
        backend.pwrite(fd, b"x", 0)
        backend.fsync(fd)
        backend.close(fd)

    def test_nested_dirs(self, backend):
        backend.mkdir("/a")
        backend.mkdir("/a/b")
        backend.mkdir("/a/b/c")
        fd = backend.open("/a/b/c/deep")
        backend.close(fd)
        assert backend.listdir("/a/b/c") == ["deep"]

    def test_concurrent_writers_distinct_files(self, backend):
        errors = []

        def writer(i):
            try:
                fd = backend.open(f"/f{i}")
                for j in range(50):
                    backend.pwrite(fd, bytes([i]) * 100, j * 100)
                backend.close(fd)
            except Exception as e:  # noqa: BLE001
                errors.append(e)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(8):
            assert backend.stat(f"/f{i}").size == 5000


class TestMemBackendSpecifics:
    def test_bad_fd(self):
        b = MemBackend()
        with pytest.raises(BadFileDescriptor):
            b.pwrite(12345, b"x", 0)

    def test_closed_fd_rejected(self):
        b = MemBackend()
        fd = b.open("/f")
        b.close(fd)
        with pytest.raises(BadFileDescriptor):
            b.pread(fd, 1, 0)

    def test_unlink_while_open_keeps_data(self):
        b = MemBackend()
        fd = b.open("/f")
        b.pwrite(fd, b"persist", 0)
        b.unlink("/f")
        assert b.pread(fd, 7, 0) == b"persist"
        b.close(fd)

    def test_open_dir_rejected(self):
        b = MemBackend()
        b.mkdir("/d")
        with pytest.raises(IsADirectory):
            b.open("/d")

    def test_listdir_on_file_rejected(self):
        b = MemBackend()
        fd = b.open("/f")
        b.close(fd)
        with pytest.raises(NotADirectory):
            b.listdir("/f")

    def test_write_stats(self):
        b = MemBackend()
        fd = b.open("/f")
        b.pwrite(fd, b"abc", 0)
        b.pwrite(fd, b"de", 3)
        assert b.total_pwrites == 2
        assert b.total_bytes_written == 5


class TestLocalDirBackend:
    def test_files_are_real(self, tmp_path):
        b = LocalDirBackend(str(tmp_path / "r"))
        fd = b.open("/sub/../f")  # normalized inside the virtual namespace
        b.pwrite(fd, b"real bytes", 0)
        b.close(fd)
        assert (tmp_path / "r" / "f").read_bytes() == b"real bytes"

    def test_escape_attempt_stays_in_root(self, tmp_path):
        b = LocalDirBackend(str(tmp_path / "r"))
        fd = b.open("/../../../../escaped")
        b.close(fd)
        # '..' resolved inside the virtual namespace: file lands in the root
        assert (tmp_path / "r" / "escaped").exists()
        assert not (tmp_path / "escaped").exists()


class TestNullBackend:
    def test_discards_but_tracks_size(self):
        b = NullBackend()
        fd = b.open("/f")
        b.pwrite(fd, b"x" * 100, 0)
        b.pwrite(fd, b"y" * 50, 200)
        assert b.file_size(fd) == 250
        assert b.pread(fd, 10, 0) == b"\x00" * 10
        assert b.total_bytes == 150
        b.close(fd)

    def test_namespace_minimal(self):
        b = NullBackend()
        fd = b.open("/d/f")
        b.close(fd)
        assert b.exists("/d/f")
        b.rename("/d/f", "/d/g")
        assert b.exists("/d/g")
        b.unlink("/d/g")
        assert not b.exists("/d/g")


class TestInstrumentedBackend:
    def test_records_pwrites_with_sizes(self):
        b = InstrumentedBackend(MemBackend())
        fd = b.open("/f")
        b.pwrite(fd, b"abc", 0)
        b.pwrite(fd, b"defgh", 3)
        b.close(fd)
        assert b.write_sizes() == [3, 5]
        ops = b.ops()
        assert [o.op for o in ops] == ["open", "pwrite", "pwrite", "close"]
        assert all(o.duration >= 0 for o in ops)

    def test_paths_recorded(self):
        b = InstrumentedBackend(MemBackend())
        b.mkdir("/ckpt")
        fd = b.open("/ckpt/rank0")
        b.pwrite(fd, b"x", 0)
        assert b.ops("pwrite")[0].path == "/ckpt/rank0"

    def test_clear(self):
        b = InstrumentedBackend(MemBackend())
        fd = b.open("/f")
        b.clear()
        assert b.ops() == []
        b.close(fd)

    def test_delegation_correct(self):
        b = InstrumentedBackend(MemBackend())
        fd = b.open("/f")
        b.pwrite(fd, b"hello", 0)
        assert b.pread(fd, 5, 0) == b"hello"
        b.close(fd)
        b.mkdir("/d")
        assert b.listdir("/") == ["d", "f"]


class TestFaultyBackend:
    def test_nth_pwrite_fails(self):
        b = FaultyBackend(
            MemBackend(), [FaultRule(op="pwrite", nth=2, error=OSError("EIO"))]
        )
        fd = b.open("/f")
        b.pwrite(fd, b"ok", 0)
        with pytest.raises(OSError, match="EIO"):
            b.pwrite(fd, b"boom", 2)
        # third pwrite succeeds again (one-shot rule)
        b.pwrite(fd, b"ok", 2)
        assert b.faults_fired == 1

    def test_every_rule_persists(self):
        b = FaultyBackend(
            MemBackend(),
            [FaultRule(op="fsync", nth=1, every=True, error=OSError("nope"))],
        )
        fd = b.open("/f")
        for _ in range(3):
            with pytest.raises(OSError):
                b.fsync(fd)

    def test_delay_rule(self):
        slept = []
        b = FaultyBackend(
            MemBackend(),
            [FaultRule(op="pwrite", nth=1, delay=0.5)],
            sleep=slept.append,
        )
        fd = b.open("/f")
        b.pwrite(fd, b"x", 0)
        assert slept == [0.5]

    def test_bad_nth(self):
        with pytest.raises(ValueError):
            FaultRule(op="pwrite", nth=0)
