"""Tests for FIFO service centers and processor-sharing bandwidth."""

import pytest

from repro.errors import SimulationError
from repro.sim import FIFOResource, SharedBandwidth, Simulator


class TestFIFOResource:
    def test_single_use(self):
        sim = Simulator()
        res = FIFOResource(sim, "disk")

        def proc():
            yield res.use(2.5)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.result == 2.5

    def test_serialization_in_fifo_order(self):
        sim = Simulator()
        res = FIFOResource(sim)
        done = []

        def proc(name, service):
            yield res.use(service)
            done.append((name, sim.now))

        sim.spawn(proc("a", 1.0))
        sim.spawn(proc("b", 2.0))
        sim.spawn(proc("c", 0.5))
        sim.run()
        assert done == [("a", 1.0), ("b", 3.0), ("c", 3.5)]

    def test_queueing_delay_accounted(self):
        sim = Simulator()
        res = FIFOResource(sim)

        def proc():
            yield res.use(1.0)

        for _ in range(3):
            sim.spawn(proc())
        sim.run()
        # waits: 0 + 1 + 2 = 3
        assert res.total_wait == pytest.approx(3.0)
        assert res.total_ops == 3
        assert res.busy_time == pytest.approx(3.0)
        assert res.utilization(sim.now) == pytest.approx(1.0)

    def test_idle_gap_reflected_in_utilization(self):
        sim = Simulator()
        res = FIFOResource(sim)

        def proc(start):
            yield sim.timeout(start)
            yield res.use(1.0)

        sim.spawn(proc(0.0))
        sim.spawn(proc(5.0))
        sim.run()
        assert res.utilization(sim.now) == pytest.approx(2.0 / 6.0)

    def test_negative_duration_rejected(self):
        sim = Simulator()
        res = FIFOResource(sim)
        with pytest.raises(SimulationError):
            res.use(-1.0)

    def test_max_queue_tracked(self):
        sim = Simulator()
        res = FIFOResource(sim)

        def proc():
            yield res.use(1.0)

        for _ in range(4):
            sim.spawn(proc())
        sim.run()
        # The first arrival enters service immediately; the remaining three
        # are the deepest simultaneous backlog.
        assert res.max_queue == 3


class TestSharedBandwidth:
    def test_single_transfer_time(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0)

        def proc():
            yield link.transfer(250.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.result == pytest.approx(2.5)

    def test_two_equal_transfers_share_fairly(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0)
        done = []

        def proc(name):
            yield link.transfer(100.0)
            done.append((name, sim.now))

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        # both at 50 B/s -> both finish at t=2
        assert done[0][1] == pytest.approx(2.0)
        assert done[1][1] == pytest.approx(2.0)

    def test_departure_speeds_up_remaining(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0)
        done = {}

        def proc(name, size):
            yield link.transfer(size)
            done[name] = sim.now

        sim.spawn(proc("small", 50.0))
        sim.spawn(proc("big", 150.0))
        sim.run()
        # Phase 1: both at 50 B/s; small finishes at t=1 (50 bytes).
        # big has 100 left, then full rate 100 B/s -> finishes at t=2.
        assert done["small"] == pytest.approx(1.0)
        assert done["big"] == pytest.approx(2.0)

    def test_late_arrival_slows_existing(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0)
        done = {}

        def first():
            yield link.transfer(100.0)
            done["first"] = sim.now

        def second():
            yield sim.timeout(0.5)
            yield link.transfer(100.0)
            done["second"] = sim.now

        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        # first: 50 bytes by t=0.5, then 50 B/s -> +1.0 -> t=1.5
        assert done["first"] == pytest.approx(1.5)
        # second: 50 B/s until t=1.5 (50 bytes), then 100 B/s for 50 -> t=2.0
        assert done["second"] == pytest.approx(2.0)

    def test_per_job_cap(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0, per_job_cap=10.0)

        def proc():
            yield link.transfer(20.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.result == pytest.approx(2.0)  # capped at 10 B/s

    def test_zero_byte_transfer_is_instant(self):
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0)

        def proc():
            yield link.transfer(0.0)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.result == 0.0

    def test_conservation_of_work(self):
        # Total completion time of any workload >= total bytes / capacity.
        sim = Simulator()
        link = SharedBandwidth(sim, capacity=100.0)
        sizes = [37.0, 91.0, 12.0, 55.0, 200.0]

        def proc(size):
            yield link.transfer(size)

        for s in sizes:
            sim.spawn(proc(s))
        sim.run()
        assert sim.now == pytest.approx(sum(sizes) / 100.0)
        assert link.total_bytes == pytest.approx(sum(sizes))
        assert link.max_concurrency == len(sizes)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            SharedBandwidth(sim, capacity=0)
        with pytest.raises(SimulationError):
            SharedBandwidth(sim, capacity=10, per_job_cap=0)
        link = SharedBandwidth(sim, capacity=10)
        with pytest.raises(SimulationError):
            link.transfer(-5)
