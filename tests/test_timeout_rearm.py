"""Deadline semantics of the threaded plane's timeout loops.

Every blocking wait in the functional plane treats its ``timeout`` as a
*deadline*, not a per-wakeup budget: a wakeup that finds the condition
still false must wait only on the remainder.  The regression these
tests pin: a "teaser" thread hammering the condition with notifies
(spurious wakeups, completions for other files/chunks) must not extend
the wait — each loop still gives up within the original deadline.

Covered loops: ``WorkQueue.get`` / ``WorkQueue.get_batch``,
``FileEntry.wait_drained``, ``TieredBackend.fsync_through`` /
``TieredBackend.drain``, and the readahead cache's in-flight wait in
``ReadCache._chunk_slice`` (exercised via its recovery path, since its
deadline constant is not configurable).
"""

import threading
import time

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend, TieredBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.core.filetable import FileEntry
from repro.core.workqueue import WorkQueue
from repro.errors import BackendTimeoutError, FileStateError
from repro.units import KiB

CHUNK = 64 * KiB

#: The storm must not extend a 0.3 s deadline anywhere near this bound;
#: generous so slow CI machines never flake.
SLACK = 5.0


class _Teaser:
    """A thread that notifies ``cond`` in a tight loop until stopped —
    every notify is a spurious wakeup for the waiter under test."""

    def __init__(self, cond: threading.Condition):
        self.cond = cond
        self.stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self.stop.is_set():
            with self.cond:
                self.cond.notify_all()
            time.sleep(0.001)

    def __enter__(self):
        self.thread.start()
        return self

    def __exit__(self, *exc):
        self.stop.set()
        self.thread.join()


def assert_deadline(fn, exc_type, timeout):
    start = time.monotonic()
    with pytest.raises(exc_type):
        fn()
    elapsed = time.monotonic() - start
    assert timeout * 0.5 <= elapsed < timeout + SLACK, elapsed


class TestWorkQueueDeadlines:
    def test_get_times_out_under_notify_storm(self):
        q = WorkQueue()
        with _Teaser(q._not_empty):
            assert_deadline(lambda: q.get(timeout=0.3), TimeoutError, 0.3)

    def test_get_batch_times_out_under_notify_storm(self):
        q = WorkQueue()
        with _Teaser(q._not_empty):
            assert_deadline(
                lambda: q.get_batch(4, lambda a, b: True, timeout=0.3),
                TimeoutError,
                0.3,
            )

    def test_get_still_returns_a_late_item(self):
        """The deadline must not fire early either: an item arriving
        mid-wait (amid the storm) is returned, not dropped."""
        q = WorkQueue()
        with _Teaser(q._not_empty):
            threading.Timer(0.1, lambda: q.put("late")).start()
            assert q.get(timeout=5.0) == "late"


class TestWaitDrainedDeadline:
    def test_wait_drained_times_out_under_notify_storm(self):
        entry = FileEntry("/stuck", None, CHUNK)
        entry.note_chunk_queued()  # one chunk forever outstanding
        with _Teaser(entry._drain):
            assert_deadline(
                lambda: entry.wait_drained(timeout=0.3), FileStateError, 0.3
            )

    def test_wait_drained_wakes_on_real_completion(self):
        entry = FileEntry("/ok", None, CHUNK)
        entry.note_chunk_queued()
        with _Teaser(entry._drain):
            threading.Timer(0.1, entry.note_chunk_complete).start()
            entry.wait_drained(timeout=5.0)  # must not raise


def _held_tiered_backend():
    """A two-tier backend whose pump is stuck forever in its first deep
    write (the gate is never set), leaving staging debt outstanding."""
    gate = threading.Event()
    deep = FaultyBackend(
        MemBackend(),
        [FaultRule(op="pwrite", nth=1, every=True, delay=1.0)],
        sleep=lambda _s: gate.wait(),
    )
    return gate, TieredBackend([MemBackend(), deep])


class TestTierStagingDeadlines:
    def test_fsync_through_times_out_under_notify_storm(self):
        gate, backend = _held_tiered_backend()
        try:
            h = backend.open("/ckpt")
            backend.pwrite(h, b"x" * CHUNK, 0)
            with _Teaser(backend._idle):
                assert_deadline(
                    lambda: backend.fsync_through(h, 1, timeout=0.3),
                    BackendTimeoutError,
                    0.3,
                )
        finally:
            gate.set()  # free the pump so shutdown drains cleanly
            backend.shutdown()

    def test_drain_times_out_under_notify_storm(self):
        gate, backend = _held_tiered_backend()
        try:
            h = backend.open("/ckpt")
            backend.pwrite(h, b"x" * CHUNK, 0)
            assert backend.outstanding > 0
            with _Teaser(backend._idle):
                assert_deadline(
                    lambda: backend.drain(timeout=0.3),
                    BackendTimeoutError,
                    0.3,
                )
        finally:
            gate.set()
            backend.shutdown()


class TestReadCacheInFlightWait:
    def test_inflight_wait_survives_spurious_wakeups(self):
        """A read that lands on its own in-flight prefetch is woken by
        completions for *other* chunks (spurious for it) and must keep
        waiting — then return the bytes once its fetch really lands."""
        mem = MemBackend()
        # slow every backend pread a little so demand reads overlap the
        # queued prefetches and the in-flight branch is actually taken
        backend = FaultyBackend(
            mem,
            [FaultRule(op="pread", nth=1, every=True, delay=0.01)],
            sleep=time.sleep,
        )
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=2,
            read_cache_chunks=4, readahead_chunks=2,
        )
        data = bytes(range(256)) * (CHUNK // 256) * 4
        with CRFS(backend, cfg) as fs:
            f = fs.open("/ckpt")
            f.write(data)
            f.fsync()
            out = b"".join(f.pread(CHUNK, i * CHUNK) for i in range(4))
            assert out == data
            f.close()
