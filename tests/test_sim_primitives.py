"""Tests for simulation events, locks, semaphores and queues."""

import pytest

from repro.errors import DeadlockError, ShutdownError, SimulationError
from repro.sim import SimEvent, SimLock, SimQueue, SimSemaphore, Simulator


class TestSimEvent:
    def test_wait_then_succeed(self):
        sim = Simulator()
        ev = SimEvent(sim)

        def waiter():
            got = yield ev
            return (got, sim.now)

        def trigger():
            yield sim.timeout(3.0)
            ev.succeed("payload")

        p = sim.spawn(waiter())
        sim.spawn(trigger())
        sim.run()
        assert p.result == ("payload", 3.0)

    def test_wait_after_triggered_returns_immediately(self):
        sim = Simulator()
        ev = SimEvent(sim)
        ev.succeed(7)

        def waiter():
            got = yield ev
            return got

        p = sim.spawn(waiter())
        sim.run()
        assert p.result == 7

    def test_multiple_waiters_all_released(self):
        sim = Simulator()
        ev = SimEvent(sim)
        results = []

        def waiter(i):
            yield ev
            results.append(i)

        for i in range(3):
            sim.spawn(waiter(i))

        def trigger():
            yield sim.timeout(1.0)
            ev.succeed()

        sim.spawn(trigger())
        sim.run()
        assert results == [0, 1, 2]

    def test_fail_throws_into_waiters(self):
        sim = Simulator()
        ev = SimEvent(sim)

        def waiter():
            try:
                yield ev
            except ValueError:
                return "failed"

        def trigger():
            yield sim.timeout(1.0)
            ev.fail(ValueError("x"))

        p = sim.spawn(waiter())
        sim.spawn(trigger())
        sim.run()
        assert p.result == "failed"

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = SimEvent(sim)
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_waiting_forever_is_deadlock(self):
        sim = Simulator()
        ev = SimEvent(sim)

        def waiter():
            yield ev

        sim.spawn(waiter())
        with pytest.raises(DeadlockError):
            sim.run()


class TestSimLock:
    def test_mutual_exclusion_serializes(self):
        sim = Simulator()
        lock = SimLock(sim)
        spans = []

        def proc(name):
            yield lock.acquire()
            start = sim.now
            yield sim.timeout(2.0)
            lock.release()
            spans.append((name, start, sim.now))

        for i in range(3):
            sim.spawn(proc(i))
        sim.run()
        # strictly serialized, FIFO order
        assert spans == [(0, 0.0, 2.0), (1, 2.0, 4.0), (2, 4.0, 6.0)]

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        lock = SimLock(sim)
        with pytest.raises(SimulationError):
            lock.release()

    def test_contention_stats(self):
        sim = Simulator()
        lock = SimLock(sim)

        def proc():
            yield lock.acquire()
            yield sim.timeout(1.0)
            lock.release()

        for _ in range(4):
            sim.spawn(proc())
        sim.run()
        assert lock.total_acquires == 4
        assert lock.total_waits == 3


class TestSimSemaphore:
    def test_capacity_limits_concurrency(self):
        sim = Simulator()
        sem = SimSemaphore(sim, capacity=2)
        active = []
        peak = []

        def proc():
            yield sem.acquire()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.pop()
            sem.release()

        for _ in range(6):
            sim.spawn(proc())
        sim.run()
        assert max(peak) == 2
        assert sim.now == 3.0  # 6 jobs, 2 at a time, 1s each

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            SimSemaphore(Simulator(), 0)

    def test_in_use_and_waiting_counters(self):
        sim = Simulator()
        sem = SimSemaphore(sim, capacity=1)
        observed = {}

        def holder():
            yield sem.acquire()
            yield sim.timeout(5.0)
            observed["waiting"] = sem.waiting
            sem.release()

        def contender():
            yield sim.timeout(1.0)
            yield sem.acquire()
            sem.release()

        sim.spawn(holder())
        sim.spawn(contender())
        sim.run()
        assert observed["waiting"] == 1


class TestSimQueue:
    def test_put_then_get(self):
        sim = Simulator()
        q = SimQueue(sim)

        def producer():
            yield q.put("a")
            yield q.put("b")

        def consumer():
            x = yield q.get()
            y = yield q.get()
            return [x, y]

        sim.spawn(producer())
        p = sim.spawn(consumer())
        sim.run()
        assert p.result == ["a", "b"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        q = SimQueue(sim)

        def consumer():
            item = yield q.get()
            return (item, sim.now)

        def producer():
            yield sim.timeout(4.0)
            yield q.put("late")

        p = sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert p.result == ("late", 4.0)

    def test_bounded_put_blocks_until_get(self):
        sim = Simulator()
        q = SimQueue(sim, capacity=1)
        times = {}

        def producer():
            yield q.put(1)
            yield q.put(2)  # must wait for consumer
            times["second_put"] = sim.now

        def consumer():
            yield sim.timeout(3.0)
            yield q.get()
            yield q.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert times["second_put"] == 3.0

    def test_fifo_ordering(self):
        sim = Simulator()
        q = SimQueue(sim)
        got = []

        def producer():
            for i in range(5):
                yield q.put(i)

        def consumer():
            for _ in range(5):
                got.append((yield q.get()))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_close_wakes_blocked_getters(self):
        sim = Simulator()
        q = SimQueue(sim)

        def consumer():
            try:
                yield q.get()
            except ShutdownError:
                return "shutdown"

        def closer():
            yield sim.timeout(1.0)
            q.close()

        p = sim.spawn(consumer())
        sim.spawn(closer())
        sim.run()
        assert p.result == "shutdown"

    def test_close_drains_items_first(self):
        sim = Simulator()
        q = SimQueue(sim)
        log = []

        def producer():
            yield q.put("x")
            q.close()

        def consumer():
            yield sim.timeout(1.0)
            log.append((yield q.get()))
            try:
                yield q.get()
            except ShutdownError:
                log.append("shutdown")

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert log == ["x", "shutdown"]

    def test_put_after_close_fails(self):
        sim = Simulator()
        q = SimQueue(sim)
        q.close()

        def producer():
            try:
                yield q.put(1)
            except ShutdownError:
                return "refused"

        p = sim.spawn(producer())
        sim.run()
        assert p.result == "refused"

    def test_depth_stats(self):
        sim = Simulator()
        q = SimQueue(sim)

        def producer():
            for i in range(3):
                yield q.put(i)

        def consumer():
            yield sim.timeout(1.0)
            for _ in range(3):
                yield q.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert q.max_depth == 3
        assert q.total_puts == 3
        assert len(q) == 0
