"""Property-based laws of the staging hierarchy (Hypothesis).

Random append workloads and random per-tier fault schedules on a
three-tier chain, checked against three laws:

1. **Replication law** — after the pump settles, tier 0 holds exactly
   the byte image a direct single-backend mount produces for the same
   workload, and so does every tier shallower than the shallowest
   strand (stranding at tier k forgives the deeper debts, so tiers
   above the first strand are the fully-replicated set).
2. **Durability law** — a clean return from ``fsync`` under
   ``fsync_tier=k`` implies tiers 0..k hold every byte written before
   the fsync, no matter what faults are injected deeper than k.
3. **Plane parity law** — with one IO thread, one pump thread and
   batch 1, the workload-determined tier counters and the strand-error
   surface are identical on the threaded and virtual-clock planes for
   any workload/fault combination.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import FaultRule, FaultyBackend, MemBackend, TieredBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB

pytestmark = pytest.mark.property

CHUNK = 16 * KiB

FAST = dict(retry_backoff=1e-4, retry_backoff_max=1e-3, retry_jitter=0.0)

#: Tier counters a free-running single-lane run still fully determines
#: (mirrors the fault-matrix set; the queue-depth gauge is excluded).
TIER_DETERMINISTIC = (
    "chunks_staged",
    "bytes_staged",
    "chunks_migrated",
    "bytes_migrated",
    "chunks_stranded",
    "bytes_stranded",
    "migrate_errors",
    "migrate_retries",
    "breaker_trips",
    "breaker_recoveries",
)

#: One tier's fault schedule: None, or (op, when).  Fresh FaultRule
#: objects are built per example — schedules count per instance.
FAULT_MODES = [
    None,
    ("pwrite", "first"),
    ("pwrite", "second"),
    ("pwrite", "every"),
    ("pwritev", "every"),
    ("fsync", "first"),
    ("fsync", "every"),
]

fault_mode = st.sampled_from(FAULT_MODES)
write_sizes = st.lists(
    st.integers(min_value=1, max_value=3 * CHUNK + 100), min_size=1, max_size=6
)


def rules_for(mode):
    if mode is None:
        return []
    op, when = mode
    err = OSError(f"injected-{op}-{when}")
    if when == "first":
        return [FaultRule(op=op, nth=1, error=err)]
    if when == "second":
        return [FaultRule(op=op, nth=2, error=err)]
    return [FaultRule(op=op, nth=1, every=True, error=err)]


def stream(sizes, salt=0):
    """A deterministic byte stream cut into the given write sizes."""
    total = sum(sizes)
    blob = bytes((i * 131 + 17 + salt) % 256 for i in range(total))
    out, off = [], 0
    for s in sizes:
        out.append(blob[off : off + s])
        off += s
    return blob, out


def backing(mem, path, n):
    return mem.pread(mem.open(path, create=False), n, 0)


def chain(modes, attempts, pump_threads=1, batch=1, fsync_tier=-1):
    """A (tier 0 .. tier N) staging chain: plain mem at tier 0, faulty
    mem at every deeper tier, plus its mount."""
    mems = [MemBackend() for _ in range(len(modes) + 1)]
    tiers = [mems[0]] + [
        FaultyBackend(mem, rules_for(mode), sleep=lambda s: None)
        for mem, mode in zip(mems[1:], modes)
    ]
    cfg = CRFSConfig(
        chunk_size=CHUNK, pool_size=32 * CHUNK, io_threads=1,
        retry_attempts=attempts, breaker_threshold=2,
        tier_pump_threads=pump_threads, tier_pump_batch_chunks=batch,
        fsync_tier=fsync_tier, read_passthrough=False, **FAST,
    )
    return mems, CRFS(TieredBackend(tiers), cfg)


def direct_image(sizes):
    """The same workload through a plain single-backend mount."""
    mem = MemBackend()
    cfg = CRFSConfig(chunk_size=CHUNK, pool_size=32 * CHUNK, io_threads=1)
    with CRFS(mem, cfg) as fs:
        with fs.open("/img") as f:
            for piece in stream(sizes)[1]:
                f.write(piece)
    return backing(mem, "/img", sum(sizes))


class TestReplicationLaw:
    @given(
        sizes=write_sizes,
        read_mask=st.lists(st.booleans(), min_size=6, max_size=6),
        mode1=fault_mode,
        mode2=fault_mode,
        attempts=st.sampled_from([1, 2]),
        pump_threads=st.sampled_from([1, 2]),
        batch=st.sampled_from([1, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_shallow_tiers_match_a_direct_run(
        self, sizes, read_mask, mode1, mode2, attempts, pump_threads, batch
    ):
        blob, pieces = stream(sizes)
        mems, fs = chain((mode1, mode2), attempts, pump_threads, batch)
        reads_fired = False
        with fs:
            f = fs.open("/img")
            written = 0
            for i, piece in enumerate(pieces):
                f.write(piece)  # staging is async: never raises
                written += len(piece)
                if read_mask[i]:
                    # read-your-writes mid-staging (flush+drain path):
                    # a tail slice of everything written so far
                    n = min(written, 2 * CHUNK + 7)
                    assert f.pread(n, written - n) == blob[written - n : written]
                    reads_fired = True
            try:
                f.fsync()  # settle the pump (may surface strand/fsync faults)
            except OSError:
                pass
            f.close()
            stats = fs.stats()

        assert direct_image(sizes) == blob
        per_tier = stats["tiers"]["per_tier"]
        stranded = [
            k for k in range(3) if per_tier[str(k)]["chunks_stranded"] > 0
        ]
        # tier 0 is fed by the mount pipeline, never by the pump
        assert not stranded or stranded[0] >= 1
        deepest_replicated = (stranded[0] - 1) if stranded else 2
        for k in range(deepest_replicated + 1):
            assert backing(mems[k], "/img", len(blob)) == blob, f"tier {k}"
        # conservation at every tier: staged + stranded accounts for
        # every chunk the tier above forwarded (a mid-stream read seals
        # the partial tail early, so tier 0 may re-stage that chunk)
        nchunks = -(-len(blob) // CHUNK)
        t0 = per_tier["0"]
        assert t0["chunks_stranded"] == 0
        if reads_fired:
            assert t0["chunks_staged"] >= nchunks
        else:
            assert t0["chunks_staged"] == nchunks
        for k in (1, 2):
            t = per_tier[str(k)]
            accepted = per_tier[str(k - 1)]["chunks_staged"]
            assert t["chunks_staged"] + t["chunks_stranded"] == accepted


class TestDurabilityLaw:
    @given(
        before=write_sizes,
        after=write_sizes,
        k=st.sampled_from([0, 1]),
        deep_mode=fault_mode.filter(lambda m: m is not None),
        attempts=st.sampled_from([1, 2]),
    )
    @settings(max_examples=25, deadline=None)
    def test_clean_fsync_means_tiers_through_k_hold_the_prefix(
        self, before, after, k, deep_mode, attempts
    ):
        """Faults strictly deeper than ``fsync_tier`` never surface from
        fsync, and a clean return proves tiers 0..k hold the prefix."""
        modes = [None, None]
        for deeper in range(k, 2):  # tiers k+1..2 carry the faults
            modes[deeper] = deep_mode
        blob, pieces = stream(before)
        mems, fs = chain(tuple(modes), attempts, fsync_tier=k)
        with fs:
            f = fs.open("/img")
            for piece in pieces:
                f.write(piece)
            f.fsync()  # must NOT raise: durability only through tier k
            assert fs.stats()["tiers"]["sync_through"] == k
            for tier in range(k + 1):
                assert backing(mems[tier], "/img", len(blob)) == blob, (
                    f"tier {tier} missing synced bytes"
                )
            for piece in stream(after, salt=97)[1]:
                f.write(piece)  # the suffix still staged without raising
            f.close()


class TestPlaneParityLaw:
    @given(
        sizes=write_sizes,
        deep_mode=fault_mode,
        attempts=st.sampled_from([1, 2]),
    )
    @settings(max_examples=15, deadline=None)
    def test_tier_counters_and_sync_errors_match(
        self, sizes, deep_mode, attempts
    ):
        func_stats, func_sync = self._functional(sizes, deep_mode, attempts)
        sim_stats, sim_sync = self._sim(sizes, deep_mode, attempts)
        for stats in (func_stats, sim_stats):
            assert stats["resilience"]["chunks_retried"] == 0
            assert stats["resilience"]["breaker_trips"] == 0
        assert self._comparable(func_stats) == self._comparable(sim_stats)
        assert (
            func_stats["tiers"]["sync_through"]
            == sim_stats["tiers"]["sync_through"]
        )
        assert [str(e) for e in func_sync] == [str(e) for e in sim_sync]

    @staticmethod
    def _comparable(stats):
        return {
            level: {key: counters[key] for key in TIER_DETERMINISTIC}
            for level, counters in stats["tiers"]["per_tier"].items()
        }

    @staticmethod
    def _config(attempts):
        return CRFSConfig(
            chunk_size=CHUNK, pool_size=32 * CHUNK, io_threads=1,
            retry_attempts=attempts, breaker_threshold=2,
            tier_pump_threads=1, tier_pump_batch_chunks=1, **FAST,
        )

    def _functional(self, sizes, deep_mode, attempts):
        deep = FaultyBackend(
            MemBackend(), rules_for(deep_mode), sleep=lambda s: None
        )
        sync_errors = []
        with CRFS(
            TieredBackend([MemBackend(), deep]), self._config(attempts)
        ) as fs:
            f = fs.open("/img")
            for piece in stream(sizes)[1]:
                f.write(piece)
            try:
                f.fsync()
            except OSError as exc:
                sync_errors.append(exc)
            f.close()
            return fs.stats(), sync_errors

    def _sim(self, sizes, deep_mode, attempts):
        from repro.sim import SharedBandwidth, Simulator
        from repro.simcrfs import SimCRFS
        from repro.simio.faulty import FaultySimFilesystem
        from repro.simio.nullfs import NullSimFilesystem
        from repro.simio.params import DEFAULT_HW
        from repro.simio.tiered import TieredSimFilesystem
        from repro.util.rng import rng_for

        sim = Simulator()
        hw = DEFAULT_HW
        membus = SharedBandwidth(sim, hw.membus_bandwidth)
        deep = FaultySimFilesystem(
            NullSimFilesystem(sim, hw, rng_for(1, "tierprop/deep")),
            rules_for(deep_mode),
        )
        backend = TieredSimFilesystem(
            [NullSimFilesystem(sim, hw, rng_for(1, "tierprop/t0")), deep]
        )
        crfs = SimCRFS(sim, hw, self._config(attempts), backend, membus)
        sync_errors = []

        def proc():
            f = crfs.open("/img")
            for size in sizes:
                yield from crfs.write(f, size)
            try:
                yield from crfs.fsync(f)
            except OSError as exc:
                sync_errors.append(exc)
            yield from crfs.close(f)

        sim.run_until_complete([sim.spawn(proc())])
        sim.run_until_complete(
            [sim.spawn(crfs.drain_staging(), name="drain")]
        )
        crfs.shutdown()
        return crfs.stats(), sync_errors


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
