"""Writeback resilience: retry policy, circuit breaker, and both planes'
retry drivers (``pipeline/resilience.py`` plus its core/simcrfs wiring).

The contract under test: transient backend faults are retried under the
mount's :class:`RetryPolicy` before anything latches; consecutive
failures trip the :class:`BackendHealth` breaker into synchronous
write-through until a probe write succeeds; every transition is visible
on the unified event stream and in ``stats()["resilience"]`` — with the
same schema on both planes.
"""

import threading
import time

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import BackendIOError, BackendTimeoutError, ConfigError
from repro.pipeline import (
    BackendDegraded,
    BackendHealth,
    BackendRecovered,
    ChunkRetried,
    PipelineObserver,
    RetryPolicy,
    run_attempts,
)
from repro.sim import SharedBandwidth, Simulator
from repro.simcrfs import SimCRFS
from repro.simio.faulty import FaultySimFilesystem
from repro.simio.nullfs import NullSimFilesystem
from repro.simio.params import DEFAULT_HW
from repro.units import KiB
from repro.util.rng import rng_for

CHUNK = 64 * KiB

#: Fast real-time backoff for threaded tests.
FAST = dict(retry_backoff=1e-4, retry_backoff_max=1e-3)


def fast_policy(**kw):
    kw.setdefault("backoff", 1e-4)
    kw.setdefault("backoff_max", 1e-3)
    return RetryPolicy(**kw)


class Recorder(PipelineObserver):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)

    def of(self, cls):
        return [e for e in self.events if isinstance(e, cls)]


# ---------------------------------------------------------------------------
# RetryPolicy


class TestRetryPolicy:
    def test_defaults_fail_fast(self):
        p = RetryPolicy()
        assert not p.enabled
        assert not p.should_retry(1)

    def test_should_retry_counts_the_first_attempt(self):
        p = RetryPolicy(attempts=3)
        assert p.should_retry(1) and p.should_retry(2)
        assert not p.should_retry(3)

    def test_delay_is_deterministic_per_chunk(self):
        p = RetryPolicy(attempts=4, seed=7)
        d1 = p.delay(1, "/f", 0)
        assert d1 == p.delay(1, "/f", 0)  # same key, same delay
        assert d1 != p.delay(1, "/f", CHUNK)  # different chunk
        assert d1 != RetryPolicy(attempts=4, seed=8).delay(1, "/f", 0)

    def test_delay_grows_and_caps(self):
        p = RetryPolicy(
            attempts=10, backoff=0.01, backoff_factor=2.0, backoff_max=0.05, jitter=0.0
        )
        delays = [p.delay(k, "/f", 0) for k in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_bounds(self):
        p = RetryPolicy(attempts=2, backoff=0.01, jitter=0.5)
        for k in range(1, 20):
            d = p.delay(1, f"/f{k}", 0)
            assert 0.005 <= d <= 0.015

    def test_timed_out(self):
        assert not RetryPolicy().timed_out(999.0)  # disabled by default
        p = RetryPolicy(attempt_timeout=0.1)
        assert p.timed_out(0.2)
        assert not p.timed_out(0.05)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(attempts=0),
            dict(backoff=-1.0),
            dict(backoff_factor=0.5),
            dict(backoff_max=-0.1),
            dict(jitter=1.5),
            dict(attempt_timeout=-1.0),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            RetryPolicy(**kw)

    def test_config_knobs_round_trip(self):
        cfg = CRFSConfig(retry_attempts=5, retry_backoff=0.01, retry_seed=42)
        p = cfg.retry_policy()
        assert p.attempts == 5 and p.backoff == 0.01 and p.seed == 42
        with pytest.raises(ConfigError):
            CRFSConfig(retry_attempts=0)
        with pytest.raises(ConfigError):
            CRFSConfig(breaker_threshold=-1)


# ---------------------------------------------------------------------------
# BackendHealth


class TestBackendHealth:
    def test_disabled_breaker_never_degrades(self):
        h = BackendHealth(threshold=0)
        for _ in range(10):
            assert not h.record_failure()
        assert not h.degraded
        assert h.failures == 10 and h.trips == 0

    def test_trips_on_consecutive_failures_only(self):
        h = BackendHealth(threshold=3)
        h.record_failure()
        h.record_failure()
        h.record_success()  # resets the streak
        h.record_failure()
        h.record_failure()
        assert not h.degraded
        assert h.record_failure()  # third consecutive -> trip
        assert h.degraded and h.trips == 1

    def test_probe_success_recovers(self):
        clock = iter([float(i) for i in range(100)])
        events = []
        h = BackendHealth(threshold=1, emit=events.append, clock=lambda: next(clock))
        h.record_failure()
        assert h.degraded
        assert h.record_success()
        assert not h.degraded and h.recoveries == 1
        assert isinstance(events[0], BackendDegraded)
        assert isinstance(events[1], BackendRecovered)
        assert events[1].downtime == pytest.approx(1.0)

    def test_no_double_trip_while_open(self):
        h = BackendHealth(threshold=1)
        assert h.record_failure()
        assert not h.record_failure()  # already open
        assert h.trips == 1

    def test_thread_safety(self):
        h = BackendHealth(threshold=1)
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(1000):
                h.record_failure()
                h.record_success()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.failures == h.successes == 8000
        assert h.trips == h.recoveries


# ---------------------------------------------------------------------------
# run_attempts (the functional-plane driver)


class TestRunAttempts:
    def test_success_first_try(self):
        calls = []
        err = run_attempts(
            fast_policy(), lambda: calls.append(1), path="/f", file_offset=0
        )
        assert err is None and len(calls) == 1

    def test_retry_then_success(self):
        outcomes = [OSError("EIO"), OSError("EIO"), None]
        retries = []

        def fn():
            if (exc := outcomes.pop(0)) is not None:
                raise exc

        err = run_attempts(
            fast_policy(attempts=3),
            fn,
            path="/f",
            file_offset=0,
            on_retry=lambda a, d, e: retries.append((a, d, e)),
            sleep=lambda s: None,
        )
        assert err is None
        assert [a for a, _, _ in retries] == [1, 2]
        assert all(d >= 0 for _, d, _ in retries)

    def test_exhaustion_returns_last_error(self):
        err = run_attempts(
            fast_policy(attempts=3),
            lambda: (_ for _ in ()).throw(OSError("always")),
            path="/f",
            file_offset=0,
            sleep=lambda s: None,
        )
        assert isinstance(err, OSError)

    def test_health_fed_per_attempt(self):
        h = BackendHealth(threshold=0)
        outcomes = [OSError("x"), None]

        def fn():
            if (exc := outcomes.pop(0)) is not None:
                raise exc

        run_attempts(
            fast_policy(attempts=2), fn, path="/f", file_offset=0,
            health=h, sleep=lambda s: None,
        )
        assert h.failures == 1 and h.successes == 1

    def test_non_exception_failures_never_retried(self):
        calls = []

        def fn():
            calls.append(1)
            raise KeyboardInterrupt()

        err = run_attempts(
            fast_policy(attempts=5), fn, path="/f", file_offset=0,
            sleep=lambda s: None,
        )
        assert isinstance(err, KeyboardInterrupt) and len(calls) == 1

    def test_attempt_timeout_reissues(self):
        # fake clock: each attempt appears to take 1.0s against a 0.5s cap
        now = [0.0]

        def clock():
            now[0] += 0.5
            return now[0]

        calls = []
        err = run_attempts(
            fast_policy(attempts=2, attempt_timeout=0.3),
            lambda: calls.append(1),
            path="/f",
            file_offset=0,
            clock=clock,
            sleep=lambda s: None,
        )
        assert isinstance(err, BackendTimeoutError)
        assert len(calls) == 2  # the over-deadline write was reissued

    def test_no_timeout_when_fast_enough(self):
        err = run_attempts(
            fast_policy(attempt_timeout=30.0), lambda: None, path="/f", file_offset=0
        )
        assert err is None


# ---------------------------------------------------------------------------
# Functional plane end-to-end


class TestFunctionalPlaneRetry:
    def cfg(self, **kw):
        kw = {**FAST, **kw}
        return CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1, **kw
        )

    def test_transient_fault_recovers_byte_identical(self):
        """ISSUE acceptance: every pwrite fails once -> the checkpoint
        completes with zero latched errors, retries counted, and the
        backing file is byte-identical to a no-fault run."""
        data = bytes(range(256)) * 2048  # 512 KiB = 8 chunks
        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))],
            sleep=lambda s: None,
        )
        rec = Recorder()
        with CRFS(backend, self.cfg(retry_attempts=3), observers=(rec,)) as fs:
            with fs.open("/ckpt") as f:
                f.write(data)
            stats = fs.stats()
        assert stats["resilience"]["chunks_retried"] > 0
        assert stats["resilience"]["errors_latched"] == 0
        assert stats["io_errors"] == 0
        assert len(rec.of(ChunkRetried)) == stats["resilience"]["chunks_retried"]
        assert mem.pread(mem.open("/ckpt", create=False), len(data), 0) == data

    def test_exhausted_retries_latch_at_close(self):
        backend = FaultyBackend(
            MemBackend(),
            [FaultRule(op="pwrite", nth=1, every=True, error=OSError("dead"))],
            sleep=lambda s: None,
        )
        with CRFS(backend, self.cfg(retry_attempts=3)) as fs:
            f = fs.open("/ckpt")
            f.write(b"x" * CHUNK)  # async path: write() itself succeeds
            with pytest.raises(BackendIOError, match="dead"):
                f.close()
            stats = fs.stats()
        assert stats["resilience"]["chunks_retried"] == 2  # 3 attempts
        assert stats["resilience"]["errors_latched"] == 1

    def test_breaker_trips_and_probe_recovers(self):
        """Outage on pwrite ops 1-2: file A's chunk exhausts its single
        attempt twice across two files, tripping the breaker; file C's
        write takes the degraded synchronous path, probes op 3 (healed),
        and restores async mode."""
        mem = MemBackend()
        backend = FaultyBackend(
            mem,
            [FaultRule(op="pwrite", nth=1, until=2, every=True, error=OSError("EIO"))],
            sleep=lambda s: None,
        )
        rec = Recorder()
        cfg = self.cfg(retry_attempts=1, breaker_threshold=2)
        with CRFS(backend, cfg, observers=(rec,)) as fs:
            for name in ("/a", "/b"):
                f = fs.open(name)
                f.write(b"x" * CHUNK)
                with pytest.raises(BackendIOError):
                    f.close()  # latched by the failed async write
            assert fs.health.degraded
            with fs.open("/c") as f:
                f.write(b"y" * CHUNK)  # degraded write-through probe
            assert not fs.health.degraded
            stats = fs.stats()
        assert stats["resilience"]["breaker_trips"] == 1
        assert stats["resilience"]["breaker_recoveries"] == 1
        assert stats["resilience"]["degraded_writes"] == 1
        assert stats["resilience"]["degraded_bytes"] == CHUNK
        assert len(rec.of(BackendDegraded)) == 1
        assert len(rec.of(BackendRecovered)) == 1
        assert mem.pread(mem.open("/c", create=False), CHUNK, 0) == b"y" * CHUNK

    def test_degraded_write_failure_raises_at_write(self):
        backend = FaultyBackend(
            MemBackend(),
            [FaultRule(op="pwrite", nth=1, every=True, error=OSError("dead"))],
            sleep=lambda s: None,
        )
        cfg = self.cfg(retry_attempts=1, breaker_threshold=1)
        with CRFS(backend, cfg) as fs:
            f = fs.open("/a")
            f.write(b"x" * CHUNK)
            with pytest.raises(BackendIOError):
                f.close()
            assert fs.health.degraded
            g = fs.open("/b")
            # synchronous path: the exhausted error surfaces here, not
            # at close — nothing was accepted asynchronously
            with pytest.raises(OSError, match="dead"):
                g.write(b"y" * KiB)
            g.close()  # clean: no latched error for /b
            stats = fs.stats()
        assert stats["resilience"]["errors_latched"] == 1  # only /a


# ---------------------------------------------------------------------------
# Timing plane + cross-plane parity


def drive_sim(rules, config, streams, seed=2011):
    """Run named append streams through SimCRFS over a faulty backend."""
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    inner = NullSimFilesystem(sim, hw, rng_for(seed, "resilience"))
    backend = FaultySimFilesystem(inner, rules)
    rec = Recorder()
    crfs = SimCRFS(sim, hw, config, backend, membus, observers=(rec,))
    errors = []

    def run_all():
        # sequential, so each file's close (and its drain) lands before
        # the next file writes — deterministic fault/op interleaving
        for name, sizes in streams:
            f = crfs.open(name)
            try:
                for size in sizes:
                    yield from crfs.write(f, size)
                yield from crfs.close(f)
            except BackendIOError as exc:
                errors.append((name, exc))

    sim.run_until_complete([sim.spawn(run_all())])
    return crfs, rec, errors


class TestTimingPlaneRetry:
    def cfg(self, **kw):
        kw = {**FAST, **kw}
        return CRFSConfig(chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1, **kw)

    def test_transient_fault_recovers(self):
        crfs, rec, errors = drive_sim(
            [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))],
            self.cfg(retry_attempts=3),
            [("/ckpt", [CHUNK] * 4)],
        )
        stats = crfs.stats()
        assert errors == []
        assert stats["resilience"]["chunks_retried"] == 4
        assert stats["resilience"]["errors_latched"] == 0
        assert stats["bytes_out"] == 4 * CHUNK

    def test_backoff_advances_virtual_clock(self):
        crfs, rec, _ = drive_sim(
            [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))],
            self.cfg(retry_attempts=2, retry_jitter=0.0),
            [("/ckpt", [CHUNK])],
        )
        (retry,) = rec.of(ChunkRetried)
        assert retry.delay == pytest.approx(1e-4)
        assert crfs.sim.now > 0

    def test_outage_trips_breaker_then_degraded_probe_recovers(self):
        crfs, rec, errors = drive_sim(
            [FaultRule(op="pwrite", nth=1, until=2, every=True, error=OSError("EIO"))],
            self.cfg(retry_attempts=1, breaker_threshold=2),
            [("/a", [CHUNK]), ("/b", [CHUNK]), ("/c", [CHUNK])],
        )
        stats = crfs.stats()
        assert len(errors) == 2  # /a and /b latched
        assert stats["resilience"]["breaker_trips"] == 1
        assert stats["resilience"]["breaker_recoveries"] == 1
        assert stats["resilience"]["degraded_writes"] >= 1
        assert not crfs.health.degraded


class TestCrossPlaneResilienceParity:
    def test_stats_match_under_deterministic_faults(self):
        """Same write stream + same fault rules -> field-identical
        resilience counters on both planes."""
        sizes = [CHUNK] * 3 + [CHUNK // 2, CHUNK]
        rules = lambda: [  # noqa: E731 - fresh schedule per plane
            FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))
        ]
        config = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            retry_attempts=3, **FAST,
        )

        with CRFS(
            FaultyBackend(MemBackend(), rules(), sleep=lambda s: None), config
        ) as fs:
            with fs.open("/f") as f:
                for size in sizes:
                    f.write(b"z" * size)
            func = fs.stats()

        crfs, _, errors = drive_sim(rules(), config, [("/f", sizes)])
        timing = crfs.stats()
        assert errors == []
        for key in (
            "writes", "bytes_in", "chunks_written", "bytes_out",
            "io_errors", "resilience",
        ):
            assert func[key] == timing[key], key


# ---------------------------------------------------------------------------
# IOThreadPool.shutdown: shared deadline (satellite fix)


class TestShutdownSharedDeadline:
    def test_timeout_is_shared_not_per_thread(self):
        """Four workers all stuck in a slow pwrite: shutdown must give
        up after ~timeout total, not ~4x timeout."""
        gate = threading.Event()

        class Stuck(MemBackend):
            def pwrite(self, handle, data, offset):
                gate.wait(timeout=30.0)
                return super().pwrite(handle, data, offset)

        cfg = CRFSConfig(chunk_size=4 * KiB, pool_size=32 * KiB, io_threads=4)
        fs = CRFS(Stuck(), cfg).mount()
        f = fs.open("/f")
        for i in range(4):
            f.write(b"x" * 4 * KiB)
        time.sleep(0.05)  # let all four workers block in pwrite
        t0 = time.monotonic()
        with pytest.raises(TimeoutError, match="IO threads did not exit"):
            fs.iopool.shutdown(timeout=0.4)
        elapsed = time.monotonic() - t0
        assert elapsed < 1.2  # shared deadline; per-thread would be ~1.6+
        gate.set()  # release the workers so the process exits cleanly
        time.sleep(0.05)

    def test_clean_shutdown_still_works(self):
        cfg = CRFSConfig(chunk_size=4 * KiB, pool_size=16 * KiB, io_threads=2)
        fs = CRFS(MemBackend(), cfg).mount()
        with fs.open("/f") as f:
            f.write(b"x" * 10 * KiB)
        fs.unmount()
        assert not fs.mounted
