"""Tests for CRFSConfig validation and derived values."""

import pytest

from repro.config import CRFSConfig, DEFAULT_CONFIG
from repro.errors import ConfigError
from repro.units import KiB, MiB


class TestDefaults:
    def test_paper_operating_point(self):
        # Section V-B: 4 MiB chunks, 16 MiB pool, 4 IO threads.
        assert DEFAULT_CONFIG.chunk_size == 4 * MiB
        assert DEFAULT_CONFIG.pool_size == 16 * MiB
        assert DEFAULT_CONFIG.io_threads == 4

    def test_pool_chunks(self):
        assert DEFAULT_CONFIG.pool_chunks == 4

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.chunk_size = 1  # type: ignore[misc]


class TestValidation:
    def test_zero_chunk_rejected(self):
        with pytest.raises(ConfigError):
            CRFSConfig(chunk_size=0)

    def test_unaligned_chunk_rejected(self):
        with pytest.raises(ConfigError):
            CRFSConfig(chunk_size=4 * KiB + 1, pool_size=16 * MiB)

    def test_pool_smaller_than_chunk_rejected(self):
        with pytest.raises(ConfigError):
            CRFSConfig(chunk_size=4 * MiB, pool_size=2 * MiB)

    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigError):
            CRFSConfig(io_threads=0)

    def test_negative_queue_depth_rejected(self):
        with pytest.raises(ConfigError):
            CRFSConfig(work_queue_depth=-1)

    def test_pool_equal_chunk_ok(self):
        cfg = CRFSConfig(chunk_size=4 * MiB, pool_size=4 * MiB)
        assert cfg.pool_chunks == 1


class TestHelpers:
    def test_with_revalidates(self):
        cfg = CRFSConfig()
        with pytest.raises(ConfigError):
            cfg.with_(io_threads=0)

    def test_with_changes_field(self):
        cfg = CRFSConfig().with_(io_threads=8)
        assert cfg.io_threads == 8
        assert cfg.chunk_size == DEFAULT_CONFIG.chunk_size

    def test_from_sizes(self):
        cfg = CRFSConfig.from_sizes(chunk="128K", pool="8M", io_threads=2)
        assert cfg.chunk_size == 128 * KiB
        assert cfg.pool_size == 8 * MiB
        assert cfg.pool_chunks == 64

    def test_pool_chunks_floors_partial(self):
        cfg = CRFSConfig.from_sizes(chunk="4M", pool="15M")
        assert cfg.pool_chunks == 3
