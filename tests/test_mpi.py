"""Tests for MPI stack personalities, job layout and the coordinator."""

import pytest

from repro.mpi import (
    ALL_STACKS,
    CheckpointCoordinator,
    MPICH2,
    MPIJob,
    MVAPICH2,
    OPENMPI,
    stack_by_name,
)
from repro.units import MB
from repro.workloads import lu_class


class TestStacks:
    def test_three_stacks(self):
        assert {s.name for s in ALL_STACKS} == {"MVAPICH2", "OpenMPI", "MPICH2"}

    def test_transport_tags(self):
        assert MVAPICH2.tag == "MVAPICH2-IB"
        assert MPICH2.tag == "MPICH2-TCP"

    def test_ib_overhead_exceeds_tcp(self):
        assert MVAPICH2.image_overhead > MPICH2.image_overhead
        assert OPENMPI.image_overhead > MPICH2.image_overhead

    def test_lookup_case_insensitive(self):
        assert stack_by_name("mvapich2") is MVAPICH2
        assert stack_by_name("OPENMPI") is OPENMPI

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            stack_by_name("LAM/MPI")

    def test_image_size_table2_cells(self):
        # paper Table II per-process images, within 10%
        cases = [
            (MVAPICH2, "B", 7.1),
            (MPICH2, "B", 3.9),
            (MVAPICH2, "D", 106.7),
            (MPICH2, "D", 103.6),
            (OPENMPI, "C", 13.7),
        ]
        for stack, cls, paper_mb in cases:
            got = stack.image_size(lu_class(cls).app_total, 128) / MB
            assert got == pytest.approx(paper_mb, rel=0.10), (stack.name, cls)

    def test_image_size_invalid_nprocs(self):
        with pytest.raises(ValueError):
            MVAPICH2.image_size(10**9, 0)


class TestMPIJob:
    def job(self, nprocs=128, nnodes=16, cls="C"):
        return MPIJob(stack=MVAPICH2, nas=lu_class(cls), nprocs=nprocs, nnodes=nnodes)

    def test_block_placement(self):
        job = self.job(nprocs=16, nnodes=4)
        placements = job.placements()
        assert [p.node for p in placements] == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_ranks_on_node(self):
        job = self.job(nprocs=16, nnodes=4)
        assert job.ranks_on(1) == [4, 5, 6, 7]

    def test_procs_per_node(self):
        assert self.job().procs_per_node == 8

    def test_uneven_division_rejected(self):
        with pytest.raises(ValueError):
            self.job(nprocs=100, nnodes=16)

    def test_total_checkpoint_size(self):
        job = self.job()
        assert job.total_checkpoint_size == job.image_size * 128

    def test_app_memory_per_node(self):
        job = self.job()
        assert job.app_memory_per_node == job.image_size * 8

    def test_describe_mentions_everything(self):
        text = self.job().describe()
        assert "LU.C.128" in text and "MVAPICH2-IB" in text


class TestCoordinator:
    def test_invalid_fs_rejected(self):
        job = MPIJob(stack=MVAPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        with pytest.raises(ValueError):
            CheckpointCoordinator(job, "zfs", use_crfs=False)

    def test_small_run_produces_timings(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        res = CheckpointCoordinator(job, "ext3", use_crfs=False, seed=3).run()
        assert len(res.timings) == 8
        assert res.avg_local_time > 0
        assert res.min_local_time <= res.avg_local_time <= res.max_local_time
        assert res.mode == "native ext3"

    def test_crfs_mode_label(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        res = CheckpointCoordinator(job, "ext3", use_crfs=True, seed=3).run()
        assert res.mode == "CRFS over ext3"

    def test_deterministic_given_seed(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        a = CheckpointCoordinator(job, "ext3", use_crfs=True, seed=5).run()
        b = CheckpointCoordinator(job, "ext3", use_crfs=True, seed=5).run()
        assert a.avg_local_time == b.avg_local_time

    def test_seed_changes_result(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        a = CheckpointCoordinator(job, "ext3", use_crfs=False, seed=5).run()
        b = CheckpointCoordinator(job, "ext3", use_crfs=False, seed=6).run()
        assert a.avg_local_time != b.avg_local_time

    def test_write_trace_recorded_when_asked(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        res = CheckpointCoordinator(
            job, "ext3", use_crfs=False, seed=3, record_writes=True
        ).run()
        assert res.write_trace is not None
        assert len(res.write_trace) > 100
        assert res.write_trace.ranks() == list(range(8))

    def test_disk_trace_captured(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        res = CheckpointCoordinator(job, "ext3", use_crfs=False, seed=3).run()
        # class B on 2 nodes crosses the background threshold -> disk IO
        assert isinstance(res.node0_disk_trace, list)

    def test_crfs_beats_native_on_ext3(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=16, nnodes=2)
        native = CheckpointCoordinator(job, "ext3", use_crfs=False, seed=3).run()
        crfs = CheckpointCoordinator(job, "ext3", use_crfs=True, seed=3).run()
        assert crfs.avg_local_time < native.avg_local_time

    def test_rank_size_sigma_zero_gives_equal_images(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=4, nnodes=2)
        res = CheckpointCoordinator(
            job, "ext3", use_crfs=False, seed=3, record_writes=True,
            rank_size_sigma=0.0,
        ).run()
        per_rank_bytes = {
            r: sum(rec.size for rec in res.write_trace.for_rank(r))
            for r in res.write_trace.ranks()
        }
        assert len(set(per_rank_bytes.values())) == 1

    def test_nfs_and_lustre_coordinators_run(self):
        job = MPIJob(stack=MPICH2, nas=lu_class("B"), nprocs=8, nnodes=2)
        for fs in ("nfs", "lustre"):
            res = CheckpointCoordinator(job, fs, use_crfs=True, seed=3).run()
            assert res.avg_local_time > 0
