"""Tests for the pure write-aggregation planner — including the
property-based invariants both planes rely on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.planner import Fill, Seal, SealReason, WritePlanner
from repro.errors import ConfigError


def run_plan(planner, writes, flush=True):
    """Drive the planner; return (fills, seals) in emission order."""
    fills, seals = [], []
    for offset, length in writes:
        for op in planner.write(offset, length):
            (fills if isinstance(op, Fill) else seals).append(op)
    if flush:
        for op in planner.flush():
            seals.append(op)
    return fills, seals


class TestSequentialAggregation:
    def test_small_writes_coalesce_into_one_chunk(self):
        p = WritePlanner(chunk_size=1024)
        fills, seals = run_plan(p, [(0, 100), (100, 200), (300, 50)])
        assert len(seals) == 1
        assert seals[0] == Seal(file_offset=0, length=350, reason=SealReason.FLUSH)
        assert [f.chunk_offset for f in fills] == [0, 100, 300]

    def test_chunk_seals_exactly_at_boundary(self):
        p = WritePlanner(chunk_size=256)
        fills, seals = run_plan(p, [(0, 256)], flush=False)
        assert len(seals) == 1
        assert seals[0].reason == SealReason.FULL
        assert seals[0].length == 256
        assert not p.has_partial

    def test_large_write_spans_chunks(self):
        p = WritePlanner(chunk_size=100)
        fills, seals = run_plan(p, [(0, 350)])
        assert [s.length for s in seals] == [100, 100, 100, 50]
        assert [s.file_offset for s in seals] == [0, 100, 200, 300]
        assert [s.reason for s in seals] == [
            SealReason.FULL,
            SealReason.FULL,
            SealReason.FULL,
            SealReason.FLUSH,
        ]

    def test_typical_checkpoint_stream(self):
        # BLCR-style: many small metadata writes then large region data.
        p = WritePlanner(chunk_size=4096)
        writes = []
        off = 0
        for size in [32, 32, 64, 4096 * 2, 32, 2048]:
            writes.append((off, size))
            off += size
        fills, seals = run_plan(p, writes)
        # Aggregation invariant: far fewer seals than writes.
        assert len(seals) < len(writes)
        # Coverage invariant: seals tile the file exactly.
        pos = 0
        for s in seals:
            assert s.file_offset == pos
            pos += s.length
        assert pos == off


class TestGapsAndRewinds:
    def test_forward_gap_seals_partial(self):
        p = WritePlanner(chunk_size=1024)
        fills, seals = run_plan(p, [(0, 100), (500, 100)], flush=False)
        assert len(seals) == 1
        assert seals[0] == Seal(file_offset=0, length=100, reason=SealReason.GAP)
        assert p.chunk_file_offset == 500
        assert p.chunk_fill == 100

    def test_rewind_seals_partial(self):
        p = WritePlanner(chunk_size=1024)
        _, seals = run_plan(p, [(100, 50), (0, 10)], flush=False)
        assert seals[0].reason == SealReason.GAP
        assert p.chunk_file_offset == 0

    def test_gap_write_into_empty_chunk_no_seal(self):
        p = WritePlanner(chunk_size=1024)
        _, seals = run_plan(p, [(5000, 10)], flush=False)
        assert seals == []
        assert p.chunk_file_offset == 5000

    def test_contiguous_write_after_gap_continues(self):
        p = WritePlanner(chunk_size=1024)
        _, seals = run_plan(p, [(0, 10), (100, 10), (110, 10)])
        # one GAP seal, then 100..120 coalesce, one FLUSH seal
        assert [s.reason for s in seals] == [SealReason.GAP, SealReason.FLUSH]
        assert seals[1] == Seal(file_offset=100, length=20, reason=SealReason.FLUSH)


class TestEdgeCases:
    def test_zero_length_write_is_noop(self):
        p = WritePlanner(chunk_size=64)
        assert p.write(0, 0) == []
        assert p.total_writes == 1
        assert p.total_bytes == 0

    def test_flush_empty_is_noop(self):
        p = WritePlanner(chunk_size=64)
        assert p.flush() == []

    def test_double_flush(self):
        p = WritePlanner(chunk_size=64)
        p.write(0, 10)
        assert len(p.flush()) == 1
        assert p.flush() == []

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            WritePlanner(64).write(-1, 10)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            WritePlanner(64).write(0, -10)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigError):
            WritePlanner(0)

    def test_write_exactly_chunk_size_multiple(self):
        p = WritePlanner(chunk_size=100)
        _, seals = run_plan(p, [(0, 300)], flush=False)
        assert [s.reason for s in seals] == [SealReason.FULL] * 3

    def test_stats_accumulate(self):
        p = WritePlanner(chunk_size=100)
        run_plan(p, [(0, 50), (50, 100), (1000, 10)])
        assert p.total_writes == 3
        assert p.total_bytes == 160
        assert p.sealed_chunks == sum(p.seal_reasons.values())


# -- property-based invariants ------------------------------------------------

sequential_writes = st.lists(
    st.integers(min_value=1, max_value=5000), min_size=1, max_size=60
)


@st.composite
def arbitrary_writes(draw):
    """(offset, length) streams with gaps, rewinds and overlaps."""
    n = draw(st.integers(min_value=1, max_value=40))
    out = []
    for _ in range(n):
        out.append(
            (
                draw(st.integers(min_value=0, max_value=20000)),
                draw(st.integers(min_value=0, max_value=5000)),
            )
        )
    return out


class TestPlannerProperties:
    @given(sizes=sequential_writes, chunk=st.sampled_from([64, 100, 4096]))
    @settings(max_examples=80)
    def test_sequential_stream_tiles_file_exactly(self, sizes, chunk):
        """For a sequential stream, seals partition [0, total) in order."""
        p = WritePlanner(chunk)
        writes, off = [], 0
        for s in sizes:
            writes.append((off, s))
            off += s
        _, seals = run_plan(p, writes)
        pos = 0
        for s in seals:
            assert s.file_offset == pos
            assert 0 < s.length <= chunk
            pos += s.length
        assert pos == off

    @given(sizes=sequential_writes, chunk=st.sampled_from([64, 100, 4096]))
    @settings(max_examples=80)
    def test_sequential_stream_never_gap_seals(self, sizes, chunk):
        p = WritePlanner(chunk)
        off = 0
        for s in sizes:
            for op in p.write(off, s):
                if isinstance(op, Seal):
                    assert op.reason == SealReason.FULL
            off += s

    @given(writes=arbitrary_writes(), chunk=st.sampled_from([64, 1000]))
    @settings(max_examples=80)
    def test_fills_cover_written_ranges_exactly(self, writes, chunk):
        """Fill ops reproduce each write byte-for-byte, in order."""
        p = WritePlanner(chunk)
        for offset, length in writes:
            ops = p.write(offset, length)
            fills = [op for op in ops if isinstance(op, Fill)]
            covered = 0
            for f in fills:
                assert f.data_offset == covered
                assert f.file_offset == offset + covered
                covered += f.length
            assert covered == length

    @given(writes=arbitrary_writes(), chunk=st.sampled_from([64, 1000]))
    @settings(max_examples=80)
    def test_seal_lengths_match_fills(self, writes, chunk):
        """Each sealed chunk's length equals the fills put into it, and
        conservation holds: sealed bytes + residual == written bytes."""
        p = WritePlanner(chunk)
        current_fill = 0
        sealed_bytes = 0
        written = 0
        ops = []
        for offset, length in writes:
            written += length
            ops.extend(p.write(offset, length))
        ops.extend(p.flush())
        for op in ops:
            if isinstance(op, Fill):
                assert op.chunk_offset == current_fill
                current_fill += op.length
                assert current_fill <= chunk
            else:
                assert op.length == current_fill
                sealed_bytes += op.length
                current_fill = 0
        assert current_fill == 0  # flushed
        assert sealed_bytes == written

    @given(writes=arbitrary_writes(), chunk=st.sampled_from([64, 1000]))
    @settings(max_examples=50)
    def test_sealed_chunk_is_contiguous_file_range(self, writes, chunk):
        """Within one chunk, fills form one contiguous file range starting
        at the seal's file_offset."""
        p = WritePlanner(chunk)
        ops = []
        for offset, length in writes:
            ops.extend(p.write(offset, length))
        ops.extend(p.flush())
        pending: list[Fill] = []
        for op in ops:
            if isinstance(op, Fill):
                pending.append(op)
            else:
                expect = op.file_offset
                for f in pending:
                    assert f.file_offset == expect
                    expect += f.length
                assert expect == op.file_offset + op.length
                pending = []
