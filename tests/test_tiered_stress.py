"""Staging-hierarchy stress: close and unmount with pumps mid-flight.

A slow (or dead) deep tier under a small buffer pool, files closed the
moment their last write returns: unmount must drain the pump without
deadlock, release every pool chunk, and leave the tier counters
settled.  These runs are wall-clock bounded and belong in the CI
concurrency-stress step.
"""

import time

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend, TieredBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB

pytestmark = pytest.mark.stress

CHUNK = 16 * KiB
POOL_CHUNKS = 8
NFILES = 4
NCHUNKS = 8  # per file: workload is 4x the pool, so buffers must cycle

FAST = dict(retry_backoff=1e-4, retry_backoff_max=1e-3, retry_jitter=0.0)

#: Generous bound; any deadlock hits the suite's own timeout long after.
WALL_LIMIT = 60.0


def _blob(i, nbytes):
    return bytes((j + i) % 256 for j in range(nbytes))


def _deep_bytes(deep_mem, path, n):
    return deep_mem.pread(deep_mem.open(path, create=False), n, 0)


def _slow_rules(delay=0.002):
    return [
        FaultRule(op="pwrite", nth=1, every=True, delay=delay),
        FaultRule(op="pwritev", nth=1, every=True, delay=delay),
    ]


def _dead_rules():
    return [
        FaultRule(op="pwrite", nth=1, every=True, error=OSError("EIO")),
        FaultRule(op="pwritev", nth=1, every=True, error=OSError("EIO")),
    ]


class TestUnmountMidMigration:
    def test_slow_deep_tier_drains_without_leaking(self):
        """Every file is closed with migrations still in flight; the
        unmount drains the pump, the deep tier ends byte-identical, and
        the pool hands back every chunk."""
        deep_mem = MemBackend()
        deep = FaultyBackend(deep_mem, _slow_rules(), sleep=time.sleep)
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=POOL_CHUNKS * CHUNK, io_threads=2,
            tier_pump_threads=2, tier_pump_batch_chunks=2,
        )
        fs = CRFS(TieredBackend([MemBackend(), deep]), cfg)
        blobs = {}
        start = time.monotonic()
        with fs:
            pool = fs.pool
            for i in range(NFILES):
                path = f"/rank{i}.img"
                blobs[path] = _blob(i, NCHUNKS * CHUNK)
                f = fs.open(path)
                f.write(blobs[path])
                if i == NFILES - 1:
                    f.fsync()  # one deep-durability wait mid-stress
                f.close()  # immediately: the pump still owes this file
        elapsed = time.monotonic() - start
        assert elapsed < WALL_LIMIT

        stats = fs.stats()
        tiers = stats["tiers"]["per_tier"]
        assert pool.free_chunks == POOL_CHUNKS  # no buffer leak
        assert stats["open_files"] == 0
        assert tiers["1"]["chunks_staged"] == NFILES * NCHUNKS
        assert tiers["1"]["chunks_stranded"] == 0
        assert tiers["1"]["pump_queue_max"] >= 1
        assert stats["tiers"]["sync_through"] == 1  # the one fsync landed
        for path, blob in blobs.items():
            assert _deep_bytes(deep_mem, path, len(blob)) == blob, path

    def test_dead_deep_tier_never_deadlocks_the_unmount(self):
        """Retry exhaustion on every migration: unmount still completes,
        strands account for the whole workload, tier 0 keeps the bytes,
        and no pool chunk is lost to a stranded extent."""
        tier0 = MemBackend()
        deep = FaultyBackend(MemBackend(), _dead_rules(), sleep=lambda s: None)
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=POOL_CHUNKS * CHUNK, io_threads=2,
            retry_attempts=2, breaker_threshold=2,
            tier_pump_threads=2, tier_pump_batch_chunks=2, **FAST,
        )
        fs = CRFS(TieredBackend([tier0, deep]), cfg)
        blobs = {}
        start = time.monotonic()
        with fs:
            pool = fs.pool
            for i in range(NFILES):
                path = f"/rank{i}.img"
                blobs[path] = _blob(i, NCHUNKS * CHUNK)
                f = fs.open(path)
                f.write(blobs[path])
                f.close()
        elapsed = time.monotonic() - start
        assert elapsed < WALL_LIMIT

        stats = fs.stats()
        tiers = stats["tiers"]["per_tier"]
        assert pool.free_chunks == POOL_CHUNKS
        assert tiers["1"]["chunks_stranded"] == NFILES * NCHUNKS
        assert tiers["1"]["chunks_staged"] == 0
        assert tiers["1"]["breaker_trips"] == 1
        # the mount pipeline itself never degraded
        assert stats["resilience"]["breaker_trips"] == 0
        assert stats["io_errors"] == 0
        for path, blob in blobs.items():
            got = tier0.pread(tier0.open(path, create=False), len(blob), 0)
            assert got == blob, path

    def test_many_small_files_churn_through_a_tiny_pool(self):
        """32 files with partial tail chunks through a 4-chunk pool and
        a gathering pump: open/write/close churn, then one unmount
        drain.  Conservation must hold file by file."""
        deep_mem = MemBackend()
        deep = FaultyBackend(deep_mem, _slow_rules(delay=0.0005), sleep=time.sleep)
        cfg = CRFSConfig(
            chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1,
            tier_pump_threads=1, tier_pump_batch_chunks=4,
        )
        fs = CRFS(TieredBackend([MemBackend(), deep]), cfg)
        nfiles, size = 32, CHUNK + CHUNK // 2  # 2 chunks each, one partial
        start = time.monotonic()
        with fs:
            pool = fs.pool
            for i in range(nfiles):
                with fs.open(f"/small{i}.img") as f:
                    f.write(_blob(i, size))
        elapsed = time.monotonic() - start
        assert elapsed < WALL_LIMIT

        stats = fs.stats()
        assert pool.free_chunks == 4
        assert stats["tiers"]["per_tier"]["1"]["chunks_staged"] == nfiles * 2
        assert stats["tiers"]["per_tier"]["1"]["chunks_stranded"] == 0
        for i in range(nfiles):
            assert _deep_bytes(deep_mem, f"/small{i}.img", size) == _blob(i, size)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
