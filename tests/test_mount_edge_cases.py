"""Edge cases for mount lifecycle, error latching and stats."""

import pytest

from repro.backends import FaultRule, FaultyBackend, MemBackend
from repro.checkpoint.sizedist import WriteSizeDistribution
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import BackendIOError, MountError
from repro.units import KiB
from repro.util.rng import rng_for


def small_cfg(**kw):
    base = dict(chunk_size=4 * KiB, pool_size=32 * KiB, io_threads=2)
    base.update(kw)
    return CRFSConfig(**base)


class TestErrorLatching:
    def test_write_after_failed_async_write_raises(self):
        backend = FaultyBackend(
            MemBackend(), [FaultRule(op="pwrite", nth=1, error=OSError("EIO"))]
        )
        fs = CRFS(backend, small_cfg()).mount()
        f = fs.open("/f")
        f.write(b"x" * (4 * KiB))  # chunk 1 -> fails asynchronously
        # wait for the failure to land, then further writes fail fast
        import time

        deadline = time.time() + 5
        while f._entry.peek_error() is None and time.time() < deadline:
            time.sleep(0.01)
        with pytest.raises(BackendIOError):
            f.write(b"more" * 1024)
        with pytest.raises(BackendIOError):
            f.close()
        fs.iopool.shutdown()

    def test_unmount_after_error_still_possible(self):
        backend = FaultyBackend(
            MemBackend(), [FaultRule(op="pwrite", nth=1, error=OSError("EIO"))]
        )
        fs = CRFS(backend, small_cfg()).mount()
        f = fs.open("/f")
        f.write(b"x" * (4 * KiB))
        with pytest.raises(BackendIOError):
            f.close()
        fs.unmount()
        assert not fs.mounted


class TestForcedUnmount:
    def test_handles_unusable_after_forced_unmount(self):
        fs = CRFS(MemBackend(), small_cfg()).mount()
        f = fs.open("/f")
        f.write(b"data")
        fs.unmount()
        with pytest.raises(MountError):
            f.write(b"more")

    def test_unmount_closes_multiref_entries(self):
        backend = MemBackend()
        fs = CRFS(backend, small_cfg()).mount()
        f1 = fs.open("/f")
        f2 = fs.open("/f")
        f1.write(b"abc")
        fs.unmount()
        assert backend.read_file("/f") == b"abc"
        assert len(fs.table) == 0

    def test_remount_new_instance_reads_old_data(self):
        backend = MemBackend()
        with CRFS(backend, small_cfg()) as fs:
            with fs.open("/persist") as f:
                f.write(b"still here")
        with CRFS(backend, small_cfg()) as fs2:
            f = fs2.open("/persist", create=False)
            f.fsync()
            assert f.pread(10, 0) == b"still here"
            f.close()


class TestStatsShape:
    def test_stats_keys_stable(self):
        with CRFS(MemBackend(), small_cfg()) as fs:
            with fs.open("/f") as f:
                f.write(b"x" * (10 * KiB))
            stats = fs.stats()
        assert set(stats) >= {
            "writes", "bytes_in", "write_through_bytes", "chunks_written",
            "bytes_out", "io_errors", "seals", "open_files", "pool", "queue",
        }
        assert set(stats["seals"]) == {"full", "gap", "flush"}
        assert stats["io_errors"] == 0


class TestSizeDistInternals:
    def test_bucket_counts_sum_to_write_count(self):
        d = WriteSizeDistribution()
        for mb in (2, 23, 100):
            size = mb * 1_000_000
            counts = d.bucket_counts(size)
            assert sum(counts) >= d.write_count(size)  # >= due to min-1 rule

    def test_data_buckets_never_empty(self):
        d = WriteSizeDistribution()
        counts = d.bucket_counts(1_000_000)
        # buckets carrying >1% of data always get at least one write
        for spec, count in zip(d.buckets, counts):
            if spec.data_frac > 0.01:
                assert count >= 1

    def test_describe_structure(self):
        d = WriteSizeDistribution()
        desc = d.describe(5_000_000, rng_for(1, "d"))
        assert set(desc) == {b.label for b in d.buckets}
        total = sum(row["count_frac"] for row in desc.values())
        assert total == pytest.approx(1.0)
