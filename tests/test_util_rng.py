"""Tests for deterministic per-entity RNG streams."""

import numpy as np

from repro.util.rng import rng_for


class TestRngFor:
    def test_reproducible(self):
        a = rng_for(7, "fig6/node0/rank1").random(8)
        b = rng_for(7, "fig6/node0/rank1").random(8)
        assert np.array_equal(a, b)

    def test_distinct_paths_differ(self):
        a = rng_for(7, "fig6/node0/rank1").random(8)
        b = rng_for(7, "fig6/node0/rank2").random(8)
        assert not np.array_equal(a, b)

    def test_distinct_seeds_differ(self):
        a = rng_for(7, "x").random(8)
        b = rng_for(8, "x").random(8)
        assert not np.array_equal(a, b)

    def test_independence_of_sibling_draw_order(self):
        # rank1's stream must not depend on how much rank0 draws.
        first = rng_for(1, "n/rank1").random(4)
        _ = rng_for(1, "n/rank0").random(100)
        again = rng_for(1, "n/rank1").random(4)
        assert np.array_equal(first, again)

    def test_path_segments_matter(self):
        a = rng_for(1, "a/b").random(4)
        b = rng_for(1, "ab").random(4)
        assert not np.array_equal(a, b)

    def test_large_seed_ok(self):
        rng_for(2**63, "x").random(1)
