"""Unit tests for the incremental (delta) checkpoint kernel.

Covers the three layers separately and end to end:

* the manifest format (canonical bytes, checksum, torn/stale detection,
  owner-run planning with tail clipping);
* the plane-agnostic :class:`~repro.pipeline.delta.DeltaTracker`
  (planning, auto-dirty rules, commit discipline, torn latch);
* the functional-plane :class:`~repro.core.delta.DeltaCheckpointer`
  through the public mount surface (``fs.delta_checkpoint`` /
  ``fs.delta_restore``) — chains restore byte-identically, generation 0
  degenerates to a full dump, and every tear fails loudly.
"""

import pytest

from repro.backends import MemBackend
from repro.checkpoint.manifest import Manifest, generation_path, manifest_path
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.errors import ManifestError
from repro.pipeline.delta import DeltaTracker
from repro.units import KiB

CHUNK = 16 * KiB


def make_manifest(owners, chunk_size=CHUNK, logical_size=None, generation=None):
    owners = tuple(owners)
    if logical_size is None:
        logical_size = len(owners) * chunk_size
    if generation is None:
        generation = max(owners, default=0)
    return Manifest(
        path="/ckpt",
        generation=generation,
        chunk_size=chunk_size,
        logical_size=logical_size,
        owners=owners,
    )


class TestManifest:
    def test_round_trip(self):
        m = make_manifest([0, 1, 0, 2])
        assert Manifest.from_bytes(m.to_bytes()) == m

    def test_truncated_bytes_fail(self):
        raw = make_manifest([0, 1]).to_bytes()
        for cut in (0, 1, len(raw) // 2, len(raw) - 1):
            with pytest.raises(ManifestError):
                Manifest.from_bytes(raw[:cut])

    def test_flipped_byte_fails(self):
        raw = bytearray(make_manifest([0, 1]).to_bytes())
        raw[10] ^= 0xFF
        with pytest.raises(ManifestError, match="checksum|JSON"):
            Manifest.from_bytes(bytes(raw))

    def test_bad_magic_and_version(self):
        m = make_manifest([0])
        for field, value in (("magic", "nope"), ("version", 999)):
            import hashlib
            import json

            doc = json.loads(m.to_bytes().split(b"\n")[0])
            doc[field] = value
            body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
            raw = body + b"\n" + hashlib.sha256(body).hexdigest().encode() + b"\n"
            with pytest.raises(ManifestError):
                Manifest.from_bytes(raw)

    def test_shape_validation(self):
        with pytest.raises(ManifestError, match="owner map"):
            make_manifest([0, 0], logical_size=3 * CHUNK)._validate_shape()
        with pytest.raises(ManifestError, match="outside generations"):
            make_manifest([0, 5], generation=2)._validate_shape()

    def test_owner_runs_merge_and_clip(self):
        # 3.5 chunks: tail chunk is half-length, runs merge same owners
        m = make_manifest(
            [1, 1, 0, 0], logical_size=3 * CHUNK + CHUNK // 2, generation=1
        )
        assert m.owner_runs() == [
            (1, 0, 2 * CHUNK, 2),
            (0, 2 * CHUNK, CHUNK + CHUNK // 2, 2),
        ]
        assert sum(length for _, _, length, _ in m.owner_runs()) == m.logical_size


class TestDeltaTracker:
    def test_generation_zero_is_always_a_full_dump(self):
        t = DeltaTracker("/ckpt", CHUNK)
        # declared dirtiness is irrelevant before the first commit
        plan = t.plan_checkpoint(4 * CHUNK, dirty=[1])
        assert plan.generation == 0
        assert plan.dirty_chunks == 4 and plan.clean_chunks == 0
        assert plan.dirty_bytes == 4 * CHUNK
        assert [e.file_offset for e in plan.extents] == [0]

    def test_dirty_subset_plans_only_those_extents(self):
        t = DeltaTracker("/ckpt", CHUNK)
        t.commit(t.plan_checkpoint(4 * CHUNK))
        plan = t.plan_checkpoint(4 * CHUNK, dirty=[0, 2, 3])
        assert plan.generation == 1
        assert plan.dirty == frozenset({0, 2, 3})
        assert [(e.file_offset, e.length) for e in plan.extents] == [
            (0, CHUNK),
            (2 * CHUNK, 2 * CHUNK),
        ]
        assert plan.manifest.owners == (1, 0, 1, 1)
        assert plan.gen_file_size == 4 * CHUNK  # sparse between runs

    def test_growth_auto_dirties_new_and_old_tail_chunks(self):
        t = DeltaTracker("/ckpt", CHUNK)
        t.commit(t.plan_checkpoint(2 * CHUNK + 10))  # partial tail chunk
        plan = t.plan_checkpoint(4 * CHUNK, dirty=[])
        # chunk 2 (the old partial tail) and chunks 3 (new) are forced
        assert plan.dirty == frozenset({2, 3})

    def test_shrink_auto_dirties_new_tail(self):
        t = DeltaTracker("/ckpt", CHUNK)
        t.commit(t.plan_checkpoint(4 * CHUNK))
        plan = t.plan_checkpoint(2 * CHUNK + 10, dirty=[])
        assert plan.dirty == frozenset({2})
        assert plan.manifest.owners == (0, 0, 1)

    def test_dirty_index_out_of_range(self):
        t = DeltaTracker("/ckpt", CHUNK)
        t.commit(t.plan_checkpoint(2 * CHUNK))
        with pytest.raises(ValueError, match="outside image"):
            t.plan_checkpoint(2 * CHUNK, dirty=[2])

    def test_commit_enforces_chain_order(self):
        t = DeltaTracker("/ckpt", CHUNK)
        plan = t.plan_checkpoint(CHUNK)
        t.commit(plan)
        with pytest.raises(ManifestError, match="commit of generation"):
            t.commit(plan)  # re-committing generation 0 against gen 0

    def test_torn_latch_blocks_restore_until_clean_commit(self):
        t = DeltaTracker("/ckpt", CHUNK)
        t.commit(t.plan_checkpoint(CHUNK))
        t.note_torn()
        with pytest.raises(ManifestError, match="torn"):
            t.check_restorable()
        t.commit(t.plan_checkpoint(CHUNK))
        t.check_restorable()  # clean commit clears the latch

    def test_fresh_chain_is_not_restorable(self):
        t = DeltaTracker("/ckpt", CHUNK)
        with pytest.raises(ManifestError, match="no committed"):
            t.check_restorable()
        with pytest.raises(ManifestError, match="never committed"):
            t.gen_size(0)


def small_config(**kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("pool_size", 8 * CHUNK)
    kw.setdefault("io_threads", 1)
    return CRFSConfig(**kw)


def pattern(n, salt):
    return bytes((i * 31 + salt * 7) % 256 for i in range(n))


def overwrite(backend, path, raw):
    handle = backend.open(path, create=True, truncate=True)
    try:
        backend.pwrite(handle, raw, 0)
    finally:
        backend.close(handle)


class TestFunctionalPlane:
    def test_chain_restores_byte_identically(self):
        mem = MemBackend()
        with CRFS(mem, small_config()) as fs:
            image = bytearray(pattern(4 * CHUNK + 100, salt=0))
            fs.delta_checkpoint("/ckpt", image)
            for gen, dirty in enumerate(([1], [0, 4], [2]), start=1):
                for index in dirty:
                    lo = index * CHUNK
                    hi = min(lo + CHUNK, len(image))
                    image[lo:hi] = pattern(hi - lo, salt=gen)
                fs.delta_checkpoint("/ckpt", image, dirty=dirty)
            assert fs.delta_restore("/ckpt") == bytes(image)
            delta = fs.stats()["delta"]
        assert delta["generations"] == 4
        assert delta["restores"] == 1
        assert delta["reassembly_bytes"] == len(image)
        assert 0 < delta["bytes_written"] < delta["logical_bytes"]

    def test_generation_zero_matches_plain_full_write(self):
        """Gen 0 is exactly today's behavior: same bytes through the
        pipeline as an ordinary full-image write of the same path."""
        data = pattern(3 * CHUNK + 7, salt=3)

        mem_plain = MemBackend()
        with CRFS(mem_plain, small_config()) as fs:
            f = fs.open("/ckpt.g0", create=True, truncate=True)
            f.pwrite(data, 0)
            f.fsync()
            f.close()
            plain = fs.stats()
        mem_delta = MemBackend()
        with CRFS(mem_delta, small_config()) as fs:
            fs.delta_checkpoint("/ckpt", data)
            dstats = fs.stats()

        for key in ("writes", "bytes_in", "chunks_written", "bytes_out"):
            assert dstats[key] == plain[key], key
        assert mem_delta.read_file("/ckpt.g0") == mem_plain.read_file("/ckpt.g0")
        assert dstats["delta"]["bytes_written"] == dstats["delta"]["logical_bytes"]

    def test_manifest_lands_beside_generations(self):
        mem = MemBackend()
        with CRFS(mem, small_config()) as fs:
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=1))
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=2), dirty=[1])
        raw = mem.read_file(manifest_path("/ckpt"))
        manifest = Manifest.from_bytes(raw)
        assert manifest.generation == 1
        assert manifest.owners == (0, 1)
        assert mem.read_file(generation_path("/ckpt", 1))  # only chunk 1

    def test_corrupt_manifest_fails_restore_loudly(self):
        mem = MemBackend()
        with CRFS(mem, small_config()) as fs:
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=1))
            raw = bytearray(mem.read_file(manifest_path("/ckpt")))
            raw[5] ^= 0xFF
            overwrite(mem, manifest_path("/ckpt"), bytes(raw))
            with pytest.raises(ManifestError):
                fs.delta_restore("/ckpt")

    def test_stale_manifest_fails_restore_loudly(self):
        """A manifest from an older generation must never be silently
        reassembled once the chain has moved on."""
        mem = MemBackend()
        with CRFS(mem, small_config()) as fs:
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=1))
            stale = mem.read_file(manifest_path("/ckpt"))
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=2), dirty=[0])
            overwrite(mem, manifest_path("/ckpt"), stale)
            with pytest.raises(ManifestError, match="stale"):
                fs.delta_restore("/ckpt")

    def test_missing_generation_file_fails_restore(self):
        mem = MemBackend()
        with CRFS(mem, small_config()) as fs:
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=1))
            fs.delta_checkpoint("/ckpt", pattern(2 * CHUNK, salt=2), dirty=[1])
            mem.unlink(generation_path("/ckpt", 0))
            with pytest.raises(ManifestError, match="g0 missing"):
                fs.delta_restore("/ckpt")

    def test_restore_before_any_checkpoint(self):
        with CRFS(MemBackend(), small_config()) as fs:
            with pytest.raises(ManifestError, match="no committed"):
                fs.delta_restore("/ckpt")

    def test_size_changes_across_generations(self):
        mem = MemBackend()
        with CRFS(mem, small_config()) as fs:
            image = bytearray(pattern(2 * CHUNK + 10, salt=1))
            fs.delta_checkpoint("/ckpt", image)
            # grow: chunk 1 stays clean, chunk 0 declared dirty, the
            # old tail (2) and the new chunk (3) are auto-dirtied
            image.extend(pattern(4 * CHUNK - len(image), salt=2))
            image[0:CHUNK] = pattern(CHUNK, salt=2)
            image[2 * CHUNK :] = pattern(2 * CHUNK, salt=2)
            fs.delta_checkpoint("/ckpt", image, dirty=[0])
            assert fs.delta_restore("/ckpt") == bytes(image)
            del image[CHUNK + 3 :]  # shrink; new tail auto-dirtied
            fs.delta_checkpoint("/ckpt", image, dirty=[])
            assert fs.delta_restore("/ckpt") == bytes(image)
