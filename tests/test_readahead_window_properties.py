"""Property suite for the adaptive readahead window (Hypothesis).

Pure-kernel properties on :class:`repro.pipeline.readahead.AdaptiveWindow`
— no threads, no clock, no cache.  The contract under test:

* **bounded**: under any interleaving of accesses and pressure signals
  the window stays within ``[floor, ceiling]``, and a
  :class:`~repro.pipeline.readahead.ReadaheadCore` window never exceeds
  its thrash-free ceiling ``capacity - 2`` (one slot of slack beyond
  the working set);
* **monotone under pressure**: a run of pressure signals only ever
  shrinks the window, and sustained pressure pins it at ``floor``
  within ``log2`` steps;
* **recovery**: once pressure clears, a long enough run of sequential
  hits grows the window back to the ceiling from any state;
* **static degeneracy**: with ``adaptive=False`` the window is pinned
  at ``initial`` and never reports growth or shrinkage — the plain
  ``readahead_chunks`` knob.

This file runs in the CI stress/property step, not the tier-1 lane.
"""

import math

import pytest

from hypothesis import given, settings, strategies as st

from repro.pipeline.readahead import AdaptiveWindow, ReadaheadCore

pytestmark = pytest.mark.property

#: One abstract controller input: a chunk access (index delta from the
#: previous access, hit or miss) or a cache-pressure signal.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("access"),
            st.integers(min_value=-3, max_value=3),  # index delta
            st.booleans(),  # hit?
        ),
        st.tuples(st.just("pressure"), st.just(0), st.just(False)),
    ),
    max_size=60,
)

_geometry = st.integers(min_value=1, max_value=8).flatmap(
    lambda ceiling: st.tuples(
        st.integers(min_value=1, max_value=ceiling),  # initial
        st.just(ceiling),
    )
)


def _drive(window: AdaptiveWindow, ops) -> list[int]:
    """Replay an op sequence; returns the window trajectory."""
    index = 0
    widths = [window.window]
    for kind, delta, hit in ops:
        if kind == "access":
            index += delta
            window.on_access(index, hit=hit)
        else:
            window.on_pressure()
        widths.append(window.window)
    return widths


class TestBounds:
    @given(geometry=_geometry, ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_window_stays_within_floor_and_ceiling(self, geometry, ops):
        initial, ceiling = geometry
        window = AdaptiveWindow(initial=initial, ceiling=ceiling, adaptive=True)
        for width in _drive(window, ops):
            assert window.floor <= width <= ceiling

    @given(
        capacity=st.integers(min_value=1, max_value=12),
        depth=st.integers(min_value=1, max_value=16),
        ops=_ops,
    )
    @settings(max_examples=200, deadline=None)
    def test_core_window_never_exceeds_thrash_free_ceiling(
        self, capacity, depth, ops
    ):
        core = ReadaheadCore(
            "/img", chunk_size=4, capacity=capacity, depth=depth, adaptive=True
        )
        bound = max(1, capacity - 2)
        # the clamp holds at construction (even for an over-eager knob)
        # and at every point of every trajectory
        for width in _drive(core.window, ops):
            assert 1 <= width <= bound

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveWindow(initial=0, ceiling=4, adaptive=True)
        with pytest.raises(ValueError):
            AdaptiveWindow(initial=9, ceiling=4, adaptive=True)


class TestPressure:
    @given(geometry=_geometry, nsignals=st.integers(min_value=1, max_value=12))
    @settings(max_examples=200, deadline=None)
    def test_pressure_run_shrinks_monotonically_to_floor(
        self, geometry, nsignals
    ):
        initial, ceiling = geometry
        window = AdaptiveWindow(initial=initial, ceiling=ceiling, adaptive=True)
        previous = window.window
        for _ in range(nsignals):
            shrank = window.on_pressure()
            assert window.window <= previous
            assert shrank == (window.window < previous)
            previous = window.window
        # halving reaches the floor within log2(initial) signals
        if nsignals >= max(1, math.ceil(math.log2(max(initial, 1)))):
            assert window.window == window.floor

    @given(geometry=_geometry, ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_recovery_after_pressure_clears(self, geometry, ops):
        initial, ceiling = geometry
        window = AdaptiveWindow(initial=initial, ceiling=ceiling, adaptive=True)
        _drive(window, ops)  # arbitrary history, possibly ending shrunk
        # pressure gone: a pure sequential hit run regrows to the
        # ceiling within grow_streak accesses per step
        index = 10_000  # far from wherever the history left off
        window.on_access(index, hit=True)  # seed sequentiality
        for i in range(1, window.grow_streak * (ceiling + 1) + 1):
            window.on_access(index + i, hit=True)
        assert window.window == ceiling

    @given(geometry=_geometry)
    @settings(max_examples=100, deadline=None)
    def test_pressure_breaks_the_hit_streak(self, geometry):
        initial, ceiling = geometry
        window = AdaptiveWindow(initial=initial, ceiling=ceiling, adaptive=True)
        window.on_access(0, hit=True)
        window.on_access(1, hit=True)  # streak one step short of growth
        window.on_pressure()
        width = window.window
        # the next sequential hit must not complete the broken streak
        window.on_access(2, hit=True)
        assert window.window == width


class TestStaticDegeneracy:
    @given(depth=st.integers(min_value=0, max_value=16), ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_static_window_is_pinned(self, depth, ops):
        window = AdaptiveWindow(initial=depth, ceiling=depth, adaptive=False)
        index = 0
        for kind, delta, hit in ops:
            if kind == "access":
                index += delta
                assert window.on_access(index, hit=hit) is False
            else:
                assert window.on_pressure() is False
            assert window.window == depth

    @given(
        capacity=st.integers(min_value=2, max_value=12),
        ops=_ops,
    )
    @settings(max_examples=100, deadline=None)
    def test_static_core_keeps_the_configured_depth(self, capacity, ops):
        depth = capacity - 1  # the largest depth the config would allow
        core = ReadaheadCore(
            "/img", chunk_size=4, capacity=capacity, depth=depth, adaptive=False
        )
        _drive(core.window, ops)
        assert core.depth == depth
