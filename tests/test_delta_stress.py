"""Delta-chain concurrency stress: cadence checkpointers and a
manifest-read restore storm sharing a small buffer pool.

Several threads each drive their own checkpoint chain at iteration
cadence — mutate a few chunks, commit a delta generation, immediately
reassemble the image across the chain and verify it byte-for-byte —
while the write pipeline and the restore read caches fight over a pool
a fraction of the working set.  Invariants at unmount: no pool chunk
leaks, no deadlock (wall-clock bounded), every restore byte-identical,
and the delta section consistent with the per-thread commit counts.
"""

import threading
import time

import pytest

from repro.backends import MemBackend
from repro.config import CRFSConfig
from repro.core import CRFS
from repro.units import KiB

pytestmark = pytest.mark.stress

CHUNK = 16 * KiB
POOL_CHUNKS = 6  # vs a working set of NTHREADS files x NCHUNKS chunks
NTHREADS = 4
NCHUNKS = 8  # chunks per logical image
GENERATIONS = 10

#: Generous bound; any deadlock hits the suite's own timeout long after.
WALL_LIMIT = 60.0


def pattern(n, salt):
    return bytes((i * 31 + salt * 7 + 3) % 256 for i in range(n))


class TestDeltaChainsUnderPoolContention:
    def test_concurrent_cadence_chains_share_the_pool_without_leaks(self):
        mem = MemBackend()
        cfg = CRFSConfig(
            chunk_size=CHUNK,
            pool_size=POOL_CHUNKS * CHUNK,
            io_threads=2,
            read_cache_chunks=2,
            readahead_chunks=1,
        )
        fs = CRFS(mem, cfg)
        errors = []
        committed = [0] * NTHREADS
        start = time.monotonic()

        def chain(index):
            path = f"/shard{index}.ckpt"
            image = bytearray(pattern(NCHUNKS * CHUNK + 100, salt=index))
            try:
                fs.delta_checkpoint(path, image)
                committed[index] += 1
                for gen in range(1, GENERATIONS):
                    dirty = [
                        (gen + index) % NCHUNKS,
                        (gen * 3 + index) % NCHUNKS,
                    ]
                    for chunk in dirty:
                        lo = chunk * CHUNK
                        hi = min(lo + CHUNK, len(image))
                        image[lo:hi] = pattern(hi - lo, salt=index * 100 + gen)
                    fs.delta_checkpoint(path, image, dirty=dirty)
                    committed[index] += 1
                    # restore storm: every commit is immediately read
                    # back across the whole chain
                    if fs.delta_restore(path) != bytes(image):
                        raise AssertionError(f"{path}: reassembly diverged")
            except BaseException as exc:  # surfaced after the join
                errors.append((index, exc))

        with fs:
            threads = [
                threading.Thread(target=chain, args=(i,), name=f"chain-{i}")
                for i in range(NTHREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(WALL_LIMIT)
            assert not any(t.is_alive() for t in threads), "chain deadlocked"
            assert not errors, errors

            # final cross-check once the storm has settled
            for index in range(NTHREADS):
                assert fs.delta_restore(f"/shard{index}.ckpt") is not None
            stats = fs.stats()
            pool = fs.pool

        assert time.monotonic() - start < WALL_LIMIT
        # no chunk leaks: the whole pool is back on the free list
        assert pool.free_chunks == pool.nchunks == POOL_CHUNKS

        delta = stats["delta"]
        assert delta["generations"] == sum(committed) == NTHREADS * GENERATIONS
        assert delta["manifest_writes"] == delta["generations"]
        # every per-commit restore plus the final sweep
        assert delta["restores"] == NTHREADS * (GENERATIONS - 1) + NTHREADS
        assert 0 < delta["bytes_written"] < delta["logical_bytes"]
        assert delta["reassembly_bytes"] == delta["restores"] * (
            NCHUNKS * CHUNK + 100
        )
