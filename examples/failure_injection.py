#!/usr/bin/env python
"""Failure injection: how CRFS surfaces asynchronous write errors.

CRFS acknowledges write() as soon as data is buffered — so what happens
when the *backing store* fails later?  Per the POSIX writeback contract
(and this library's design), the error is latched in the file's
metadata entry and raised from the next close() or fsync().  This
example injects backend faults and demonstrates:

1. an error on an async chunk write surfaces at close();
2. after a failed fsync-cycle the file can be retried cleanly;
3. injected *delays* exercise buffer-pool backpressure without data loss.

Run:  python examples/failure_injection.py
"""

from repro import CRFS, CRFSConfig, MemBackend
from repro.backends import FaultRule, FaultyBackend
from repro.errors import BackendIOError
from repro.units import KiB


def error_at_close() -> None:
    print("1. async write error surfaces at close()")
    backend = FaultyBackend(
        MemBackend(),
        [FaultRule(op="pwrite", nth=2, error=OSError("injected: disk failed"))],
    )
    cfg = CRFSConfig(chunk_size=16 * KiB, pool_size=128 * KiB, io_threads=2)
    fs = CRFS(backend, cfg).mount()
    f = fs.open("/ckpt.img")
    f.write(b"a" * (48 * KiB))  # 3 chunks; the 2nd backend write fails
    try:
        f.close()
        raise AssertionError("close() should have raised")
    except BackendIOError as exc:
        print(f"   close() raised: {exc}")
    fs.iopool.shutdown()
    print()


def retry_after_fsync_failure() -> None:
    print("2. fsync failure, then clean retry")
    backend = FaultyBackend(
        MemBackend(),
        [FaultRule(op="pwrite", nth=1, error=OSError("injected: transient"))],
    )
    cfg = CRFSConfig(chunk_size=16 * KiB, pool_size=128 * KiB, io_threads=2)
    with CRFS(backend, cfg) as fs:
        f = fs.open("/data")
        f.write(b"b" * (16 * KiB))
        try:
            f.fsync()
        except BackendIOError as exc:
            print(f"   fsync() raised: {exc}")
        # the fault rule was one-shot: rewrite and fsync again
        f.pwrite(b"b" * (16 * KiB), 0)
        f.fsync()
        print("   retry succeeded; data is on the backend")
        f.close()
    print()


def delays_cause_backpressure_not_loss() -> None:
    print("3. slow backend: backpressure, not loss")
    slow = FaultyBackend(
        MemBackend(),
        [FaultRule(op="pwrite", nth=1, every=True, delay=0.005)],
    )
    cfg = CRFSConfig(chunk_size=16 * KiB, pool_size=32 * KiB, io_threads=1)
    with CRFS(slow, cfg) as fs:
        with fs.open("/big") as f:
            payload = b"c" * (16 * KiB)
            for _ in range(16):  # 8x the pool size
                f.write(payload)
        stats = fs.stats()
        print(f"   pool waits: {stats['pool']['waits']} "
              f"(writers blocked while IO threads drained)")
        assert slow.inner.read_file("/big") == payload * 16
        print("   all 256 KiB intact on the backend")


def main() -> None:
    error_at_close()
    retry_after_fsync_failure()
    delays_cause_backpressure_not_loss()


if __name__ == "__main__":
    main()
