#!/usr/bin/env python
"""Coordinated MPI checkpoint on the modelled testbed.

Reproduces the paper's core experiment interactively: LU.C.128 with
MVAPICH2 on 16 nodes x 8 processes, checkpointed to each of the three
backing filesystems, natively and through CRFS — the cells of paper
Figure 6(b).

Run:  python examples/mpi_checkpoint.py [B|C|D]
"""

import sys

from repro.mpi import CheckpointCoordinator, MPIJob, MVAPICH2
from repro.units import format_size
from repro.util.tables import TextTable
from repro.workloads import lu_class


def main() -> None:
    cls = (sys.argv[1] if len(sys.argv) > 1 else "C").upper()
    job = MPIJob(stack=MVAPICH2, nas=lu_class(cls), nprocs=128, nnodes=16)
    print(job.describe())
    print(f"total checkpoint size: {format_size(job.total_checkpoint_size)}")
    print()

    table = TextTable(
        ["filesystem", "native (s)", "CRFS (s)", "speedup", "native spread", "CRFS spread"],
        title=f"Average local checkpoint time, LU.{cls}.128, MVAPICH2",
    )
    for fs_kind in ("ext3", "lustre", "nfs"):
        results = {}
        for use_crfs in (False, True):
            coord = CheckpointCoordinator(job, fs_kind, use_crfs=use_crfs, seed=2011)
            results[use_crfs] = coord.run()
        nat, crfs = results[False], results[True]
        table.add_row(
            [
                fs_kind,
                f"{nat.avg_local_time:.2f}",
                f"{crfs.avg_local_time:.2f}",
                f"{nat.avg_local_time / crfs.avg_local_time:.1f}x",
                f"{nat.min_local_time:.1f}..{nat.max_local_time:.1f}",
                f"{crfs.min_local_time:.1f}..{crfs.max_local_time:.1f}",
            ]
        )
        print(f"  {fs_kind}: done")
    print()
    print(table.render())
    print()
    print("(compare with the paper's Fig 6: CRFS wins multi-X on ext3 and")
    print(" Lustre at classes B/C; gains compress at class D; NFS inverts)")


if __name__ == "__main__":
    main()
