#!/usr/bin/env python
"""Quickstart: mount CRFS, checkpoint a process image, restart it.

Demonstrates the whole point of the paper in ~40 lines:

1. mount CRFS over a backing store (in-memory here; swap in
   ``LocalDirBackend("/some/dir")`` for real files);
2. write a BLCR-style checkpoint *through* CRFS — thousands of small
   and medium writes get aggregated into few large chunk writes;
3. restart directly from the backing store, *without* CRFS — the paper's
   Section V-F property: CRFS never changes file layout.

Run:  python examples/quickstart.py
"""

import io

from repro import CRFS, CRFSConfig, MemBackend
from repro.backends import InstrumentedBackend
from repro.checkpoint import BLCRWriter, ProcessImage, restore_image, verify_roundtrip
from repro.units import KiB, MiB, format_size


def main() -> None:
    # An 8 MiB synthetic process image (VM regions + metadata), like what
    # BLCR would snapshot for one MPI rank.
    image = ProcessImage.synthesize(rank=0, image_size=8 * MiB, seed=42)
    print(f"process image: {len(image.regions)} regions, "
          f"{format_size(image.total_bytes)}")

    # Instrument the backing store so we can see what CRFS did to the
    # write stream.
    backend = InstrumentedBackend(MemBackend())

    config = CRFSConfig.from_sizes(chunk="1M", pool="8M", io_threads=4)
    with CRFS(backend, config) as fs:
        fs.mkdir("/ckpt")
        with fs.open("/ckpt/rank0.img") as f:
            # 64 KiB max data writes: BLCR walks VM areas in page runs,
            # which is exactly the medium-write traffic CRFS aggregates.
            stats = BLCRWriter(data_write_max=64 * KiB).checkpoint(image, f)

    print(f"checkpoint issued {stats.write_count} write() calls "
          f"({format_size(stats.total_bytes)})")
    backend_writes = backend.write_sizes()
    print(f"CRFS aggregated them into {len(backend_writes)} backend writes "
          f"(largest {format_size(max(backend_writes))})")
    assert len(backend_writes) < stats.write_count / 10

    # Restart WITHOUT CRFS: read the checkpoint straight off the backend.
    raw = backend.inner.read_file("/ckpt/rank0.img")
    restored = restore_image(io.BytesIO(raw))
    verify_roundtrip(image, restored)
    print("restart: image restored and verified byte-for-byte — "
          "no CRFS mount needed")


if __name__ == "__main__":
    main()
