#!/usr/bin/env python
"""Tune CRFS: sweep chunk size, pool size and IO threads.

Reproduces the paper's Section V-B methodology on both planes:

* the *timing plane* sweep mirrors Figure 5 — 8 simulated writers,
  chunks discarded by a null backend, virtual-clock bandwidth;
* the *functional plane* sweep times the real threaded implementation
  on this machine (numbers depend on your hardware, the shape should
  hold: bigger chunks amortize per-chunk costs).

Run:  python examples/tuning_sweep.py
"""

import time

from repro import CRFS, CRFSConfig, NullBackend
from repro.experiments.fig5 import measure
from repro.units import KiB, MB, MiB, format_bandwidth


def timing_plane_sweep() -> None:
    print("timing plane (paper Fig 5 rig: 8 writers, null backend)")
    pools = [4 * MiB, 16 * MiB, 64 * MiB]
    chunks = [128 * KiB, 1 * MiB, 4 * MiB]
    header = "chunk \\ pool" + "".join(f"{p // MiB:>8}M" for p in pools)
    print(f"  {header}")
    for chunk in chunks:
        label = f"{chunk // KiB}K" if chunk < MiB else f"{chunk // MiB}M"
        cells = []
        for pool in pools:
            bw = measure(pool, chunk, bytes_per_proc=64 * MiB, seed=7)
            cells.append(f"{bw / MB:>8.0f}" if bw == bw else "       -")
        print(f"  {label:>12}{''.join(cells)} MB/s")


def functional_plane_sweep() -> None:
    print("\nfunctional plane (real threads on this machine)")
    total = 64 * MiB
    payload = b"z" * (128 * KiB)
    for chunk in (128 * KiB, 1 * MiB, 4 * MiB):
        cfg = CRFSConfig(chunk_size=chunk, pool_size=16 * MiB, io_threads=4)
        fs = CRFS(NullBackend(), cfg).mount()
        start = time.perf_counter()
        with fs.open("/stream") as f:
            written = 0
            while written < total:
                f.write(payload)
                written += len(payload)
        elapsed = time.perf_counter() - start
        fs.unmount()
        label = f"{chunk // KiB}K" if chunk < MiB else f"{chunk // MiB}M"
        print(f"  chunk {label:>5}: {format_bandwidth(total / elapsed)}")


def io_thread_sweep() -> None:
    print("\nIO-thread throttling (timing plane, LU.C.128 over ext3 + CRFS)")
    from repro.experiments.common import run_cell

    for n in (1, 2, 4, 8):
        t = run_cell("MVAPICH2", "C", "ext3", use_crfs=True, io_threads=n)
        print(f"  {n:>2} io threads: {t.avg_local_time:.2f} s avg local checkpoint")
    print("  (the paper settles on 4)")


def main() -> None:
    timing_plane_sweep()
    functional_plane_sweep()
    io_thread_sweep()


if __name__ == "__main__":
    main()
