#!/usr/bin/env python
"""Profile a checkpoint like the paper profiles one (Section III).

Runs LU.C.64 on the modelled testbed with full write tracing, then
produces the paper's three profiling artifacts from the same run:

* Table I  — the write-size / data / time profile;
* Figure 3 — per-process cumulative write time (rendered as text);
* Figure 10 — block-layer trace sequentiality metrics, native vs CRFS.

Run:  python examples/trace_analysis.py
"""

from repro.experiments.common import run_cell
from repro.trace import (
    WriteTrace,
    bucket_profile,
    completion_spread,
    cumulative_curves,
    render_profile,
    summarize_block_trace,
)


def node0_trace(result) -> WriteTrace:
    ranks = set(result.write_trace.ranks()[: result.job.procs_per_node])
    return WriteTrace([r for r in result.write_trace if r.rank in ranks])


def text_curve(sizes, cum, width=50) -> str:
    """A tiny text sparkline of a cumulative curve."""
    if len(cum) == 0:
        return ""
    step = max(1, len(cum) // width)
    peak = cum[-1]
    return "".join(
        "▁▂▃▄▅▆▇█"[min(7, int(8 * cum[i] / peak))] for i in range(0, len(cum), step)
    )


def main() -> None:
    print("running LU.C.64 natively on ext3 with write tracing...")
    native = run_cell("MVAPICH2", "C", "ext3", use_crfs=False,
                      nprocs=64, nnodes=8, record_writes=True)
    trace = node0_trace(native)

    print()
    print(render_profile(bucket_profile(trace), title="Table I (this run)"))

    print()
    print("Figure 3: cumulative write time per process (node 0)")
    for rank, (sizes, cum) in sorted(cumulative_curves(trace).items()):
        print(f"  rank {rank}: {text_curve(sizes, cum)}  total {cum[-1]:.2f}s")
    spread = completion_spread(trace)
    print(f"  spread: {spread['min']:.2f}s .. {spread['max']:.2f}s "
          f"(x{spread['spread_ratio']:.2f})")

    print()
    print("running the same checkpoint through CRFS...")
    crfs = run_cell("MVAPICH2", "C", "ext3", use_crfs=True,
                    nprocs=64, nnodes=8, record_writes=True)
    s_nat = summarize_block_trace(native.node0_disk_trace)
    s_crfs = summarize_block_trace(crfs.node0_disk_trace)
    print("Figure 10: node-0 disk access pattern")
    print(f"  native ext3: {s_nat.ios} ios, seek fraction {s_nat.seek_fraction:.2f}")
    print(f"  ext3+CRFS:   {s_crfs.ios} ios, seek fraction {s_crfs.seek_fraction:.2f}")
    sp_crfs = completion_spread(node0_trace(crfs))
    print(f"  CRFS write-time spread: {sp_crfs['min']:.2f}s .. {sp_crfs['max']:.2f}s")


if __name__ == "__main__":
    main()
