"""Synchronization primitives for simulated processes.

All primitives are FIFO-fair: waiters are released in arrival order, which
both matches kernel queue behaviour (VFS wait queues, ticket locks) and
keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Mapping

from ..errors import ShutdownError, SimulationError
from ..pipeline.tenancy import DEFAULT_TENANT, DRRScheduler, PoolLedger
from .engine import Process, Simulator, Waitable

__all__ = ["SimEvent", "SimLock", "SimSemaphore", "SimQueue", "SimTenantPool"]


class SimEvent(Waitable):
    """One-shot event.  ``yield event`` parks until someone calls
    :meth:`succeed` (resumes with the value) or :meth:`fail` (throws)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.error: BaseException | None = None
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule(0.0, w._resume, value)

    def fail(self, error: BaseException) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.error = error
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule(0.0, w._throw, error)

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        if self.triggered:
            if self.error is not None:
                sim.schedule(0.0, proc._throw, self.error)
            else:
                sim.schedule(0.0, proc._resume, self.value)
        else:
            self._waiters.append(proc)


class _Acquire(Waitable):
    __slots__ = ("owner",)

    def __init__(self, owner: "SimSemaphore"):
        self.owner = owner

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.owner._enqueue(proc)


class SimSemaphore:
    """Counting semaphore.  ``yield sem.acquire()`` ... ``sem.release()``."""

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Process] = deque()
        # contention stats, used by models to report queueing behaviour
        self.total_acquires = 0
        self.total_waits = 0

    def acquire(self) -> Waitable:
        return _Acquire(self)

    def _enqueue(self, proc: Process) -> None:
        self.total_acquires += 1
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            self.sim.schedule(0.0, proc._resume, None)
        else:
            self.total_waits += 1
            self._waiters.append(proc)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            nxt = self._waiters.popleft()
            self.sim.schedule(0.0, nxt._resume, None)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class SimLock(SimSemaphore):
    """Mutex: a semaphore of capacity 1."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)


class _PoolAcquire(Waitable):
    __slots__ = ("owner", "tenant")

    def __init__(self, owner: "SimTenantPool", tenant: str):
        self.owner = owner
        self.tenant = tenant

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.owner._enqueue(proc, self.tenant)


class SimTenantPool:
    """A buffer pool partitioned through a shared
    :class:`~repro.pipeline.tenancy.PoolLedger` — the timing-plane twin
    of a ledger-backed ``BufferPool``.

    Unlike :class:`SimSemaphore` (strict global FIFO), admission is per
    tenant: an acquire proceeds whenever the *ledger* admits the tenant,
    even while other tenants queue — that is the isolation property (a
    storm parked on the shared region cannot delay a victim drawing on
    its own reservation).  Waiters are FIFO among themselves: a release
    resumes the first admissible waiter.
    """

    def __init__(self, sim: Simulator, ledger: PoolLedger):
        self.sim = sim
        self.ledger = ledger
        self.capacity = ledger.nchunks
        self._waiters: Deque[tuple[Process, str]] = deque()
        self.total_acquires = 0
        self.total_waits = 0

    def acquire(self, tenant: str = DEFAULT_TENANT) -> Waitable:
        return _PoolAcquire(self, tenant)

    def would_wait(self, tenant: str) -> bool:
        """Whether an acquire for ``tenant`` would park right now — the
        backpressure predicate the model samples before yielding."""
        return not self.ledger.can_acquire(tenant)

    def _enqueue(self, proc: Process, tenant: str) -> None:
        self.total_acquires += 1
        if self.ledger.can_acquire(tenant):
            self.ledger.acquire(tenant)
            self.sim.schedule(0.0, proc._resume, None)
        else:
            self.total_waits += 1
            self._waiters.append((proc, tenant))

    def release(self, tenant: str = DEFAULT_TENANT) -> None:
        self.ledger.release(tenant)
        # One freed slot admits at most one waiter: the first whose
        # tenant the ledger now accepts (a reserved-slot release admits
        # only its owner, a shared-slot release admits anyone).
        for i, (proc, waiter_tenant) in enumerate(self._waiters):
            if self.ledger.can_acquire(waiter_tenant):
                del self._waiters[i]
                self.ledger.acquire(waiter_tenant)
                self.sim.schedule(0.0, proc._resume, None)
                return

    @property
    def in_use(self) -> int:
        return self.ledger.in_use

    def held(self, tenant: str) -> int:
        return self.ledger.held(tenant)

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class _Get(Waitable):
    __slots__ = ("queue",)

    def __init__(self, queue: "SimQueue"):
        self.queue = queue

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.queue._enqueue_getter(proc)


class _Put(Waitable):
    __slots__ = ("queue", "item", "low", "tenant")

    def __init__(
        self,
        queue: "SimQueue",
        item: Any,
        low: bool = False,
        tenant: str = DEFAULT_TENANT,
    ):
        self.queue = queue
        self.item = item
        self.low = low
        self.tenant = tenant

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.queue._enqueue_putter(proc, self.item, self.low, self.tenant)


class SimQueue:
    """Bounded FIFO queue — the work queue of the CRFS model.

    * ``yield q.put(item)`` blocks while the queue is full.
    * ``yield q.get()`` blocks while it is empty; returns the item.
    * :meth:`close` wakes all blocked getters with :class:`ShutdownError`
      and makes further puts fail — the IO-thread shutdown protocol.

    Two priority bands, mirroring the functional plane's WorkQueue:
    ``put(item, low=True)`` enqueues on the low band (readahead
    prefetches), which getters drain only when the high band is empty;
    ``capacity`` bounds the high band only and low puts never block.

    Multi-tenant models pass a shared
    :class:`~repro.pipeline.tenancy.DRRScheduler` — item storage and
    service order then live in the exact class the functional plane's
    ``WorkQueue`` delegates to, plus per-tenant ``quotas`` that park a
    tenant's putters at admission (``on_admission_wait`` is called once
    per parked put, so the model can emit the matching event).  With no
    scheduler the pre-tenant deque path runs untouched.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 0,
        scheduler: DRRScheduler | None = None,
        quotas: Mapping[str, int] | None = None,
        on_admission_wait: Callable[[str, int], None] | None = None,
    ):
        if capacity < 0:
            raise SimulationError(f"queue capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.capacity = capacity  # 0 = unbounded
        self.scheduler = scheduler
        self.quotas = {t: q for t, q in (quotas or {}).items() if q > 0}
        self.on_admission_wait = on_admission_wait
        self._items: Deque[Any] = deque()
        self._low: Deque[Any] = deque()
        self._getters: Deque[Process] = deque()
        self._putters: Deque[tuple[Process, Any, str]] = deque()
        self.closed = False
        self.max_depth = 0
        self.total_puts = 0

    def __len__(self) -> int:
        if self.scheduler is not None:
            return len(self.scheduler)
        return len(self._items) + len(self._low)

    def depth(self, tenant: str) -> int:
        """Queued high-band items for ``tenant`` (the admission gauge);
        scheduler mode only — the deque path has a single tenant."""
        if self.scheduler is not None:
            return self.scheduler.depth(tenant)
        return len(self._items) if tenant == DEFAULT_TENANT else 0

    def put(
        self, item: Any, low: bool = False, tenant: str = DEFAULT_TENANT
    ) -> Waitable:
        return _Put(self, item, low, tenant)

    def get(self) -> Waitable:
        return _Get(self)

    def _put_blocked(self, tenant: str) -> bool:
        """Whether a scheduler-mode high-band put must park: the band is
        at capacity, or the tenant is at its quota."""
        assert self.scheduler is not None
        if self.capacity and self.scheduler.high_len >= self.capacity:
            return True
        quota = self.quotas.get(tenant, 0)
        return bool(quota) and self.scheduler.depth(tenant) >= quota

    def _enqueue_putter(
        self,
        proc: Process,
        item: Any,
        low: bool = False,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        if self.closed:
            self.sim.schedule(0.0, proc._throw, ShutdownError("queue closed"))
            return
        self.total_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0.0, getter._resume, item)
            self.sim.schedule(0.0, proc._resume, None)
            return
        if self.scheduler is not None:
            if not low and self._put_blocked(tenant):
                if self.quotas.get(tenant, 0) and (
                    self.scheduler.depth(tenant) >= self.quotas[tenant]
                ):
                    if self.on_admission_wait is not None:
                        self.on_admission_wait(
                            tenant, self.scheduler.depth(tenant)
                        )
                self._putters.append((proc, item, tenant))
                return
            self.scheduler.push(tenant, item, low=low)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, proc._resume, None)
            return
        if low:
            self._low.append(item)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, proc._resume, None)
        elif self.capacity == 0 or len(self._items) < self.capacity:
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, proc._resume, None)
        else:
            self._putters.append((proc, item, tenant))

    def _readmit_putters(self) -> None:
        """Scheduler mode: re-admit parked putters now within capacity
        and quota, preserving arrival order among those still blocked."""
        assert self.scheduler is not None
        if not self._putters:
            return
        kept: Deque[tuple[Process, Any, str]] = deque()
        while self._putters:
            proc, item, tenant = self._putters.popleft()
            if self._put_blocked(tenant):
                kept.append((proc, item, tenant))
            else:
                self.scheduler.push(tenant, item)
                self.max_depth = max(self.max_depth, len(self))
                self.sim.schedule(0.0, proc._resume, None)
        self._putters = kept

    def _enqueue_getter(self, proc: Process) -> None:
        if self.scheduler is not None:
            was_high = self.scheduler.high_len > 0
            popped = self.scheduler.pop()
            if popped is not None:
                _, item = popped
                if was_high:
                    self._readmit_putters()
                self.sim.schedule(0.0, proc._resume, item)
            elif self.closed:
                self.sim.schedule(0.0, proc._throw, ShutdownError("queue closed"))
            else:
                self._getters.append(proc)
            return
        if self._items:
            item = self._items.popleft()
            if self._putters:
                putter, pitem, _ = self._putters.popleft()
                self._items.append(pitem)
                self.max_depth = max(self.max_depth, len(self))
                self.sim.schedule(0.0, putter._resume, None)
            self.sim.schedule(0.0, proc._resume, item)
        elif self._low:
            self.sim.schedule(0.0, proc._resume, self._low.popleft())
        elif self.closed:
            self.sim.schedule(0.0, proc._throw, ShutdownError("queue closed"))
        else:
            self._getters.append(proc)

    def take_adjacent(
        self,
        last: Any,
        limit: int,
        chain: Callable[[Any, Any], bool],
        tenant: str = DEFAULT_TENANT,
    ) -> list[Any]:
        """Synchronously take up to ``limit`` queued high-band items that
        ``chain`` accepts as the continuation of ``last``.

        The batch-gather mirror of the functional plane's
        ``WorkQueue.get_batch``: called by a getter right after its
        ``yield q.get()`` returned ``last``, it scans the high band
        — ``chain(tail, candidate)`` with a rolling tail — skipping
        non-matching items and preserving their relative order.  Never
        blocks; freeing high-band slots re-admits parked putters.

        In scheduler mode only ``tenant``'s own sub-queue is scanned
        (batches never span tenants) and the gathered run is charged
        against the tenant's DRR deficit.
        """
        if self.scheduler is not None:
            batch = self.scheduler.gather(tenant, limit, chain, last)
            if batch:
                self._readmit_putters()
            return batch
        batch = []
        if limit <= 0 or not self._items:
            return batch
        tail = last
        remaining: Deque[Any] = deque()
        while self._items and len(batch) < limit:
            candidate = self._items.popleft()
            if chain(tail, candidate):
                batch.append(candidate)
                tail = candidate
            else:
                remaining.append(candidate)
        remaining.extend(self._items)
        self._items = remaining
        while self._putters and (
            self.capacity == 0 or len(self._items) < self.capacity
        ):
            putter, pitem, _ = self._putters.popleft()
            self._items.append(pitem)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, putter._resume, None)
        return batch

    def close(self) -> None:
        """Close the queue: blocked getters get ShutdownError once the
        queue is empty of items (drain-then-stop, both bands)."""
        self.closed = True
        # Items still queued will be consumed first; only wake getters if
        # there is nothing left to hand them.
        if len(self) == 0:
            getters, self._getters = self._getters, deque()
            for g in getters:
                self.sim.schedule(0.0, g._throw, ShutdownError("queue closed"))
