"""Synchronization primitives for simulated processes.

All primitives are FIFO-fair: waiters are released in arrival order, which
both matches kernel queue behaviour (VFS wait queues, ticket locks) and
keeps simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque

from ..errors import ShutdownError, SimulationError
from .engine import Process, Simulator, Waitable

__all__ = ["SimEvent", "SimLock", "SimSemaphore", "SimQueue"]


class SimEvent(Waitable):
    """One-shot event.  ``yield event`` parks until someone calls
    :meth:`succeed` (resumes with the value) or :meth:`fail` (throws)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self.error: BaseException | None = None
        self._waiters: list[Process] = []

    def succeed(self, value: Any = None) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule(0.0, w._resume, value)

    def fail(self, error: BaseException) -> None:
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.error = error
        waiters, self._waiters = self._waiters, []
        for w in waiters:
            self.sim.schedule(0.0, w._throw, error)

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        if self.triggered:
            if self.error is not None:
                sim.schedule(0.0, proc._throw, self.error)
            else:
                sim.schedule(0.0, proc._resume, self.value)
        else:
            self._waiters.append(proc)


class _Acquire(Waitable):
    __slots__ = ("owner",)

    def __init__(self, owner: "SimSemaphore"):
        self.owner = owner

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.owner._enqueue(proc)


class SimSemaphore:
    """Counting semaphore.  ``yield sem.acquire()`` ... ``sem.release()``."""

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Process] = deque()
        # contention stats, used by models to report queueing behaviour
        self.total_acquires = 0
        self.total_waits = 0

    def acquire(self) -> Waitable:
        return _Acquire(self)

    def _enqueue(self, proc: Process) -> None:
        self.total_acquires += 1
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            self.sim.schedule(0.0, proc._resume, None)
        else:
            self.total_waits += 1
            self._waiters.append(proc)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            nxt = self._waiters.popleft()
            self.sim.schedule(0.0, nxt._resume, None)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class SimLock(SimSemaphore):
    """Mutex: a semaphore of capacity 1."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, capacity=1)


class _Get(Waitable):
    __slots__ = ("queue",)

    def __init__(self, queue: "SimQueue"):
        self.queue = queue

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.queue._enqueue_getter(proc)


class _Put(Waitable):
    __slots__ = ("queue", "item", "low")

    def __init__(self, queue: "SimQueue", item: Any, low: bool = False):
        self.queue = queue
        self.item = item
        self.low = low

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.queue._enqueue_putter(proc, self.item, self.low)


class SimQueue:
    """Bounded FIFO queue — the work queue of the CRFS model.

    * ``yield q.put(item)`` blocks while the queue is full.
    * ``yield q.get()`` blocks while it is empty; returns the item.
    * :meth:`close` wakes all blocked getters with :class:`ShutdownError`
      and makes further puts fail — the IO-thread shutdown protocol.

    Two priority bands, mirroring the functional plane's WorkQueue:
    ``put(item, low=True)`` enqueues on the low band (readahead
    prefetches), which getters drain only when the high band is empty;
    ``capacity`` bounds the high band only and low puts never block.
    """

    def __init__(self, sim: Simulator, capacity: int = 0):
        if capacity < 0:
            raise SimulationError(f"queue capacity must be >= 0, got {capacity}")
        self.sim = sim
        self.capacity = capacity  # 0 = unbounded
        self._items: Deque[Any] = deque()
        self._low: Deque[Any] = deque()
        self._getters: Deque[Process] = deque()
        self._putters: Deque[tuple[Process, Any]] = deque()
        self.closed = False
        self.max_depth = 0
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._items) + len(self._low)

    def put(self, item: Any, low: bool = False) -> Waitable:
        return _Put(self, item, low)

    def get(self) -> Waitable:
        return _Get(self)

    def _enqueue_putter(self, proc: Process, item: Any, low: bool = False) -> None:
        if self.closed:
            self.sim.schedule(0.0, proc._throw, ShutdownError("queue closed"))
            return
        self.total_puts += 1
        if self._getters:
            getter = self._getters.popleft()
            self.sim.schedule(0.0, getter._resume, item)
            self.sim.schedule(0.0, proc._resume, None)
        elif low:
            self._low.append(item)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, proc._resume, None)
        elif self.capacity == 0 or len(self._items) < self.capacity:
            self._items.append(item)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, proc._resume, None)
        else:
            self._putters.append((proc, item))

    def _enqueue_getter(self, proc: Process) -> None:
        if self._items:
            item = self._items.popleft()
            if self._putters:
                putter, pitem = self._putters.popleft()
                self._items.append(pitem)
                self.max_depth = max(self.max_depth, len(self))
                self.sim.schedule(0.0, putter._resume, None)
            self.sim.schedule(0.0, proc._resume, item)
        elif self._low:
            self.sim.schedule(0.0, proc._resume, self._low.popleft())
        elif self.closed:
            self.sim.schedule(0.0, proc._throw, ShutdownError("queue closed"))
        else:
            self._getters.append(proc)

    def take_adjacent(
        self, last: Any, limit: int, chain: Callable[[Any, Any], bool]
    ) -> list[Any]:
        """Synchronously take up to ``limit`` queued high-band items that
        ``chain`` accepts as the continuation of ``last``.

        The batch-gather mirror of the functional plane's
        ``WorkQueue.get_batch``: called by a getter right after its
        ``yield q.get()`` returned ``last``, it scans the whole high band
        — ``chain(tail, candidate)`` with a rolling tail — skipping
        non-matching items and preserving their relative order.  Never
        blocks; freeing high-band slots re-admits parked putters.
        """
        batch: list[Any] = []
        if limit <= 0 or not self._items:
            return batch
        tail = last
        remaining: Deque[Any] = deque()
        while self._items and len(batch) < limit:
            candidate = self._items.popleft()
            if chain(tail, candidate):
                batch.append(candidate)
                tail = candidate
            else:
                remaining.append(candidate)
        remaining.extend(self._items)
        self._items = remaining
        while self._putters and (
            self.capacity == 0 or len(self._items) < self.capacity
        ):
            putter, pitem = self._putters.popleft()
            self._items.append(pitem)
            self.max_depth = max(self.max_depth, len(self))
            self.sim.schedule(0.0, putter._resume, None)
        return batch

    def close(self) -> None:
        """Close the queue: blocked getters get ShutdownError once the
        queue is empty of items (drain-then-stop, both bands)."""
        self.closed = True
        # Items still queued will be consumed first; only wake getters if
        # there is nothing left to hand them.
        if not self._items and not self._low:
            getters, self._getters = self._getters, deque()
            for g in getters:
                self.sim.schedule(0.0, g._throw, ShutdownError("queue closed"))
