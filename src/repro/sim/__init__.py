"""Discrete-event simulation engine.

A miniature process-based DES (in the spirit of SimPy, built from scratch
for this reproduction): simulated processes are Python generators that
``yield`` *waitables* — timeouts, events, lock acquisitions, queue
operations — and the :class:`Simulator` advances a virtual clock between
them.  Every timing-plane component (disks, page caches, NFS/Lustre
servers, the CRFS pipeline model, MPI ranks) is a process on this engine.

Why a DES and not real threads: the paper's numbers come from 8 cores x
16 nodes of genuinely concurrent writers; CPython threads cannot reproduce
that contention faithfully (GIL), while a virtual clock reproduces it
exactly and deterministically.
"""

from .engine import Simulator, Process, Timeout, Waitable
from .primitives import SimEvent, SimLock, SimSemaphore, SimQueue, SimTenantPool
from .resources import FIFOResource, SharedBandwidth

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Waitable",
    "SimEvent",
    "SimLock",
    "SimSemaphore",
    "SimQueue",
    "SimTenantPool",
    "FIFOResource",
    "SharedBandwidth",
]
