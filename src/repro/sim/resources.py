"""Timed resources: FIFO service centers and processor-sharing bandwidth.

Two queueing disciplines cover every hardware element in the testbed model:

* :class:`FIFOResource` — one request serviced at a time, in arrival order.
  Used for the disk head, the per-node VFS page-allocation path, and RPC
  service at the NFS/Lustre servers.  Concurrency shows up as queueing
  delay — exactly the "severe contentions in the VFS layer" of Section III.

* :class:`SharedBandwidth` — ideal processor sharing: N concurrent
  transfers each progress at capacity/N (optionally capped per job).  Used
  for memory-bus copies, network links, and aggregate OST bandwidth, where
  hardware genuinely interleaves at fine grain.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import SimulationError
from .engine import EventHandle, Process, Simulator, Waitable

__all__ = ["FIFOResource", "SharedBandwidth"]


class _Use(Waitable):
    __slots__ = ("res", "duration")

    def __init__(self, res: "FIFOResource", duration: float):
        if duration < 0:
            raise SimulationError(f"negative service time: {duration}")
        self.res = res
        self.duration = duration

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.res._enqueue(proc, self.duration)


class FIFOResource:
    """Single server, FIFO queue.  ``yield res.use(t)`` holds the server
    for ``t`` and resumes when service completes."""

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self._busy = False
        self._queue: Deque[tuple[Process, float]] = deque()
        # -- stats
        self.busy_time = 0.0
        self.total_ops = 0
        self.total_wait = 0.0
        self.max_queue = 0
        self._arrivals: dict[int, float] = {}

    def use(self, duration: float) -> Waitable:
        return _Use(self, duration)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def _enqueue(self, proc: Process, duration: float) -> None:
        self._arrivals[id(proc)] = self.sim.now
        self._queue.append((proc, duration))
        self.max_queue = max(self.max_queue, len(self._queue))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        proc, duration = self._queue.popleft()
        self.total_ops += 1
        self.total_wait += self.sim.now - self._arrivals.pop(id(proc))
        self.busy_time += duration
        self.sim.schedule(duration, self._complete, proc)

    def _complete(self, proc: Process) -> None:
        self.sim.schedule(0.0, proc._resume, None)
        self._start_next()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the server was busy."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0


class _Job:
    __slots__ = ("proc", "remaining", "started")

    def __init__(self, proc: Process, nbytes: float, started: float):
        self.proc = proc
        self.remaining = float(nbytes)
        self.started = started


class _Transfer(Waitable):
    __slots__ = ("res", "nbytes")

    def __init__(self, res: "SharedBandwidth", nbytes: float):
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        self.res = res
        self.nbytes = nbytes

    def _subscribe(self, sim: Simulator, proc: Process) -> None:
        self.res._arrive(proc, self.nbytes)


class SharedBandwidth:
    """Ideal processor-sharing bandwidth of ``capacity`` bytes/second.

    Each active transfer progresses at ``min(per_job_cap, capacity/n)``.
    ``yield link.transfer(nbytes)`` resumes when the job's bytes have
    drained.  State is advanced lazily: a single scheduled wake-up tracks
    the earliest-finishing job and is rescheduled whenever the job set
    changes.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        name: str = "link",
        per_job_cap: float | None = None,
    ):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if per_job_cap is not None and per_job_cap <= 0:
            raise SimulationError(f"per_job_cap must be positive, got {per_job_cap}")
        self.sim = sim
        self.capacity = float(capacity)
        self.per_job_cap = per_job_cap
        self.name = name
        self._jobs: list[_Job] = []
        self._last_update = 0.0
        self._wakeup: Optional[EventHandle] = None
        # -- stats
        self.total_bytes = 0.0
        self.total_jobs = 0
        self.max_concurrency = 0

    def transfer(self, nbytes: float) -> Waitable:
        return _Transfer(self, nbytes)

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _rate(self) -> float:
        """Current per-job rate."""
        n = len(self._jobs)
        if n == 0:
            return 0.0
        rate = self.capacity / n
        if self.per_job_cap is not None:
            rate = min(rate, self.per_job_cap)
        return rate

    def _advance(self) -> None:
        """Drain progress since the last state change."""
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed > 0 and self._jobs:
            rate = self._rate()
            for job in self._jobs:
                job.remaining -= rate * elapsed
        self._last_update = now

    def _arrive(self, proc: Process, nbytes: float) -> None:
        self._advance()
        self.total_jobs += 1
        self.total_bytes += nbytes
        if nbytes == 0:
            self.sim.schedule(0.0, proc._resume, None)
            self._reschedule()
            return
        self._jobs.append(_Job(proc, nbytes, self.sim.now))
        self.max_concurrency = max(self.max_concurrency, len(self._jobs))
        self._reschedule()

    def _reschedule(self) -> None:
        if self._wakeup is not None:
            self._wakeup.cancel()
            self._wakeup = None
        if not self._jobs:
            return
        rate = self._rate()
        soonest = min(job.remaining for job in self._jobs)
        delay = max(soonest, 0.0) / rate
        self._wakeup = self.sim.schedule(delay, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._advance()
        # Complete every job that has drained (tolerance absorbs float fuzz).
        eps = 1e-9 * max(self.capacity, 1.0)
        done = [j for j in self._jobs if j.remaining <= eps]
        if not done:
            self._reschedule()
            return
        self._jobs = [j for j in self._jobs if j.remaining > eps]
        for job in done:
            self.sim.schedule(0.0, job.proc._resume, None)
        self._reschedule()
