"""The simulation core: virtual clock, event heap, generator processes.

Execution model
---------------
A *process* is a generator.  Each ``yield`` hands the engine a
:class:`Waitable`; the engine parks the process until the waitable fires,
then resumes the generator with the waitable's value (or throws its
exception).  All resumptions are funnelled through the event heap at the
current time, so process steps never nest — wake-up order is FIFO among
same-time events, which keeps lock hand-off and queue wake-ups fair and
deterministic.

The engine detects deadlock: if the heap drains while spawned processes
are still blocked, :class:`~repro.errors.DeadlockError` is raised — this
catches model bugs (e.g. a drain-wait that nobody will ever signal)
instead of silently returning early.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

from ..errors import DeadlockError, SimulationError

__all__ = ["Simulator", "Process", "Timeout", "Waitable", "EventHandle"]

#: Type of a process body: a generator yielding Waitables.
ProcessGen = Generator["Waitable", Any, Any]


class Waitable:
    """Something a process can ``yield`` on.

    Subclasses implement :meth:`_subscribe`, arranging for
    ``proc._resume(value)`` or ``proc._throw(exc)`` to be called later.
    """

    def _subscribe(self, sim: "Simulator", proc: "Process") -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Elapse ``delay`` units of virtual time, then resume with ``value``."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def _subscribe(self, sim: "Simulator", proc: "Process") -> None:
        sim.schedule(self.delay, proc._resume, self.value)


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_cancelled", "time", "fn", "args")

    def __init__(self, time: float, fn: Callable[..., None], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Process(Waitable):
    """A running simulated process.  Also a waitable (``yield proc`` joins)."""

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.alive = True
        self.result: Any = None
        self.error: BaseException | None = None
        self._error_observed = False
        self._joiners: list[Process] = []
        self.started_at = sim.now
        self.finished_at: float | None = None

    # -- engine-facing ----------------------------------------------------

    def _resume(self, value: Any = None) -> None:
        self._step(value, None)

    def _throw(self, exc: BaseException) -> None:
        self._step(None, exc)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        if not self.alive:
            raise SimulationError(f"resuming dead process {self.name!r}")
        self.sim._blocked -= 1
        try:
            if exc is not None:
                waitable = self._gen.throw(exc)
            else:
                waitable = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001 - propagate to joiners
            self._finish(None, err)
            return
        if not isinstance(waitable, Waitable):
            self._finish(
                None,
                SimulationError(
                    f"process {self.name!r} yielded {waitable!r}, not a Waitable"
                ),
            )
            return
        self.sim._blocked += 1
        waitable._subscribe(self.sim, self)

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self.alive = False
        self.result = result
        self.error = error
        self.finished_at = self.sim.now
        joiners, self._joiners = self._joiners, []
        for j in joiners:
            if error is not None:
                self._error_observed = True
                self.sim.schedule(0.0, j._throw, error)
            else:
                self.sim.schedule(0.0, j._resume, result)
        if error is not None and not joiners:
            self.sim._failed.append(self)

    # -- waitable (join) ---------------------------------------------------

    def _subscribe(self, sim: "Simulator", proc: "Process") -> None:
        if not self.alive:
            if self.error is not None:
                self._error_observed = True
                sim.schedule(0.0, proc._throw, self.error)
            else:
                sim.schedule(0.0, proc._resume, self.result)
        else:
            self._joiners.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"


class Simulator:
    """Virtual clock + event heap + process bookkeeping."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._blocked = 0  # processes parked on a waitable
        self._nproc = 0
        self._failed: list[Process] = []  # died with error, no joiner yet

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` virtual time units."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        handle = EventHandle(self._now + delay, fn, args)
        heapq.heappush(self._heap, (handle.time, next(self._seq), handle))
        return handle

    def spawn(self, gen: ProcessGen, name: str | None = None) -> Process:
        """Start a new process; its first step runs at the current time."""
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"spawn() needs a generator (did you forget to call the function?): {gen!r}"
            )
        self._nproc += 1
        proc = Process(self, gen, name or f"proc-{self._nproc}")
        self._blocked += 1  # spawn parks it until its first step fires
        self.schedule(0.0, proc._resume, None)
        return proc

    # -- main loop ----------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run events until the heap drains (or past ``until``).

        Returns the final clock value.  Raises :class:`DeadlockError` if
        processes remain blocked with nothing scheduled.  A process that
        died with an exception nobody joined on is re-raised at the end of
        the run (and takes precedence over a deadlock it may have caused).
        """
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if until is not None and time > until:
                # put it back; caller may continue the run later
                heapq.heappush(self._heap, (time, next(self._seq), handle))
                self._now = until
                return self._now
            if time < self._now - 1e-12:
                raise SimulationError("event heap went backwards (engine bug)")
            self._now = max(self._now, time)
            handle.fn(*handle.args)
        unobserved = [p for p in self._failed if not p._error_observed]
        if unobserved:
            first = unobserved[0]
            raise SimulationError(
                f"process {first.name!r} died with an unobserved error"
            ) from first.error
        if self._blocked > 0 and until is None:
            raise DeadlockError(
                f"event queue drained with {self._blocked} process(es) still blocked"
            )
        return self._now

    def run_until_complete(self, procs: Iterable[Process]) -> list[Any]:
        """Run until every process in ``procs`` has finished, then stop —
        even if background processes (flushers, timers) still have events
        scheduled.  Returns the results; re-raises the first error.

        This is the main entry point for experiments: workloads complete,
        daemon-style hardware processes are simply abandoned.
        """
        procs = list(procs)
        while any(p.alive for p in procs):
            if not self._heap:
                blocked = [p.name for p in procs if p.alive]
                raise DeadlockError(
                    f"nothing scheduled but workload processes blocked: {blocked}"
                )
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if time < self._now - 1e-12:
                raise SimulationError("event heap went backwards (engine bug)")
            self._now = max(self._now, time)
            handle.fn(*handle.args)
        for p in procs:
            if p.error is not None:
                p._error_observed = True
                raise p.error
        return [p.result for p in procs]

    def run_all(self, procs: Iterable[Process]) -> list[Any]:
        """Convenience: run to completion and return each process's result,
        re-raising the first process error (which takes precedence over any
        engine-level complaint the failure caused, e.g. a deadlock)."""
        procs = list(procs)
        try:
            self.run()
        except (SimulationError, DeadlockError):
            for p in procs:
                if p.error is not None:
                    p._error_observed = True
                    raise p.error from None
            raise
        for p in procs:
            if p.error is not None:
                p._error_observed = True
                raise p.error
        return [p.result for p in procs]
