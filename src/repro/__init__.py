"""CRFS reproduction — a user-level write-aggregating checkpoint
filesystem, with a discrete-event model of the paper's testbed.

Reproduces "CRFS: A Lightweight User-Level Filesystem for Generic
Checkpoint/Restart" (Ouyang et al., ICPP 2011).

Two planes, one aggregation logic:

* **functional plane** — :class:`CRFS` is a real, thread-based
  implementation of the paper's pipeline (buffer pool, work queue, IO
  threads, drain-on-close) over pluggable backends; bytes written through
  it are stored for real and restartable without CRFS;
* **timing plane** — :mod:`repro.sim` / :mod:`repro.simio` /
  :mod:`repro.simcrfs` model the paper's 64-node testbed (rotational
  disks, page caches, NFS server, Lustre OSTs) on a virtual clock;
  :mod:`repro.experiments` regenerates every table and figure.

Quickstart::

    from repro import CRFS, CRFSConfig, MemBackend

    with CRFS(MemBackend(), CRFSConfig.from_sizes("4M", "16M")) as fs:
        with fs.open("/ckpt/rank0.img") as f:
            f.write(checkpoint_bytes)
"""

from .config import CRFSConfig, DEFAULT_CONFIG
from .core import CRFS, CRFSFile, WritePlanner
from .backends import (
    Backend,
    FaultRule,
    FaultyBackend,
    InstrumentedBackend,
    LocalDirBackend,
    MemBackend,
    NullBackend,
)
from .errors import BackendIOError, CRFSError, ConfigError
from .pipeline import (
    BackendHealth,
    PipelineKernel,
    PipelineObserver,
    PipelineStats,
    RetryPolicy,
)
from .units import GiB, KiB, MB, MiB, format_bandwidth, format_size, parse_size

__version__ = "1.0.0"

__all__ = [
    "CRFS",
    "CRFSFile",
    "CRFSConfig",
    "DEFAULT_CONFIG",
    "WritePlanner",
    "Backend",
    "MemBackend",
    "LocalDirBackend",
    "NullBackend",
    "InstrumentedBackend",
    "FaultyBackend",
    "FaultRule",
    "CRFSError",
    "ConfigError",
    "BackendIOError",
    "BackendHealth",
    "RetryPolicy",
    "PipelineKernel",
    "PipelineObserver",
    "PipelineStats",
    "KiB",
    "MiB",
    "GiB",
    "MB",
    "parse_size",
    "format_size",
    "format_bandwidth",
    "__version__",
]
