"""CRFS mount configuration.

Mirrors the tunables the paper exposes at mount time (Section IV/V-B):

* **chunk size** — the unit of write aggregation.  The paper evaluates
  128 KiB..4 MiB and fixes 4 MiB for the application experiments.
* **buffer pool size** — total aggregation memory.  The paper evaluates
  4..64 MiB and fixes 16 MiB ("CRFS shouldn't occupy too much memory").
* **io threads** — worker threads draining the work queue.  The paper
  finds 4 to be the sweet spot and uses it throughout.

The defaults here are the paper's chosen operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError
from .pipeline.resilience import RetryPolicy
from .pipeline.tenancy import TenantRegistry, TenantSpec
from .units import KiB, MiB, parse_size

__all__ = ["CRFSConfig", "DEFAULT_CONFIG", "TenantSpec"]


@dataclass(frozen=True)
class CRFSConfig:
    """Tunables for a CRFS mount (both functional and timing planes)."""

    #: Size of each aggregation chunk in bytes (paper default: 4 MiB).
    chunk_size: int = 4 * MiB
    #: Total buffer pool size in bytes (paper default: 16 MiB).
    pool_size: int = 16 * MiB
    #: Number of IO worker threads draining the work queue (paper: 4).
    io_threads: int = 4
    #: Maximum queued chunks in the work queue; 0 means unbounded.  The
    #: paper's design is implicitly bounded by the pool (a chunk must be
    #: allocated before it can be queued), so the default keeps that.
    work_queue_depth: int = 0
    #: Whether read() passes straight through to the backend (paper
    #: behaviour: "we directly pass it to the underlying filesystem").
    #: With False, a read first flushes and drains the file's pending
    #: chunks, so reads always observe the latest writes — a
    #: read-your-writes extension for general (non-checkpoint) workloads
    #: that interleave reads and writes.
    read_passthrough: bool = True
    #: Pad the final partial chunk write?  The paper writes only valid
    #: bytes; padding is an ablation knob (always False for fidelity).
    pad_partial_chunks: bool = False
    #: Per-file restart readahead cache, in chunks leased from the
    #: buffer pool.  0 (the paper's behaviour, and the default) keeps
    #: reads pure passthrough; > 0 serves chunk-aligned reads from a
    #: bounded LRU cache with read-your-writes semantics.  Must leave
    #: pool headroom (<= pool_chunks) and exceed ``readahead_chunks``.
    read_cache_chunks: int = 0
    #: Sliding prefetch window: after every cached read access, the next
    #: N absent chunks are fetched asynchronously through the IO thread
    #: pool (prioritized below writeback).  0 disables prefetch (the
    #: cache, if any, fills on demand only); > 0 requires a cache.
    readahead_chunks: int = 0
    #: Adaptive prefetch window (AIMD): ``readahead_chunks`` becomes the
    #: *initial* window, which grows by one chunk per streak of
    #: consecutive sequential hits (up to ``read_cache_chunks - 1``) and
    #: halves under cache pressure — unread prefetches evicted, fetches
    #: dropped on a starved pool, delivered prefetches wasted.  False
    #: (the default) keeps the window pinned at ``readahead_chunks``.
    readahead_adaptive: bool = False
    #: Writes of at least this many bytes bypass aggregation and go
    #: straight to the backend (after flushing the partial chunk, so
    #: issue order is preserved).  0 disables write-through — the paper's
    #: behaviour, since BLCR's large writes still benefit from the
    #: asynchronous chunk pipeline.  Ablation knob.
    write_through_threshold: int = 0
    #: Total backend write attempts per chunk (1 = fail fast, the
    #: paper's implicit behaviour: the first writeback error latches).
    retry_attempts: int = 1
    #: Backoff before the second attempt, in seconds; doubles (see
    #: ``retry_backoff_factor``) up to ``retry_backoff_max``.
    retry_backoff: float = 0.002
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 0.1
    #: Deterministic jitter fraction applied to each backoff delay
    #: (drawn from util.rng, so schedules are reproducible).
    retry_jitter: float = 0.1
    #: Per-attempt deadline in seconds; an attempt that overruns it is
    #: treated as failed and reissued (chunk pwrites are idempotent).
    #: 0 disables the deadline.
    retry_timeout: float = 0.0
    #: Root seed for the deterministic retry jitter streams.
    retry_seed: int = 2011
    #: Consecutive failed write attempts that trip the backend circuit
    #: breaker, degrading the mount to synchronous write-through until a
    #: probe write succeeds.  0 disables the breaker.
    breaker_threshold: int = 0
    #: Coalesced writeback: an IO worker that takes a chunk off the work
    #: queue opportunistically gathers up to this many queued chunks
    #: contiguous in the same file and issues them as one vectored
    #: backend write (``pwritev``).  1 (the default) disables gathering
    #: — byte- and stats-identical to the unbatched pipeline.
    writeback_batch_chunks: int = 1
    #: Multi-tenant mount: per-tenant IO shares, buffer-pool
    #: reservations, queue quotas and path-mapping rules (see
    #: :class:`~repro.pipeline.tenancy.TenantSpec`).  Empty (the
    #: default) keeps the mount single-tenant — everything resolves to
    #: ``default`` with weight 1, no reservation, no quota, and the
    #: scheduler degrades to the exact pre-tenant FIFO behaviour.
    tenants: tuple[TenantSpec, ...] = ()
    #: Weighted deficit-round-robin service across tenant sub-queues.
    #: False is the ablation arm: global FIFO arrival order, tenants
    #: tracked but never isolated (``tenant_storm`` shows the damage).
    tenant_fairness: bool = True
    #: Hierarchical staging durability level: with a tiered backend,
    #: ``fsync`` returns once every extent the file staged has reached
    #: (or stranded short of) tiers 0..k and those tiers acknowledged
    #: their own fsync.  -1 (the default) means the deepest tier — full
    #: write-through durability.  0 returns at tier-0 (staging) speed.
    #: Ignored by single-backend mounts.
    fsync_tier: int = -1
    #: Incremental (delta) checkpointing: fsync the manifest file before
    #: a generation commits.  True (the default) makes the manifest the
    #: durable commit point of the chain; False is the ablation arm
    #: (cadence latency without the manifest barrier — a crash can then
    #: tear the manifest, which restore detects via its checksum).
    delta_manifest_sync: bool = True
    #: Pump workers migrating staged extents tier-to-tier in the
    #: background (per tiered mount, not per tier).
    tier_pump_threads: int = 1
    #: A pump worker that takes an extent opportunistically gathers up
    #: to this many queued extents contiguous in the same file bound for
    #: the same tier and moves them as one vectored op (the writeback
    #: batching idiom applied to migration).  1 disables gathering.
    tier_pump_batch_chunks: int = 1

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.chunk_size % (4 * KiB) != 0:
            raise ConfigError(
                f"chunk_size must be a multiple of the 4 KiB page size, got {self.chunk_size}"
            )
        if self.pool_size < self.chunk_size:
            raise ConfigError(
                f"pool_size ({self.pool_size}) must hold at least one chunk ({self.chunk_size})"
            )
        if self.io_threads < 1:
            raise ConfigError(f"io_threads must be >= 1, got {self.io_threads}")
        if self.work_queue_depth < 0:
            raise ConfigError(
                f"work_queue_depth must be >= 0, got {self.work_queue_depth}"
            )
        if self.write_through_threshold < 0:
            raise ConfigError(
                f"write_through_threshold must be >= 0, got {self.write_through_threshold}"
            )
        if self.breaker_threshold < 0:
            raise ConfigError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.writeback_batch_chunks < 1:
            raise ConfigError(
                f"writeback_batch_chunks must be >= 1, got {self.writeback_batch_chunks}"
            )
        if self.read_cache_chunks < 0:
            raise ConfigError(
                f"read_cache_chunks must be >= 0, got {self.read_cache_chunks}"
            )
        if self.readahead_chunks < 0:
            raise ConfigError(
                f"readahead_chunks must be >= 0, got {self.readahead_chunks}"
            )
        if self.readahead_chunks and not self.read_cache_chunks:
            raise ConfigError(
                "readahead_chunks requires a read cache (read_cache_chunks > 0)"
            )
        if self.readahead_adaptive and self.readahead_chunks < 1:
            raise ConfigError(
                "readahead_adaptive requires an initial window (readahead_chunks >= 1)"
            )
        if self.read_cache_chunks:
            if self.readahead_chunks >= self.read_cache_chunks:
                raise ConfigError(
                    f"read_cache_chunks ({self.read_cache_chunks}) must exceed "
                    f"readahead_chunks ({self.readahead_chunks}) so the window "
                    "cannot evict the chunk being served"
                )
            if self.read_cache_chunks > self.pool_chunks:
                raise ConfigError(
                    f"read_cache_chunks ({self.read_cache_chunks}) exceeds the "
                    f"pool ({self.pool_chunks} chunks) — the cache leases its "
                    "buffers from the shared pool"
                )
        if self.fsync_tier < -1:
            raise ConfigError(
                f"fsync_tier must be >= -1 (-1 = deepest tier), got {self.fsync_tier}"
            )
        if self.tier_pump_threads < 1:
            raise ConfigError(
                f"tier_pump_threads must be >= 1, got {self.tier_pump_threads}"
            )
        if self.tier_pump_batch_chunks < 1:
            raise ConfigError(
                f"tier_pump_batch_chunks must be >= 1, got {self.tier_pump_batch_chunks}"
            )
        # Delegates the retry-knob validation (attempts >= 1, backoff
        # bounds, jitter range) to RetryPolicy's own __post_init__.
        self.retry_policy()
        # Delegates tenant validation (unique names, reservations fit
        # the pool) to TenantRegistry's constructor.
        self.tenant_registry()

    def tenant_registry(self) -> TenantRegistry:
        """The :class:`TenantRegistry` these specs describe (validated)."""
        return TenantRegistry(self.tenants, pool_chunks=self.pool_chunks)

    def retry_policy(self) -> RetryPolicy:
        """The writeback :class:`RetryPolicy` these knobs describe."""
        return RetryPolicy(
            attempts=self.retry_attempts,
            backoff=self.retry_backoff,
            backoff_factor=self.retry_backoff_factor,
            backoff_max=self.retry_backoff_max,
            jitter=self.retry_jitter,
            attempt_timeout=self.retry_timeout,
            seed=self.retry_seed,
        )

    @property
    def pool_chunks(self) -> int:
        """How many whole chunks the pool holds (the pool is chunk-granular)."""
        return self.pool_size // self.chunk_size

    def with_(self, **changes: Any) -> "CRFSConfig":
        """Return a copy with the given fields replaced (validated)."""
        return replace(self, **changes)

    @classmethod
    def from_sizes(
        cls,
        chunk: str | int = "4M",
        pool: str | int = "16M",
        io_threads: int = 4,
        **kw: Any,
    ) -> "CRFSConfig":
        """Build a config from human-readable size strings."""
        return cls(
            chunk_size=parse_size(chunk),
            pool_size=parse_size(pool),
            io_threads=io_threads,
            **kw,
        )


#: The paper's chosen operating point (Section V-B): 4 MiB chunks,
#: 16 MiB pool, 4 IO threads.
DEFAULT_CONFIG = CRFSConfig()
