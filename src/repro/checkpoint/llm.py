"""The LLM checkpoint personality.

BLCR traffic (Table I) is one process image dumped whole per epoch; LLM
training traffic is the opposite shape: a handful of huge tensor-shard
files, checkpointed at every iteration boundary, with most bytes
unchanged between iterations (the optimizer touches a slice of the
state).  :class:`LLMCheckpointPlan` captures that personality as pure
bookkeeping — shard paths, per-iteration cadence, and a deterministic
dirty-chunk draw at a configurable dirty fraction — which the delta
kernel (:mod:`repro.pipeline.delta`) turns into incremental write
plans on either plane.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MiB
from ..util.rng import rng_for

__all__ = ["LLMCheckpointPlan"]


@dataclass(frozen=True)
class LLMCheckpointPlan:
    """Cadence-checkpoint shape for one training job.

    ``dirty_chunks`` draws are pure functions of ``(seed, shard,
    iteration)`` — two runs of the same plan at the same seed declare
    identical dirty sets on either plane.
    """

    #: How many tensor-shard files the job checkpoints ("few huge
    #: files", not one-per-rank).
    shards: int = 2
    #: Logical bytes per shard file.
    shard_bytes: int = 4 * MiB
    #: Checkpoint generations (iteration boundaries) per run.
    iterations: int = 8
    #: Fraction of each shard's chunks the optimizer dirtied since the
    #: last iteration (1.0 = full rewrite every iteration).
    dirty_fraction: float = 0.25
    #: Shard files are named ``<path_prefix><shard>.ckpt``.
    path_prefix: str = "/shard"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_bytes < 1:
            raise ValueError(f"shard_bytes must be >= 1, got {self.shard_bytes}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not 0.0 < self.dirty_fraction <= 1.0:
            raise ValueError(
                f"dirty_fraction must be in (0, 1], got {self.dirty_fraction}"
            )

    def shard_path(self, shard: int) -> str:
        return f"{self.path_prefix}{shard}.ckpt"

    def nchunks(self, chunk_size: int) -> int:
        return (self.shard_bytes + chunk_size - 1) // chunk_size

    def dirty_count(self, chunk_size: int) -> int:
        """Chunks dirtied per post-gen-0 iteration (at least one — an
        iteration that changed nothing would not checkpoint)."""
        return max(1, round(self.dirty_fraction * self.nchunks(chunk_size)))

    def dirty_chunks(
        self, seed: int, shard: int, iteration: int, chunk_size: int
    ) -> tuple[int, ...] | None:
        """The dirty-chunk declaration for one (shard, iteration).

        Iteration 0 returns ``None`` — the first checkpoint of a chain
        is always a full dump.  Later iterations draw a deterministic
        ``dirty_fraction`` subset of the shard's chunks.
        """
        if iteration == 0:
            return None
        rng = rng_for(
            seed, f"llm/{self.path_prefix}/shard{shard}/iter{iteration}"
        )
        n = self.nchunks(chunk_size)
        picks = rng.choice(n, size=min(self.dirty_count(chunk_size), n), replace=False)
        return tuple(sorted(int(i) for i in picks))
