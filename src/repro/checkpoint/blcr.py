"""BLCR-like checkpoint writer (functional plane).

Serializes a :class:`~repro.checkpoint.image.ProcessImage` through any
file-like object exposing ``write(bytes)`` — a :class:`~repro.core.CRFSFile`,
a plain ``open(..., "wb")`` handle, anything.  The write pattern mimics
what the paper profiles out of BLCR (Table I): a tiny header, a burst of
small fixed-size metadata records (registers, descriptors, signal
state), then per-region [small header write + raw data writes].

Large regions are emitted in bounded data writes (BLCR walks VM areas),
so the stream of sizes hitting the filesystem is many-small +
some-medium + few-large — the traffic CRFS aggregates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..units import KiB, MiB
from .image import ProcessImage

__all__ = ["BLCRWriter", "CheckpointStats", "MAGIC", "VERSION"]

MAGIC = b"CRCK"
VERSION = 1

#: Fixed-size per-process metadata records written up front (register
#: file, fpu state, descriptor table entries...), sized like the <64 B
#: writes dominating Table I's count column.
_N_METADATA_RECORDS = 48
_METADATA_RECORD = 40  # bytes each

#: Max bytes per region-data write call (BLCR's vm-area walk granularity).
_DATA_WRITE_MAX = 8 * MiB


@dataclass
class CheckpointStats:
    """What one checkpoint did — sizes of every write() issued."""

    write_sizes: list[int] = field(default_factory=list)
    total_bytes: int = 0
    regions: int = 0

    @property
    def write_count(self) -> int:
        return len(self.write_sizes)


class BLCRWriter:
    """Checkpoint serializer."""

    def __init__(self, data_write_max: int = _DATA_WRITE_MAX):
        if data_write_max < 4 * KiB:
            raise ValueError("data_write_max below a page makes no sense")
        self.data_write_max = data_write_max

    def checkpoint(self, image: ProcessImage, out) -> CheckpointStats:
        """Write ``image`` to ``out`` (file-like); returns write stats."""
        stats = CheckpointStats()

        def emit(payload: bytes) -> None:
            out.write(payload)
            stats.write_sizes.append(len(payload))
            stats.total_bytes += len(payload)

        # -- file header
        emit(MAGIC + struct.pack("<HHiiI", VERSION, 0, image.rank, image.pid,
                                 len(image.regions)))
        # -- process metadata records (registers, fds, ... as small writes)
        for i in range(_N_METADATA_RECORDS):
            emit(struct.pack("<I", i) + bytes(_METADATA_RECORD - 4))
        # -- regions
        for region in image.iter_regions():
            stats.regions += 1
            name = region.name.encode("utf-8")[:255]
            emit(
                struct.pack("<HQQ", len(name), region.start, region.size) + name
            )
            offset = 0
            while offset < region.size:
                end = min(offset + self.data_write_max, region.size)
                emit(region.data[offset:end])
                offset = end
        return stats
