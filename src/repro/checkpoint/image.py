"""Synthetic process images for the functional plane.

A :class:`ProcessImage` stands in for what BLCR snapshots: the register
file / descriptor metadata plus the process's VM regions (text, data,
heap, stack, and — for MPI processes — communication buffers, which is
why InfiniBand stacks produce bigger images than TCP ones, paper
Table II).

Region contents are generated deterministically from a seed so restart
verification is exact and images never need to be kept around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..units import KiB
from ..util.rng import rng_for

__all__ = ["MemoryRegion", "ProcessImage"]


@dataclass(frozen=True)
class MemoryRegion:
    """One VM region: name, virtual start address, byte contents."""

    name: str
    start: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


#: (region name, share of the image) — a plausible MPI-process layout:
#: a few big segments plus assorted small mappings.
_LAYOUT = (
    ("text", 0.02),
    ("data", 0.08),
    ("heap", 0.55),
    ("comm-buffers", 0.20),
    ("mmap-libs", 0.08),
    ("stack", 0.04),
    ("misc", 0.03),
)


@dataclass
class ProcessImage:
    """A process snapshot: identity + regions."""

    rank: int
    pid: int
    regions: list[MemoryRegion] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.regions)

    @classmethod
    def synthesize(cls, rank: int, image_size: int, seed: int = 0) -> "ProcessImage":
        """Build a deterministic image of ~``image_size`` bytes for ``rank``.

        Content is pseudo-random (incompressible, like real memory) and
        fully reproducible from (rank, seed).
        """
        rng = rng_for(seed, f"image/rank{rank}")
        regions: list[MemoryRegion] = []
        addr = 0x400000
        remaining = image_size
        for i, (name, share) in enumerate(_LAYOUT):
            if remaining <= 0:
                break
            last = i == len(_LAYOUT) - 1
            size = remaining if last else min(remaining, max(1, int(image_size * share)))
            # page-align all but the final region
            if not last and size >= 4 * KiB:
                size -= size % (4 * KiB)
            data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            regions.append(MemoryRegion(name=name, start=addr, data=data))
            addr += size + 64 * KiB  # guard gap
            remaining -= size
        return cls(rank=rank, pid=10_000 + rank, regions=regions)

    def iter_regions(self) -> Iterator[MemoryRegion]:
        return iter(self.regions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessImage):
            return NotImplemented
        return (
            self.rank == other.rank
            and self.pid == other.pid
            and self.regions == other.regions
        )
