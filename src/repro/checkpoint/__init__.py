"""BLCR-like checkpoint substrate.

* :mod:`repro.checkpoint.sizedist` — the write-size mix of paper
  Table I, fit as a sampleable distribution that scales to any process
  image size (the traffic model that drives the timing plane);
* :mod:`repro.checkpoint.image` — synthetic process images (VM regions
  + metadata) for the functional plane;
* :mod:`repro.checkpoint.blcr` — a checkpoint writer that serializes an
  image through any file-like object with BLCR's small-header /
  region-data write pattern;
* :mod:`repro.checkpoint.restart` — the restart reader: restores and
  verifies an image from its checkpoint file.
"""

from .sizedist import BucketSpec, TABLE1_BUCKETS, WriteSizeDistribution
from .image import MemoryRegion, ProcessImage
from .blcr import BLCRWriter, CheckpointStats
from .llm import LLMCheckpointPlan
from .manifest import (
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    Manifest,
    generation_path,
    manifest_path,
)
from .restart import restore_image, restore_via_mount, verify_roundtrip, RestartError

__all__ = [
    "BucketSpec",
    "TABLE1_BUCKETS",
    "WriteSizeDistribution",
    "MemoryRegion",
    "ProcessImage",
    "BLCRWriter",
    "CheckpointStats",
    "LLMCheckpointPlan",
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "Manifest",
    "generation_path",
    "manifest_path",
    "restore_image",
    "restore_via_mount",
    "verify_roundtrip",
    "RestartError",
]
