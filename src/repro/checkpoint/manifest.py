"""The delta-checkpoint manifest format (``repro.checkpoint.manifest``).

An incremental checkpoint chain stores each generation's dirty chunks
in its own generation file (``<path>.g<N>``) and records, per chunk of
the *logical* image, which generation owns the current bytes.  That
ownership map is the manifest (``<path>.manifest``): a canonical-JSON
body followed by its SHA-256, so a torn or stale manifest write fails
validation loudly (:class:`~repro.errors.ManifestError`) instead of
silently reassembling the wrong generation.

The module is deliberately dependency-light (json + hashlib + the error
hierarchy) so the plane-agnostic delta kernel
(:mod:`repro.pipeline.delta`) can import it without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..errors import ManifestError

__all__ = [
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "Manifest",
    "generation_path",
    "manifest_path",
]

MANIFEST_MAGIC = "repro.checkpoint.manifest"
MANIFEST_VERSION = 1


def generation_path(path: str, generation: int) -> str:
    """The generation file holding ``generation``'s dirty chunks."""
    return f"{path}.g{generation}"


def manifest_path(path: str) -> str:
    """The manifest file beside the logical checkpoint path."""
    return f"{path}.manifest"


@dataclass(frozen=True)
class Manifest:
    """Chunk-ownership map for one logical checkpoint image.

    ``owners[i]`` is the generation whose generation file holds chunk
    ``i``'s current bytes, at that chunk's logical offset.  The final
    chunk may be partial (``logical_size`` clips it).
    """

    path: str
    generation: int
    chunk_size: int
    logical_size: int
    owners: tuple[int, ...]

    @property
    def nchunks(self) -> int:
        return len(self.owners)

    def chunk_length(self, index: int) -> int:
        """Chunk ``index``'s length, clipped at the logical image end."""
        return min(self.chunk_size, self.logical_size - index * self.chunk_size)

    def owner_runs(self) -> list[tuple[int, int, int, int]]:
        """Contiguous same-owner chunk runs, as ``(generation,
        file_offset, length, chunks)`` — the reassembly read plan
        restore executes (one read per run, served through the normal
        read path of the owning generation file)."""
        runs: list[tuple[int, int, int, int]] = []
        i = 0
        while i < self.nchunks:
            gen = self.owners[i]
            start = i
            length = 0
            while i < self.nchunks and self.owners[i] == gen:
                length += self.chunk_length(i)
                i += 1
            runs.append((gen, start * self.chunk_size, length, i - start))
        return runs

    def to_bytes(self) -> bytes:
        """Canonical serialized form: one JSON line + its SHA-256 line."""
        body = json.dumps(
            {
                "magic": MANIFEST_MAGIC,
                "version": MANIFEST_VERSION,
                "path": self.path,
                "generation": self.generation,
                "chunk_size": self.chunk_size,
                "logical_size": self.logical_size,
                "owners": list(self.owners),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        digest = hashlib.sha256(body).hexdigest().encode()
        return body + b"\n" + digest + b"\n"

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Manifest":
        """Parse and validate; any tear or mismatch raises loudly."""
        lines = raw.split(b"\n")
        if len(lines) < 3 or lines[2] != b"" or not lines[0] or not lines[1]:
            raise ManifestError("torn manifest: expected body + checksum lines")
        body, digest = lines[0], lines[1]
        if hashlib.sha256(body).hexdigest().encode() != digest:
            raise ManifestError("manifest checksum mismatch (torn write?)")
        try:
            doc = json.loads(body)
        except ValueError as exc:
            raise ManifestError(f"manifest body is not valid JSON: {exc}") from exc
        if doc.get("magic") != MANIFEST_MAGIC:
            raise ManifestError(f"bad manifest magic: {doc.get('magic')!r}")
        if doc.get("version") != MANIFEST_VERSION:
            raise ManifestError(f"unsupported manifest version: {doc.get('version')!r}")
        try:
            manifest = cls(
                path=doc["path"],
                generation=doc["generation"],
                chunk_size=doc["chunk_size"],
                logical_size=doc["logical_size"],
                owners=tuple(doc["owners"]),
            )
        except KeyError as exc:
            raise ManifestError(f"manifest missing field {exc}") from exc
        manifest._validate_shape()
        return manifest

    def _validate_shape(self) -> None:
        if self.chunk_size <= 0:
            raise ManifestError(f"bad chunk_size {self.chunk_size}")
        if self.logical_size < 0:
            raise ManifestError(f"bad logical_size {self.logical_size}")
        expected = (self.logical_size + self.chunk_size - 1) // self.chunk_size
        if len(self.owners) != expected:
            raise ManifestError(
                f"owner map has {len(self.owners)} chunks, logical size "
                f"{self.logical_size} at chunk {self.chunk_size} needs {expected}"
            )
        for gen in self.owners:
            if not isinstance(gen, int) or gen < 0 or gen > self.generation:
                raise ManifestError(
                    f"owner {gen!r} outside generations 0..{self.generation}"
                )
