"""The checkpoint write-size distribution of paper Table I.

The paper profiles BLCR checkpointing LU.C.64 to ext3: per node, 8
processes issue ~7800 write() calls for 8 x 23 MB of snapshot data, with
a very characteristic mix — half the *calls* are tiny (<64 B) register /
descriptor records, a third are page-sized region fragments (4-16 KiB)
carrying only ~11% of the data, and a handful of giant (>1 MiB) writes
carry 61% of the bytes.

:class:`WriteSizeDistribution` reproduces that mix for any process-image
size: bucket *count* fractions are preserved; bucket *data* fractions
are preserved by scaling mean write sizes within each bucket; the
open-ended >1 MiB bucket absorbs the residual so the stream sums to the
image size exactly.  The total call count scales sublinearly with image
size (regions grow faster than they multiply), anchored to the paper's
(23 MB, ~975 calls/process) observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..units import KiB, MB, MiB

__all__ = ["BucketSpec", "TABLE1_BUCKETS", "WriteSizeDistribution"]


@dataclass(frozen=True)
class BucketSpec:
    """One Table I row: [lo, hi) bytes, share of calls, share of data."""

    lo: int
    hi: int  # 0 = open-ended
    write_frac: float
    data_frac: float

    @property
    def label(self) -> str:
        def fmt(n: int) -> str:
            if n >= MiB:
                return f"{n // MiB}M"
            if n >= KiB:
                return f"{n // KiB}K"
            return str(n)

        if self.hi == 0:
            return f"> {fmt(self.lo)}"
        return f"{fmt(self.lo)}-{fmt(self.hi)}"


#: Paper Table I (LU.C.64 written to ext3), normalized to fractions.
TABLE1_BUCKETS: tuple[BucketSpec, ...] = (
    BucketSpec(0, 64, 0.5086, 0.0004),
    BucketSpec(64, 256, 0.0061, 0.0000),
    BucketSpec(256, 1 * KiB, 0.0025, 0.0001),
    BucketSpec(1 * KiB, 4 * KiB, 0.0946, 0.0153),
    BucketSpec(4 * KiB, 16 * KiB, 0.3649, 0.1136),
    BucketSpec(16 * KiB, 64 * KiB, 0.0074, 0.0077),
    BucketSpec(64 * KiB, 256 * KiB, 0.0049, 0.0379),
    BucketSpec(256 * KiB, 512 * KiB, 0.0025, 0.0358),
    BucketSpec(512 * KiB, 1 * MiB, 0.0061, 0.1772),
    BucketSpec(1 * MiB, 0, 0.0025, 0.6121),
)

#: The profiling anchor: a 23 MB image produced ~975 writes (7800 per
#: 8-process node).
REF_IMAGE_BYTES = 23 * MB
REF_WRITE_COUNT = 975


class WriteSizeDistribution:
    """Sampleable BLCR write-stream model."""

    def __init__(
        self,
        buckets: Sequence[BucketSpec] = TABLE1_BUCKETS,
        ref_image: int = REF_IMAGE_BYTES,
        ref_writes: int = REF_WRITE_COUNT,
        count_exponent: float = 0.45,
    ):
        total_w = sum(b.write_frac for b in buckets)
        total_d = sum(b.data_frac for b in buckets)
        if not 0.98 <= total_w <= 1.02:
            raise ValueError(f"write fractions sum to {total_w}, expected ~1")
        if not 0.98 <= total_d <= 1.02:
            raise ValueError(f"data fractions sum to {total_d}, expected ~1")
        # renormalize exactly
        self.buckets = tuple(
            BucketSpec(b.lo, b.hi, b.write_frac / total_w, b.data_frac / total_d)
            for b in buckets
        )
        self.ref_image = ref_image
        self.ref_writes = ref_writes
        self.count_exponent = count_exponent

    # -- scaling -----------------------------------------------------------

    def write_count(self, image_size: int) -> int:
        """Total write() calls for an image of ``image_size`` bytes.

        Sublinear: big applications have bigger regions, not
        proportionally more of them.
        """
        if image_size <= 0:
            return 0
        scale = (image_size / self.ref_image) ** self.count_exponent
        return max(8, int(round(self.ref_writes * scale)))

    def bucket_counts(self, image_size: int) -> list[int]:
        """Per-bucket write counts (largest-remainder apportionment)."""
        n = self.write_count(image_size)
        raw = [b.write_frac * n for b in self.buckets]
        counts = [int(x) for x in raw]
        remainders = sorted(
            range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        short = n - sum(counts)
        for i in remainders[:short]:
            counts[i] += 1
        # every data-carrying bucket needs at least one write so its data
        # share has somewhere to go
        for i, b in enumerate(self.buckets):
            if b.data_frac > 0.01 and counts[i] == 0:
                counts[i] = 1
        return counts

    # -- stream generation ----------------------------------------------------

    def plan(self, image_size: int, rng: np.random.Generator) -> list[int]:
        """A full write-size stream for one process image.

        Returns write sizes in BLCR-like order (header records leading,
        small metadata writes interleaved before data writes); sizes sum
        to ``image_size`` exactly; per-bucket count and byte shares track
        Table I.
        """
        if image_size <= 0:
            return []
        counts = self.bucket_counts(image_size)
        sizes_per_bucket: list[list[int]] = []
        assigned = 0
        open_bucket = None
        for i, (b, cnt) in enumerate(zip(self.buckets, counts)):
            if cnt == 0:
                sizes_per_bucket.append([])
                continue
            if b.hi == 0:
                open_bucket = i
                sizes_per_bucket.append([])  # filled with the residual below
                continue
            target = b.data_frac * image_size
            mean = target / cnt
            lo, hi = max(b.lo, 1), b.hi - 1
            mean = min(max(mean, lo), hi)
            # uniform spread around the mean, clamped into the bucket
            spread = min(mean - lo, hi - mean)
            if spread > 0:
                vals = rng.uniform(mean - spread, mean + spread, size=cnt)
            else:
                vals = np.full(cnt, mean)
            sizes = [int(max(lo, min(hi, v))) for v in vals]
            sizes_per_bucket.append(sizes)
            assigned += sum(sizes)
        residual = image_size - assigned
        if open_bucket is not None:
            cnt = max(counts[open_bucket], 1)
            big_lo = self.buckets[open_bucket].lo
            if residual >= cnt * (big_lo + 1):
                base = residual // cnt
                sizes = [base] * cnt
                sizes[-1] += residual - base * cnt
                sizes_per_bucket[open_bucket] = sizes
                residual = 0
            # else: image too small for >1 MiB writes; spill below
        if residual != 0:
            # Fold any remainder into (or out of) the largest closed bucket
            # write so the stream still sums exactly.
            sizes_per_bucket = self._absorb_residual(sizes_per_bucket, residual)
        return self._order_stream(sizes_per_bucket, rng)

    def _absorb_residual(
        self, sizes_per_bucket: list[list[int]], residual: int
    ) -> list[list[int]]:
        # find the bucket with the largest write to adjust
        best = None
        for i, sizes in enumerate(sizes_per_bucket):
            for j, s in enumerate(sizes):
                if best is None or s > sizes_per_bucket[best[0]][best[1]]:
                    best = (i, j)
        if best is None:
            # no writes at all: emit one write of the residual
            if residual > 0:
                sizes_per_bucket[-1] = [residual]
            return sizes_per_bucket
        i, j = best
        adjusted = sizes_per_bucket[i][j] + residual
        if adjusted <= 0:
            # shrink across writes (degenerate tiny images)
            flat = [s for sizes in sizes_per_bucket for s in sizes]
            total = sum(flat) + residual
            return [[max(total, 0)]] if total > 0 else [[]]
        sizes_per_bucket[i][j] = adjusted
        return sizes_per_bucket

    def _order_stream(
        self, sizes_per_bucket: list[list[int]], rng: np.random.Generator
    ) -> list[int]:
        """BLCR-like ordering: a burst of small header records up front,
        then (small-metadata, data...) alternation, big regions last-ish."""
        smalls: list[int] = []
        datas: list[int] = []
        for b, sizes in zip(self.buckets, sizes_per_bucket):
            if b.hi != 0 and b.hi <= 1 * KiB:
                smalls.extend(sizes)
            else:
                datas.extend(sizes)
        rng.shuffle(datas)
        # leading header burst: ~10% of small records
        lead = len(smalls) // 10
        stream = smalls[:lead]
        rest_smalls = smalls[lead:]
        # interleave the remaining small records among the data writes
        if datas:
            per_data = len(rest_smalls) / len(datas)
            acc = 0.0
            si = 0
            for d in datas:
                acc += per_data
                while si < len(rest_smalls) and acc >= 1.0:
                    stream.append(rest_smalls[si])
                    si += 1
                    acc -= 1.0
                stream.append(d)
            stream.extend(rest_smalls[si:])
        else:
            stream.extend(rest_smalls)
        return stream

    # -- introspection -----------------------------------------------------------

    def describe(self, image_size: int, rng: np.random.Generator) -> dict:
        """Count/data shares of a generated stream (for tests/reports)."""
        stream = self.plan(image_size, rng)
        arr = np.asarray(stream)
        out = {}
        for b in self.buckets:
            hi = b.hi if b.hi else np.inf
            mask = (arr >= b.lo) & (arr < hi)
            out[b.label] = {
                "count": int(mask.sum()),
                "count_frac": float(mask.sum() / len(arr)) if len(arr) else 0.0,
                "data_frac": float(arr[mask].sum() / arr.sum()) if arr.sum() else 0.0,
            }
        return out
