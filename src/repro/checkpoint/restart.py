"""Restart: read a checkpoint file back into a ProcessImage.

Paper Section V-F: CRFS forwards reads untouched and never changes file
layout, so "an application can be restarted directly from the back-end
filesystem, without the need to mount CRFS."  The tests exercise exactly
that: checkpoint through CRFS, restart straight from the backend.

Restarting *through* a mount also works (:func:`restore_via_mount`) —
with ``read_cache_chunks`` configured the image streams through the
restart readahead cache, prefetching ahead of the parser; otherwise the
reads are the paper's pure passthrough.
"""

from __future__ import annotations

import struct

from ..errors import CRFSError
from .blcr import MAGIC, VERSION
from .image import MemoryRegion, ProcessImage

__all__ = ["RestartError", "restore_image", "restore_via_mount", "verify_roundtrip"]


class RestartError(CRFSError):
    """Corrupt or truncated checkpoint file."""


def _read_exact(f, n: int) -> bytes:
    data = f.read(n)
    if len(data) != n:
        raise RestartError(f"truncated checkpoint: wanted {n} bytes, got {len(data)}")
    return data


def restore_image(f) -> ProcessImage:
    """Parse a checkpoint from a file-like object (``read(n)``)."""
    header = _read_exact(f, len(MAGIC) + struct.calcsize("<HHiiI"))
    if header[: len(MAGIC)] != MAGIC:
        raise RestartError("bad magic: not a checkpoint file")
    version, _pad, rank, pid, nregions = struct.unpack_from("<HHiiI", header, len(MAGIC))
    if version != VERSION:
        raise RestartError(f"unsupported checkpoint version {version}")
    # skip metadata records
    from .blcr import _METADATA_RECORD, _N_METADATA_RECORDS

    _read_exact(f, _N_METADATA_RECORDS * _METADATA_RECORD)
    regions: list[MemoryRegion] = []
    for _ in range(nregions):
        rec = _read_exact(f, struct.calcsize("<HQQ"))
        name_len, start, size = struct.unpack("<HQQ", rec)
        name = _read_exact(f, name_len).decode("utf-8")
        data = _read_exact(f, size)
        regions.append(MemoryRegion(name=name, start=start, data=data))
    return ProcessImage(rank=rank, pid=pid, regions=regions)


def restore_via_mount(fs, path: str) -> ProcessImage:
    """Restart through a CRFS mount instead of the raw backend.

    The handle's cursor ``read()`` is exactly the file-like surface
    :func:`restore_image` wants; whether the bytes come through the
    readahead cache or the passthrough is the mount's configuration
    (``read_cache_chunks``), not the caller's concern.
    """
    with fs.open(path) as f:
        return restore_image(f)


def verify_roundtrip(original: ProcessImage, restored: ProcessImage) -> None:
    """Raise RestartError on any divergence (used by tests and examples)."""
    if restored.rank != original.rank or restored.pid != original.pid:
        raise RestartError(
            f"identity mismatch: rank {restored.rank}/pid {restored.pid} "
            f"!= rank {original.rank}/pid {original.pid}"
        )
    if len(restored.regions) != len(original.regions):
        raise RestartError(
            f"region count mismatch: {len(restored.regions)} != {len(original.regions)}"
        )
    for got, want in zip(restored.regions, original.regions):
        if got != want:
            raise RestartError(f"region {want.name!r} diverged after restart")
