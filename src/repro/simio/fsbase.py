"""Timing-plane filesystem interface.

A :class:`SimFilesystem` is one node's *client view* of a filesystem:
``write`` models the cost of an application write() syscall (and any
cache/throttle coupling), ``close``/``fsync`` model the filesystem's
flush semantics.  Checkpoint data in the timing plane is a stream of
sizes — sequential append is the paper's workload, so files track only
an append position.

All methods that take time are generators to be driven by a simulated
process (``yield from fs.write(f, n)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..sim import Simulator
from .params import HardwareParams

__all__ = ["SimFile", "SimFilesystem", "jittered"]

PAGE = 4096


def jittered(rng: np.random.Generator, value: float, sigma: float) -> float:
    """Lognormal service-time jitter with unit mean."""
    if sigma <= 0:
        return value
    return value * float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))


class SimFile:
    """An open file in the timing plane (sequential append stream)."""

    __slots__ = ("path", "pos", "stream", "luck", "bulk_writer")

    def __init__(self, path: str):
        self.path = path
        self.pos = 0  # bytes appended so far
        self.stream = path  # identity used for dirty tracking / traces
        #: Per-file fortune multiplier on interference stalls: where the
        #: file's pages land relative to the writeback scan, NUMA/core
        #: placement of its writer... drawn at open().
        self.luck = 1.0
        #: Set for CRFS's IO threads: a few dedicated writers issuing
        #: large aligned chunk writes dodge the page-level collisions
        #: (partial re-dirtying, lock_page against writeback) that many
        #: concurrent small-writers suffer.
        self.bulk_writer = False

    def new_pages(self, nbytes: int) -> int:
        """Pages newly dirtied by appending ``nbytes`` at the current
        position (a sub-page append into an already-dirty page is free —
        how Table I's tiny writes stay cheap)."""
        before = -(-self.pos // PAGE) if self.pos else 0
        after = -(-(self.pos + nbytes) // PAGE)
        return max(0, after - before)


class SimFilesystem(ABC):
    """One node's client view of a (modelled) filesystem."""

    name = "simfs"

    def __init__(self, sim: Simulator, hw: HardwareParams, rng: np.random.Generator):
        self.sim = sim
        self.hw = hw
        self.rng = rng
        self.total_writes = 0
        self.total_bytes = 0
        self.total_reads = 0

    def open(self, path: str) -> SimFile:
        f = SimFile(path)
        sigma = self.hw.per_file_luck_sigma
        if sigma > 0:
            # clipped so no single file becomes an implausible outlier
            f.luck = float(
                np.clip(self.rng.lognormal(mean=0.0, sigma=sigma), 0.65, 1.7)
            )
        return f

    def write(self, f: SimFile, nbytes: int):
        """Generator: one write() of ``nbytes`` appended to ``f``."""
        self.total_writes += 1
        self.total_bytes += nbytes
        yield from self._write(f, nbytes)
        f.pos += nbytes

    @abstractmethod
    def _write(self, f: SimFile, nbytes: int):
        """Filesystem-specific write cost (generator)."""

    def writev(self, f: SimFile, sizes: "list[int]"):
        """Generator: one vectored write of ``sizes`` appended to ``f``.

        The timing-plane twin of ``Backend.pwritev``.  The default loops
        over :meth:`write` — per-segment cost, no coalescing win — so
        every model supports it; filesystems whose clients genuinely
        gather (one RPC / one syscall for the whole batch) override it.
        """
        for nbytes in sizes:
            yield from self.write(f, nbytes)

    def read(self, f: SimFile, nbytes: int):
        """Generator: one sequential read() of ``nbytes`` (restart path).

        Default: syscall cost + the filesystem-specific read transfer.
        """
        self.total_reads += 1
        yield self.sim.timeout(self.hw.syscall_overhead)
        yield from self._read(f, nbytes)

    def _read(self, f: SimFile, nbytes: int):
        """Filesystem-specific read cost; default is free (override)."""
        return
        yield  # pragma: no cover - makes this a generator

    @abstractmethod
    def close(self, f: SimFile):
        """Generator: close-time cost (flush semantics differ per fs)."""

    @abstractmethod
    def fsync(self, f: SimFile):
        """Generator: full durability flush for this file."""
