"""Null backing filesystem (timing plane) — paper Figure 5's rig.

"Once a filled chunk is picked up by an IO thread it is discarded
without being written to a back-end filesystem.  With this we can
measure the raw performance of CRFS to aggregate write streams,
precluding the impacts of different back-end filesystems."

A chunk write costs only a small fixed handling overhead (queue pop,
metadata update, chunk recycle).
"""

from __future__ import annotations

import numpy as np

from ..sim import Simulator
from .fsbase import SimFile, SimFilesystem
from .params import HardwareParams

__all__ = ["NullSimFilesystem"]

#: Fixed cost for an IO thread to process and discard one chunk.
CHUNK_HANDLING_COST = 45e-6


class NullSimFilesystem(SimFilesystem):
    """Discards writes at a fixed per-call cost."""

    name = "null"

    def __init__(
        self,
        sim: Simulator,
        hw: HardwareParams,
        rng: np.random.Generator,
        op_cost: float = CHUNK_HANDLING_COST,
    ):
        super().__init__(sim, hw, rng)
        self.op_cost = op_cost

    def _write(self, f: SimFile, nbytes: int):
        yield self.sim.timeout(self.op_cost)

    def writev(self, f: SimFile, sizes: "list[int]"):
        # One gathered discard: a single handling cost for the whole
        # batch — the per-call overhead coalescing exists to amortise.
        total = sum(sizes)
        self.total_writes += 1
        self.total_bytes += total
        yield self.sim.timeout(self.op_cost)
        f.pos += total

    def close(self, f: SimFile):
        yield self.sim.timeout(self.hw.syscall_overhead)

    def fsync(self, f: SimFile):
        yield self.sim.timeout(self.hw.syscall_overhead)
