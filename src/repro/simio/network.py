"""Network link model.

A :class:`Link` is a processor-sharing pipe with a propagation RTT:
``yield from link.send(nbytes)`` costs half-RTT plus the bandwidth-shared
transfer time.  Used for the IPoIB path to the NFS server and the IB
path to the Lustre OSTs.
"""

from __future__ import annotations

from ..sim import SharedBandwidth, Simulator

__all__ = ["Link"]


class Link:
    """Shared-bandwidth link with per-message latency."""

    def __init__(self, sim: Simulator, bandwidth: float, rtt: float, name: str = "link"):
        self.sim = sim
        self.bandwidth = bandwidth
        self.rtt = rtt
        self.name = name
        self._pipe = SharedBandwidth(sim, bandwidth, name=name)
        self.total_messages = 0

    def send(self, nbytes: int):
        """Generator: move one message of ``nbytes`` across the link."""
        self.total_messages += 1
        if self.rtt:
            yield self.sim.timeout(self.rtt / 2)
        yield self._pipe.transfer(nbytes)

    def roundtrip(self, nbytes: int):
        """Generator: request/response exchange carrying ``nbytes``."""
        self.total_messages += 1
        yield self.sim.timeout(self.rtt / 2)
        yield self._pipe.transfer(nbytes)
        yield self.sim.timeout(self.rtt / 2)

    @property
    def total_bytes(self) -> float:
        return self._pipe.total_bytes
