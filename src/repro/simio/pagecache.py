"""Page-cache model: dirty accounting, background flusher, throttling.

Three behaviours of the Linux page cache shape the paper's results and
are modelled here:

1. **Absorption** — writes land in memory and return; small checkpoints
   finish at memory speed (Table I: sub-1 KiB writes cost ~nothing).
2. **Background writeback** — above the background threshold (and on
   ext3's periodic journal commits) a flusher pushes dirty extents out
   *during* the checkpoint; its disk activity is what blktrace sees
   (Fig 10) and it inflates foreground VFS costs while active (the
   interference that spreads per-process completion times, Fig 3).
3. **Throttling** — above the dirty limit, writers block until the
   flusher drains below it (balance_dirty_pages).  Large checkpoints
   (class D) hit this and run at backing-store speed — the regime where
   CRFS's advantage compresses to its layout/op-count effects.

The cache is generic over a *backing store* (local disk, NFS server
pipeline, Lustre OSTs): the backing allocates placement for dirty data
(:meth:`WritebackTarget.locate`) and performs extent writeback
(:meth:`WritebackTarget.write_extent`).  Placement happens at dirty time,
so concurrent writers interleave their allocations exactly as the paper's
blktrace shows.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Optional, Protocol

from ..sim import SimEvent, Simulator
from .params import HardwareParams

__all__ = ["PageCache", "DirtyExtent", "WritebackTarget", "ReservingAllocator"]


@dataclass
class DirtyExtent:
    """A contiguous run of dirty bytes with its backing placement.

    ``fragments`` counts how many write() calls built the extent — the
    NFS server model prices congested RPC handling by fragment density
    (runs assembled from many sub-wsize dirty ranges are expensive; one
    big write or a CRFS chunk is cheap).
    """

    stream: str
    block: int
    nbytes: int
    nblocks: int = 0
    fragments: int = 1

    def __post_init__(self) -> None:
        if self.nblocks == 0:
            self.nblocks = max(1, -(-self.nbytes // 4096))

    @property
    def fragment_density(self) -> float:
        """Fragments per MiB of extent."""
        return self.fragments / max(self.nbytes / (1024 * 1024), 1e-9)


class WritebackTarget(Protocol):
    """What a PageCache writes back to."""

    def locate(self, stream: str, nbytes: int) -> int:
        """Choose the placement (block address) for new dirty bytes."""

    def write_extent(self, extent: DirtyExtent):
        """Generator: push one extent to stable storage."""


class ReservingAllocator:
    """Extent allocator with per-stream reservation windows.

    Mirrors ext3's per-inode block reservations: each file grabs a window
    of contiguous blocks and satisfies its appends from it, so a file's
    data stays contiguous in runs of ``reservation`` bytes even while
    other files allocate concurrently.  Allocations larger than the
    window (CRFS chunks) are contiguous in full.
    """

    def __init__(self, block_size: int, reservation: int, start_block: int = 2048):
        self.block_size = block_size
        self.reservation = max(reservation, block_size)
        self._next = start_block
        self._windows: dict[str, tuple[int, int]] = {}  # stream -> (next, left)

    def _blocks(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.block_size))

    def alloc(self, stream: str, nbytes: int) -> int:
        nblocks = self._blocks(nbytes)
        nxt, left = self._windows.get(stream, (0, 0))
        if nblocks > left:
            # new reservation window from the global bump pointer
            window_blocks = max(self._blocks(self.reservation), nblocks)
            nxt = self._next
            self._next += window_blocks
            left = window_blocks
        block = nxt
        self._windows[stream] = (nxt + nblocks, left - nblocks)
        return block

    @property
    def next_block(self) -> int:
        return self._next


class PageCache:
    """Per-node (or per-client) write cache with a flusher process."""

    def __init__(
        self,
        sim: Simulator,
        hw: HardwareParams,
        backing: WritebackTarget,
        dirty_limit: int,
        background_limit: int | None = None,
        commit_interval: float | None = None,
        writeback_window: int = 4 * 1024 * 1024,
        name: str = "cache",
        sticky_batch: int = 1,
    ):
        self.sim = sim
        self.hw = hw
        self.backing = backing
        self.name = name
        self.dirty_limit = max(int(dirty_limit), 1)
        self.background_limit = (
            int(background_limit)
            if background_limit is not None
            else max(self.dirty_limit // 4, 1)
        )
        self.commit_interval = commit_interval
        self.writeback_window = writeback_window
        #: Tail extents smaller than this are deferred by the flusher
        #: (write gathering / plugging): flushing a still-growing tail
        #: too eagerly shatters merging into tiny backing-store writes.
        self.min_flush_extent = max(writeback_window // 16, 1)
        #: Throttled writers are released only once dirty drops this far
        #: below the limit, so refills arrive in bursts that re-form
        #: large extents instead of a trickle of tiny ones.
        self.throttle_hysteresis = min(writeback_window, self.dirty_limit // 8)
        #: The flusher drains up to this many extents of one stream
        #: before rotating (1 = pure round-robin).  Larger values keep
        #: per-stream runs together at the backing store — the knob the
        #: inter-node coordination experiment turns.
        self.sticky_batch = max(1, sticky_batch)
        self._sticky_stream: Optional[str] = None
        self._sticky_left = 0
        self._dirty: "OrderedDict[str, Deque[DirtyExtent]]" = OrderedDict()
        self.dirty_bytes = 0
        self._throttled: list[SimEvent] = []
        self._flush_kick: Optional[SimEvent] = None
        self._commit_due = False
        self.writeback_active = False
        self._stopped = False
        # -- stats
        self.total_dirtied = 0
        self.total_written_back = 0
        self.throttle_events = 0
        self._flusher = sim.spawn(self._flusher_proc(), name=f"flusher-{name}")
        if commit_interval is not None:
            self._committer = sim.spawn(self._commit_proc(), name=f"kjournald-{name}")

    # -- foreground API ---------------------------------------------------------

    def dirty(self, stream: str, nbytes: int, merge_cap: int | None = None):
        """Generator: account ``nbytes`` of new dirty data for ``stream``.

        Placement is block-granular: a write first fills the free space
        of its stream's tail block (sub-block metadata records stay in
        the current page, as in a real page cache), then allocates new
        blocks via the backing.  Adjacent allocations merge into the tail
        extent up to ``merge_cap`` bytes (None = writeback_window).
        Blocks the caller while the cache is over the dirty limit.
        """
        if nbytes <= 0:
            return
        cap = merge_cap if merge_cap is not None else self.writeback_window
        bs = self.hw.disk_block
        queue = self._dirty.setdefault(stream, deque())
        tail = queue[-1] if queue else None
        mergeable = tail is not None and tail.nbytes + nbytes <= max(cap, nbytes)
        if mergeable:
            room = tail.nblocks * bs - tail.nbytes  # free space in tail block
            overflow = max(0, nbytes - room)
            new_blocks = -(-overflow // bs) if overflow else 0
            if new_blocks == 0:
                tail.nbytes += nbytes
                tail.fragments += 1
            else:
                block = self.backing.locate(stream, new_blocks * bs)
                if block == tail.block + tail.nblocks:
                    tail.nbytes += nbytes
                    tail.nblocks += new_blocks
                    tail.fragments += 1
                else:  # allocator moved elsewhere: start a new extent
                    queue.append(
                        DirtyExtent(
                            stream=stream, block=block, nbytes=nbytes,
                            nblocks=new_blocks,
                        )
                    )
        else:
            new_blocks = max(1, -(-nbytes // bs))
            block = self.backing.locate(stream, new_blocks * bs)
            queue.append(
                DirtyExtent(
                    stream=stream, block=block, nbytes=nbytes, nblocks=new_blocks
                )
            )
        self.dirty_bytes += nbytes
        self.total_dirtied += nbytes
        if self.dirty_bytes > self.background_limit:
            self._wake_flusher()
        # balance_dirty_pages: block while over the hard limit
        while self.dirty_bytes > self.dirty_limit:
            self.throttle_events += 1
            ev = SimEvent(self.sim)
            self._throttled.append(ev)
            yield ev

    def _blocks(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.hw.disk_block))

    def sync_stream(self, stream: str):
        """Generator: write back everything dirty for one stream (fsync /
        close-to-open flush)."""
        queue = self._dirty.get(stream)
        while queue:
            extent = queue.popleft()
            yield from self._write_extent(extent)
        self._dirty.pop(stream, None)

    def sync_all(self):
        """Generator: write back everything (sync / unmount)."""
        while self._dirty:
            stream = next(iter(self._dirty))
            yield from self.sync_stream(stream)

    def sync_quota(self, nbytes: int):
        """Generator: write back up to ``nbytes`` (round-robin victims)."""
        done = 0
        while done < nbytes:
            extent = self._next_victim(allow_small_tails=True)
            if extent is None:
                return
            done += extent.nbytes
            yield from self._write_extent(extent)

    def dirty_bytes_of(self, stream: str) -> int:
        return sum(e.nbytes for e in self._dirty.get(stream, ()))

    def stop(self) -> None:
        """Stop waking the flusher for new work (end of experiment)."""
        self._stopped = True
        self._wake_flusher()

    # -- internals -----------------------------------------------------------

    def _write_extent(self, extent: DirtyExtent):
        yield from self.backing.write_extent(extent)
        self.dirty_bytes -= extent.nbytes
        self.total_written_back += extent.nbytes
        release_at = max(self.dirty_limit - self.throttle_hysteresis, 0)
        if self.dirty_bytes <= release_at and self._throttled:
            waiters, self._throttled = self._throttled, []
            for ev in waiters:
                ev.succeed()

    def _wake_flusher(self) -> None:
        if self._flush_kick is not None and not self._flush_kick.triggered:
            kick, self._flush_kick = self._flush_kick, None
            kick.succeed()

    def _should_flush(self) -> bool:
        if self._stopped:
            return False
        if self._commit_due:
            return bool(self._dirty)
        if self._throttled:
            return bool(self._dirty)
        return self.dirty_bytes > self.background_limit and bool(self._dirty)

    def _next_victim(self, allow_small_tails: bool = False) -> Optional[DirtyExtent]:
        """Round-robin over streams; pop up to writeback_window per visit.

        A stream's *tail* extent (the one still growing) is deferred while
        it is small, unless ``allow_small_tails`` — eagerly flushing a
        growing tail shatters write gathering.
        """
        # sticky continuation: keep draining the same stream for a while
        if (
            self._sticky_stream is not None
            and self._sticky_left > 0
            and self._sticky_stream in self._dirty
        ):
            queue = self._dirty[self._sticky_stream]
            head = queue[0]
            if (
                len(queue) > 1
                or head.nbytes >= self.min_flush_extent
                or allow_small_tails
            ):
                self._sticky_left -= 1
                return self._pop_from(self._sticky_stream)
        fallback: Optional[str] = None
        fallback_size = -1
        for stream in list(self._dirty):
            queue = self._dirty[stream]
            if not queue:
                del self._dirty[stream]
                continue
            head = queue[0]
            is_growing_tail = len(queue) == 1
            if (
                is_growing_tail
                and head.nbytes < self.min_flush_extent
                and not allow_small_tails
            ):
                if head.nbytes > fallback_size:
                    fallback, fallback_size = stream, head.nbytes
                continue
            return self._pop_from(stream)
        if fallback is not None and allow_small_tails is False and self._throttled:
            # everything is a small tail but writers are blocked: flush
            # the biggest one rather than deadlock
            return self._pop_from(fallback)
        return None

    def _pop_from(self, stream: str) -> DirtyExtent:
        if stream != self._sticky_stream:
            self._sticky_stream = stream
            self._sticky_left = self.sticky_batch - 1
        queue = self._dirty[stream]
        extent = queue.popleft()
        if extent.nbytes > self.writeback_window:
            win_blocks = self._blocks(self.writeback_window)
            frac = self.writeback_window / extent.nbytes
            head_frags = max(1, int(round(extent.fragments * frac)))
            rest = DirtyExtent(
                stream=extent.stream,
                block=extent.block + win_blocks,
                nbytes=extent.nbytes - self.writeback_window,
                nblocks=max(extent.nblocks - win_blocks, 1),
                fragments=max(1, extent.fragments - head_frags),
            )
            queue.appendleft(rest)
            extent = DirtyExtent(
                stream=extent.stream,
                block=extent.block,
                nbytes=self.writeback_window,
                nblocks=win_blocks,
                fragments=head_frags,
            )
        if not queue:
            del self._dirty[stream]
        else:
            self._dirty.move_to_end(stream)  # rotate for fairness
        return extent

    def _flusher_proc(self):
        while not self._stopped:
            extent = None
            if self._should_flush():
                extent = self._next_victim()
                if extent is None and self._commit_due:
                    extent = self._next_victim(allow_small_tails=True)
            if extent is not None:
                self.writeback_active = True
                yield from self._write_extent(extent)
                if not self._dirty:
                    self._commit_due = False
            else:
                self.writeback_active = False
                if not self._dirty:
                    self._commit_due = False
                self._flush_kick = SimEvent(self.sim)
                yield self._flush_kick
        self.writeback_active = False

    def _commit_proc(self):
        """kjournald (data=ordered): periodically force full writeback."""
        while not self._stopped:
            yield self.sim.timeout(self.commit_interval)
            if self._stopped:
                return
            if self._dirty:
                self._commit_due = True
                self._wake_flusher()
