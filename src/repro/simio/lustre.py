"""Lustre 1.8 model: client cache + grant throttling + striped OSTs.

What pins the paper's Lustre shapes:

* **client-side per-op overhead** (llite + LDLM locking) is much higher
  than ext3's — native small/medium checkpoint writes serialize through
  it, which is why native Lustre is *slower* than native ext3 at class
  B/C and why CRFS's op-count reduction wins 5.5-9X there;
* the **client dirty cache is grant-limited** (~32 MiB per OST in 1.8),
  far smaller than the page cache — class-D checkpoints throttle to the
  aggregate OST bandwidth, compressing CRFS's win to ~30%;
* **striping**: files spread over OSTs in stripe-size runs, so native
  append streams are contiguous per OST only in stripe-length runs,
  while a CRFS 4 MiB chunk lands as one contiguous object extent —
  fewer OST seeks, which is where the remaining class-D gain comes from;
* close() does **not** flush (no NFS-style close-to-open): the measured
  checkpoint drains only into the client cache unless the grant is
  exhausted.
"""

from __future__ import annotations

import numpy as np

from ..sim import FIFOResource, SharedBandwidth, Simulator
from .disk import RotationalDisk
from .fsbase import PAGE, SimFile, SimFilesystem, jittered
from .network import Link
from .pagecache import DirtyExtent, PageCache, ReservingAllocator
from .params import HardwareParams

__all__ = ["LustreServers", "LustreFilesystem"]

#: Block-address space reserved per OST; extents never cross OSTs, and
#: adjacency (hence extent merging) only happens within one OST.
_OST_SPACE = 1 << 40


class LustreServers:
    """The shared MDS+OST fabric.

    ``flush_tokens`` (optional) prototypes the paper's Section VII future
    work — inter-node write coordination: when set, at most that many
    extent flushes run against the OSTs cluster-wide at once.  Fewer
    concurrent streams means consecutive OST accesses more often continue
    the same object (no seek), at the cost of OST idle time when tokens
    are too scarce.  See ``repro.experiments.internode``.
    """

    def __init__(self, sim: Simulator, hw: HardwareParams,
                 flush_tokens: int | None = None):
        from ..sim import SimSemaphore

        self.sim = sim
        self.hw = hw
        self.flush_tokens = (
            SimSemaphore(sim, flush_tokens) if flush_tokens else None
        )
        self.osts = []
        for i in range(hw.lustre_osts):
            ost = RotationalDisk(
                sim,
                hw,
                name=f"ost{i}",
                bandwidth=hw.lustre_ost_bandwidth,
                seek_time=hw.lustre_ost_seek,
            )
            # per-object layout is contiguous; sequentiality at the
            # spindle is decided by arrival interleaving
            ost.stream_switch_seek = True
            self.osts.append(ost)
        # per-OST object allocators; reservation = stripe keeps native
        # append runs stripe-contiguous.
        self.allocators = [
            ReservingAllocator(hw.disk_block, hw.lustre_stripe)
            for _ in range(hw.lustre_osts)
        ]
        self._stream_bytes: dict[str, int] = {}
        self.mds_ops = 0

    def locate(self, stream: str, nbytes: int) -> int:
        """Place ``nbytes`` for ``stream``: the OST rotates per stripe of
        the file, so sequential appends fill one OST for a stripe's worth
        before moving on; a multi-stripe allocation (CRFS chunk) lands
        whole on the next OST in the rotation."""
        sofar = self._stream_bytes.get(stream, 0)
        ost = (sofar // self.hw.lustre_stripe) % len(self.osts)
        self._stream_bytes[stream] = sofar + nbytes
        local = self.allocators[ost].alloc(stream, nbytes)
        return ost * _OST_SPACE + local

    def write_pipeline(self, link: Link, extent: DirtyExtent):
        """Generator: RPC one extent to its OST.

        The wire moves in rpc_size messages; the OST's object layer
        gathers the extent (obdfilter brw pipelining) and issues it as a
        single disk write — so a 4 MiB CRFS chunk reaches the platter as
        one sequential access, while native stripe-length runs stay at
        ~1 MiB.
        """
        hw = self.hw
        ost_index = extent.block // _OST_SPACE
        disk = self.osts[ost_index]
        local = extent.block % _OST_SPACE
        remaining = extent.nbytes
        while remaining > 0:
            window = min(remaining, hw.lustre_rpc_size)
            yield from link.send(window)
            remaining -= window
        yield disk.io(local, extent.nbytes, "W", extent.stream)

    def total_ost_bytes(self) -> float:
        return sum(d.total_bytes for d in self.osts)


class _LustreBacking:
    def __init__(self, servers: LustreServers, link: Link):
        self.servers = servers
        self.link = link

    def locate(self, stream: str, nbytes: int) -> int:
        return self.servers.locate(stream, nbytes)

    def write_extent(self, extent: DirtyExtent):
        tokens = self.servers.flush_tokens
        if tokens is not None:
            yield tokens.acquire()
            try:
                yield from self.servers.write_pipeline(self.link, extent)
            finally:
                tokens.release()
        else:
            yield from self.servers.write_pipeline(self.link, extent)


class LustreFilesystem(SimFilesystem):
    """One node's Lustre client view."""

    name = "lustre"

    def __init__(
        self,
        sim: Simulator,
        hw: HardwareParams,
        rng: np.random.Generator,
        membus: SharedBandwidth,
        servers: LustreServers,
        app_memory: int = 0,
        node: str = "node0",
        sticky_batch: int = 1,
    ):
        super().__init__(sim, hw, rng)
        self.membus = membus
        self.servers = servers
        self.link = Link(
            sim, hw.lustre_link_bandwidth, rtt=40e-6, name=f"{node}-ib"
        )
        self.cache = PageCache(
            sim,
            hw,
            _LustreBacking(servers, self.link),
            dirty_limit=hw.lustre_client_cache,
            background_limit=hw.lustre_client_cache // 4,
            name=f"{node}-lustre-cache",
            sticky_batch=sticky_batch,
        )
        #: Serialized llite/LDLM client path — the native bottleneck.
        self.client_res = FIFOResource(sim, name=f"{node}-lustre-client")
        self._read_state: dict[str, list[int]] = {}

    def _write(self, f: SimFile, nbytes: int):
        yield self.sim.timeout(self.hw.syscall_overhead)
        new_pages = f.new_pages(nbytes)
        if new_pages:
            # LDLM/llite locking costs grow with intra-node concurrency:
            # a lone writer pays the base cost; 8 writers hammering the
            # same client-side locks pay several times more per op (the
            # multiplexing contention of Fig 9).
            contention = 1.0 + self.hw.lustre_contention_factor * self.client_res.queue_len
            service = jittered(
                self.rng,
                self.hw.lustre_client_op_overhead * contention
                + new_pages * self.hw.lustre_page_cost,
                self.hw.service_jitter_sigma,
            )
            yield self.client_res.use(service)
        if nbytes >= PAGE:
            yield self.membus.transfer(nbytes)
        yield from self.cache.dirty(f.stream, nbytes)

    def writev(self, f: SimFile, sizes: "list[int]"):
        # One gathered client write: the llite/LDLM per-op cost — the
        # native Lustre bottleneck — is paid once for the whole run; page
        # dirtying, the membus copy and grant accounting see the same
        # total volume.
        total = sum(sizes)
        self.total_writes += 1
        self.total_bytes += total
        yield self.sim.timeout(self.hw.syscall_overhead)
        new_pages = f.new_pages(total)
        if new_pages:
            contention = 1.0 + self.hw.lustre_contention_factor * self.client_res.queue_len
            service = jittered(
                self.rng,
                self.hw.lustre_client_op_overhead * contention
                + new_pages * self.hw.lustre_page_cost,
                self.hw.service_jitter_sigma,
            )
            yield self.client_res.use(service)
        if total >= PAGE:
            yield self.membus.transfer(total)
        yield from self.cache.dirty(f.stream, total)
        f.pos += total

    def _read(self, f: SimFile, nbytes: int):
        """Restart path: striped reads from the OSTs with readahead."""
        state = self._read_state.setdefault(f.stream, [0, 0])
        state[0] += nbytes
        window = self.hw.readahead_window
        while state[1] < state[0]:
            ost = (state[1] // self.hw.lustre_stripe) % len(self.servers.osts)
            disk = self.servers.osts[ost]
            block = self.servers.allocators[ost].alloc(f.stream + "#read", window)
            yield from self.link.send(window)
            yield disk.io(block, window, "R", f.stream)
            state[1] += window
        if nbytes >= PAGE:
            yield self.membus.transfer(nbytes)

    def close(self, f: SimFile):
        # No close-to-open flush: dirty data drains in the background.
        yield self.sim.timeout(self.hw.syscall_overhead)

    def fsync(self, f: SimFile):
        yield from self.cache.sync_stream(f.stream)
        yield self.sim.timeout(1e-3)
