"""Modelled hardware and native filesystems (timing plane).

Everything the paper's testbed provides and we do not have: rotational
disks, page caches with dirty-writeback coupling, an NFS server, a
striped Lustre store — expressed as discrete-event models over
:mod:`repro.sim`.  The constants live in :mod:`repro.simio.params`,
documented against the paper's Section V-A hardware.
"""

from .params import HardwareParams, DEFAULT_HW
from .disk import RotationalDisk, BlockTraceEntry
from .pagecache import PageCache
from .network import Link
from .fsbase import SimFile, SimFilesystem
from .faulty import FaultySimFilesystem
from .ext3 import Ext3Filesystem
from .nfs import NFSFilesystem, NFSServer
from .lustre import LustreFilesystem, LustreServers
from .tiered import TieredSimFile, TieredSimFilesystem

__all__ = [
    "HardwareParams",
    "DEFAULT_HW",
    "RotationalDisk",
    "BlockTraceEntry",
    "PageCache",
    "Link",
    "FaultySimFilesystem",
    "SimFile",
    "SimFilesystem",
    "Ext3Filesystem",
    "NFSFilesystem",
    "NFSServer",
    "LustreFilesystem",
    "LustreServers",
    "TieredSimFile",
    "TieredSimFilesystem",
]
