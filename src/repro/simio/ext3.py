"""ext3 model: local filesystem on a rotational disk.

Write path (what Section III profiles):

* syscall entry — cheap; sub-page appends touch no new page and stay
  cheap (Table I: half the writes are <64 B and cost ~0.2% of time);
* block/extent allocation + journal bookkeeping for writes that dirty
  new pages — **serialized per node** through the journal lock, with
  heavy-tailed per-call jitter: with 8 concurrent writers this queueing
  is the paper's "severe contentions in the VFS layer" that make the
  4-16 KiB bucket eat ~half the checkpoint time;
* copy into the page cache over the shared memory bus;
* dirty accounting with hard throttling at the dirty limit — the
  class-D regime where both native and CRFS paths run at disk speed.

Two background processes complete the picture:

* the **flusher** (via :class:`~repro.simio.pagecache.PageCache`) starts
  once dirty data crosses the background threshold — its disk writes are
  what Fig 10's blktrace shows;
* **kjournald** commits every ``ext3_commit_interval`` seconds in
  data=ordered mode: the commit *holds the journal lock while flushing
  all dirty data to disk*.  A checkpoint that straddles a commit splits
  the processes into those that finished before it (~4 s in the paper's
  Fig 3) and those caught behind it (~8 s) — the completion-time spread
  CRFS eliminates by finishing before the first commit.
"""

from __future__ import annotations

import numpy as np

from ..sim import SharedBandwidth, SimLock, Simulator
from .disk import RotationalDisk
from .fsbase import SimFile, SimFilesystem, jittered
from .pagecache import DirtyExtent, PageCache, ReservingAllocator
from .params import HardwareParams

__all__ = ["Ext3Filesystem"]


class _DiskBacking:
    """PageCache backing: per-stream reserving allocator over one disk."""

    def __init__(self, disk: RotationalDisk, allocator: ReservingAllocator):
        self.disk = disk
        self.allocator = allocator

    def locate(self, stream: str, nbytes: int) -> int:
        return self.allocator.alloc(stream, nbytes)

    def write_extent(self, extent: DirtyExtent):
        yield self.disk.io(extent.block, extent.nbytes, "W", extent.stream)


class Ext3Filesystem(SimFilesystem):
    """One node's local ext3 over one SATA disk."""

    name = "ext3"

    def __init__(
        self,
        sim: Simulator,
        hw: HardwareParams,
        rng: np.random.Generator,
        membus: SharedBandwidth,
        app_memory: int = 0,
        node: str = "node0",
    ):
        super().__init__(sim, hw, rng)
        self.membus = membus
        self.disk = RotationalDisk(sim, hw, name=f"{node}-disk")
        self.allocator = ReservingAllocator(hw.disk_block, hw.ext3_reservation)
        self._backing = _DiskBacking(self.disk, self.allocator)
        dirtyable = max(hw.node_memory - hw.os_reserve - app_memory, 128 * 1024 * 1024)
        self.cache = PageCache(
            sim,
            hw,
            self._backing,
            dirty_limit=int(dirtyable * hw.dirty_ratio),
            background_limit=int(dirtyable * hw.dirty_background_ratio),
            name=f"{node}-pagecache",
        )
        #: The journal/allocation lock: every page-allocating write takes
        #: it briefly; kjournald holds it for whole commit flushes.
        self.journal = SimLock(sim)
        self.commits = 0
        self._read_state: dict[str, list[int]] = {}
        self._read_base: dict[str, int] = {}
        self._stopped = False
        self._committer = sim.spawn(self._kjournald(), name=f"{node}-kjournald")

    def _write(self, f: SimFile, nbytes: int):
        yield self.sim.timeout(self.hw.syscall_overhead)
        new_pages = f.new_pages(nbytes)
        if new_pages:
            service = jittered(
                self.rng,
                self.hw.ext3_alloc_overhead + new_pages * self.hw.ext3_page_cost,
                self.hw.service_jitter_sigma,
            )
            if self.cache.writeback_active and not f.bulk_writer:
                # Writeback interference on interactive writers: partial
                # re-dirtying and lock_page collisions against pages the
                # flusher is pushing out.  Probability and duration scale
                # with the pages the write touches; a per-file fortune
                # factor (placement vs the writeback scan) spreads the
                # damage unevenly across processes — the 4s..8s spread of
                # Figs 3/11.  CRFS's few dedicated IO threads writing
                # large aligned chunks dodge these collisions
                # (bulk_writer): new full pages, no re-dirtying.
                service *= self.hw.ext3_writeback_interference
                p_stall = min(
                    0.85,
                    self.hw.ext3_stall_prob
                    * f.luck
                    * (1.0 + new_pages * self.hw.ext3_stall_page_prob),
                )
                if self.rng.random() < p_stall:
                    mean = self.hw.ext3_stall_mean * (
                        1.0 + new_pages * self.hw.ext3_stall_page_dur
                    )
                    # bounded draw: a stall lasts 0.5x..1.5x its mean
                    yield self.sim.timeout(float(self.rng.uniform(0.5, 1.5)) * mean)
            yield self.journal.acquire()
            yield self.sim.timeout(service)
            self.journal.release()
        if nbytes >= 4096:
            yield self.membus.transfer(nbytes)
        yield from self.cache.dirty(f.stream, nbytes)

    def _read(self, f: SimFile, nbytes: int):
        """Restart path: cold-cache sequential read with readahead.

        A restarted node reads the checkpoint fresh from disk; readahead
        turns the sequential scan into large disk accesses, so reads run
        near streaming bandwidth regardless of the original write sizes
        (why the paper sees no restart difference with or without CRFS).
        """
        state = self._read_state.setdefault(f.stream, [0, 0])  # [consumed, fetched]
        if f.stream not in self._read_base:
            # the file's (post-writeback) on-disk location: one contiguous
            # region per file, far apart between files
            self._read_base[f.stream] = len(self._read_base) * (1 << 24) + (1 << 26)
        base = self._read_base[f.stream]
        state[0] += nbytes
        window = self.hw.readahead_window
        while state[1] < state[0]:
            block = base + state[1] // self.hw.disk_block
            yield self.disk.io(block, window, "R", f.stream)
            state[1] += window
        if nbytes >= 4096:
            yield self.membus.transfer(nbytes)

    def close(self, f: SimFile):
        # ext3 close is metadata-only: dirty data stays in the cache.
        yield self.sim.timeout(self.hw.syscall_overhead)

    def fsync(self, f: SimFile):
        yield from self.cache.sync_stream(f.stream)
        # journal commit latency for the metadata
        yield self.sim.timeout(2e-3)

    def _kjournald(self):
        """data=ordered commits: flush all dirty data, journal lock held.

        The first commit lands at a random phase within the interval —
        checkpoints start at arbitrary points of the commit cycle (the
        paper averages >=5 checkpoints per condition).
        """
        yield self.sim.timeout(
            float(self.rng.uniform(0.0, self.hw.ext3_commit_interval))
        )
        while not self._stopped:
            yield self.sim.timeout(self.hw.ext3_commit_interval)
            if self._stopped:
                return
            if self.cache.dirty_bytes == 0:
                continue
            self.commits += 1
            # Locked phase: new journal handles (allocating writers) block
            # while the transaction's own data goes out...
            yield self.journal.acquire()
            try:
                yield from self.cache.sync_quota(self.hw.ext3_commit_locked_bytes)
            finally:
                self.journal.release()
            # ...then the bulk of the ordered-data flush proceeds without
            # blocking new handles.
            yield from self.cache.sync_all()

    def stop(self) -> None:
        self._stopped = True
        self.cache.stop()
