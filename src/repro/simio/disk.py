"""Rotational disk model with a block allocator and blktrace-style capture.

Reproduces the mechanism behind paper Figure 10: concurrent writers whose
files allocate blocks interleaved produce scattered disk accesses (seeks);
CRFS's large chunk writes allocate contiguously and stream.

The disk is an active server draining a request queue under a pluggable
scheduler:

* ``fifo`` — requests service in arrival order (the default; what the
  calibrated experiments use);
* ``elevator`` — C-LOOK: the head sweeps ascending block order, wrapping
  to the lowest pending request at the top.  An ablation
  (``benchmarks/bench_ablation_elevator.py``) shows request reordering
  recovers some sequentiality for the native path but cannot match
  CRFS's contiguous allocation.

Service time for an access is ``seek(distance) + bytes/bandwidth``; the
trace records (time, block, size, stream) exactly like the paper's
blktrace plots (address vs time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError
from ..sim import SimEvent, Simulator
from .params import HardwareParams

__all__ = ["RotationalDisk", "BlockTraceEntry", "ExtentAllocator"]


@dataclass(frozen=True)
class BlockTraceEntry:
    """One block-layer access, as blktrace would log it."""

    time: float
    block: int  # starting block address
    nblocks: int
    kind: str  # 'W' or 'R'
    stream: str  # which file/object this access belongs to


class ExtentAllocator:
    """Bump allocator handing out contiguous block extents.

    Concurrently-growing files calling :meth:`alloc` alternately receive
    interleaved extents — the fragmentation that makes native checkpoint
    writeback seek-heavy (Fig 10a).  One large allocation (a CRFS chunk)
    is a single contiguous extent (Fig 10b).
    """

    def __init__(self, block_size: int, start_block: int = 2048):
        self.block_size = block_size
        self._next = start_block

    def alloc(self, nbytes: int) -> int:
        """Allocate ceil(nbytes/block) contiguous blocks; returns the
        starting block address."""
        nblocks = max(1, -(-nbytes // self.block_size))
        block = self._next
        self._next += nblocks
        return block

    @property
    def next_block(self) -> int:
        return self._next


class _Request:
    __slots__ = ("block", "nblocks", "nbytes", "kind", "stream", "event", "arrival")

    def __init__(self, block, nblocks, nbytes, kind, stream, event, arrival):
        self.block = block
        self.nblocks = nblocks
        self.nbytes = nbytes
        self.kind = kind
        self.stream = stream
        self.event = event
        self.arrival = arrival


class RotationalDisk:
    """Single-head rotational disk with a request queue and scheduler."""

    def __init__(
        self,
        sim: Simulator,
        hw: HardwareParams,
        name: str = "disk",
        bandwidth: float | None = None,
        seek_time: float | None = None,
        scheduler: str = "fifo",
    ):
        if scheduler not in ("fifo", "elevator"):
            raise SimulationError(f"unknown disk scheduler {scheduler!r}")
        self.sim = sim
        self.hw = hw
        self.name = name
        self.bandwidth = bandwidth if bandwidth is not None else hw.disk_bandwidth
        self.seek_time = seek_time if seek_time is not None else hw.disk_seek_time
        self.scheduler = scheduler
        #: When set, seeks are priced by *stream switching* instead of
        #: block distance: continuing the same stream is sequential, any
        #: switch costs a full seek.  Models object stores (Lustre OSTs)
        #: whose per-object layout is contiguous, so sequentiality is
        #: decided by arrival interleaving rather than block addresses.
        self.stream_switch_seek = False
        self._queue: list[_Request] = []
        self._busy = False
        self._head_block = 0
        self._head_stream: Optional[str] = None
        self.trace: list[BlockTraceEntry] = []
        self.capture_trace = True
        # -- stats
        self.total_bytes = 0
        self.total_ios = 0
        self.seeks = 0
        self.sequential_ios = 0
        self.busy_time = 0.0
        self.total_wait = 0.0
        self.max_queue = 0

    # -- seek pricing ---------------------------------------------------------

    def seek_cost(self, from_block: int, to_block: int) -> float:
        """Zero for contiguous continuation; otherwise min_seek..seek_time
        scaled by sqrt of LBA distance (classic seek curve)."""
        if to_block == from_block:
            return 0.0
        distance_bytes = abs(to_block - from_block) * self.hw.disk_block
        span = self.hw.disk_short_seek_span
        frac = min(1.0, (distance_bytes / span) ** 0.5)
        return self.hw.disk_min_seek + (self.seek_time - self.hw.disk_min_seek) * frac

    # -- I/O ------------------------------------------------------------------

    def io(self, block: int, nbytes: int, kind: str = "W", stream: str = "?"):
        """Submit an access at ``block`` of ``nbytes``; yieldable.

        Returns a :class:`~repro.sim.SimEvent` that fires when the
        request completes under the configured scheduler.
        """
        nblocks = max(1, -(-nbytes // self.hw.disk_block))
        event = SimEvent(self.sim)
        req = _Request(block, nblocks, nbytes, kind, stream, event, self.sim.now)
        self._queue.append(req)
        self.max_queue = max(self.max_queue, len(self._queue))
        if not self._busy:
            self._start_next()
        return event

    def _pick(self) -> _Request:
        if self.scheduler == "fifo" or len(self._queue) == 1:
            return self._queue.pop(0)
        # C-LOOK elevator: the nearest request at or above the head,
        # wrapping to the lowest pending request when none are above.
        above = [r for r in self._queue if r.block >= self._head_block]
        pool = above if above else self._queue
        chosen = min(pool, key=lambda r: r.block)
        self._queue.remove(chosen)
        return chosen

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        req = self._pick()
        if self.stream_switch_seek:
            seek = 0.0 if req.stream == self._head_stream else self.seek_time
        else:
            seek = self.seek_cost(self._head_block, req.block)
        if seek == 0.0:
            self.sequential_ios += 1
        else:
            self.seeks += 1
        self._head_block = req.block + req.nblocks
        self._head_stream = req.stream
        self.total_bytes += req.nbytes
        self.total_ios += 1
        self.total_wait += self.sim.now - req.arrival
        if self.capture_trace:
            self.trace.append(
                BlockTraceEntry(
                    time=self.sim.now, block=req.block, nblocks=req.nblocks,
                    kind=req.kind, stream=req.stream,
                )
            )
        service = seek + req.nbytes / self.bandwidth
        self.busy_time += service
        self.sim.schedule(service, self._complete, req)

    def _complete(self, req: _Request) -> None:
        req.event.succeed()
        self._start_next()

    # -- introspection -----------------------------------------------------------

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def trace_blocks(self) -> list[tuple[float, int]]:
        """(time, block) pairs for plotting Fig 10-style address scatter."""
        return [(t.time, t.block) for t in self.trace]
