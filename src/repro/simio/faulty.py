"""Fault injection for the timing plane.

:class:`FaultySimFilesystem` wraps any :class:`SimFilesystem` and applies
the same :class:`~repro.backends.faulty.FaultRule` schedules the
functional plane's :class:`~repro.backends.faulty.FaultyBackend` applies
— via the shared :class:`~repro.backends.faulty.FaultSchedule`, so one
rule list produces the identical fault sequence on both planes (op
names match the functional backend's: a simulated chunk write counts as
one ``pwrite``, a simulated read as one ``pread``).

Delays become virtual-clock timeouts instead of real sleeps; errors are
raised into the driving process, where :class:`~repro.simcrfs.model.SimCRFS`'s
resilient writeback loop catches them exactly like the real IO pool does.
"""

from __future__ import annotations

from typing import Iterable

from ..backends.faulty import FaultRule, FaultSchedule
from .fsbase import SimFile, SimFilesystem

__all__ = ["FaultySimFilesystem"]


class FaultySimFilesystem(SimFilesystem):
    """Delegating wrapper: fault-check (in virtual time), then pass through."""

    name = "faulty"

    def __init__(
        self,
        inner: SimFilesystem,
        rules: Iterable[FaultRule] | None = None,
        schedule: FaultSchedule | None = None,
    ):
        # No super().__init__: sim/hw/rng are the inner filesystem's, and
        # the op totals are read-through properties below.
        self.inner = inner
        self.sim = inner.sim
        self.hw = inner.hw
        self.rng = inner.rng
        self.schedule = schedule if schedule is not None else FaultSchedule(rules)

    # -- schedule passthrough (same surface as FaultyBackend) ------------------

    @property
    def rules(self) -> list[FaultRule]:
        return self.schedule.rules

    @property
    def faults_fired(self) -> int:
        return self.schedule.faults_fired

    def add_rule(self, rule: FaultRule) -> None:
        self.schedule.add_rule(rule)

    def _check(self, op: str, path: str):
        """Generator: virtual-time delay, then raise if a rule fires."""
        delay, error = self.schedule.decide(op, path)
        if delay:
            yield self.sim.timeout(delay)
        if error is not None:
            raise error

    # -- op totals are the inner filesystem's --------------------------------

    @property
    def total_writes(self) -> int:
        return self.inner.total_writes

    @property
    def total_bytes(self) -> int:
        return self.inner.total_bytes

    @property
    def total_reads(self) -> int:
        return self.inner.total_reads

    # -- SimFilesystem interface ----------------------------------------------

    def open(self, path: str) -> SimFile:
        return self.inner.open(path)

    def write(self, f: SimFile, nbytes: int):
        yield from self._check("pwrite", f.path)
        yield from self.inner.write(f, nbytes)

    def writev(self, f: SimFile, sizes: "list[int]"):
        # One "pwritev" count per vectored op — the batch is one backend
        # op for fault purposes, matching FaultyBackend.pwritev.
        yield from self._check("pwritev", f.path)
        yield from self.inner.writev(f, sizes)

    def _write(self, f: SimFile, nbytes: int):  # pragma: no cover - write()
        yield from self.inner._write(f, nbytes)  # is fully delegated above

    def read(self, f: SimFile, nbytes: int):
        yield from self._check("pread", f.path)
        yield from self.inner.read(f, nbytes)

    def close(self, f: SimFile):
        yield from self._check("close", f.path)
        yield from self.inner.close(f)

    def fsync(self, f: SimFile):
        yield from self._check("fsync", f.path)
        yield from self.inner.fsync(f)
