"""NFSv3 model: single server, shared by every client node.

The paper's NFS numbers are dominated by three facts this model encodes:

* **close-to-open consistency** — close() flushes all of the client's
  dirty data for the file to the server, so the measured checkpoint
  time includes the full transfer to one server for *all* nodes;
* the **server collapses under concurrent small-op tension** ("its
  single server design doesn't match the intensive concurrent IO
  requirements"): flush runs assembled from many sub-wsize dirty ranges
  (the native BLCR pattern at class B/C — tens of fragments per MiB)
  pay a congested per-RPC slot cost at the server.  Runs produced by
  few large writes — CRFS's 4 MiB chunks always, and class D's big
  region writes — take the clean bulk path, so the server streams;
* the server places each arriving flush run contiguously and writes it
  as **one disk access** (its own page cache + elevator), so disk time
  is seek-per-run plus streaming transfer.

That yields the paper's shape: class B/C native are congestion-bound
(~25-40 MB/s effective), CRFS streams (~85 MB/s) for a 2-3.4X win; at
class D both are stream-bound and CRFS's extra copying makes it
slightly *worse* than native — the observed inversion.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..sim import FIFOResource, SharedBandwidth, Simulator
from .disk import ExtentAllocator, RotationalDisk
from .fsbase import PAGE, SimFile, SimFilesystem, jittered
from .network import Link
from .pagecache import DirtyExtent, PageCache
from .params import HardwareParams

__all__ = ["NFSServer", "NFSFilesystem"]

#: Virtual block-address space per client stream (client-side dirty
#: tracking is by file offset; real placement happens at the server).
_STREAM_SPACE = 1 << 40


class NFSServer:
    """The shared server: one NIC, one CPU, one disk, one allocator."""

    def __init__(self, sim: Simulator, hw: HardwareParams):
        self.sim = sim
        self.hw = hw
        self.disk = RotationalDisk(sim, hw, name="nfs-server-disk",
                                   bandwidth=hw.nfs_server_disk_bandwidth)
        self.link = Link(sim, hw.nfs_link_bandwidth, hw.nfs_rtt, name="nfs-link")
        self.cpu = FIFOResource(sim, name="nfs-server-cpu")
        #: Placement happens at arrival: each flush run lands contiguous.
        self.allocator = ExtentAllocator(hw.disk_block)
        self.congested_rpcs = 0
        self.clean_rpcs = 0

    def write_pipeline(self, extent: DirtyExtent):
        """Generator: ship one client flush run to stable server storage.

        Wire: the run crosses the link in gather windows of wsize RPCs.
        CPU: per-RPC slot cost — congested pricing when the run is
        fragment-dense (built from sub-wsize dirty ranges).
        Disk: the whole run as one access (seek + streaming transfer).
        """
        hw = self.hw
        congested = extent.fragment_density > hw.nfs_congestion_density
        if congested:
            # Fragment-dense run: the server eats one slot per dirty range
            # (sub-wsize gathering, attribute churn) — the small-op tension
            # CRFS's aggregation removes.
            self.congested_rpcs += extent.fragments
            yield self.cpu.use(extent.fragments * hw.nfs_congested_rpc_cost)
        remaining = extent.nbytes
        while remaining > 0:
            window = min(remaining, hw.nfs_server_gather)
            n_rpcs = max(1, -(-window // hw.nfs_wsize))
            yield from self.link.roundtrip(window)
            yield self.cpu.use(n_rpcs * hw.nfs_server_op_overhead)
            self.clean_rpcs += n_rpcs
            remaining -= window
        block = self.allocator.alloc(extent.nbytes)
        yield self.disk.io(block, extent.nbytes, "W", extent.stream)


class _ServerBacking:
    """Client-side dirty placement: per-stream virtual contiguity.

    The client tracks dirty data by file offset — always contiguous per
    stream — so extents merge purely logically; physical placement is
    the server's business at flush time.
    """

    def __init__(self, server: NFSServer):
        self.server = server
        self._spaces: dict[str, int] = {}
        self._positions: dict[str, int] = {}
        self._ids = itertools.count(1)

    def locate(self, stream: str, nbytes: int) -> int:
        base = self._spaces.get(stream)
        if base is None:
            base = next(self._ids) * _STREAM_SPACE
            self._spaces[stream] = base
            self._positions[stream] = 0
        pos = self._positions[stream]
        nblocks = max(1, -(-nbytes // self.server.hw.disk_block))
        self._positions[stream] = pos + nblocks
        return base + pos

    def write_extent(self, extent: DirtyExtent):
        yield from self.server.write_pipeline(extent)


class NFSFilesystem(SimFilesystem):
    """One node's NFS client view."""

    name = "nfs"

    def __init__(
        self,
        sim: Simulator,
        hw: HardwareParams,
        rng: np.random.Generator,
        membus: SharedBandwidth,
        server: NFSServer,
        app_memory: int = 0,
        node: str = "node0",
    ):
        super().__init__(sim, hw, rng)
        self.membus = membus
        self.server = server
        dirtyable = max(hw.node_memory - hw.os_reserve - app_memory, 128 * 1024 * 1024)
        self.cache = PageCache(
            sim,
            hw,
            _ServerBacking(server),
            dirty_limit=int(dirtyable * hw.dirty_ratio),
            background_limit=int(dirtyable * hw.dirty_background_ratio),
            name=f"{node}-nfs-cache",
        )
        #: Serialized client-side RPC preparation path.
        self.client_res = FIFOResource(sim, name=f"{node}-nfs-client")
        self._read_state: dict[str, list[int]] = {}

    def _write(self, f: SimFile, nbytes: int):
        yield self.sim.timeout(self.hw.syscall_overhead)
        new_pages = f.new_pages(nbytes)
        if new_pages:
            service = jittered(
                self.rng,
                self.hw.nfs_client_op_overhead + new_pages * 0.4e-6,
                self.hw.service_jitter_sigma,
            )
            yield self.client_res.use(service)
        if nbytes >= PAGE:
            yield self.membus.transfer(nbytes)
        yield from self.cache.dirty(f.stream, nbytes)

    def writev(self, f: SimFile, sizes: "list[int]"):
        # One gathered client write: one syscall, one serialized RPC-prep
        # pass and one copy for the whole run — the dirty data still
        # flushes through the server at the same volume, but the client-
        # side per-op overhead (the congestion CRFS targets) is paid once.
        total = sum(sizes)
        self.total_writes += 1
        self.total_bytes += total
        yield self.sim.timeout(self.hw.syscall_overhead)
        new_pages = f.new_pages(total)
        if new_pages:
            service = jittered(
                self.rng,
                self.hw.nfs_client_op_overhead + new_pages * 0.4e-6,
                self.hw.service_jitter_sigma,
            )
            yield self.client_res.use(service)
        if total >= PAGE:
            yield self.membus.transfer(total)
        yield from self.cache.dirty(f.stream, total)
        f.pos += total

    def _read(self, f: SimFile, nbytes: int):
        """Restart path: sequential read RPCs with client readahead.

        ``state`` is [bytes demanded, bytes fetched] per stream.  The
        fetch cursor advances at *issue* time (window reservation), so
        concurrent readers of one stream — CRFS's restart prefetchers —
        fetch disjoint windows and pipeline the link/CPU/disk stages
        instead of duplicating work.
        """
        state = self._read_state.setdefault(f.stream, [0, 0])
        state[0] += nbytes
        window = self.hw.readahead_window
        while state[1] < state[0]:
            state[1] += window
            yield from self.server.link.roundtrip(window)
            yield self.server.cpu.use(
                max(1, -(-window // self.hw.nfs_wsize))
                * self.hw.nfs_server_op_overhead
            )
            block = self.server.allocator.alloc(nbytes=window)
            yield self.server.disk.io(block, window, "R", f.stream)
        if nbytes >= PAGE:
            yield self.membus.transfer(nbytes)

    def close(self, f: SimFile):
        # Close-to-open consistency: flush everything for this file.
        yield from self.cache.sync_stream(f.stream)
        yield self.sim.timeout(self.hw.nfs_rtt)  # final commit round-trip

    def fsync(self, f: SimFile):
        yield from self.cache.sync_stream(f.stream)
        yield self.sim.timeout(self.hw.nfs_rtt)
