"""Tier composition for the timing plane.

:class:`TieredSimFilesystem` is the timing twin of the functional
plane's :class:`~repro.backends.tiered.TieredBackend`'s *storage* half:
it composes a chain of :class:`~repro.simio.fsbase.SimFilesystem`
models (e.g. Null → NFS) behind one filesystem whose ordinary
``write``/``writev``/``read`` route to **tier 0** only.  The staging
half — the pump processes, the per-tier retry/breaker loops, the
:class:`~repro.pipeline.staging.StagingCore` accounting — lives in
:class:`~repro.simcrfs.model.SimCRFS`, which drives the per-tier ops
exposed here (``tier_read``/``tier_write``/``tier_writev``/
``tier_fsync``), mirroring the functional split where the mount's
backend owns the bytes and the pump owns the movement.

Per-tier fault injection composes naturally: wrap any individual tier
in a :class:`~repro.simio.faulty.FaultySimFilesystem` and the pump's
migrations into that tier see the same op names (``pwrite`` /
``pwritev`` / ``pread`` / ``fsync``) a per-tier
:class:`~repro.backends.faulty.FaultyBackend` sees on the functional
plane.
"""

from __future__ import annotations

from typing import Sequence

from .fsbase import SimFile, SimFilesystem

__all__ = ["TieredSimFile", "TieredSimFilesystem"]


class TieredSimFile(SimFile):
    """One open file across every tier: the composite the model holds,
    plus the per-tier inner files the pump writes into."""

    __slots__ = ("tier_files",)

    def __init__(self, path: str):
        super().__init__(path)
        self.tier_files: list[SimFile] = []


class TieredSimFilesystem(SimFilesystem):
    """A chain of filesystem models; the client path is tier 0."""

    name = "tiered"

    def __init__(self, tiers: Sequence[SimFilesystem]):
        if len(tiers) < 2:
            raise ValueError(
                f"TieredSimFilesystem needs >= 2 tiers, got {len(tiers)} "
                "(a single tier is just that filesystem)"
            )
        # No super().__init__: sim/hw/rng are tier 0's, and the op
        # totals are read-through properties below (like FaultySimFilesystem).
        self.tiers: list[SimFilesystem] = list(tiers)
        self.sim = tiers[0].sim
        self.hw = tiers[0].hw
        self.rng = tiers[0].rng

    # -- op totals are tier 0's (the mount's backend view) ---------------------

    @property
    def total_writes(self) -> int:
        return self.tiers[0].total_writes

    @property
    def total_bytes(self) -> int:
        return self.tiers[0].total_bytes

    @property
    def total_reads(self) -> int:
        return self.tiers[0].total_reads

    # -- client path: tier 0 ---------------------------------------------------

    def open(self, path: str) -> TieredSimFile:
        f = TieredSimFile(path)
        f.tier_files = [t.open(path) for t in self.tiers]
        return f

    def write(self, f: TieredSimFile, nbytes: int):
        tf = f.tier_files[0]
        tf.bulk_writer = f.bulk_writer
        yield from self.tiers[0].write(tf, nbytes)
        f.pos += nbytes

    def writev(self, f: TieredSimFile, sizes: "list[int]"):
        tf = f.tier_files[0]
        tf.bulk_writer = f.bulk_writer
        yield from self.tiers[0].writev(tf, sizes)
        f.pos += sum(sizes)

    def _write(self, f: SimFile, nbytes: int):  # pragma: no cover - write()
        yield from self.tiers[0]._write(f, nbytes)  # is fully delegated above

    def read(self, f: TieredSimFile, nbytes: int):
        # Tier 0 is a full replica by construction — reads never wait on
        # the pump (mirror of TieredBackend.pread).
        yield from self.tiers[0].read(f.tier_files[0], nbytes)

    def close(self, f: TieredSimFile):
        """Generator: close every tier's file (the model defers the call
        while migrations are pending — mirror of the functional deferred
        close)."""
        for tier, fs in enumerate(self.tiers):
            yield from fs.close(f.tier_files[tier])

    def fsync(self, f: TieredSimFile):
        """Tier-0 durability only; the model's staging fsync drives
        :meth:`tier_fsync` per level for deeper durability."""
        yield from self.tiers[0].fsync(f.tier_files[0])

    # -- pump path: explicit per-tier ops --------------------------------------

    def tier_read(self, f: TieredSimFile, tier: int, nbytes: int):
        yield from self.tiers[tier].read(f.tier_files[tier], nbytes)

    def tier_write(self, f: TieredSimFile, tier: int, nbytes: int):
        tf = f.tier_files[tier]
        # Pump writes are CRFS's own threads issuing large aligned
        # extents — the bulk-writer path, like chunk writeback.
        tf.bulk_writer = True
        yield from self.tiers[tier].write(tf, nbytes)

    def tier_writev(self, f: TieredSimFile, tier: int, sizes: "list[int]"):
        tf = f.tier_files[tier]
        tf.bulk_writer = True
        yield from self.tiers[tier].writev(tf, sizes)

    def tier_fsync(self, f: TieredSimFile, tier: int):
        yield from self.tiers[tier].fsync(f.tier_files[tier])
