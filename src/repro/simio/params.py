"""Calibrated hardware constants for the testbed model.

The paper's cluster (Section V-A): 64 nodes, each with two 2.33 GHz
quad-core Xeons (8 cores), 6 GB RAM, one 250 GB ST3250620NS SATA disk,
DDR InfiniBand (MPI) plus 1 GigE; Lustre 1.8.3 with 1 MDS + 3 OSTs over
IB; NFSv3 over IPoIB, single server; Linux 2.6.30, FUSE 2.8.1 with
``big_writes`` (128 KiB max request).

Values are chosen to land the *shapes* of the paper's results, per the
reproduction brief (who wins, by what factor, where crossovers fall) —
each constant is annotated with the observation that pins it.  They are
collected in one frozen dataclass so ablation studies can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..units import GiB, KiB, MB, MiB

__all__ = ["HardwareParams", "DEFAULT_HW"]


@dataclass(frozen=True)
class HardwareParams:
    # ------------------------------------------------------------------ node
    #: Cores per node (two quad-core Xeons).
    cores_per_node: int = 8
    #: RAM per node.
    node_memory: int = 6 * GiB
    #: Sustained single-copy memory bandwidth available to page-cache /
    #: chunk copies, shared processor-style between concurrent writers.
    #: 2008-era FSB Xeons sustain a few GB/s aggregate; FUSE's extra copy
    #: halves what a write sees.  Pinned by Fig 5's ~1.1 GB/s peak
    #: aggregation bandwidth for 8 writers.
    membus_bandwidth: float = 1250 * MB

    # ------------------------------------------------------------------ syscalls / FUSE
    #: Fixed syscall + VFS entry cost of a write() that stays in cache.
    syscall_overhead: float = 1.5e-6
    #: FUSE adds a user-kernel-user round trip per request.  Pinned by
    #: Fig 5: at 128 KiB chunks the pipeline still clears >700 MB/s, so
    #: per-request cost must be tens of microseconds.
    fuse_request_overhead: float = 18e-6
    #: FUSE big_writes splits writes into requests of this size.
    fuse_max_request: int = 128 * KiB

    # ------------------------------------------------------------------ ext3 (local fs)
    #: Serialized per-write cost of block/extent allocation + journal
    #: bookkeeping for a write that dirties new pages.  This is the VFS
    #: contention of Section III: with 8 writers queueing, effective
    #: medium-write latency reaches milliseconds (Table I: the 4-16 KiB
    #: bucket eats ~45% of checkpoint time).
    ext3_alloc_overhead: float = 400e-6
    #: Effective serialized per-new-page cost: page allocation under the
    #: zone/tree locks while 7 other cores hammer them.  Pinned jointly
    #: by Table I's time split between the medium (4-16 KiB, count-bound)
    #: and >256 KiB (page-count-bound) buckets.
    ext3_page_cost: float = 15e-6
    #: Journal commit interval (kjournald, data=ordered): every commit
    #: forces dirty data of the fs to disk and stalls allocators.
    ext3_commit_interval: float = 5.0
    #: Bytes of ordered data flushed while the commit blocks new journal
    #: handles; the rest of the commit flush proceeds unlocked.
    ext3_commit_locked_bytes: int = 24 * MiB
    #: Per-inode block reservation window (ext3 reservations): a file's
    #: appends stay contiguous in runs of this size even under
    #: interleaved multi-file allocation.  Pins how fragmented native
    #: writeback is (Fig 10a) versus CRFS's contiguous 4 MiB chunks.
    ext3_reservation: int = 512 * KiB
    #: Multiplier on serialized allocation costs while background
    #: writeback is active (foreground/writeback interference).
    ext3_writeback_interference: float = 2.5
    #: While writeback is active, each allocating write risks a
    #: balance_dirty_pages / journal-handle stall: probability per call,
    #: and the mean of the (exponential) stall duration.  Random victims
    #: are what spread per-process completion times 2x (Figs 3 and 11).
    ext3_stall_prob: float = 0.15
    ext3_stall_mean: float = 0.035
    #: Per-page scaling of stall probability and duration: writes that
    #: dirty more pages collide with writeback more often and for longer
    #: (pins Table I's >1M bucket costing ~20% of time natively).
    ext3_stall_page_prob: float = 1.0 / 32.0
    ext3_stall_page_dur: float = 1.0 / 64.0
    #: Sigma of the per-file lognormal fortune factor on stalls.
    per_file_luck_sigma: float = 0.28
    #: Memory the OS, daemons and the MPI stack keep from being dirtyable.
    os_reserve: int = int(1.5 * GiB)

    # ------------------------------------------------------------------ CRFS pipeline
    #: Writer-side cost of sealing a chunk and grabbing the next one
    #: (queue insert, metadata update, pool bookkeeping).  Pinned by
    #: Fig 5's larger-chunks-are-faster ordering.
    crfs_seal_overhead: float = 30e-6
    #: Fraction of *available* (non-application) memory dirty pages may
    #: occupy before writers are throttled to disk speed
    #: (vm.dirty_ratio).  Pins the class-D crossover where ext3 becomes
    #: disk-bound for CRFS too.
    dirty_ratio: float = 0.10
    #: Background writeback starts at this fraction (vm.dirty_background_ratio).
    #: Low enough that a class-C checkpoint crosses it mid-write, putting
    #: writeback traffic on the disk during the checkpoint (Fig 10) and
    #: interference on the foreground (Fig 3's spread).
    dirty_background_ratio: float = 0.005

    # ------------------------------------------------------------------ disk (ST3250620NS)
    #: Streaming transfer bandwidth of the SATA disk.
    disk_bandwidth: float = 72 * MB
    #: Average seek+rotation penalty for a discontiguous access.
    disk_seek_time: float = 8.0e-3
    #: Seeks shorter than this many bytes of LBA distance cost
    #: proportionally less (short-stroke seeks).
    disk_short_seek_span: int = 64 * MiB
    #: Minimum seek cost (settle + rotational average) for any
    #: non-contiguous access.
    disk_min_seek: float = 2.0e-3
    #: Disk block (sector cluster) size used by the allocator/trace.
    disk_block: int = 4 * KiB
    #: Sequential readahead window (restart path): how much the kernel
    #: fetches per disk access during a streaming read.
    readahead_window: int = 512 * KiB

    # ------------------------------------------------------------------ NFS
    #: Client-side per-RPC preparation cost (xdr encode, rpc slot).
    nfs_client_op_overhead: float = 30e-6
    #: Write RPC payload size (wsize).
    nfs_wsize: int = 32 * KiB
    #: IPoIB round-trip time.
    nfs_rtt: float = 120e-6
    #: IPoIB effective link bandwidth (single server NIC, shared).
    nfs_link_bandwidth: float = 700 * MB
    #: Wire gather window: bytes per link round-trip burst.
    nfs_server_gather: int = 256 * KiB
    #: Per-RPC server CPU cost on the clean bulk path.
    nfs_server_op_overhead: float = 25e-6
    #: Per-*fragment* server slot cost when handling fragment-dense runs
    #: (sub-wsize gathering, attribute churn, slot contention).  Pins
    #: native class B/C NFS being dominated by the small-op storm while
    #: CRFS and class-D bulk runs stream.
    nfs_congested_rpc_cost: float = 0.5e-3
    #: Fragment density (write calls per MiB of run) above which a flush
    #: run takes the congested path.  Native BLCR streams run ~60-110
    #: fragments/MiB at class B/C and ~18 at class D; CRFS chunks ~0.25.
    nfs_congestion_density: float = 30.0
    #: Server disk streaming bandwidth (server-grade spindle).
    nfs_server_disk_bandwidth: float = 85 * MB

    # ------------------------------------------------------------------ Lustre
    #: Number of object storage targets (paper: 3 OSTs).
    lustre_osts: int = 3
    #: Per-OST disk bandwidth (server-grade disks + IB transport).
    lustre_ost_bandwidth: float = 250 * MB
    #: Per-OST seek penalty for discontiguous object writes.
    lustre_ost_seek: float = 2.5e-3
    #: Stripe size (how files spread over OSTs).
    lustre_stripe: int = 1 * MiB
    #: RPC size to OSTs.
    lustre_rpc_size: int = 1 * MiB
    #: Client per-write base overhead (llite + LDLM locking), paid by a
    #: lone writer; higher than ext3 — pins native Lustre being slower
    #: than native ext3 at class B/C.
    lustre_client_op_overhead: float = 0.26e-3
    #: Per-queued-contender multiplier on the client op cost (lock
    #: ping-pong): 8 concurrent writers push the effective per-op cost
    #: to ~1.7 ms.  Pins Fig 9's -8% at 1 ppn vs -30% at 8 ppn.
    lustre_contention_factor: float = 0.85
    #: Per-new-page client cost.
    lustre_page_cost: float = 25e-6
    #: Per-client dirty cache grant (sum over OSCs; Lustre 1.8 default
    #: 32 MiB per OST).  Pins the class-D Lustre throttling crossover.
    lustre_client_cache: int = 96 * MiB
    #: IB link bandwidth per client node to the OST fabric.
    lustre_link_bandwidth: float = 1200 * MB

    # ------------------------------------------------------------------ jitter
    #: Lognormal sigma applied to serialized service times; produces the
    #: per-process completion spread of Fig 3 without changing means much.
    service_jitter_sigma: float = 0.85

    def with_(self, **changes: Any) -> "HardwareParams":
        return replace(self, **changes)


DEFAULT_HW = HardwareParams()
