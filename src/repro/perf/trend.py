"""The perf trend dashboard over committed BENCH history.

``python -m repro.perf trend`` reads every ``BENCH_*.json`` under
``results/perf`` (one per landed perf-relevant PR, filename-ordered =
time-ordered) and renders a per-scenario dashboard:

* a sparkline per tracked metric (goodput, drain time, restore span,
  bytes copied) across the whole history, so a drift that crept in
  over several PRs is visible even when each step stayed inside the
  compare gate's tolerance;
* first→last and best→last deltas, pinning both the cumulative
  trajectory and how far the head sits below its historical best;
* a staleness check: when the committed baseline is older than the
  :data:`STALE_AFTER` newest BENCH artifacts, the baseline has stopped
  tracking the code and ``update-baseline`` is overdue (warning only —
  the compare gate already fails hard on real drift).

``trend --check`` is the CI mode: nonzero exit when the newest BENCH
regresses goodput beyond :data:`CHECK_TOLERANCE` against the BENCH
immediately before it — the artifact-to-artifact gate that pins a perf
shift to the PR that introduced it.  ``trend --json`` emits the whole
computed structure for tooling.

Everything here is a pure function of the loaded artifacts: no clocks,
no filesystem access — the CLI does the globbing and printing.
"""

from __future__ import annotations

from typing import Any

from ..util.tables import TextTable

__all__ = [
    "CHECK_TOLERANCE",
    "STALE_AFTER",
    "TREND_METRICS",
    "compute_trend",
    "render_trend",
    "sparkline",
]

#: Metrics the dashboard tracks per scenario.  ``restore_span_s`` and
#: ``bytes_copied`` are optional extras — scenarios (or historical
#: BENCHes) without them show a gap, not an error.
TREND_METRICS = ("goodput_mib_s", "drain_time_s", "restore_span_s", "bytes_copied")

#: ``--check`` trips when the newest BENCH's goodput drops more than
#: this fraction below the previous BENCH (matches the compare gate's
#: goodput tolerance).
CHECK_TOLERANCE = 0.10

#: Baseline-staleness horizon: this many BENCHes newer than the
#: committed baseline and the dashboard warns that the baseline has
#: stopped tracking the code.
STALE_AFTER = 3

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float | None]) -> str:
    """One min-max-scaled glyph per value; ``·`` marks a gap."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    lo, hi = min(present), max(present)
    out = []
    for v in values:
        if v is None:
            out.append("·")
        elif hi == lo:
            out.append(_SPARK_GLYPHS[0])
        else:
            frac = (v - lo) / (hi - lo)
            out.append(_SPARK_GLYPHS[round(frac * (len(_SPARK_GLYPHS) - 1))])
    return "".join(out)


def _series(
    artifacts: list[tuple[str, dict[str, Any]]], scenario: str, metric: str
) -> list[float | None]:
    out: list[float | None] = []
    for _, art in artifacts:
        m = art["planes"].get("sim", {}).get(scenario)
        out.append(m.get(metric) if m is not None else None)
    return out


def compute_trend(
    artifacts: list[tuple[str, dict[str, Any]]],
    baseline: dict[str, Any] | None = None,
    tolerance: float = CHECK_TOLERANCE,
) -> dict[str, Any]:
    """The dashboard structure over a name-ordered BENCH history.

    ``artifacts`` is ``[(name, artifact), ...]`` oldest first (the
    CLI's sorted glob).  The returned dict carries the per-scenario
    metric series, the endpoint deltas, the newest-vs-previous goodput
    gate (``regressions``) and the baseline staleness verdict — the
    CLI renders it, ``--json`` dumps it verbatim.
    """
    scenarios: list[str] = []
    for _, art in artifacts:
        for name in art["planes"].get("sim", {}):
            if name not in scenarios:
                scenarios.append(name)

    table: dict[str, Any] = {}
    for scenario in scenarios:
        metrics: dict[str, Any] = {}
        for metric in TREND_METRICS:
            values = _series(artifacts, scenario, metric)
            present = [v for v in values if v is not None]
            if not present:
                continue
            first, last, best = present[0], present[-1], max(present)
            if metric != "goodput_mib_s":
                best = min(present)  # times and copies: smaller is better
            metrics[metric] = {
                "values": values,
                "first": first,
                "last": last,
                "best": best,
                "first_to_last": (last - first) / first if first else 0.0,
                "best_to_last": (last - best) / best if best else 0.0,
            }
        table[scenario] = metrics

    # The CI gate: newest BENCH vs the one immediately before it.
    regressions: list[dict[str, Any]] = []
    if len(artifacts) > 1:
        prev_name, prev = artifacts[-2]
        last_name, last = artifacts[-1]
        prev_sim = prev["planes"].get("sim", {})
        last_sim = last["planes"].get("sim", {})
        for scenario in scenarios:
            a = prev_sim.get(scenario, {}).get("goodput_mib_s")
            b = last_sim.get(scenario, {}).get("goodput_mib_s")
            if a is None or b is None or a <= 0:
                continue
            if b < a * (1.0 - tolerance):
                regressions.append(
                    {
                        "scenario": scenario,
                        "metric": "goodput_mib_s",
                        "previous": a,
                        "latest": b,
                        "change": (b - a) / a,
                        "previous_artifact": prev_name,
                        "latest_artifact": last_name,
                    }
                )

    # Baseline staleness: count BENCHes created after the baseline was
    # pinned (ISO-8601 strings order lexicographically).
    stale = None
    if baseline is not None:
        pinned = str(baseline.get("created", ""))
        newer = sum(
            1 for _, art in artifacts if str(art.get("created", "")) > pinned
        )
        stale = {
            "baseline_created": pinned,
            "benches_newer": newer,
            "stale": newer >= STALE_AFTER,
        }

    return {
        "artifacts": [name for name, _ in artifacts],
        "scenarios": scenarios,
        "metrics": list(TREND_METRICS),
        "table": table,
        "check": {"tolerance": tolerance, "regressions": regressions},
        "staleness": stale,
    }


def render_trend(trend: dict[str, Any]) -> str:
    """Human-readable dashboard for a :func:`compute_trend` structure."""
    n = len(trend["artifacts"])
    table = TextTable(
        ["scenario", "metric", f"trend (n={n})", "first", "last", "Δfirst", "Δbest"],
        title="Perf trend dashboard (sim plane, oldest → newest BENCH)",
    )
    for scenario in trend["scenarios"]:
        for metric, row in trend["table"][scenario].items():
            table.add_row(
                [
                    scenario,
                    metric,
                    sparkline(row["values"]),
                    f"{row['first']:.4g}",
                    f"{row['last']:.4g}",
                    f"{row['first_to_last']:+.1%}",
                    f"{row['best_to_last']:+.1%}",
                ]
            )
    lines = [table.render()]
    lines.append(
        f"history: {trend['artifacts'][0]} → {trend['artifacts'][-1]}"
        if n > 1
        else f"history: {trend['artifacts'][0]} (one artifact; deltas are trivial)"
    )
    check = trend["check"]
    if check["regressions"]:
        for r in check["regressions"]:
            lines.append(
                f"REGRESSION: {r['scenario']} {r['metric']} "
                f"{r['previous']:.4g} → {r['latest']:.4g} ({r['change']:+.1%}) "
                f"vs {r['previous_artifact']}"
            )
    elif n > 1:
        lines.append(
            "check: newest BENCH within "
            f"{check['tolerance']:.0%} of the previous on every scenario"
        )
    stale = trend["staleness"]
    if stale is not None and stale["stale"]:
        lines.append(
            f"WARNING: baseline ({stale['baseline_created']}) predates "
            f"{stale['benches_newer']} BENCH artifact(s) — run "
            "`python -m repro.perf update-baseline`"
        )
    return "\n".join(lines)
