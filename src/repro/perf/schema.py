"""The BENCH artifact schema.

One ``BENCH_<timestamp>.json`` is one harness run:

.. code-block:: text

    {
      "schema_version": 1,
      "kind": "crfs-perf-bench",
      "created": "2026-08-05T12:00:00Z",   # excluded from determinism
      "seed": 2011,
      "fast": false,
      "planes": {
        "sim":  {"<scenario>": {<metrics>, "stats": {<snapshot>}}, ...},
        "real": {...}                       # present only when measured
      }
    }

Everything under ``planes`` is the *metric section*: for the sim plane
it is a pure function of (code, seed, scenario set), which is what
:func:`canonical_metrics` serializes for byte-identity checks and what
``compare`` gates CI on.  ``created`` and the header fields exist for
humans and provenance only.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from typing import Any

__all__ = [
    "ArtifactError",
    "SCHEMA_VERSION",
    "ARTIFACT_KIND",
    "REQUIRED_METRICS",
    "artifact_filename",
    "build_artifact",
    "canonical_metrics",
    "dump_artifact",
    "load_artifact",
    "validate_artifact",
]

SCHEMA_VERSION = 1
ARTIFACT_KIND = "crfs-perf-bench"

#: Scalar metrics every scenario block must carry (``stats`` rides along
#: as the full snapshot).  ``compare`` has a gating policy for each.
REQUIRED_METRICS = (
    "bytes_in",
    "writes",
    "elapsed_s",
    "goodput_mib_s",
    "write_latency_p50_s",
    "write_latency_p95_s",
    "chunk_write_p50_s",
    "chunk_write_p95_s",
    "chunks_queued",
    "chunks_written",
    "drain_waits",
    "drain_time_s",
)


class ArtifactError(ValueError):
    """A BENCH artifact is malformed or from an unknown schema version."""


def artifact_filename(created: str) -> str:
    """``BENCH_<compact-utc-stamp>.json`` for a ``created`` ISO string."""
    stamp = created.replace("-", "").replace(":", "")
    return f"BENCH_{stamp}.json"


def utc_now() -> str:
    """Second-resolution UTC timestamp, Z-suffixed."""
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z")
    )


def build_artifact(
    planes: dict[str, dict[str, Any]],
    seed: int,
    fast: bool = False,
    created: str | None = None,
) -> dict[str, Any]:
    """Assemble and validate one artifact from per-plane metric maps."""
    artifact = {
        "schema_version": SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "created": created if created is not None else utc_now(),
        "seed": seed,
        "fast": fast,
        "planes": planes,
    }
    validate_artifact(artifact)
    return artifact


def validate_artifact(artifact: Any) -> None:
    """Raise :class:`ArtifactError` unless ``artifact`` is well-formed."""
    if not isinstance(artifact, dict):
        raise ArtifactError(f"artifact must be an object, got {type(artifact).__name__}")
    for key in ("schema_version", "kind", "created", "seed", "planes"):
        if key not in artifact:
            raise ArtifactError(f"artifact missing required key {key!r}")
    if artifact["kind"] != ARTIFACT_KIND:
        raise ArtifactError(f"not a perf artifact: kind={artifact['kind']!r}")
    if artifact["schema_version"] != SCHEMA_VERSION:
        raise ArtifactError(
            f"schema version {artifact['schema_version']!r} unsupported "
            f"(this harness speaks {SCHEMA_VERSION})"
        )
    planes = artifact["planes"]
    if not isinstance(planes, dict) or not planes:
        raise ArtifactError("artifact 'planes' must be a non-empty object")
    for plane, scenarios in planes.items():
        if plane not in ("sim", "real"):
            raise ArtifactError(f"unknown plane {plane!r}")
        if not isinstance(scenarios, dict) or not scenarios:
            raise ArtifactError(f"plane {plane!r} has no scenarios")
        for name, metrics in scenarios.items():
            missing = [m for m in REQUIRED_METRICS if m not in metrics]
            if missing:
                raise ArtifactError(
                    f"{plane}/{name}: missing metric(s) {missing}"
                )
            if "stats" not in metrics:
                raise ArtifactError(f"{plane}/{name}: missing stats snapshot")


def canonical_metrics(artifact: dict[str, Any], plane: str = "sim") -> str:
    """The plane's metric section as canonical (sorted, compact) JSON.

    Two runs at the same seed must produce byte-identical strings for
    the sim plane — the determinism contract the tests and the
    ``perfbench`` experiment assert.
    """
    try:
        section = artifact["planes"][plane]
    except KeyError:
        raise ArtifactError(f"artifact has no {plane!r} plane") from None
    return json.dumps(section, sort_keys=True, separators=(",", ":"))


def dump_artifact(artifact: dict[str, Any], path: str | pathlib.Path) -> pathlib.Path:
    """Validate and write one artifact; returns the path written."""
    validate_artifact(artifact)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: str | pathlib.Path) -> dict[str, Any]:
    """Read and validate one artifact."""
    path = pathlib.Path(path)
    try:
        artifact = json.loads(path.read_text())
    except FileNotFoundError:
        raise ArtifactError(f"no such artifact: {path}") from None
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: not JSON ({exc})") from None
    validate_artifact(artifact)
    return artifact
