"""``python -m repro.perf`` — run / compare / check / update the baseline.

Typical loop::

    # structural gate: the committed baseline covers every scenario
    python -m repro.perf check-baseline

    # measure (sim plane is the deterministic, CI-gating one)
    python -m repro.perf run --plane sim --out results/perf

    # gate: nonzero exit when any sim-plane metric regresses
    python -m repro.perf compare results/perf/BENCH_*.json

    # a PR that intentionally shifts perf re-pins the baseline
    python -m repro.perf update-baseline

    # the sparkline dashboard over the committed BENCH history
    # (--check gates newest-vs-previous goodput in CI)
    python -m repro.perf trend --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

from ..util.tables import TextTable
from .compare import compare_artifacts, render_report
from .runner import run_suite
from .scenarios import SCENARIOS
from .trend import compute_trend, render_trend
from .schema import (
    REQUIRED_METRICS,
    ArtifactError,
    artifact_filename,
    build_artifact,
    dump_artifact,
    load_artifact,
)

__all__ = ["main", "check_baseline", "DEFAULT_BASELINE", "DEFAULT_OUT_DIR"]

DEFAULT_BASELINE = pathlib.Path("benchmarks/baselines/baseline.json")
DEFAULT_OUT_DIR = pathlib.Path("results/perf")


def _summary_table(planes: dict[str, dict[str, Any]]) -> str:
    table = TextTable(
        [
            "plane",
            "scenario",
            "goodput MiB/s",
            "write p50 s",
            "write p95 s",
            "chunks",
            "drain s",
        ],
        title="Perf harness run",
    )
    for plane, scenarios in planes.items():
        for name, m in scenarios.items():
            table.add_row(
                [
                    plane,
                    name,
                    f"{m['goodput_mib_s']:.2f}",
                    f"{m['write_latency_p50_s']:.2e}",
                    f"{m['write_latency_p95_s']:.2e}",
                    str(m["chunks_written"]),
                    f"{m['drain_time_s']:.2e}",
                ]
            )
    return table.render()


def _cmd_run(args: argparse.Namespace) -> int:
    planes = ["sim", "real"] if args.plane == "both" else [args.plane]
    section = run_suite(
        planes, seed=args.seed, fast=args.fast, scenario_names=args.scenario
    )
    artifact = build_artifact(section, seed=args.seed, fast=args.fast)
    out = args.out / artifact_filename(artifact["created"])
    dump_artifact(artifact, out)
    print(_summary_table(section))
    print(f"\nwrote {out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    new = load_artifact(args.artifact)
    baseline = load_artifact(args.baseline)
    report = compare_artifacts(new, baseline)
    print(render_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def check_baseline(baseline: dict[str, Any]) -> list[str]:
    """Structural sanity of a committed baseline; returns problems.

    The metric *values* are the compare gate's business — this guards
    the baseline's shape: every curated scenario present with its
    required metrics, and each subsystem scenario carrying the stats
    section that proves its machinery actually engaged (so a future
    regeneration can't silently pin a baseline where readahead,
    batching, tenancy, tiering, or the restart storm never ran).
    """
    problems: list[str] = []
    scenarios = baseline.get("planes", {}).get("sim", {})
    if not scenarios:
        return ["baseline has no sim plane"]

    for name in SCENARIOS:
        if name not in scenarios:
            problems.append(f"scenario {name!r} missing from the baseline")
            continue
        missing = [k for k in REQUIRED_METRICS if k not in scenarios[name]]
        if missing:
            problems.append(f"{name}: required metric(s) missing: {missing}")
    for name in scenarios:
        if name not in SCENARIOS:
            problems.append(f"baseline pins unknown scenario {name!r}")

    def sub(scenario: str, *path: str) -> Any:
        node: Any = scenarios.get(scenario)
        for key in path:
            if not isinstance(node, dict) or key not in node:
                problems.append(
                    f"{scenario}: missing {'.'.join(path)} in the snapshot"
                )
                return None
            node = node[key]
        return node

    read = sub("restart_readahead", "stats", "read")
    if read is not None and not (read.get("prefetched", 0) > 0):
        problems.append("restart_readahead: no prefetches in the baseline")

    batch = sub("batched_writeback", "stats", "batch")
    if batch is not None and not (batch.get("batches", 0) > 0):
        problems.append("batched_writeback: the gather never coalesced")

    tenants = sub("tenant_storm", "stats", "tenants")
    if tenants is not None:
        if not {"storm", "alice", "bob"} <= set(tenants):
            problems.append(
                f"tenant_storm: tenants incomplete: {sorted(tenants)}"
            )
        elif not tenants["storm"]["chunks_written"] > 0:
            problems.append("tenant_storm: the storm tenant never drained")

    tiers = sub("tiered_staging", "stats", "tiers")
    if tiers is not None:
        if tiers.get("levels") != 2:
            problems.append(f"tiered_staging: expected 2 tiers: {tiers}")
        else:
            deep = tiers["per_tier"]["1"]
            if not deep["chunks_staged"] > 0:
                problems.append("tiered_staging: nothing reached the deep tier")
            if deep["chunks_stranded"] != 0:
                problems.append("tiered_staging: chunks stranded in staging")

    storm_read = sub("restart_storm", "stats", "read")
    if storm_read is not None:
        for key in ("window_grown", "window_shrunk", "current_window"):
            if key not in storm_read:
                problems.append(
                    f"restart_storm: adaptive counter {key!r} missing"
                )
        if not storm_read.get("prefetched", 0) > 0:
            problems.append("restart_storm: no prefetches in the baseline")
    if sub("restart_storm", "restore_span_s") is not None:
        if not scenarios["restart_storm"]["restore_span_s"] > 0:
            problems.append("restart_storm: restore_span_s not positive")

    delta = sub("llm_cadence", "stats", "delta")
    if delta is not None:
        if not delta.get("generations", 0) > 0:
            problems.append("llm_cadence: no delta generations committed")
        if not 0 < delta.get("bytes_written", 0) < delta.get("logical_bytes", 0):
            problems.append(
                "llm_cadence: delta bytes_written not strictly below the "
                "full-rewrite logical bytes — the delta path never saved "
                f"anything: {delta}"
            )
        if not delta.get("restores", 0) > 0:
            problems.append("llm_cadence: no chain restore in the baseline")
        if not delta.get("reassembly_reads", 0) > 0:
            problems.append("llm_cadence: restore never read a reassembly run")
    if sub("llm_cadence", "restore_span_s") is not None:
        if not scenarios["llm_cadence"]["restore_span_s"] > 0:
            problems.append("llm_cadence: restore_span_s not positive")

    mem = sub("zero_copy", "stats", "mem")
    if mem is not None:
        zc = scenarios["zero_copy"]
        for key in ("bytes_copied", "copies", "copy_ratio"):
            if key not in zc:
                problems.append(f"zero_copy: copy metric {key!r} missing")
        if mem.get("bytes_copied") != zc["bytes_in"]:
            problems.append(
                "zero_copy: the sequential write path must pay exactly one "
                f"copy per ingested byte (bytes_copied {mem.get('bytes_copied')} "
                f"!= bytes_in {zc['bytes_in']})"
            )
        by_site = mem.get("by_site", {})
        for site in ("read_boundary", "fetch"):
            if by_site.get(site, {}).get("bytes", 0) != 0:
                problems.append(
                    f"zero_copy: write-only scenario recorded {site} copies: "
                    f"{by_site.get(site)}"
                )

    return problems


def _cmd_check_baseline(args: argparse.Namespace) -> int:
    try:
        baseline = load_artifact(args.baseline)
    except ArtifactError as exc:
        print(f"cannot load baseline: {exc}", file=sys.stderr)
        return 2
    problems = check_baseline(baseline)
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    names = sorted(baseline["planes"]["sim"])
    print(
        f"baseline ok: {len(names)} scenario(s) "
        f"[{', '.join(names)}] with required metrics and stats sections"
    )
    return 0


def _cmd_update_baseline(args: argparse.Namespace) -> int:
    if args.from_artifact is not None:
        artifact = load_artifact(args.from_artifact)
        if "sim" not in artifact["planes"]:
            print("refusing: artifact has no sim plane", file=sys.stderr)
            return 2
    else:
        # The baseline pins only the deterministic plane; committing
        # machine-dependent real-plane numbers would gate on noise.
        section = run_suite(["sim"], seed=args.seed, fast=args.fast)
        artifact = build_artifact(section, seed=args.seed, fast=args.fast)
    dump_artifact(artifact, args.baseline)
    print(f"baseline updated: {args.baseline}")
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    """The regression dashboard over committed BENCH artifacts.

    Renders the per-scenario sparkline table (see
    :mod:`repro.perf.trend`); ``--json`` dumps the computed structure,
    ``--check`` exits nonzero when the newest BENCH regresses goodput
    beyond tolerance against the BENCH immediately before it.
    """
    paths = sorted(args.dir.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json artifacts under {args.dir}", file=sys.stderr)
        return 1
    artifacts = []
    for path in paths:
        try:
            artifacts.append((path.name, load_artifact(path)))
        except Exception as exc:  # noqa: BLE001 - a bad file shouldn't kill trend
            print(f"skipping {path}: {exc}", file=sys.stderr)
    if not artifacts:
        return 1
    baseline = None
    try:
        baseline = load_artifact(args.baseline)
    except ArtifactError:
        pass  # staleness is advisory; no baseline, no warning
    trend = compute_trend(artifacts, baseline=baseline)
    if args.json:
        print(json.dumps(trend, indent=2, sort_keys=True))
    else:
        print(render_trend(trend))
    if args.check and trend["check"]["regressions"]:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the scenario set, emit BENCH_*.json")
    run_p.add_argument(
        "--plane", choices=["sim", "real", "both"], default="sim",
        help="which plane(s) to measure (default: sim)",
    )
    run_p.add_argument("--seed", type=int, default=2011)
    run_p.add_argument("--fast", action="store_true", help="reduced image sizes")
    run_p.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    run_p.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT_DIR,
        help=f"artifact directory (default: {DEFAULT_OUT_DIR})",
    )
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser(
        "compare", help="diff an artifact against the baseline; exit 1 on regression"
    )
    cmp_p.add_argument("artifact", type=pathlib.Path, help="BENCH_*.json to judge")
    cmp_p.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"baseline artifact (default: {DEFAULT_BASELINE})",
    )
    cmp_p.add_argument(
        "--verbose", action="store_true", help="show all metrics, not just drift"
    )
    cmp_p.set_defaults(fn=_cmd_compare)

    chk_p = sub.add_parser(
        "check-baseline",
        help="verify the committed baseline covers every scenario; exit 1 if not",
    )
    chk_p.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"baseline artifact (default: {DEFAULT_BASELINE})",
    )
    chk_p.set_defaults(fn=_cmd_check_baseline)

    up_p = sub.add_parser(
        "update-baseline", help="re-pin the committed sim-plane baseline"
    )
    up_p.add_argument("--seed", type=int, default=2011)
    up_p.add_argument("--fast", action="store_true")
    up_p.add_argument(
        "--from-artifact", type=pathlib.Path, default=None, metavar="PATH",
        help="promote an existing artifact instead of re-running",
    )
    up_p.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help=f"baseline path to write (default: {DEFAULT_BASELINE})",
    )
    up_p.set_defaults(fn=_cmd_update_baseline)

    trend_p = sub.add_parser(
        "trend",
        help="per-scenario sparkline dashboard over committed BENCH files",
    )
    trend_p.add_argument(
        "--dir", type=pathlib.Path, default=DEFAULT_OUT_DIR,
        help=f"directory holding BENCH_*.json (default: {DEFAULT_OUT_DIR})",
    )
    trend_p.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
        help="baseline checked for staleness against the BENCH history "
        f"(default: {DEFAULT_BASELINE})",
    )
    trend_p.add_argument(
        "--json", action="store_true",
        help="emit the computed trend structure as JSON",
    )
    trend_p.add_argument(
        "--check", action="store_true",
        help="CI gate: exit 1 when the newest BENCH regresses goodput "
        "beyond tolerance against the previous BENCH",
    )
    trend_p.set_defaults(fn=_cmd_trend)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
