"""Deterministic perf-regression harness.

The paper's whole claim is throughput — aggregation turns many
contended medium writes into a few large sequential ones — so the repo
tracks a machine-readable perf trajectory alongside correctness.  This
package wraps a curated scenario set (:mod:`~repro.perf.scenarios`) on
**both planes**:

* **sim** — :class:`~repro.simcrfs.SimCRFS` on the virtual clock.
  Noise-free and bit-reproducible, so these numbers *gate* CI: a
  regression beyond per-metric tolerance fails the build.
* **real** — the threaded :class:`~repro.core.CRFS` against a tmpdir
  backend, timing actual Python execution.  Wall-clock numbers are
  machine-dependent, so they are recorded but advisory.

``python -m repro.perf`` exposes ``run`` (emit a schema-versioned
``BENCH_<timestamp>.json`` artifact), ``compare`` (diff an artifact
against the committed ``benchmarks/baselines/baseline.json``, nonzero
exit on sim-plane regression), and ``update-baseline``.
"""

from .compare import (
    OPTIONAL_METRICS,
    ComparisonReport,
    MetricDelta,
    compare_artifacts,
    render_report,
)
from .runner import run_scenario_real, run_scenario_sim, run_suite
from .scenarios import SCENARIOS, Scenario
from .trend import compute_trend, render_trend
from .schema import (
    SCHEMA_VERSION,
    ArtifactError,
    artifact_filename,
    build_artifact,
    canonical_metrics,
    dump_artifact,
    load_artifact,
    validate_artifact,
)

__all__ = [
    "ArtifactError",
    "ComparisonReport",
    "MetricDelta",
    "OPTIONAL_METRICS",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "Scenario",
    "artifact_filename",
    "build_artifact",
    "canonical_metrics",
    "compare_artifacts",
    "compute_trend",
    "dump_artifact",
    "load_artifact",
    "render_report",
    "render_trend",
    "run_scenario_real",
    "run_scenario_sim",
    "run_suite",
    "validate_artifact",
]
