"""The curated benchmark scenario set.

Each :class:`Scenario` pins one corner of the write path the harness
must keep honest:

* ``single_writer_seq`` — one rank streaming a BLCR-like (Table I)
  write mix; the baseline aggregation pipeline.
* ``concurrent_writers`` — N ranks into N files over an undersized
  pool and few IO threads: pool backpressure and queue contention.
* ``chunk_sweep_256k`` — the small-chunk sweep point (more seals per
  byte, planner- and handoff-bound; the left edge of paper Fig 5).
* ``fsync_heavy`` — periodic fsync forces flush+drain mid-stream, the
  latency-sensitive path (drain time dominates).
* ``degraded_retry`` — a bounded backend outage: retries back off,
  the circuit breaker trips, writes degrade to synchronous
  write-through, then the backend heals and the breaker recovers.
* ``batched_writeback`` — 4 ranks at 16 KiB chunks through one IO
  thread with ``writeback_batch_chunks=8``: contiguous queued runs
  coalesce into single vectored backend writes (the drain-stage gather).
* ``restart_readahead`` — write an image then read it back
  sequentially over the NFS model: the restart read plane, with the
  chunked readahead cache prefetching through the IO pool.
* ``restart_storm`` — 4 ranks restart concurrently over the striped
  Lustre model behind a deliberately over-eager readahead window on a
  tight shared cache: the adaptive clamp keeps the window inside the
  thrash-free ceiling, beating both the static window and
  readahead-off on time-to-last-restore (``restore_span_s``).
* ``tenant_storm`` — a storm tenant's oversized burst beside two
  reserved-pool victims through one IO thread: weighted DRR service,
  queue-quota admission control, per-tenant pool partitioning.
* ``tiered_staging`` — hierarchical staging over a mem → NFS chain:
  chunk writebacks complete at tier-0 (staging) speed while batch-aware
  background pumps migrate extents to the deep tier; writers finish at
  tier-0 completion time, the pump drains after.
* ``llm_cadence`` — the LLM trainer personality: two tensor-shard
  files checkpoint a deterministic dirty quarter of their chunks every
  iteration through the delta pipeline (generation 0 is a full dump),
  then each restore reassembles the current image across the
  generation chain through the readahead cache.
* ``zero_copy`` — one rank streaming the Table-I mix down the
  aggregation path with copy accounting as the headline metric: the
  sequential write path must pay exactly one copy per ingested byte
  (the ``Chunk.append`` snapshot), so ``bytes_copied == bytes_in``
  and the gate trips if any redundant materialization sneaks back in.

Workloads are derived from ``rng_for(seed, "perf/<scenario>/<writer>")``
so every writer's byte stream is a pure function of the seed — two runs
of the same scenario at the same seed execute identical write
sequences on either plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..backends.faulty import FaultRule
from ..checkpoint.sizedist import WriteSizeDistribution
from ..config import CRFSConfig, TenantSpec
from ..units import KiB, MiB
from ..util.rng import rng_for

__all__ = ["SCENARIOS", "Scenario", "default_scenarios"]

#: Fast, bounded backoff so the functional plane's retries sleep
#: microseconds, matching the resilience test suite's knobs.
_RETRY_KNOBS = dict(retry_backoff=1e-4, retry_backoff_max=1e-3, retry_jitter=0.0)


def _no_rules() -> list[FaultRule]:
    return []


def _outage_rules() -> list[FaultRule]:
    """A bounded outage: the first 6 backend pwrites fail, then the
    backend heals.  Fresh rule objects per run — the schedule counts
    per instance."""
    return [
        FaultRule(op="pwrite", nth=1, every=True, until=6, error=OSError("EIO"))
    ]


@dataclass(frozen=True)
class Scenario:
    """One benchmark scenario, identical on both planes."""

    name: str
    description: str
    config: CRFSConfig
    nwriters: int = 1
    #: Bytes per writer (full / --fast runs).
    image_size: int = 8 * MiB
    fast_image_size: int = 1 * MiB
    #: fsync after every k writes (0 = only the implicit close drain).
    fsync_every: int = 0
    #: Restart read-back: after its write phase each writer seeks to 0
    #: and re-reads its image sequentially in requests of this size
    #: (0 = write-only scenario).
    read_request: int = 0
    #: Per-read restore work on the sim plane, in virtual seconds (the
    #: CRIU-style page-injection time readahead overlaps with the next
    #: fetch); the real plane never sleeps for it.
    read_think_s: float = 0.0
    #: Sim-plane backing filesystem: "null" (Fig-5 rig, raw aggregation),
    #: "nfs" (the shared-server NFSv3 model, whose staged read path —
    #: link, server CPU, disk — readahead can pipeline), "lustre" (the
    #: striped multi-OST model with per-request seek latency, the rig
    #: where prefetch pipelining is physical), or "tiered_nfs" (a null
    #: staging tier over the NFS model, pumped in the background; the
    #: real plane mirrors it as mem → local dir).
    sim_backend: str = "null"
    #: Factory for the backend fault schedule (fresh rules per run).
    fault_rules: Callable[[], list[FaultRule]] = field(default=_no_rules)
    #: Per-writer target paths (multi-tenant scenarios route writers to
    #: tenants through the mount's fnmatch rules); empty = every writer
    #: gets the anonymous ``/rank<i>.img``.
    writer_paths: tuple[str, ...] = ()
    #: Per-writer image-size multipliers (a storm writer pushes a far
    #: bigger burst than its victims); empty = everyone writes
    #: ``image_size`` bytes.
    writer_scale: tuple[float, ...] = ()
    #: Incremental-checkpoint mode: > 0 turns each writer into an LLM
    #: cadence checkpointer committing this many generations of its
    #: shard through the delta pipeline, then restoring the image
    #: across the chain (replaces the write-stream workload).
    delta_generations: int = 0
    #: Fraction of the shard's chunks dirtied per post-zero generation
    #: (1.0 = every generation is a full rewrite — the ablation arm).
    delta_dirty_fraction: float = 1.0

    def path(self, writer: int) -> str:
        """The file this writer targets (tenant routing happens here)."""
        if self.writer_paths:
            return self.writer_paths[writer % len(self.writer_paths)]
        return f"/rank{writer}.img"

    def image_for(self, writer: int, fast: bool) -> int:
        """This writer's image size in bytes."""
        base = self.fast_image_size if fast else self.image_size
        if self.writer_scale:
            return int(base * self.writer_scale[writer % len(self.writer_scale)])
        return base

    def sizes(self, seed: int, writer: int, fast: bool) -> list[int]:
        """The writer's deterministic write-size stream."""
        rng = rng_for(seed, f"perf/{self.name}/writer{writer}")
        return WriteSizeDistribution().plan(self.image_for(writer, fast), rng)

    def total_bytes(self, fast: bool) -> int:
        return sum(self.image_for(i, fast) for i in range(self.nwriters))


SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="single_writer_seq",
            description="one rank, Table-I write mix, default pipeline",
            config=CRFSConfig(chunk_size=1 * MiB, pool_size=8 * MiB, io_threads=4),
        ),
        Scenario(
            name="concurrent_writers",
            description="4 ranks, undersized pool: backpressure + contention",
            config=CRFSConfig(chunk_size=1 * MiB, pool_size=4 * MiB, io_threads=2),
            nwriters=4,
            image_size=4 * MiB,
            fast_image_size=512 * KiB,
        ),
        Scenario(
            name="chunk_sweep_256k",
            description="small-chunk sweep point: seal/handoff bound",
            config=CRFSConfig(
                chunk_size=256 * KiB, pool_size=4 * MiB, io_threads=4
            ),
        ),
        Scenario(
            name="fsync_heavy",
            description="fsync every 8 writes: flush+drain latency path",
            config=CRFSConfig(chunk_size=1 * MiB, pool_size=8 * MiB, io_threads=4),
            fsync_every=8,
            image_size=4 * MiB,
            # 512 KiB collapses to a single Table-I draw, so fsync_every
            # would never fire; 1 MiB keeps the drain path hot in --fast.
            fast_image_size=1 * MiB,
        ),
        Scenario(
            name="degraded_retry",
            description="bounded outage: retry, breaker trip, recovery",
            config=CRFSConfig(
                chunk_size=1 * MiB,
                pool_size=8 * MiB,
                io_threads=1,  # seal-order faults, like the faultsweep rows
                retry_attempts=8,
                breaker_threshold=3,
                **_RETRY_KNOBS,
            ),
            image_size=4 * MiB,
            fast_image_size=1 * MiB,
            fault_rules=_outage_rules,
        ),
        Scenario(
            name="batched_writeback",
            description="4 ranks, small chunks, coalesced writeback: "
            "contiguous runs issued as single vectored backend writes",
            config=CRFSConfig(
                chunk_size=16 * KiB,
                pool_size=4 * MiB,
                io_threads=1,
                writeback_batch_chunks=8,
            ),
            nwriters=4,
            image_size=4 * MiB,
            fast_image_size=1 * MiB,
        ),
        Scenario(
            name="restart_readahead",
            description="restart read-back over NFS: chunked readahead "
            "prefetched through the IO pool",
            config=CRFSConfig(
                chunk_size=512 * KiB,
                pool_size=8 * MiB,
                io_threads=4,
                read_cache_chunks=8,
                readahead_chunks=4,
            ),
            image_size=8 * MiB,
            fast_image_size=2 * MiB,
            read_request=256 * KiB,
            sim_backend="nfs",
        ),
        Scenario(
            name="restart_storm",
            description="4 ranks restart concurrently over the striped "
            "Lustre model through a deliberately over-eager window on a "
            "tight shared cache: the adaptive clamp keeps the window "
            "inside the thrash-free ceiling",
            config=CRFSConfig(
                chunk_size=256 * KiB,
                pool_size=16 * 256 * KiB,  # 4 chunks per resident rank
                io_threads=2,
                read_cache_chunks=4,
                readahead_chunks=3,  # working set 5 > cache 4: mis-tuned
                readahead_adaptive=True,
            ),
            nwriters=4,
            image_size=4 * MiB,
            fast_image_size=2 * MiB,
            read_request=256 * KiB,
            read_think_s=0.02,
            sim_backend="lustre",
        ),
        Scenario(
            name="tenant_storm",
            description="storm tenant's 4x burst beside two reserved-pool "
            "victims: DRR shares, queue-quota admission, pool partitions",
            config=CRFSConfig(
                chunk_size=64 * KiB,
                pool_size=2 * MiB,  # 32 chunks: 6+6 reserved, 20 shared
                io_threads=1,
                tenants=(
                    TenantSpec(
                        "storm", weight=1, queue_quota=16,
                        patterns=("/storm*",),
                    ),
                    TenantSpec(
                        "alice", weight=8, pool_reserved=6, patterns=("/a*",)
                    ),
                    TenantSpec(
                        "bob", weight=8, pool_reserved=6, patterns=("/b*",)
                    ),
                ),
            ),
            nwriters=3,
            writer_paths=("/storm0.img", "/a0.img", "/b0.img"),
            writer_scale=(4.0, 1.0, 1.0),
            image_size=2 * MiB,
            fast_image_size=512 * KiB,
        ),
        Scenario(
            name="tiered_staging",
            description="mem -> NFS staging chain: writebacks complete "
            "at tier 0 while batch-aware pumps migrate to the deep tier",
            config=CRFSConfig(
                chunk_size=1 * MiB,
                pool_size=8 * MiB,
                io_threads=4,
                tier_pump_threads=2,
                tier_pump_batch_chunks=4,
            ),
            nwriters=2,
            image_size=4 * MiB,
            fast_image_size=1 * MiB,
            sim_backend="tiered_nfs",
        ),
        Scenario(
            name="llm_cadence",
            description="LLM trainer cadence: per-iteration delta "
            "checkpoints of two tensor shards, restore reassembles the "
            "image across the generation chain",
            config=CRFSConfig(
                chunk_size=256 * KiB,
                pool_size=8 * MiB,  # 32 chunks: chain restore stays fed
                io_threads=2,
                read_cache_chunks=8,
                readahead_chunks=4,
            ),
            nwriters=2,
            writer_paths=("/shard0.ckpt", "/shard1.ckpt"),
            # 16 chunks at 256 KiB: round(0.25 * 16) = 4 dirty chunks
            # per generation, so 8 generations write 16 + 7*4 = 44 of
            # the 128 full-rewrite chunks (ratio 0.34375) — the
            # perfbench gate's 0.35 ceiling with deterministic margin.
            # --fast keeps the exact ratio: 4 chunks, 1 dirty.
            image_size=4 * MiB,
            fast_image_size=1 * MiB,
            sim_backend="nfs",
            delta_generations=8,
            delta_dirty_fraction=0.25,
        ),
        Scenario(
            name="zero_copy",
            description="one rank, sequential write path: the "
            "copy-accounting gate (one ingest copy per byte, "
            "bytes_copied == bytes_in)",
            config=CRFSConfig(chunk_size=1 * MiB, pool_size=8 * MiB, io_threads=2),
        ),
    )
}


def default_scenarios(names: list[str] | None = None) -> list[Scenario]:
    """Resolve scenario names (all of them when ``names`` is falsy)."""
    if not names:
        return list(SCENARIOS.values())
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s) {unknown}; know {sorted(SCENARIOS)}")
    return [SCENARIOS[n] for n in names]
