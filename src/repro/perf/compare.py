"""Artifact diffing and the regression gate.

``compare`` diffs a fresh artifact against the committed baseline,
scenario by scenario and metric by metric.  Sim-plane deltas beyond a
metric's tolerance are **regressions** (nonzero exit in the CLI — the
CI gate); real-plane deltas are reported but advisory, because
wall-clock numbers depend on the machine that produced them.

Tolerance policy (see :data:`POLICIES`): counters that are a pure
function of the workload (writes, chunks, bytes) must match exactly —
any drift means the pipeline changed shape, which is exactly what a
perf PR must own up to by re-running ``update-baseline``.  Rates and
times get a relative tolerance, plus an absolute floor so microsecond
noise on near-zero values cannot trip the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..util.tables import TextTable
from .schema import REQUIRED_METRICS

__all__ = [
    "ComparisonReport",
    "MetricDelta",
    "MetricPolicy",
    "OPTIONAL_METRICS",
    "POLICIES",
    "compare_artifacts",
    "render_report",
]


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is judged.

    ``direction`` — which way is worse: ``"higher"`` means bigger is
    better (goodput), ``"lower"`` means smaller is better (latencies),
    ``"exact"`` means any change is a regression.  ``tolerance`` is the
    allowed relative change against the baseline; ``abs_floor`` is the
    absolute slack always granted (for near-zero times).
    """

    direction: str
    tolerance: float = 0.0
    abs_floor: float = 0.0

    def regressed(self, baseline: float, new: float) -> bool:
        if self.direction == "exact":
            return new != baseline
        allowance = max(abs(baseline) * self.tolerance, self.abs_floor)
        if self.direction == "higher":
            return new < baseline - allowance
        if self.direction == "lower":
            return new > baseline + allowance
        raise ValueError(f"unknown direction {self.direction!r}")


#: Per-metric gate policy; every schema-required metric has one.
POLICIES: dict[str, MetricPolicy] = {
    "bytes_in": MetricPolicy("exact"),
    "writes": MetricPolicy("exact"),
    "chunks_queued": MetricPolicy("exact"),
    "chunks_written": MetricPolicy("exact"),
    "drain_waits": MetricPolicy("exact"),
    "elapsed_s": MetricPolicy("lower", tolerance=0.10, abs_floor=1e-6),
    "goodput_mib_s": MetricPolicy("higher", tolerance=0.10),
    "write_latency_p50_s": MetricPolicy("lower", tolerance=0.15, abs_floor=1e-6),
    "write_latency_p95_s": MetricPolicy("lower", tolerance=0.15, abs_floor=1e-6),
    "chunk_write_p50_s": MetricPolicy("lower", tolerance=0.15, abs_floor=1e-6),
    "chunk_write_p95_s": MetricPolicy("lower", tolerance=0.15, abs_floor=1e-6),
    "drain_time_s": MetricPolicy("lower", tolerance=0.15, abs_floor=1e-6),
}

#: Metrics newer harnesses record beside the required set.  Compared
#: only when BOTH artifacts carry the key, so a baseline (or historical
#: BENCH) that predates a metric never fails to diff — but once the
#: baseline pins one, drift gates exactly like a required counter.
OPTIONAL_METRICS: dict[str, MetricPolicy] = {
    "bytes_copied": MetricPolicy("exact"),
    "copies": MetricPolicy("exact"),
}


@dataclass(frozen=True)
class MetricDelta:
    """One (scenario, metric) comparison outcome."""

    plane: str
    scenario: str
    metric: str
    baseline: float
    new: float
    regressed: bool
    gated: bool  # False on the advisory (real) plane

    @property
    def change(self) -> float:
        """Relative change vs. the baseline (0.0 when baseline is 0)."""
        if self.baseline == 0:
            return 0.0
        return (self.new - self.baseline) / self.baseline


@dataclass
class ComparisonReport:
    """Everything ``compare`` found, split gated vs. advisory."""

    deltas: list[MetricDelta] = field(default_factory=list)
    #: Scenarios present in the baseline but absent from the new
    #: artifact, per gated plane — coverage loss fails the gate too.
    missing: list[str] = field(default_factory=list)
    #: Header disagreements (seed/fast) that make the diff
    #: apples-to-oranges — these fail the gate outright.
    mismatches: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed and d.gated]

    @property
    def advisories(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed and not d.gated]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing and not self.mismatches


def _compare_plane(
    report: ComparisonReport,
    plane: str,
    new: dict[str, Any],
    baseline: dict[str, Any],
    gated: bool,
) -> None:
    for scenario, base_metrics in baseline.items():
        if scenario not in new:
            if gated:
                report.missing.append(f"{plane}/{scenario}")
            else:
                report.notes.append(f"{plane}/{scenario}: not in new artifact")
            continue
        new_metrics = new[scenario]
        judged = [(m, POLICIES[m]) for m in REQUIRED_METRICS]
        judged += [
            (m, policy)
            for m, policy in OPTIONAL_METRICS.items()
            if m in base_metrics and m in new_metrics
        ]
        for metric, policy in judged:
            b, n = base_metrics[metric], new_metrics[metric]
            report.deltas.append(
                MetricDelta(
                    plane=plane,
                    scenario=scenario,
                    metric=metric,
                    baseline=b,
                    new=n,
                    regressed=policy.regressed(b, n),
                    gated=gated,
                )
            )
    for scenario in new:
        if scenario not in baseline:
            report.notes.append(
                f"{plane}/{scenario}: new scenario, no baseline yet"
            )


def compare_artifacts(
    new: dict[str, Any], baseline: dict[str, Any]
) -> ComparisonReport:
    """Diff two artifacts: sim plane gated, real plane advisory.

    Artifacts measured at a different seed or size class than the
    baseline are not comparable; that mismatch fails the gate before
    any metric is looked at.
    """
    report = ComparisonReport()
    for key in ("seed", "fast"):
        if new.get(key) != baseline.get(key):
            report.mismatches.append(
                f"{key}: new={new.get(key)!r} baseline={baseline.get(key)!r}"
            )
    if report.mismatches:
        return report
    for plane, gated in (("sim", True), ("real", False)):
        base_plane = baseline["planes"].get(plane)
        new_plane = new["planes"].get(plane)
        if base_plane is None:
            continue
        if new_plane is None:
            if gated:
                report.missing.extend(f"{plane}/{s}" for s in base_plane)
            else:
                report.notes.append(f"{plane}: plane not in new artifact")
            continue
        _compare_plane(report, plane, new_plane, base_plane, gated)
    return report


def render_report(report: ComparisonReport, verbose: bool = False) -> str:
    """Human-readable comparison: regressions first, then advisories."""
    table = TextTable(
        ["plane", "scenario", "metric", "baseline", "new", "change", "verdict"],
        title="Perf comparison (sim gated, real advisory)",
    )
    shown = [
        d
        for d in report.deltas
        if verbose or d.regressed
    ]
    for d in sorted(
        shown, key=lambda d: (not d.gated, not d.regressed, d.scenario, d.metric)
    ):
        verdict = (
            ("REGRESSION" if d.gated else "advisory") if d.regressed else "ok"
        )
        table.add_row(
            [
                d.plane,
                d.scenario,
                d.metric,
                f"{d.baseline:.6g}",
                f"{d.new:.6g}",
                f"{d.change:+.1%}",
                verdict,
            ]
        )
    lines = [table.render()]
    if not shown:
        lines.append("no metric drift beyond tolerance")
    for missing in report.missing:
        lines.append(f"MISSING: {missing} (baseline scenario not measured)")
    for mismatch in report.mismatches:
        lines.append(f"MISMATCH: {mismatch} (artifacts are not comparable)")
    for note in report.notes:
        lines.append(f"note: {note}")
    lines.append(
        "gate: PASS"
        if report.ok
        else f"gate: FAIL ({len(report.regressions)} regression(s), "
        f"{len(report.missing)} missing, {len(report.mismatches)} mismatch(es))"
    )
    return "\n".join(lines)
