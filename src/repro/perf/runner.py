"""Scenario execution on both planes.

One scenario run produces one metric block (see
:data:`~repro.perf.schema.REQUIRED_METRICS`): goodput, write/chunk
latency percentiles off the unified event stream, chunk counts, drain
time from the stats registry's ``drain`` section, and the full
``stats()`` snapshot.

The sim plane drives :class:`~repro.simcrfs.SimCRFS` over a
:class:`~repro.simio.nullfs.NullSimFilesystem` (paper Fig 5's rig: raw
aggregation, no backend noise) — or, per scenario, the shared-server
:class:`~repro.simio.nfs.NFSFilesystem` model whose staged read path
the restart readahead pipelines — on the virtual clock; every number is
a pure function of (code, seed).  The real plane drives the threaded
:class:`~repro.core.CRFS` over a
:class:`~repro.backends.localdir.LocalDirBackend` in a scratch
directory, timing actual execution; its numbers are machine-dependent
and therefore advisory.
"""

from __future__ import annotations

import math
import tempfile
import threading
import time
from typing import Any

from ..backends import FaultyBackend, MemBackend, TieredBackend
from ..backends.localdir import LocalDirBackend
from ..core import CRFS
from ..pipeline import ChunkWritten, PipelineEvent, PipelineObserver, WriteObserved
from ..sim import SharedBandwidth, Simulator
from ..simcrfs import SimCRFS
from ..simio.faulty import FaultySimFilesystem
from ..simio.lustre import LustreFilesystem, LustreServers
from ..simio.nfs import NFSFilesystem, NFSServer
from ..simio.nullfs import NullSimFilesystem
from ..simio.params import DEFAULT_HW
from ..simio.tiered import TieredSimFilesystem
from ..units import MiB
from ..util.rng import rng_for
from ..workloads import LLMCadenceWorkload
from .scenarios import Scenario, default_scenarios

__all__ = [
    "LatencyRecorder",
    "percentile",
    "run_scenario_real",
    "run_scenario_sim",
    "run_suite",
]


class LatencyRecorder(PipelineObserver):
    """Collect per-op durations off the unified event stream."""

    def __init__(self) -> None:
        self.write_durations: list[float] = []
        self.chunk_durations: list[float] = []

    def on_event(self, event: PipelineEvent) -> None:
        if isinstance(event, WriteObserved):
            self.write_durations.append(event.duration)
        elif isinstance(event, ChunkWritten) and event.error is None:
            self.chunk_durations.append(event.duration)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


def _metrics(
    total_bytes: int,
    nwrites: int,
    elapsed: float,
    recorder: LatencyRecorder,
    stats: dict[str, Any],
    restore_marks: list[tuple[float, float]] | None = None,
) -> dict[str, Any]:
    out = {
        "bytes_in": total_bytes,
        "writes": nwrites,
        "elapsed_s": elapsed,
        "goodput_mib_s": (total_bytes / MiB) / elapsed if elapsed > 0 else 0.0,
        "write_latency_p50_s": percentile(recorder.write_durations, 50),
        "write_latency_p95_s": percentile(recorder.write_durations, 95),
        "chunk_write_p50_s": percentile(recorder.chunk_durations, 50),
        "chunk_write_p95_s": percentile(recorder.chunk_durations, 95),
        "chunks_queued": stats["queue"]["puts"],
        "chunks_written": stats["chunks_written"],
        "drain_waits": stats["drain"]["waits"],
        "drain_time_s": stats["drain"]["time_total"],
        "stats": stats,
    }
    mem = stats.get("mem")
    if mem is not None:
        # Copy accounting (DESIGN.md §3k), promoted from the snapshot to
        # top-level metrics for every scenario.  Extra keys beside
        # REQUIRED_METRICS — compared only when both artifacts carry
        # them, so historical BENCHes that predate the ledger still load.
        out["bytes_copied"] = mem["bytes_copied"]
        out["copies"] = mem["copies"]
        out["copy_ratio"] = (
            mem["bytes_copied"] / total_bytes if total_bytes > 0 else 0.0
        )
    if restore_marks:
        # Read-back scenarios: time-to-last-restore (first restart to
        # last byte delivered) and the slowest single rank's restore.
        # Extra keys beside REQUIRED_METRICS — recorded in the artifact,
        # gated by the perfbench ablation checks rather than compare.
        starts = [t0 for t0, _ in restore_marks]
        ends = [t1 for _, t1 in restore_marks]
        out["restore_span_s"] = max(ends) - min(starts)
        out["restore_latency_max_s"] = max(t1 - t0 for t0, t1 in restore_marks)
    return out


def _delta_workload(scenario: Scenario, fast: bool) -> LLMCadenceWorkload | None:
    """The LLM cadence schedule for a delta scenario (None otherwise).

    One source of truth for the dirty-chunk draws: both planes (and the
    experiments) replay the same ``rng_for``-derived schedule, so the
    delta stats section is a pure function of (scenario, seed)."""
    if scenario.delta_generations <= 0:
        return None
    return LLMCadenceWorkload(
        shards=scenario.nwriters,
        shard_bytes=scenario.image_for(0, fast),
        iterations=scenario.delta_generations,
        dirty_fraction=scenario.delta_dirty_fraction,
    )


# -- sim plane ----------------------------------------------------------------


def run_scenario_sim(scenario: Scenario, seed: int, fast: bool = False) -> dict[str, Any]:
    """One scenario on the virtual clock; noise-free metrics."""
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    rng = rng_for(seed, f"perf/{scenario.name}/backend")
    if scenario.sim_backend == "nfs":
        backend = NFSFilesystem(sim, hw, rng, membus, NFSServer(sim, hw))
    elif scenario.sim_backend == "lustre":
        backend = LustreFilesystem(
            sim, hw, rng, membus, LustreServers(sim, hw), app_memory=0
        )
    elif scenario.sim_backend == "tiered_nfs":
        deep_rng = rng_for(seed, f"perf/{scenario.name}/backend-deep")
        backend = TieredSimFilesystem(
            [
                NullSimFilesystem(sim, hw, rng),
                NFSFilesystem(sim, hw, deep_rng, membus, NFSServer(sim, hw)),
            ]
        )
    else:
        backend = NullSimFilesystem(sim, hw, rng)
    rules = scenario.fault_rules()
    if rules:
        backend = FaultySimFilesystem(backend, rules)
    recorder = LatencyRecorder()
    crfs = SimCRFS(sim, hw, scenario.config, backend, membus, observers=(recorder,))

    cadence = _delta_workload(scenario, fast)
    workloads = [
        [] if cadence else scenario.sizes(seed, i, fast)
        for i in range(scenario.nwriters)
    ]
    restore_marks: list[tuple[float, float]] = []

    def delta_writer(index: int):
        path = scenario.path(index)
        nbytes = scenario.image_for(index, fast)
        cs = scenario.config.chunk_size
        for gen in range(scenario.delta_generations):
            dirty = cadence.dirty_chunks(seed, index, gen, cs)
            yield from crfs.delta_checkpoint(path, nbytes, dirty)
        t0 = sim.now
        yield from crfs.delta_restore(path)
        restore_marks.append((t0, sim.now))

    def writer(index: int):
        f = crfs.open(scenario.path(index))
        for n, size in enumerate(workloads[index], start=1):
            yield from crfs.write(f, size)
            if scenario.fsync_every and n % scenario.fsync_every == 0:
                yield from crfs.fsync(f)
        if scenario.read_request:
            # Restart phase: settle the checkpoint (restart never
            # overlaps writeback), then re-read the image sequentially
            # through the same handle (the planner's append point sizes
            # the file).
            yield from crfs.fsync(f)
            crfs.seek(f, 0)
            t0 = sim.now
            image, done = sum(workloads[index]), 0
            while done < image:
                n = min(scenario.read_request, image - done)
                yield from crfs.read(f, n)
                done += n
                if scenario.read_think_s > 0.0:
                    # Restore work per request (CRIU-style page
                    # injection) — the latency prefetch overlaps.
                    yield sim.timeout(scenario.read_think_s)
            restore_marks.append((t0, sim.now))
        yield from crfs.close(f)

    make_writer = delta_writer if cadence is not None else writer
    procs = [
        sim.spawn(make_writer(i), name=f"perf-{scenario.name}-w{i}")
        for i in range(scenario.nwriters)
    ]
    sim.run_until_complete(procs)
    # Writers finish at tier-0 completion time — that is the number the
    # staging hierarchy exists to shrink, so `elapsed` is captured here;
    # the pump then drains (in virtual time past `elapsed`) so the
    # stats snapshot reports the settled tier counters.
    elapsed = sim.now
    if crfs.staging is not None:
        sim.run_until_complete(
            [sim.spawn(crfs.drain_staging(), name="pump-drain")]
        )
    crfs.shutdown()
    stats = crfs.stats()
    if cadence is not None:
        # Delta mode has no precomputed write stream: the bytes the
        # pipeline accepted (dirty extents only) are the workload.
        total_bytes, nwrites = stats["bytes_in"], stats["writes"]
    else:
        total_bytes = sum(sum(w) for w in workloads)
        nwrites = sum(len(w) for w in workloads)
    return _metrics(
        total_bytes=total_bytes,
        nwrites=nwrites,
        elapsed=elapsed,
        recorder=recorder,
        stats=stats,
        restore_marks=restore_marks,
    )


# -- real plane ---------------------------------------------------------------


def run_scenario_real(
    scenario: Scenario,
    seed: int,
    fast: bool = False,
    workdir: str | None = None,
) -> dict[str, Any]:
    """One scenario on the threaded mount against a scratch directory."""
    with tempfile.TemporaryDirectory(dir=workdir, prefix="crfs-perf-") as root:
        if scenario.sim_backend == "tiered_nfs":
            # The real-plane mirror of the staging chain: mem tier over
            # a real directory as the deep store.
            backend: Any = TieredBackend(
                [MemBackend(), LocalDirBackend(root)]
            )
        else:
            backend = LocalDirBackend(root)
        rules = scenario.fault_rules()
        if rules:
            # No real sleeping on injected delays: scheduled delays are 0
            # in the curated set, and timing here should measure CRFS.
            backend = FaultyBackend(backend, rules, sleep=lambda s: None)
        recorder = LatencyRecorder()
        fs = CRFS(backend, scenario.config, observers=(recorder,))

        cadence = _delta_workload(scenario, fast)
        workloads = [
            [] if cadence else scenario.sizes(seed, i, fast)
            for i in range(scenario.nwriters)
        ]
        payload = (
            b"" if cadence else bytes(max(max(w) for w in workloads if w))
        )
        failures: list[BaseException] = []
        restore_marks: list[tuple[float, float]] = []
        marks_lock = threading.Lock()

        def delta_writer(index: int) -> None:
            # Real bytes keep the reassembly honest: each generation
            # fills its dirty chunks with its own byte value, so a
            # restore that picks the wrong generation for any chunk
            # cannot match the reference image.
            try:
                cs = scenario.config.chunk_size
                nbytes = scenario.image_for(index, fast)
                path = scenario.path(index)
                image = bytearray(nbytes)
                nchunks = (nbytes + cs - 1) // cs
                for gen in range(scenario.delta_generations):
                    dirty = cadence.dirty_chunks(seed, index, gen, cs)
                    for c in range(nchunks) if dirty is None else dirty:
                        lo, hi = c * cs, min((c + 1) * cs, nbytes)
                        image[lo:hi] = bytes([gen % 256]) * (hi - lo)
                    fs.delta_checkpoint(path, image, dirty)
                t0 = time.perf_counter()
                restored = fs.delta_restore(path)
                if restored != bytes(image):
                    raise AssertionError(f"{path}: delta restore mismatch")
                with marks_lock:
                    restore_marks.append((t0, time.perf_counter()))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)

        def writer(index: int) -> None:
            try:
                with fs.open(scenario.path(index)) as f:
                    for n, size in enumerate(workloads[index], start=1):
                        f.write(memoryview(payload)[:size])
                        if scenario.fsync_every and n % scenario.fsync_every == 0:
                            f.fsync()
                    if scenario.read_request:
                        f.fsync()
                        # No real sleeping for read_think_s: wall-clock
                        # timing here should measure CRFS, and the real
                        # plane's numbers are advisory anyway.
                        t0 = time.perf_counter()
                        image, done = sum(workloads[index]), 0
                        while done < image:
                            n = min(scenario.read_request, image - done)
                            f.pread(n, done)
                            done += n
                        with marks_lock:
                            restore_marks.append((t0, time.perf_counter()))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)

        target = delta_writer if cadence is not None else writer
        start = time.perf_counter()
        with fs:
            threads = [
                threading.Thread(target=target, args=(i,), name=f"perf-w{i}")
                for i in range(scenario.nwriters)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        elapsed = time.perf_counter() - start
        if failures:
            raise failures[0]
        stats = fs.stats()
        if cadence is not None:
            total_bytes, nwrites = stats["bytes_in"], stats["writes"]
        else:
            total_bytes = sum(sum(w) for w in workloads)
            nwrites = sum(len(w) for w in workloads)
        return _metrics(
            total_bytes=total_bytes,
            nwrites=nwrites,
            elapsed=elapsed,
            recorder=recorder,
            stats=stats,
            restore_marks=restore_marks,
        )


# -- suite --------------------------------------------------------------------

_PLANE_RUNNERS = {"sim": run_scenario_sim, "real": run_scenario_real}


def run_suite(
    planes: list[str],
    seed: int,
    fast: bool = False,
    scenario_names: list[str] | None = None,
) -> dict[str, dict[str, Any]]:
    """Run the scenario set on each requested plane.

    Returns the artifact's ``planes`` section:
    ``{plane: {scenario: metrics}}``.
    """
    scenarios = default_scenarios(scenario_names)
    out: dict[str, dict[str, Any]] = {}
    for plane in planes:
        try:
            runner = _PLANE_RUNNERS[plane]
        except KeyError:
            raise KeyError(f"unknown plane {plane!r}; know {sorted(_PLANE_RUNNERS)}") from None
        out[plane] = {s.name: runner(s, seed, fast) for s in scenarios}
    return out
