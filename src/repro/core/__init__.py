"""CRFS core — the paper's contribution, functional plane.

A real, thread-based implementation of the CRFS pipeline (Section IV of
the paper): writes are copied into fixed-size chunks from a buffer pool;
full chunks are queued on a work queue; a small pool of IO threads drains
the queue, writing chunks to the backing store; ``close()``/``fsync()``
flush the partial chunk and block until the file's outstanding chunk
writes complete.

The pipeline *state machine* — aggregation planning, drain accounting,
the writeback-error latch, and the event/stats stream — lives in the
plane-agnostic :mod:`repro.pipeline` package and is shared with the
timing-plane model (:mod:`repro.simcrfs`), so both planes provably
aggregate, drain, and count identically (``repro.core.planner`` remains
as a re-export shim).
"""

from .planner import Fill, Seal, SealReason, WritePlanner
from .buffer_pool import BufferPool
from .chunk import Chunk
from .workqueue import WorkQueue, QueueClosed
from .mount import CRFS
from .handle import CRFSFile
from .posix import PosixShim

__all__ = [
    "Fill",
    "Seal",
    "SealReason",
    "WritePlanner",
    "BufferPool",
    "Chunk",
    "WorkQueue",
    "QueueClosed",
    "CRFS",
    "CRFSFile",
    "PosixShim",
]
