"""Threaded execution of the delta-checkpoint kernel.

:class:`DeltaCheckpointer` drives the plane-agnostic
:class:`~repro.pipeline.delta.DeltaTracker` with real bytes: dirty
extents stream through the mount's normal aggregation pipeline into the
generation file (``<path>.g<N>``), the manifest is then written
synchronously straight to the backend (it is the durable commit point —
a latched asynchronous failure would be the wrong contract), and only a
successful manifest write advances the chain.  Restore loads and
validates the manifest, then reassembles the logical image with one
read per contiguous same-owner run through the mount's normal
(cacheable) read path.

The timing plane mirrors this exact op sequence in
:meth:`repro.simcrfs.model.SimCRFS.delta_checkpoint` /
``delta_restore``, so ``stats()["delta"]`` — and every
workload-determined pipeline counter the delta traffic moves — is
bit-identical across planes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..backends.base import normalize_path
from ..checkpoint.manifest import Manifest, generation_path, manifest_path
from ..errors import ManifestError
from ..pipeline.delta import DeltaPlan

if TYPE_CHECKING:  # pragma: no cover
    from .mount import CRFS

__all__ = ["DeltaCheckpointer"]


class DeltaCheckpointer:
    """Per-mount delta-checkpoint driver (functional plane)."""

    def __init__(self, fs: "CRFS"):
        self.fs = fs

    # -- checkpoint ------------------------------------------------------------

    def checkpoint(
        self,
        path: str,
        image: bytes | bytearray | memoryview,
        dirty: Iterable[int] | None = None,
        tenant: str | None = None,
    ) -> DeltaPlan:
        """Commit one generation of ``path``'s chain.

        ``image`` is the full current logical image; ``dirty`` declares
        which chunk indices changed since the previous generation
        (``None`` = all, and generation 0 is always a full dump).  Only
        the dirty extents enter the pipeline; clean chunks stay manifest
        references to older generations.
        """
        norm = normalize_path(path)
        tracker = self.fs.kernel.delta(norm)
        view = memoryview(image)
        plan = tracker.plan_checkpoint(len(view), dirty)

        f = self.fs.open(
            generation_path(norm, plan.generation),
            create=True,
            truncate=True,
            tenant=tenant,
        )
        try:
            for ext in plan.extents:
                f.pwrite(
                    view[ext.file_offset : ext.file_offset + ext.length],
                    ext.file_offset,
                )
            f.fsync()
        finally:
            f.close()

        raw = plan.manifest.to_bytes()
        try:
            self._write_manifest(norm, raw)
        except BaseException:
            # The old manifest was truncated before the failure: the
            # on-disk chain head is suspect until a clean commit.
            tracker.note_torn()
            raise
        tracker.commit(plan, len(raw))
        return plan

    def _write_manifest(self, norm: str, raw: bytes) -> None:
        """Synchronous manifest replace: truncate, write, (fsync), close."""
        backend = self.fs.backend
        handle = backend.open(manifest_path(norm), create=True, truncate=True)
        try:
            backend.pwrite(handle, raw, 0)
            if self.fs.config.delta_manifest_sync:
                backend.fsync(handle)
        finally:
            backend.close(handle)

    # -- restore ---------------------------------------------------------------

    def load_manifest(self, path: str) -> Manifest:
        """Read and validate ``path``'s manifest; every tear, checksum
        mismatch, or divergence from the in-session chain raises
        :class:`~repro.errors.ManifestError` — restore never silently
        reassembles a stale generation."""
        norm = normalize_path(path)
        tracker = self.fs.kernel.delta(norm)
        tracker.check_restorable()
        backend = self.fs.backend
        try:
            handle = backend.open(manifest_path(norm), create=False)
        except FileNotFoundError as exc:
            raise ManifestError(f"{norm}: manifest file missing") from exc
        try:
            raw = backend.pread(handle, backend.file_size(handle), 0)
        finally:
            backend.close(handle)
        manifest = Manifest.from_bytes(raw)
        if manifest.path != norm:
            raise ManifestError(
                f"manifest names {manifest.path!r}, expected {norm!r}"
            )
        if manifest.chunk_size != self.fs.config.chunk_size:
            raise ManifestError(
                f"{norm}: manifest chunk_size {manifest.chunk_size} != "
                f"mount chunk_size {self.fs.config.chunk_size}"
            )
        if manifest.generation != tracker.generation:
            raise ManifestError(
                f"{norm}: stale manifest generation {manifest.generation}, "
                f"chain is at {tracker.generation}"
            )
        return manifest

    def restore(self, path: str, tenant: str | None = None) -> bytes:
        """Reassemble the current logical image across the chain."""
        norm = normalize_path(path)
        tracker = self.fs.kernel.delta(norm)
        manifest = self.load_manifest(norm)
        runs = manifest.owner_runs()
        image = bytearray(manifest.logical_size)
        open_files: dict[int, object] = {}
        try:
            for gen, file_offset, length, _chunks in runs:
                f = open_files.get(gen)
                if f is None:
                    try:
                        f = self.fs.open(
                            generation_path(norm, gen),
                            create=False,
                            tenant=tenant,
                        )
                    except FileNotFoundError as exc:
                        raise ManifestError(
                            f"{norm}: generation file g{gen} missing"
                        ) from exc
                    open_files[gen] = f
                data = f.pread(length, file_offset)
                if len(data) != length:
                    raise ManifestError(
                        f"{norm}: short read from generation g{gen} at "
                        f"{file_offset} ({len(data)} of {length} bytes)"
                    )
                image[file_offset : file_offset + length] = data
        finally:
            for f in open_files.values():
                f.close()  # type: ignore[attr-defined]
        tracker.note_restore(len(runs), manifest.logical_size)
        return bytes(image)
