"""Buffer pool: fixed-size chunks allocated at mount time.

The paper (Section IV-B): "CRFS manages a buffer pool initialized at
mount time.  The buffer pool is divided into fixed-sized chunks."  The
pool is the pipeline's backpressure mechanism: when IO threads fall
behind the writers, the pool drains and writers block in
:meth:`acquire` — exactly the stall that makes Figure 5's bandwidth rise
with pool size.
"""

from __future__ import annotations

import threading

from ..errors import ConfigError, ShutdownError
from ..pipeline import PipelineStats, PoolPressure
from .chunk import Chunk

__all__ = ["BufferPool"]


class BufferPool:
    """Thread-safe pool of pre-allocated chunks.

    ``acquire()`` blocks while the pool is empty (bounded by
    ``timeout`` to keep tests debuggable); ``release()`` recycles a chunk
    and wakes one waiter.  Pressure accounting is published as
    ``PoolPressure`` events into the shared
    :class:`~repro.pipeline.stats.PipelineStats` registry (the mount
    passes its kernel's; a standalone pool gets a private one).
    """

    def __init__(
        self, chunk_size: int, pool_size: int, stats: PipelineStats | None = None
    ):
        if chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {chunk_size}")
        nchunks = pool_size // chunk_size
        if nchunks < 1:
            raise ConfigError(
                f"pool_size {pool_size} holds no chunk of size {chunk_size}"
            )
        self.chunk_size = chunk_size
        self.nchunks = nchunks
        self.stats = stats if stats is not None else PipelineStats(
            chunk_size=chunk_size, pool_chunks=nchunks
        )
        self._free: list[Chunk] = [Chunk(i, chunk_size) for i in range(nchunks)]
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # -- stats views (counted from PoolPressure events) -------------------------

    @property
    def total_acquires(self) -> int:
        return self.stats.pool_acquires

    @property
    def total_waits(self) -> int:
        """Acquires that had to block."""
        return self.stats.pool_waits

    @property
    def max_in_use(self) -> int:
        return self.stats.pool_max_in_use

    @property
    def free_chunks(self) -> int:
        with self._lock:
            return len(self._free)

    @property
    def in_use(self) -> int:
        with self._lock:
            return self.nchunks - len(self._free)

    def acquire(self, timeout: float | None = 30.0) -> Chunk:
        """Take a free chunk, blocking while none are available.

        ``timeout`` guards against pipeline deadlocks in tests; production
        callers can pass ``None`` to wait forever.
        """
        with self._available:
            waited = not self._free and not self._closed
            while not self._free:
                if self._closed:
                    raise ShutdownError("buffer pool closed")
                if not self._available.wait(timeout=timeout):
                    raise ShutdownError(
                        f"buffer pool exhausted for {timeout}s "
                        f"({self.nchunks} chunks all in flight) — IO stalled?"
                    )
            chunk = self._free.pop()
            self.stats.on_event(
                PoolPressure(waited=waited, in_use=self.nchunks - len(self._free))
            )
            return chunk

    def try_acquire(self) -> Chunk | None:
        """Take a free chunk without ever blocking; None when the pool
        is empty or closed.

        This is the readahead-cache lease path: IO workers servicing a
        prefetch must never block on the pool (a worker parked in
        :meth:`acquire` behind a full pool would deadlock
        ``IOThreadPool.shutdown``), so a starved prefetch is simply
        dropped and the chunk refetched on demand.
        """
        with self._available:
            if self._closed or not self._free:
                return None
            chunk = self._free.pop()
            self.stats.on_event(
                PoolPressure(waited=False, in_use=self.nchunks - len(self._free))
            )
            return chunk

    def release(self, chunk: Chunk) -> None:
        """Recycle a chunk (resets its metadata)."""
        chunk.reset()
        with self._available:
            if len(self._free) >= self.nchunks:
                raise ShutdownError("double release into buffer pool")
            self._free.append(chunk)
            self._available.notify()

    def close(self) -> None:
        """Wake all blocked acquirers with ShutdownError (unmount path)."""
        with self._available:
            self._closed = True
            self._available.notify_all()
