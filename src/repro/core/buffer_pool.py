"""Buffer pool: fixed-size chunks allocated at mount time.

The paper (Section IV-B): "CRFS manages a buffer pool initialized at
mount time.  The buffer pool is divided into fixed-sized chunks."  The
pool is the pipeline's backpressure mechanism: when IO threads fall
behind the writers, the pool drains and writers block in
:meth:`acquire` — exactly the stall that makes Figure 5's bandwidth rise
with pool size.

Multi-tenant mounts partition the pool through a shared
:class:`~repro.pipeline.tenancy.PoolLedger`: each tenant owns a
reserved region, the remainder is a shared overflow everyone competes
for.  An acquire is admissible when the tenant has reservation headroom
*or* the shared region has a free chunk — so an idle node still gives
one tenant the whole pool, but a storm can never take another tenant's
reservation.  Without a ledger (single-tenant mounts) the behaviour is
exactly the pre-tenant pool.
"""

from __future__ import annotations

import time

import threading

from ..errors import ConfigError, ShutdownError
from ..pipeline import PipelineStats, PoolPressure
from ..pipeline.tenancy import DEFAULT_TENANT, PoolLedger
from .chunk import Chunk

__all__ = ["BufferPool"]


class BufferPool:
    """Thread-safe pool of pre-allocated chunks.

    ``acquire()`` blocks while no admissible chunk exists (bounded by
    ``timeout`` to keep tests debuggable); ``release()`` recycles a chunk
    and wakes waiters.  Pressure accounting is published as
    ``PoolPressure`` events into the shared
    :class:`~repro.pipeline.stats.PipelineStats` registry (the mount
    passes its kernel's; a standalone pool gets a private one) — one
    event per acquire *and* one per release, so the ``in_use`` gauge
    falls in the event timeline as well as rises.
    """

    def __init__(
        self,
        chunk_size: int,
        pool_size: int,
        stats: PipelineStats | None = None,
        ledger: PoolLedger | None = None,
    ):
        if chunk_size <= 0:
            raise ConfigError(f"chunk_size must be positive, got {chunk_size}")
        nchunks = pool_size // chunk_size
        if nchunks < 1:
            raise ConfigError(
                f"pool_size {pool_size} holds no chunk of size {chunk_size}"
            )
        if ledger is not None and ledger.nchunks != nchunks:
            raise ConfigError(
                f"ledger sized for {ledger.nchunks} chunks, pool holds {nchunks}"
            )
        self.chunk_size = chunk_size
        self.nchunks = nchunks
        self.ledger = ledger
        self.stats = stats if stats is not None else PipelineStats(
            chunk_size=chunk_size, pool_chunks=nchunks
        )
        self._free: list[Chunk] = [Chunk(i, chunk_size) for i in range(nchunks)]
        #: chunk.index -> owning tenant, tracked only with a ledger (a
        #: release must credit the tenant that acquired the chunk).
        self._owner: dict[int, str] = {}
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # -- stats views (counted from PoolPressure events) -------------------------

    @property
    def total_acquires(self) -> int:
        return self.stats.pool_acquires

    @property
    def total_waits(self) -> int:
        """Acquires that had to block."""
        return self.stats.pool_waits

    @property
    def max_in_use(self) -> int:
        return self.stats.pool_max_in_use

    @property
    def free_chunks(self) -> int:
        with self._lock:
            return len(self._free)

    @property
    def in_use(self) -> int:
        with self._lock:
            return self.nchunks - len(self._free)

    # -- acquire ---------------------------------------------------------------

    def _admissible(self, tenant: str) -> bool:
        """A free chunk exists and the ledger admits the tenant (caller
        holds the lock)."""
        if not self._free:
            return False
        return self.ledger is None or self.ledger.can_acquire(tenant)

    def _take(self, tenant: str) -> tuple[Chunk, int]:
        """Pop a free chunk for ``tenant`` and emit the acquire event
        (caller holds the lock and has checked admissibility)."""
        chunk = self._free.pop()
        if self.ledger is not None:
            self.ledger.acquire(tenant)
            self._owner[chunk.index] = tenant
            tenant_in_use = self.ledger.held(tenant)
        else:
            tenant_in_use = self.nchunks - len(self._free)
        return chunk, tenant_in_use

    def acquire(
        self, timeout: float | None = 30.0, tenant: str = DEFAULT_TENANT
    ) -> Chunk:
        """Take a chunk admissible for ``tenant``, blocking while none is.

        ``timeout`` guards against pipeline deadlocks in tests; production
        callers can pass ``None`` to wait forever.  The bound is a
        *deadline*: condition wakeups that do not yield an admissible
        chunk wait only on the remainder, so racing acquirers cannot
        stretch the advertised bound.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._available:
            waited = not self._admissible(tenant) and not self._closed
            while not self._admissible(tenant):
                if self._closed:
                    raise ShutdownError("buffer pool closed")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ShutdownError(
                        f"buffer pool exhausted for {timeout}s "
                        f"({self.nchunks} chunks all in flight, "
                        f"tenant {tenant!r}) — IO stalled?"
                    )
                if not self._available.wait(timeout=remaining):
                    raise ShutdownError(
                        f"buffer pool exhausted for {timeout}s "
                        f"({self.nchunks} chunks all in flight, "
                        f"tenant {tenant!r}) — IO stalled?"
                    )
            chunk, tenant_in_use = self._take(tenant)
            self.stats.on_event(
                PoolPressure(
                    waited=waited,
                    in_use=self.nchunks - len(self._free),
                    tenant=tenant,
                    tenant_in_use=tenant_in_use,
                )
            )
            return chunk

    def try_acquire(self, tenant: str = DEFAULT_TENANT) -> Chunk | None:
        """Take an admissible chunk without ever blocking; None when the
        pool is starved for this tenant or closed.

        This is the readahead-cache lease path: IO workers servicing a
        prefetch must never block on the pool (a worker parked in
        :meth:`acquire` behind a full pool would deadlock
        ``IOThreadPool.shutdown``), so a starved prefetch is simply
        dropped and the chunk refetched on demand.
        """
        with self._available:
            if self._closed or not self._admissible(tenant):
                return None
            chunk, tenant_in_use = self._take(tenant)
            self.stats.on_event(
                PoolPressure(
                    waited=False,
                    in_use=self.nchunks - len(self._free),
                    tenant=tenant,
                    tenant_in_use=tenant_in_use,
                )
            )
            return chunk

    # -- release ---------------------------------------------------------------

    def release(self, chunk: Chunk, already_reset: bool = False) -> None:
        """Recycle a chunk.

        Resets its metadata unless the caller passes ``already_reset``
        (a fast path for chunks that never left the clean state — e.g.
        a failed demand fetch that wrote nothing).  Emits a
        ``released`` ``PoolPressure`` event so the stats timeline sees
        the ``in_use`` gauge fall.
        """
        if not already_reset:
            chunk.reset()
        with self._available:
            if len(self._free) >= self.nchunks:
                raise ShutdownError("double release into buffer pool")
            if self.ledger is not None:
                tenant = self._owner.pop(chunk.index, DEFAULT_TENANT)
                self.ledger.release(tenant)
                tenant_in_use = self.ledger.held(tenant)
            else:
                tenant = DEFAULT_TENANT
                tenant_in_use = self.nchunks - len(self._free) - 1
            self._free.append(chunk)
            self.stats.on_event(
                PoolPressure(
                    waited=False,
                    in_use=self.nchunks - len(self._free),
                    tenant=tenant,
                    tenant_in_use=tenant_in_use,
                    released=True,
                )
            )
            if self.ledger is not None:
                # A shared-region release may admit any waiting tenant, a
                # reserved-slot release only its owner: wake everyone and
                # let the admissibility predicate sort it out.
                self._available.notify_all()
            else:
                self._available.notify()

    def close(self) -> None:
        """Wake all blocked acquirers with ShutdownError (unmount path)."""
        with self._available:
            self._closed = True
            self._available.notify_all()
