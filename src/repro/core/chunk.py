"""Chunk: one fixed-size aggregation buffer plus its metadata tag.

The paper (Section IV-B): "Each chunk is tagged with metadata information
including target file handler, offset into the file, valid data size in
the chunk, etc."  A chunk's byte buffer is allocated once (pool init) and
reused for its whole life; only the metadata is reset between uses.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import FileStateError
from .planner import SealReason

__all__ = ["Chunk"]


class Chunk:
    """A pooled aggregation buffer.

    Lifecycle: FREE -> (acquire) OPEN -> fills via :meth:`append` ->
    (seal) SEALED, carrying (file, offset, valid length) -> IO thread
    writes it out -> (reset) FREE again.
    """

    __slots__ = ("index", "buffer", "valid", "file_offset", "owner", "seal_reason")

    def __init__(self, index: int, size: int):
        self.index = index
        self.buffer = bytearray(size)
        self.valid = 0  # bytes of valid data ("size of valid data in the chunk")
        self.file_offset = 0  # "offset of this chunk in the original file"
        self.owner: Any = None  # "ownership identities" (the file entry)
        self.seal_reason: Optional[SealReason] = None

    @property
    def size(self) -> int:
        return len(self.buffer)

    @property
    def room(self) -> int:
        """Free space after the append point."""
        return len(self.buffer) - self.valid

    def open_for(self, owner: Any, file_offset: int) -> None:
        """Attach a fresh chunk to a file at the given file offset."""
        if self.valid != 0 or self.owner is not None:
            raise FileStateError(f"chunk {self.index} is not clean")
        self.owner = owner
        self.file_offset = file_offset
        self.seal_reason = None

    def append(self, data: bytes | memoryview, chunk_offset: int, length: int) -> None:
        """Copy ``length`` bytes at the planner-designated append point."""
        if chunk_offset != self.valid:
            raise FileStateError(
                f"append at {chunk_offset} but chunk append point is {self.valid}"
            )
        if length > self.room:
            raise FileStateError(f"append of {length} overflows chunk (room {self.room})")
        self.buffer[self.valid : self.valid + length] = data[:length]
        self.valid += length

    def fill_external(self, length: int) -> None:
        """Declare ``length`` bytes already written into :attr:`buffer`
        by an external filler (``Backend.pread_into``).

        The zero-copy twin of :meth:`append` for the read-cache fetch
        path: the backend filled the buffer directly, so only the valid
        length advances — no second copy.  The filler reads into the
        buffer *before* :meth:`open_for`, so a failed fetch leaves the
        chunk clean (buffer contents are irrelevant to cleanliness;
        ``reset`` never scrubs them either).
        """
        if self.valid != 0:
            raise FileStateError(
                f"external fill on chunk {self.index} with {self.valid} valid bytes"
            )
        if length > len(self.buffer):
            raise FileStateError(
                f"external fill of {length} overflows chunk (size {len(self.buffer)})"
            )
        self.valid = length

    def seal(self, reason: SealReason) -> None:
        self.seal_reason = reason

    def payload(self) -> memoryview:
        """The valid bytes, zero-copy."""
        return memoryview(self.buffer)[: self.valid]

    def reset(self) -> None:
        """Return to the clean state (pool release path)."""
        self.valid = 0
        self.file_offset = 0
        self.owner = None
        self.seal_reason = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Chunk {self.index}: {self.valid}/{self.size}B "
            f"@file+{self.file_offset} owner={self.owner!r}>"
        )
