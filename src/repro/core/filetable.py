"""Open-file table: the hash table of Section IV-A.

"CRFS maintains a hash table to keep track of opened files.  Each opened
file is associated with an entry that contains metadata to be used in
later I/O operations... If the file is already opened, the reference
counter in its table entry is incremented by one."

The drain counters of Section IV-B/C (``write_chunk_count`` /
``complete_chunk_count``), the error latch, and the raise-once contract
live in the shared :class:`~repro.pipeline.kernel.FilePipeline`; this
module adds only what the *threaded* plane needs on top — the condition
variable that close()/fsync() block on until the pipeline reports
drained.

Multi-tenant mounts shard the table per tenant: every entry lives in
exactly one tenant partition, each with its own membership and drain
accounting, so unmount can drain tenants independently and the stats /
experiments can ask "how much is tenant X still holding?" without
scanning the whole mount.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from ..errors import FileStateError
from ..pipeline import FilePipeline, Seal
from ..pipeline.kernel import EmitFn
from ..pipeline.tenancy import DEFAULT_TENANT
from .chunk import Chunk

__all__ = ["FileEntry", "OpenFileTable"]


class FileEntry:
    """Per-open-file metadata: the shared pipeline state machine plus the
    threaded plane's chunk buffer and drain condition."""

    def __init__(
        self,
        path: str,
        backend_handle: Any,
        chunk_size: int,
        emit: EmitFn | None = None,
        clock: Callable[[], float] | None = None,
        tenant: str = DEFAULT_TENANT,
    ):
        self.path = path
        self.backend_handle = backend_handle
        self.tenant = tenant
        self.refcount = 1
        self.current_chunk: Optional[Chunk] = None
        #: Restart-readahead cache (:class:`~repro.core.readcache.ReadCache`),
        #: attached by the mount when ``config.read_cache_chunks > 0``;
        #: None keeps reads on the paper's passthrough path.  Typed Any
        #: to keep the file table free of read-path dependencies.
        self.read_cache: Any = None
        # Serializes the write path for this file (writers to *different*
        # files proceed in parallel, as on the real mount).
        self.write_lock = threading.Lock()
        # The pipeline's counter lock doubles as the drain condition's
        # lock, so note_chunk_complete can account and notify atomically.
        self._lock = threading.RLock()
        self._drain = threading.Condition(self._lock)
        self.pipeline = FilePipeline(
            path, chunk_size, emit=emit, lock=self._lock, clock=clock, tenant=tenant
        )

    # -- kernel passthrough ----------------------------------------------------

    @property
    def planner(self):
        return self.pipeline.planner

    @property
    def write_chunk_count(self) -> int:
        return self.pipeline.write_chunk_count

    @property
    def complete_chunk_count(self) -> int:
        return self.pipeline.complete_chunk_count

    @property
    def outstanding(self) -> int:
        return self.pipeline.outstanding

    def peek_error(self) -> BaseException | None:
        return self.pipeline.peek_error()

    # -- drain protocol ------------------------------------------------------

    def note_chunk_queued(self, seal: Seal | None = None) -> None:
        with self._drain:
            self.pipeline.note_queued(seal)

    def note_chunk_complete(
        self,
        error: BaseException | None = None,
        nbytes: int = 0,
        file_offset: int = 0,
        start: float | None = None,
    ) -> None:
        """IO-thread callback: one outstanding chunk write finished."""
        with self._drain:
            self.pipeline.note_complete(
                length=nbytes, file_offset=file_offset, error=error, start=start
            )
            self._drain.notify_all()

    def wait_drained(self, timeout: float | None = 60.0) -> None:
        """Block until complete_chunk_count == write_chunk_count, then
        surface any latched writeback error (the POSIX close/fsync
        error-reporting contract, raised exactly once).

        Drain latency is published on the event stream
        (``FileDrained``) and accumulated in the stats registry's
        ``drain`` section — callers read it from ``stats()`` instead of
        timing this wait themselves.  ``timeout`` is a deadline for the
        whole wait: wakeups that find chunks still outstanding (each
        completion notifies every waiter) wait only on the remainder,
        so a storm of completions cannot extend a stuck drain forever."""
        with self._drain:
            start = self.pipeline.clock()
            outstanding = self.pipeline.outstanding
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            while not self.pipeline.drained:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                stuck = remaining is not None and remaining <= 0
                if stuck or not self._drain.wait(timeout=remaining):
                    raise FileStateError(
                        f"{self.path}: drain stuck "
                        f"({self.pipeline.complete_chunk_count}"
                        f"/{self.pipeline.write_chunk_count})"
                    )
            self.pipeline.note_drained(start, outstanding)
            self.pipeline.raise_latched()


class OpenFileTable:
    """Thread-safe path -> FileEntry map, sharded per tenant.

    Each entry lives in exactly one tenant partition; a flat path index
    keeps lookup O(1) regardless of how many tenants share the mount.
    The partition is fixed at first open: reopening an already-open path
    joins the existing entry (refcount bump) whatever tenant the new
    opener resolved to — one file, one pipeline, one drain accounting.
    """

    def __init__(self) -> None:
        self._index: dict[str, FileEntry] = {}
        self._shards: dict[str, dict[str, FileEntry]] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def lookup(self, path: str) -> Optional[FileEntry]:
        with self._lock:
            return self._index.get(path)

    def open(self, path: str, make_entry: Callable[[], FileEntry]) -> FileEntry:
        """Get-or-create the entry for ``path``; bumps the refcount.

        ``make_entry`` is called (under the table lock) only when the path
        is not already open — it should open the backend file and return a
        FileEntry; the entry's own ``tenant`` decides its partition.
        """
        with self._lock:
            entry = self._index.get(path)
            if entry is not None:
                entry.refcount += 1
                return entry
            entry = make_entry()
            self._index[path] = entry
            shard = self._shards.setdefault(entry.tenant, {})
            shard[path] = entry
            return entry

    def close(self, path: str) -> tuple[FileEntry, bool]:
        """Drop one reference; returns (entry, was_last).  The caller
        performs the drain/backend close outside the table lock."""
        with self._lock:
            entry = self._index.get(path)
            if entry is None:
                raise FileStateError(f"{path} is not open")
            entry.refcount -= 1
            last = entry.refcount == 0
            if last:
                del self._index[path]
                shard = self._shards[entry.tenant]
                del shard[path]
                if not shard:
                    del self._shards[entry.tenant]
            return entry, last

    def paths(self, tenant: str | None = None) -> list[str]:
        """Open paths — all of them, or one tenant partition's."""
        with self._lock:
            if tenant is None:
                return list(self._index)
            return list(self._shards.get(tenant, ()))

    def tenants(self) -> list[str]:
        """Tenants with at least one open file, in sorted order."""
        with self._lock:
            return sorted(self._shards)

    def outstanding(self, tenant: str | None = None) -> int:
        """Chunks still in flight — mount-wide, or one partition's drain
        backlog.  A snapshot: entries are collected under the table lock
        but their counters read without it (each read is atomic)."""
        with self._lock:
            if tenant is None:
                entries = list(self._index.values())
            else:
                entries = list(self._shards.get(tenant, {}).values())
        return sum(e.outstanding for e in entries)
