"""Open-file table: the hash table of Section IV-A.

"CRFS maintains a hash table to keep track of opened files.  Each opened
file is associated with an entry that contains metadata to be used in
later I/O operations... If the file is already opened, the reference
counter in its table entry is incremented by one."

The drain counters of Section IV-B/C (``write_chunk_count`` /
``complete_chunk_count``), the error latch, and the raise-once contract
live in the shared :class:`~repro.pipeline.kernel.FilePipeline`; this
module adds only what the *threaded* plane needs on top — the condition
variable that close()/fsync() block on until the pipeline reports
drained.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from ..errors import FileStateError
from ..pipeline import FilePipeline, Seal
from ..pipeline.kernel import EmitFn
from .chunk import Chunk

__all__ = ["FileEntry", "OpenFileTable"]


class FileEntry:
    """Per-open-file metadata: the shared pipeline state machine plus the
    threaded plane's chunk buffer and drain condition."""

    def __init__(
        self,
        path: str,
        backend_handle: Any,
        chunk_size: int,
        emit: EmitFn | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.path = path
        self.backend_handle = backend_handle
        self.refcount = 1
        self.current_chunk: Optional[Chunk] = None
        #: Restart-readahead cache (:class:`~repro.core.readcache.ReadCache`),
        #: attached by the mount when ``config.read_cache_chunks > 0``;
        #: None keeps reads on the paper's passthrough path.  Typed Any
        #: to keep the file table free of read-path dependencies.
        self.read_cache: Any = None
        # Serializes the write path for this file (writers to *different*
        # files proceed in parallel, as on the real mount).
        self.write_lock = threading.Lock()
        # The pipeline's counter lock doubles as the drain condition's
        # lock, so note_chunk_complete can account and notify atomically.
        self._lock = threading.RLock()
        self._drain = threading.Condition(self._lock)
        self.pipeline = FilePipeline(
            path, chunk_size, emit=emit, lock=self._lock, clock=clock
        )

    # -- kernel passthrough ----------------------------------------------------

    @property
    def planner(self):
        return self.pipeline.planner

    @property
    def write_chunk_count(self) -> int:
        return self.pipeline.write_chunk_count

    @property
    def complete_chunk_count(self) -> int:
        return self.pipeline.complete_chunk_count

    @property
    def outstanding(self) -> int:
        return self.pipeline.outstanding

    def peek_error(self) -> BaseException | None:
        return self.pipeline.peek_error()

    # -- drain protocol ------------------------------------------------------

    def note_chunk_queued(self, seal: Seal | None = None) -> None:
        with self._drain:
            self.pipeline.note_queued(seal)

    def note_chunk_complete(
        self,
        error: BaseException | None = None,
        nbytes: int = 0,
        file_offset: int = 0,
        start: float | None = None,
    ) -> None:
        """IO-thread callback: one outstanding chunk write finished."""
        with self._drain:
            self.pipeline.note_complete(
                length=nbytes, file_offset=file_offset, error=error, start=start
            )
            self._drain.notify_all()

    def wait_drained(self, timeout: float | None = 60.0) -> None:
        """Block until complete_chunk_count == write_chunk_count, then
        surface any latched writeback error (the POSIX close/fsync
        error-reporting contract, raised exactly once).

        Drain latency is published on the event stream
        (``FileDrained``) and accumulated in the stats registry's
        ``drain`` section — callers read it from ``stats()`` instead of
        timing this wait themselves."""
        with self._drain:
            start = self.pipeline.clock()
            outstanding = self.pipeline.outstanding
            while not self.pipeline.drained:
                if not self._drain.wait(timeout=timeout):
                    raise FileStateError(
                        f"{self.path}: drain stuck "
                        f"({self.pipeline.complete_chunk_count}"
                        f"/{self.pipeline.write_chunk_count})"
                    )
            self.pipeline.note_drained(start, outstanding)
            self.pipeline.raise_latched()


class OpenFileTable:
    """Thread-safe path -> FileEntry map with reference counting."""

    def __init__(self) -> None:
        self._entries: dict[str, FileEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, path: str) -> Optional[FileEntry]:
        with self._lock:
            return self._entries.get(path)

    def open(self, path: str, make_entry) -> FileEntry:
        """Get-or-create the entry for ``path``; bumps the refcount.

        ``make_entry`` is called (under the table lock) only when the path
        is not already open — it should open the backend file and return a
        FileEntry.
        """
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None:
                entry.refcount += 1
                return entry
            entry = make_entry()
            self._entries[path] = entry
            return entry

    def close(self, path: str) -> tuple[FileEntry, bool]:
        """Drop one reference; returns (entry, was_last).  The caller
        performs the drain/backend close outside the table lock."""
        with self._lock:
            entry = self._entries.get(path)
            if entry is None:
                raise FileStateError(f"{path} is not open")
            entry.refcount -= 1
            last = entry.refcount == 0
            if last:
                del self._entries[path]
            return entry, last

    def paths(self) -> list[str]:
        with self._lock:
            return list(self._entries)
