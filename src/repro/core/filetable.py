"""Open-file table: the hash table of Section IV-A.

"CRFS maintains a hash table to keep track of opened files.  Each opened
file is associated with an entry that contains metadata to be used in
later I/O operations... If the file is already opened, the reference
counter in its table entry is incremented by one."

Each entry also carries the drain counters of Section IV-B/C:
``write_chunk_count`` (chunks handed to the work queue) and
``complete_chunk_count`` (chunks the IO threads finished).  close() and
fsync() block until they match.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from ..errors import BackendIOError, FileStateError
from .chunk import Chunk
from .planner import WritePlanner

__all__ = ["FileEntry", "OpenFileTable"]


class FileEntry:
    """Per-open-file metadata: planner state, drain counters, error latch."""

    def __init__(self, path: str, backend_handle: Any, chunk_size: int):
        self.path = path
        self.backend_handle = backend_handle
        self.refcount = 1
        self.planner = WritePlanner(chunk_size)
        self.current_chunk: Optional[Chunk] = None
        # Serializes the write path for this file (writers to *different*
        # files proceed in parallel, as on the real mount).
        self.write_lock = threading.Lock()
        self._drain = threading.Condition()
        self.write_chunk_count = 0  # "outstanding full chunk writes"
        self.complete_chunk_count = 0
        self._error: BaseException | None = None

    # -- drain protocol ------------------------------------------------------

    def note_chunk_queued(self) -> None:
        with self._drain:
            self.write_chunk_count += 1

    def note_chunk_complete(self, error: BaseException | None = None) -> None:
        """IO-thread callback: one outstanding chunk write finished."""
        with self._drain:
            self.complete_chunk_count += 1
            if error is not None and self._error is None:
                self._error = error
            self._drain.notify_all()

    @property
    def outstanding(self) -> int:
        with self._drain:
            return self.write_chunk_count - self.complete_chunk_count

    def wait_drained(self, timeout: float | None = 60.0) -> None:
        """Block until complete_chunk_count == write_chunk_count, then
        surface any latched writeback error (the POSIX close/fsync
        error-reporting contract)."""
        with self._drain:
            while self.complete_chunk_count < self.write_chunk_count:
                if not self._drain.wait(timeout=timeout):
                    raise FileStateError(
                        f"{self.path}: drain stuck "
                        f"({self.complete_chunk_count}/{self.write_chunk_count})"
                    )
            if self._error is not None:
                error, self._error = self._error, None
                raise BackendIOError(
                    f"{self.path}: async chunk write failed: {error}"
                ) from error

    def peek_error(self) -> BaseException | None:
        with self._drain:
            return self._error


class OpenFileTable:
    """Thread-safe path -> FileEntry map with reference counting."""

    def __init__(self) -> None:
        self._entries: dict[str, FileEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, path: str) -> Optional[FileEntry]:
        with self._lock:
            return self._entries.get(path)

    def open(self, path: str, make_entry) -> FileEntry:
        """Get-or-create the entry for ``path``; bumps the refcount.

        ``make_entry`` is called (under the table lock) only when the path
        is not already open — it should open the backend file and return a
        FileEntry.
        """
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None:
                entry.refcount += 1
                return entry
            entry = make_entry()
            self._entries[path] = entry
            return entry

    def close(self, path: str) -> tuple[FileEntry, bool]:
        """Drop one reference; returns (entry, was_last).  The caller
        performs the drain/backend close outside the table lock."""
        with self._lock:
            entry = self._entries.get(path)
            if entry is None:
                raise FileStateError(f"{path} is not open")
            entry.refcount -= 1
            last = entry.refcount == 0
            if last:
                del self._entries[path]
            return entry, last

    def paths(self) -> list[str]:
        with self._lock:
            return list(self._entries)
