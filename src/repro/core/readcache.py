"""Threaded execution of the readahead cache (restart read path).

:class:`~repro.pipeline.readahead.ReadaheadCore` makes every decision
(hit/miss, admit/evict, the prefetch window); this module executes them
on the functional plane: chunk buffers leased from the mount's
:class:`~repro.core.buffer_pool.BufferPool`, demand fetches performed
synchronously by the reading thread, and prefetches pushed through the
existing :class:`~repro.core.workqueue.WorkQueue` as low-priority
:class:`ReadChunk` items the IO workers service between writebacks.

Deadlock discipline (the shutdown-safety contract the regression tests
pin):

* IO workers never block on the pool — a prefetch uses
  :meth:`BufferPool.try_acquire` and is *dropped* when starved, so a
  full pool cannot park a worker and hang ``IOThreadPool.shutdown``;
* low-band queue puts never block, so a reader holding the cache lock
  cannot stall behind write backpressure;
* teardown (:meth:`ReadCache.clear`) never waits for in-flight
  fetches — it marks their entries evicted and the worker releases the
  buffer itself when the fetch lands.

Lock order: ``entry.write_lock`` → ``ReadCache._cond`` → pool/queue
internal locks.  The backend ``pread`` for a *demand* miss runs under
``_cond`` (same-file readers serialize, different files don't);
prefetch workers drop ``_cond`` around their ``pread`` so foreground
hits overlap with background fetches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import BackendIOError, FileStateError, ShutdownError
from ..pipeline.readahead import DEMAND, PREFETCH, CacheEntry, ReadaheadCore
from ..pipeline.resilience import BackendHealth
from ..pipeline.tenancy import DEFAULT_TENANT
from .buffer_pool import BufferPool
from .workqueue import WorkQueue

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Backend

__all__ = ["ReadCache", "ReadChunk"]


@dataclass
class ReadChunk:
    """A low-priority prefetch bound for the IO thread pool."""

    cache: "ReadCache"
    centry: CacheEntry
    file_offset: int
    length: int


class ReadCache:
    """Per-file readahead cache on the functional plane."""

    def __init__(
        self,
        path: str,
        backend: "Backend",
        backend_handle: Any,
        core: ReadaheadCore,
        pool: BufferPool,
        queue: WorkQueue,
        health: BackendHealth | None = None,
        tenant: str = DEFAULT_TENANT,
    ):
        self.path = path
        self.backend = backend
        self.backend_handle = backend_handle
        self.core = core
        self.pool = pool
        self.queue = queue
        self.health = health
        #: The owning file's tenant: cache leases draw on its pool quota
        #: and prefetches queue under its name (low band, so they are
        #: never weighed against the tenant's writeback share).
        self.tenant = tenant
        self._cond = threading.Condition()

    # -- the foreground read path ---------------------------------------------

    def read(self, size: int, offset: int, file_size: int) -> bytes:
        """Serve one pread from the cache, fetching and prefetching.

        ``file_size`` is the caller-resolved size (backend size fused
        with the planner's append point, after flush+drain), used both
        to clamp the read like a passthrough pread would and to stop the
        prefetch window at EOF.
        """
        end = min(offset + size, file_size)
        if size <= 0 or end <= offset:
            return b""
        cs = self.core.chunk_size
        parts: list[bytes] = []
        with self._cond:
            for index in range(offset // cs, (end - 1) // cs + 1):
                lo = max(offset, index * cs)
                hi = min(end, (index + 1) * cs)
                parts.append(self._chunk_slice(index, lo, hi, file_size))
                self._issue_prefetches(index, file_size)
        return b"".join(parts)

    def _chunk_slice(self, index: int, lo: int, hi: int, file_size: int) -> bytes:
        """One chunk's contribution to a read (caller holds _cond)."""
        base = index * self.core.chunk_size
        while True:
            centry = self.core.access(index)
            if centry is None:
                return self._demand_fetch(centry_index=index, lo=lo, hi=hi,
                                          file_size=file_size)
            if not centry.ready:
                # In flight (a hit on our own prefetch): wait for the
                # worker; on a drop/eviction, retry from a fresh access.
                # The 30 s bound is a deadline — completion broadcasts
                # for *other* chunks wake this waiter too, and each
                # wakeup must wait only on the remainder.
                deadline = time.monotonic() + 30.0
                while not centry.ready and not centry.evicted:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        raise FileStateError(
                            f"{self.path}: readahead fetch stuck (chunk @{base})"
                        )
                if centry.evicted:
                    continue
            return bytes(centry.payload.buffer[lo - base : hi - base])

    def _demand_fetch(
        self, centry_index: int, lo: int, hi: int, file_size: int
    ) -> bytes:
        """Foreground miss: fetch the whole aligned chunk synchronously
        (caller holds _cond).  A starved pool degrades to an uncached
        slice read; a backend failure surfaces as :class:`CRFSError`
        (counted by the breaker) — demand reads are never silent."""
        cs = self.core.chunk_size
        base = centry_index * cs
        centry, evicted = self.core.admit(centry_index, DEMAND)
        self._release_evicted(evicted)
        chunk = self.pool.try_acquire(tenant=self.tenant)
        if chunk is None:
            # Silent un-admit (demand origin); starved=True still feeds
            # the adaptive window its pool-contention pressure signal.
            self.core.fetch_failed(centry, starved=True)
            return self.backend.pread(self.backend_handle, hi - lo, lo)
        length = min(cs, file_size - base)
        try:
            data = self.backend.pread(self.backend_handle, length, base)
        except Exception as exc:
            self.core.fetch_failed(centry)
            # The chunk never left the clean state (nothing was appended
            # before the pread failed), so skip the redundant reset.
            self.pool.release(chunk, already_reset=True)
            self._cond.notify_all()
            if self.health is not None:
                self.health.record_failure()
            raise BackendIOError(
                f"{self.path}: demand read of chunk @{base} failed: {exc}"
            ) from exc
        chunk.open_for(self, base)
        chunk.append(data, 0, len(data))
        if self.core.fetch_done(centry, chunk, len(data)):
            self._cond.notify_all()
        else:  # evicted while we fetched (a concurrent writer invalidated)
            self.pool.release(chunk)
        return bytes(data[lo - base : hi - base])

    def _issue_prefetches(self, index: int, file_size: int) -> None:
        """Slide the window (caller holds _cond).  Degraded mode issues
        nothing: with the breaker open every backend op is suspect, and
        speculative reads would only feed it more failures."""
        if self.core.depth <= 0 or (self.health is not None and self.health.degraded):
            return
        cs = self.core.chunk_size
        for pidx in self.core.plan_prefetch(index, file_size):
            centry, evicted = self.core.admit(pidx, PREFETCH)
            self._release_evicted(evicted)
            base = pidx * cs
            item = ReadChunk(
                cache=self,
                centry=centry,
                file_offset=base,
                length=min(cs, file_size - base),
            )
            try:
                self.queue.put(item, low=True, tenant=self.tenant)
            except ShutdownError:  # racing unmount: drop, never block
                self.core.fetch_failed(centry)

    # -- the background (IO worker) path ---------------------------------------

    def service_prefetch(self, item: ReadChunk) -> None:
        """Execute one queued prefetch; called from an IO worker.

        Never blocks on the pool (try_acquire; starved → dropped) and
        drops _cond around the backend pread so foreground cache hits
        proceed while the fetch is in flight.
        """
        centry = item.centry
        with self._cond:
            if centry.evicted:  # invalidated/cleared while queued
                return
            chunk = self.pool.try_acquire(tenant=self.tenant)
            if chunk is None:
                self.core.fetch_failed(centry, starved=True)
                self._cond.notify_all()
                return
        try:
            data = self.backend.pread(
                self.backend_handle, item.length, item.file_offset
            )
        except Exception:
            # Prefetch failures are silent: drop the entry, the chunk is
            # refetched on demand if a read actually wants it.  The chunk
            # is still clean (nothing appended), so skip the reset.
            with self._cond:
                if not centry.evicted:
                    self.core.fetch_failed(centry)
                self._cond.notify_all()
            self.pool.release(chunk, already_reset=True)
            if self.health is not None:
                self.health.record_failure()
            return
        with self._cond:
            chunk.open_for(self, item.file_offset)
            chunk.append(data, 0, len(data))
            if self.core.fetch_done(centry, chunk, len(data)):
                self._cond.notify_all()
            else:  # evicted while in flight; drop-accounted at eviction
                self.pool.release(chunk)

    # -- write-path and teardown hooks -----------------------------------------

    def invalidate(self, offset: int, length: int) -> None:
        """Drop cached chunks overlapping a just-accepted write (called
        under the file's write_lock)."""
        with self._cond:
            self._release_evicted(self.core.invalidate(offset, length))

    def clear(self) -> None:
        """Teardown (last close / unmount): drop everything without
        waiting.  In-flight fetches are marked evicted; the worker
        holding the buffer releases it when its pread lands, before
        ``IOThreadPool.shutdown`` joins it."""
        with self._cond:
            self._release_evicted(self.core.clear())

    def _release_evicted(self, entries: Iterable[CacheEntry]) -> None:
        """Return evictees' buffers to the pool and wake waiters parked
        on in-flight ones (caller holds _cond)."""
        woke = False
        for entry in entries:
            if entry.payload is not None:
                self.pool.release(entry.payload)
                entry.payload = None
            if not entry.ready:
                woke = True
        if woke:
            self._cond.notify_all()
