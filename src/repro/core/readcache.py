"""Threaded execution of the readahead cache (restart read path).

:class:`~repro.pipeline.readahead.ReadaheadCore` makes every decision
(hit/miss, admit/evict, the prefetch window); this module executes them
on the functional plane: chunk buffers leased from the mount's
:class:`~repro.core.buffer_pool.BufferPool`, demand fetches performed
synchronously by the reading thread, and prefetches pushed through the
existing :class:`~repro.core.workqueue.WorkQueue` as low-priority
:class:`ReadChunk` items the IO workers service between writebacks.

Deadlock discipline (the shutdown-safety contract the regression tests
pin):

* IO workers never block on the pool — a prefetch uses
  :meth:`BufferPool.try_acquire` and is *dropped* when starved, so a
  full pool cannot park a worker and hang ``IOThreadPool.shutdown``;
* low-band queue puts never block, so a reader holding the cache lock
  cannot stall behind write backpressure;
* teardown (:meth:`ReadCache.clear`) never waits for in-flight
  fetches — it marks their entries evicted and the worker releases the
  buffer itself when the fetch lands.

Lock order: ``entry.write_lock`` → ``ReadCache._cond`` → pool/queue
internal locks.  The backend ``pread`` for a *demand* miss runs under
``_cond`` (same-file readers serialize, different files don't);
prefetch workers drop ``_cond`` around their ``pread`` so foreground
hits overlap with background fetches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import BackendIOError, FileStateError, ShutdownError
from ..pipeline.readahead import DEMAND, PREFETCH, CacheEntry, ReadaheadCore
from ..pipeline.resilience import BackendHealth
from ..pipeline.tenancy import DEFAULT_TENANT
from .buffer_pool import BufferPool
from .workqueue import WorkQueue

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Backend

__all__ = ["ReadCache", "ReadChunk"]


@dataclass
class ReadChunk:
    """A low-priority prefetch bound for the IO thread pool."""

    cache: "ReadCache"
    centry: CacheEntry
    file_offset: int
    length: int


class ReadCache:
    """Per-file readahead cache on the functional plane."""

    def __init__(
        self,
        path: str,
        backend: "Backend",
        backend_handle: Any,
        core: ReadaheadCore,
        pool: BufferPool,
        queue: WorkQueue,
        health: BackendHealth | None = None,
        tenant: str = DEFAULT_TENANT,
    ):
        self.path = path
        self.backend = backend
        self.backend_handle = backend_handle
        self.core = core
        self.pool = pool
        self.queue = queue
        self.health = health
        #: The owning file's tenant: cache leases draw on its pool quota
        #: and prefetches queue under its name (low band, so they are
        #: never weighed against the tenant's writeback share).
        self.tenant = tenant
        self._cond = threading.Condition()
        # Deferred-release machinery for the zero-copy serve path: while
        # a read is collecting views of pooled buffers (_defer_depth >
        # 0), an evicted payload the read has already collected a view
        # of (its id is in _held) parks in _deferred instead of
        # returning to the pool — releasing it mid-read would let
        # another writer recycle a buffer the pending join still
        # references.  Evictees the read does *not* hold views of
        # release immediately, preserving the pre-zero-copy pool timing
        # (a concurrent prefetch's try_acquire must not starve on a
        # buffer that's merely parked).  Drained when the read's join
        # completes.  Guarded by _cond.
        self._defer_depth = 0
        self._deferred: list[Any] = []
        self._held: set[int] = set()

    # -- the foreground read path ---------------------------------------------

    def read(self, size: int, offset: int, file_size: int) -> bytes:
        """Serve one pread from the cache, fetching and prefetching.

        ``file_size`` is the caller-resolved size (backend size fused
        with the planner's append point, after flush+drain), used both
        to clamp the read like a passthrough pread would and to stop the
        prefetch window at EOF.
        """
        end = min(offset + size, file_size)
        if size <= 0 or end <= offset:
            return b""
        cs = self.core.chunk_size
        parts: list[Any] = []
        with self._cond:
            self._defer_depth += 1
            try:
                for index in range(offset // cs, (end - 1) // cs + 1):
                    lo = max(offset, index * cs)
                    hi = min(end, (index + 1) * cs)
                    parts.append(self._chunk_slice(index, lo, hi, file_size))
                    self._issue_prefetches(index, file_size)
                # The POSIX-shim boundary: this single join is the one
                # materialization a cached read pays (the read_boundary
                # copy the pipeline accounts) — everything above handed
                # back views of pooled buffers.
                return b"".join(parts)
            finally:
                self._defer_depth -= 1
                if self._defer_depth == 0:
                    self._held.clear()
                    if self._deferred:
                        drained, self._deferred = self._deferred, []
                        for payload in drained:
                            self.pool.release(payload)

    def _chunk_slice(
        self, index: int, lo: int, hi: int, file_size: int
    ) -> "memoryview | bytes":
        """One chunk's contribution to a read: a zero-copy view of the
        resident buffer, or backend bytes on the degraded path (caller
        holds _cond, with deferred release active — views stay valid
        until the join)."""
        base = index * self.core.chunk_size
        while True:
            centry = self.core.access(index)
            if centry is None:
                return self._demand_fetch(centry_index=index, lo=lo, hi=hi,
                                          file_size=file_size)
            if not centry.ready:
                # In flight (a hit on our own prefetch): wait for the
                # worker; on a drop/eviction, retry from a fresh access.
                # The 30 s bound is a deadline — completion broadcasts
                # for *other* chunks wake this waiter too, and each
                # wakeup must wait only on the remainder.
                deadline = time.monotonic() + 30.0
                while not centry.ready and not centry.evicted:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(timeout=remaining):
                        raise FileStateError(
                            f"{self.path}: readahead fetch stuck (chunk @{base})"
                        )
                if centry.evicted:
                    continue
            self._held.add(id(centry.payload))
            return memoryview(centry.payload.buffer)[lo - base : hi - base]

    def _demand_fetch(
        self, centry_index: int, lo: int, hi: int, file_size: int
    ) -> "memoryview | bytes":
        """Foreground miss: fetch the whole aligned chunk synchronously
        (caller holds _cond).  The backend fills the pooled buffer
        directly (``pread_into``) — no intermediate bytes.  A starved
        pool degrades to an uncached slice read; a backend failure
        surfaces as :class:`CRFSError` (counted by the breaker) —
        demand reads are never silent."""
        cs = self.core.chunk_size
        base = centry_index * cs
        centry, evicted = self.core.admit(centry_index, DEMAND)
        self._release_evicted(evicted)
        chunk = self.pool.try_acquire(tenant=self.tenant)
        if chunk is None:
            # Silent un-admit (demand origin); starved=True still feeds
            # the adaptive window its pool-contention pressure signal.
            self.core.fetch_failed(centry, starved=True)
            return self.backend.pread(self.backend_handle, hi - lo, lo)
        length = min(cs, file_size - base)
        try:
            got = self.backend.pread_into(
                self.backend_handle, memoryview(chunk.buffer)[:length], base
            )
        except Exception as exc:
            self.core.fetch_failed(centry)
            # The chunk never left the clean state (the fill happens
            # before open_for), so skip the redundant reset.
            self.pool.release(chunk, already_reset=True)
            self._cond.notify_all()
            if self.health is not None:
                self.health.record_failure()
            raise BackendIOError(
                f"{self.path}: demand read of chunk @{base} failed: {exc}"
            ) from exc
        chunk.open_for(self, base)
        chunk.fill_external(got)
        self._held.add(id(chunk))
        if self.core.fetch_done(centry, chunk, got):
            self._cond.notify_all()
        else:  # evicted while we fetched (a concurrent writer invalidated)
            self._defer_or_release(chunk)
        return memoryview(chunk.buffer)[lo - base : hi - base]

    def _issue_prefetches(self, index: int, file_size: int) -> None:
        """Slide the window (caller holds _cond).  Degraded mode issues
        nothing: with the breaker open every backend op is suspect, and
        speculative reads would only feed it more failures."""
        if self.core.depth <= 0 or (self.health is not None and self.health.degraded):
            return
        cs = self.core.chunk_size
        for pidx in self.core.plan_prefetch(index, file_size):
            centry, evicted = self.core.admit(pidx, PREFETCH)
            self._release_evicted(evicted)
            base = pidx * cs
            item = ReadChunk(
                cache=self,
                centry=centry,
                file_offset=base,
                length=min(cs, file_size - base),
            )
            try:
                self.queue.put(item, low=True, tenant=self.tenant)
            except ShutdownError:  # racing unmount: drop, never block
                self.core.fetch_failed(centry)

    # -- the background (IO worker) path ---------------------------------------

    def service_prefetch(self, item: ReadChunk) -> None:
        """Execute one queued prefetch; called from an IO worker.

        Never blocks on the pool (try_acquire; starved → dropped) and
        drops _cond around the backend pread so foreground cache hits
        proceed while the fetch is in flight.
        """
        centry = item.centry
        with self._cond:
            if centry.evicted:  # invalidated/cleared while queued
                return
            chunk = self.pool.try_acquire(tenant=self.tenant)
            if chunk is None:
                self.core.fetch_failed(centry, starved=True)
                self._cond.notify_all()
                return
        try:
            # Fill the leased buffer directly — the chunk is exclusively
            # ours until fetch_done publishes it, so no lock is needed
            # around the backend call.
            got = self.backend.pread_into(
                self.backend_handle,
                memoryview(chunk.buffer)[: item.length],
                item.file_offset,
            )
        except Exception:
            # Prefetch failures are silent: drop the entry, the chunk is
            # refetched on demand if a read actually wants it.  The chunk
            # is still clean (the fill happens before open_for), so skip
            # the reset.
            with self._cond:
                if not centry.evicted:
                    self.core.fetch_failed(centry)
                self._cond.notify_all()
            self.pool.release(chunk, already_reset=True)
            if self.health is not None:
                self.health.record_failure()
            return
        with self._cond:
            chunk.open_for(self, item.file_offset)
            chunk.fill_external(got)
            if self.core.fetch_done(centry, chunk, got):
                self._cond.notify_all()
            else:
                # Evicted while in flight (drop-accounted at eviction).
                # The buffer was never published to a reader, so it can
                # go straight back to the pool.
                self.pool.release(chunk)

    # -- write-path and teardown hooks -----------------------------------------

    def invalidate(self, offset: int, length: int) -> None:
        """Drop cached chunks overlapping a just-accepted write (called
        under the file's write_lock)."""
        with self._cond:
            self._release_evicted(self.core.invalidate(offset, length))

    def clear(self) -> None:
        """Teardown (last close / unmount): drop everything without
        waiting.  In-flight fetches are marked evicted; the worker
        holding the buffer releases it when its pread lands, before
        ``IOThreadPool.shutdown`` joins it."""
        with self._cond:
            self._release_evicted(self.core.clear())

    def _defer_or_release(self, payload: Any) -> None:
        """Return one leased buffer to the pool — unless the read in
        mid-collection holds a view of it, in which case park it until
        the read's views are joined (caller holds _cond).  Buffers the
        read never collected release immediately: eviction victims are
        LRU while the read's chunks are MRU, so the common case pays no
        deferral and the pool sees the same timing as an eager release
        (the cross-plane differential pins that a prefetch try-acquire
        never starves on a merely-parked buffer)."""
        if self._defer_depth > 0 and id(payload) in self._held:
            self._deferred.append(payload)
        else:
            self.pool.release(payload)

    def _release_evicted(self, entries: Iterable[CacheEntry]) -> None:
        """Return evictees' buffers to the pool (deferred while a read
        holds views of them) and wake waiters parked on in-flight ones
        (caller holds _cond)."""
        woke = False
        for entry in entries:
            if entry.payload is not None:
                self._defer_or_release(entry.payload)
                entry.payload = None
            if not entry.ready:
                woke = True
        if woke:
            self._cond.notify_all()
