"""The CRFS mount: POSIX-style facade over the aggregation pipeline.

This is the functional-plane equivalent of the paper's FUSE mount.  An
application opens files, writes, reads, closes — and behind the facade
writes coalesce into pooled chunks that IO threads push to the backing
:class:`~repro.backends.base.Backend` asynchronously (Section IV).

Semantics preserved from the paper:

* **write** returns as soon as the data is copied into a chunk;
* **close/fsync** flush the partial chunk and block until the file's
  ``complete_chunk_count`` equals its ``write_chunk_count``;
* **read and namespace ops pass through** to the backend untouched;
* the **file layout on the backend is unchanged**, so anything written
  through CRFS is readable without it (the paper's restart property).

Error contract: an asynchronous chunk-write failure is latched in the
file entry and raised from the next close()/fsync() on that file — the
POSIX writeback-error contract.

The pipeline *state machine* — fill/seal planning, drain accounting,
the error latch — lives in the shared, plane-agnostic
:class:`~repro.pipeline.kernel.FilePipeline`; this module supplies its
threaded execution: real buffers, locks, IO threads.  Every state
transition is published on the mount's
:class:`~repro.pipeline.kernel.PipelineKernel` event stream, from which
the :meth:`CRFS.stats` snapshot is derived (and to which callers may
``subscribe`` extra observers, e.g. a trace recorder).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable

from ..backends.base import Backend, BackendStat, normalize_path
from ..backends.tiered import TieredBackend
from ..config import CRFSConfig, DEFAULT_CONFIG
from ..errors import FileStateError, MountError
from ..pipeline import Fill, PipelineKernel, PipelineObserver, Seal, SealReason
from ..pipeline.readahead import ReadaheadCore
from ..pipeline.resilience import BackendHealth, run_attempts
from ..pipeline.tenancy import DRRScheduler, PoolLedger
from .buffer_pool import BufferPool
from .delta import DeltaCheckpointer
from .filetable import FileEntry, OpenFileTable
from .handle import CRFSFile
from .iopool import IOThreadPool, WorkItem
from .readcache import ReadCache
from .workqueue import WorkQueue

__all__ = ["CRFS"]


class CRFS:
    """A mounted CRFS instance.

    >>> from repro.backends import MemBackend
    >>> with CRFS(MemBackend()) as fs:
    ...     with fs.open("/ckpt/rank0.img") as f:
    ...         _ = f.write(b"snapshot bytes")
    """

    def __init__(
        self,
        backend: Backend,
        config: CRFSConfig = DEFAULT_CONFIG,
        observers: Iterable[PipelineObserver] = (),
    ):
        self.backend = backend
        self.config = config
        self.tenants = config.tenant_registry()
        # Hierarchical staging: a tiered backend joins the mount's
        # pipeline — its tier events feed the unified stream (the
        # `tiers` stats section) and its per-tier retry/breaker policy
        # comes from the same config knobs as the mount's own.
        self.tiered = backend if isinstance(backend, TieredBackend) else None
        self.kernel = PipelineKernel(
            config.chunk_size,
            pool_chunks=config.pool_chunks,
            clock=time.perf_counter,
            observers=observers,
            tenants=self.tenants.names,
            tiers=len(self.tiered.tiers) if self.tiered is not None else 0,
            fsync_tier=(
                self.tiered.resolve_fsync_tier(config.fsync_tier)
                if self.tiered is not None
                else -1
            ),
        )
        stats = self.kernel.stats
        self.retry = config.retry_policy()
        self.health = BackendHealth(
            config.breaker_threshold, emit=self.kernel.emit, clock=self.kernel.clock
        )
        if self.tiered is not None:
            self.tiered.bind(
                emit=self.kernel.emit,
                clock=self.kernel.clock,
                retry=self.retry,
                breaker_threshold=config.breaker_threshold,
                fsync_tier=config.fsync_tier,
                pump_threads=config.tier_pump_threads,
                pump_batch_chunks=config.tier_pump_batch_chunks,
            )
        # With no tenants configured the ledger stays off and the
        # scheduler (one default sub-queue, weight 1) degrades to exact
        # FIFO — the pre-tenant single-tenant pipeline.
        ledger = (
            PoolLedger(config.pool_chunks, self.tenants.reservations())
            if self.tenants.active
            else None
        )
        self.pool = BufferPool(
            config.chunk_size, config.pool_size, stats=stats, ledger=ledger
        )
        self.queue = WorkQueue(
            config.work_queue_depth,
            stats=stats,
            scheduler=DRRScheduler(
                weights=self.tenants.weights(), fair=config.tenant_fairness
            ),
            quotas=self.tenants.quotas() if self.tenants.active else None,
        )
        self.iopool = IOThreadPool(
            backend,
            self.queue,
            self.pool,
            config.io_threads,
            stats=stats,
            retry=self.retry,
            health=self.health,
            emit=self.kernel.emit,
            batch_chunks=config.writeback_batch_chunks,
        )
        self.table = OpenFileTable()
        self.delta = DeltaCheckpointer(self)
        self._mounted = False
        self._lifecycle = threading.Lock()

    # -- mount-level stats views (all counters live in kernel.stats) -----------

    @property
    def total_writes(self) -> int:
        return self.kernel.stats.writes

    @property
    def total_bytes_in(self) -> int:
        return self.kernel.stats.bytes_in

    @property
    def write_through_bytes(self) -> int:
        return self.kernel.stats.write_through_bytes

    @property
    def seal_counts(self) -> dict[SealReason, int]:
        return dict(self.kernel.stats.seal_counts)

    # -- lifecycle -----------------------------------------------------------

    def mount(self) -> "CRFS":
        with self._lifecycle:
            if self._mounted:
                raise MountError("already mounted")
            self.iopool.start()
            self._mounted = True
        return self

    def unmount(self, timeout: float = 30.0) -> None:
        """Flush and drain every open file, stop the IO threads.

        Files still open are flushed and their backend handles closed (a
        forced unmount); their CRFSFile handles become unusable.
        """
        with self._lifecycle:
            if not self._mounted:
                return
            # Shard-ordered teardown: each tenant partition flushes and
            # drains as a unit, so one tenant's backlog is fully retired
            # before the next partition is touched.
            for tenant in self.table.tenants():
                for path in self.table.paths(tenant):
                    entry = self.table.lookup(path)
                    if entry is None:
                        continue
                    with entry.write_lock:
                        self._flush_locked(entry)
                    entry.wait_drained(timeout=timeout)
                    if entry.read_cache is not None:
                        # Before iopool.shutdown: in-flight prefetch entries
                        # are marked evicted and the (still running) workers
                        # return their buffers themselves.
                        entry.read_cache.clear()
                    # drop all remaining references
                    last = False
                    while not last:
                        _, last = self.table.close(path)
                    self.backend.close(entry.backend_handle)
                    self.kernel.file_closed(path, tenant=entry.tenant)
            self.iopool.shutdown(timeout=timeout)
            if self.tiered is not None:
                # The IO workers are gone, so tier 0 holds everything it
                # will ever hold; drain the pump to the deepest tier and
                # stop its workers before declaring the mount down.
                self.tiered.shutdown(timeout=timeout)
            self.pool.close()
            self._mounted = False

    def __enter__(self) -> "CRFS":
        return self.mount()

    def __exit__(self, *exc: Any) -> None:
        self.unmount()

    @property
    def mounted(self) -> bool:
        return self._mounted

    def _require_mounted(self) -> None:
        if not self._mounted:
            raise MountError("filesystem is not mounted")

    # -- file open/close -------------------------------------------------------

    def open(
        self,
        path: str,
        create: bool = True,
        truncate: bool = False,
        tenant: str | None = None,
    ) -> CRFSFile:
        """Open (by default create) a file for aggregated writing.

        Mirrors the paper's open path: look up the hash table; bump the
        refcount if already open, otherwise insert a fresh entry and
        open/create the backing file.

        ``tenant`` pins the open to a tenant explicitly; by default the
        mount's :class:`~repro.pipeline.tenancy.TenantRegistry` maps the
        path through the configured fnmatch rules (falling back to
        ``default``).  The tenant decides the file's table partition,
        its buffer-pool quota and its IO scheduling share.
        """
        self._require_mounted()
        norm = normalize_path(path)
        resolved = self.tenants.resolve(norm, tenant)

        def make_entry() -> FileEntry:
            handle = self.backend.open(norm, create=create, truncate=truncate)
            self.kernel.file_opened(norm, tenant=resolved)
            entry = FileEntry(
                norm,
                handle,
                self.config.chunk_size,
                emit=self.kernel.emit,
                clock=self.kernel.clock,
                tenant=resolved,
            )
            if self.config.read_cache_chunks > 0:
                entry.read_cache = ReadCache(
                    norm,
                    self.backend,
                    handle,
                    ReadaheadCore(
                        norm,
                        self.config.chunk_size,
                        capacity=self.config.read_cache_chunks,
                        depth=self.config.readahead_chunks,
                        emit=self.kernel.emit,
                        clock=self.kernel.clock,
                        adaptive=self.config.readahead_adaptive,
                    ),
                    self.pool,
                    self.queue,
                    health=self.health,
                    tenant=resolved,
                )
            return entry

        entry = self.table.open(norm, make_entry)
        return CRFSFile(self, entry)

    def _close_entry(self, entry: FileEntry, timeout: float = 60.0) -> None:
        """close() semantics (Section IV-C): flush the partial chunk, wait
        for all outstanding chunk writes, then drop the reference."""
        self._require_mounted()
        with entry.write_lock:
            self._flush_locked(entry)
        try:
            entry.wait_drained(timeout=timeout)
        finally:
            _, last = self.table.close(entry.path)
            if last:
                if entry.read_cache is not None:
                    entry.read_cache.clear()
                self.backend.close(entry.backend_handle)
                self.kernel.file_closed(entry.path, tenant=entry.tenant)

    # -- write path ---------------------------------------------------------

    def _write(self, entry: FileEntry, data: bytes | memoryview, offset: int) -> int:
        """Aggregate one write (Section IV-B).  Returns len(data).

        With ``write_through_threshold`` set, writes at least that large
        skip aggregation: the partial chunk is sealed first (preserving
        issue order), then the data goes straight to the backend
        synchronously.  While the backend circuit breaker is open, every
        write takes this synchronous path (bypassing the buffer pool)
        and doubles as a recovery probe.
        """
        self._require_mounted()
        view = memoryview(data)
        t0 = self.kernel.clock()
        threshold = self.config.write_through_threshold
        degraded = self.health.degraded
        if degraded or (threshold and len(view) >= threshold):
            with entry.write_lock:
                if entry.read_cache is not None:
                    entry.read_cache.invalidate(offset, len(view))
                for op in entry.pipeline.plan_write_through(offset, len(view)):
                    assert isinstance(op, Seal)
                    self._seal_current(entry, op)
                if not degraded:
                    self.backend.pwrite(entry.backend_handle, view, offset)
            if degraded:
                # Outside write_lock: the degraded probe retries with
                # backoff, and sleeping under the per-file lock would
                # stall every concurrent writer to this file for the
                # full retry budget.  Issue order is already pinned —
                # the seals above were enqueued under the lock, and
                # positional pwrites to disjoint offsets commute.
                self._pwrite_degraded(entry, view, offset)
            entry.pipeline.note_write(
                offset, len(view), start=t0, write_through=True, degraded=degraded
            )
            return len(view)
        with entry.write_lock:
            if entry.read_cache is not None:
                # Cached chunks covering these bytes are stale the moment
                # the write is accepted (reads go flush+drain first, but
                # the cache would otherwise keep serving the old bytes).
                entry.read_cache.invalidate(offset, len(view))
            # plan_write fails fast if a prior async write already failed —
            # writing more data into chunks would be silently lost.
            ops = entry.pipeline.plan_write(offset, len(view))
            for op in ops:
                if isinstance(op, Fill):
                    if entry.current_chunk is None:
                        if self.pool.free_chunks == 0:
                            # Read-cache leases draw on this same pool; a
                            # fully populated cache (capacity >= pool) can
                            # otherwise pin every chunk and starve the
                            # writer forever.  The cache is advisory — a
                            # blocked writer is not — so shed it first.
                            self._shed_read_caches()
                        chunk = self.pool.acquire(tenant=entry.tenant)
                        chunk.open_for(entry, op.file_offset - op.chunk_offset)
                        entry.current_chunk = chunk
                    entry.current_chunk.append(
                        view[op.data_offset : op.data_offset + op.length],
                        op.chunk_offset,
                        op.length,
                    )
                else:  # Seal
                    self._seal_current(entry, op)
        entry.pipeline.note_write(offset, len(view), start=t0)
        return len(view)

    def _pwrite_degraded(
        self, entry: FileEntry, view: memoryview, offset: int
    ) -> None:
        """Synchronous probe write while the circuit breaker is open.

        Retried under the mount policy like any chunk writeback; a
        success closes the breaker (the health tracker emits
        ``BackendRecovered``), exhaustion raises to the writer — the
        error is synchronous, so nothing is latched.
        """
        error = run_attempts(
            self.retry,
            lambda: self.backend.pwrite(entry.backend_handle, view, offset),
            path=entry.path,
            file_offset=offset,
            clock=self.kernel.clock,
            health=self.health,
            on_retry=lambda attempt, delay, exc: entry.pipeline.note_retry(
                offset, attempt, delay, exc
            ),
        )
        if error is not None:
            raise error

    def _shed_read_caches(self) -> None:
        """Pool-pressure relief: return every read-cache-held buffer.

        Cross-file on purpose — any open file's cache may be what pins
        the pool.  In-flight fetches are marked evicted and release on
        completion, so a shed may free chunks slightly later than it
        returns; ``pool.acquire`` then waits the short remainder."""
        for tenant in self.table.tenants():
            for path in self.table.paths(tenant):
                entry = self.table.lookup(path)
                if entry is not None and entry.read_cache is not None:
                    entry.read_cache.clear()

    def _seal_current(self, entry: FileEntry, seal: Seal) -> None:
        chunk = entry.current_chunk
        if chunk is None:
            raise FileStateError(f"{entry.path}: seal with no open chunk")
        if chunk.valid != seal.length or chunk.file_offset != seal.file_offset:
            raise FileStateError(
                f"{entry.path}: planner/runtime divergence "
                f"(chunk {chunk.file_offset}+{chunk.valid}, "
                f"seal {seal.file_offset}+{seal.length})"
            )
        chunk.seal(seal.reason)
        entry.current_chunk = None
        entry.note_chunk_queued(seal)
        self.queue.put(WorkItem(chunk=chunk, entry=entry), tenant=entry.tenant)

    def _flush_locked(self, entry: FileEntry) -> None:
        """Seal the partial chunk, if any (caller holds write_lock)."""
        for op in entry.pipeline.plan_flush():
            assert isinstance(op, Seal)
            self._seal_current(entry, op)

    def _fsync(self, entry: FileEntry, timeout: float = 60.0) -> None:
        """fsync() semantics (Section IV-D2): enqueue the current buffer
        chunk, wait for all outstanding chunk writes, then fsync the
        underlying file."""
        self._require_mounted()
        with entry.write_lock:
            self._flush_locked(entry)
        entry.wait_drained(timeout=timeout)
        self.backend.fsync(entry.backend_handle)

    # -- read path (passthrough or readahead cache) ----------------------------

    def _read(self, entry: FileEntry, size: int, offset: int) -> bytes:
        """read(): passthrough by default, cached with readahead on.

        The paper's behaviour (Section IV-D1) — "we directly pass it to
        the underlying filesystem without any additional operation" —
        is the default and the ``read_cache_chunks=0`` path.  With
        ``read_passthrough=False`` a passthrough read still flushes and
        drains first (read-your-writes for non-checkpoint workloads).

        With a read cache configured, reads flush+drain (read-your-
        writes through pending chunks), then serve chunk-aligned slices
        from the per-file cache, prefetching the next
        ``readahead_chunks`` through the IO pool.  While the circuit
        breaker is open the cache is bypassed entirely — every backend
        op is suspect, so reads degrade to the synchronous passthrough
        the paper ships.
        """
        self._require_mounted()
        t0 = self.kernel.clock()
        cache = entry.read_cache
        if cache is None or self.health.degraded:
            if not self.config.read_passthrough:
                with entry.write_lock:
                    self._flush_locked(entry)
                entry.wait_drained()
            data = self.backend.pread(entry.backend_handle, size, offset)
            entry.pipeline.note_read(offset, size, start=t0)
            return data
        with entry.write_lock:
            self._flush_locked(entry)
        entry.wait_drained()
        file_size = max(
            self.backend.file_size(entry.backend_handle),
            entry.planner.append_point,
        )
        data = cache.read(size, offset, file_size)
        # The cache served views internally; the bytes it returned are
        # the one boundary materialization — account it (len(data) is
        # the request clipped at file_size, matching the timing plane's
        # end - offset).
        entry.pipeline.note_read(offset, size, start=t0, copied=len(data))
        return data

    # -- incremental (delta) checkpointing --------------------------------------

    def delta_checkpoint(
        self,
        path: str,
        image: bytes | bytearray | memoryview,
        dirty: Iterable[int] | None = None,
        tenant: str | None = None,
    ):
        """Commit one delta generation of ``path`` (see
        :class:`~repro.core.delta.DeltaCheckpointer`)."""
        return self.delta.checkpoint(path, image, dirty=dirty, tenant=tenant)

    def delta_restore(self, path: str, tenant: str | None = None) -> bytes:
        """Reassemble ``path``'s current image across its generation
        chain, consulting the manifest."""
        return self.delta.restore(path, tenant=tenant)

    # -- namespace passthrough (Section IV-D3) -----------------------------------

    def exists(self, path: str) -> bool:
        self._require_mounted()
        return self.backend.exists(normalize_path(path))

    def stat(self, path: str) -> BackendStat:
        self._require_mounted()
        return self.backend.stat(normalize_path(path))

    def unlink(self, path: str) -> None:
        self._require_mounted()
        norm = normalize_path(path)
        if self.table.lookup(norm) is not None:
            # An open CRFS file may still have chunks in flight whose
            # pwrites would recreate confusion; the paper's workload never
            # unlinks open checkpoints, so we refuse loudly.
            raise FileStateError(f"{norm} is open through CRFS; close it first")
        self.backend.unlink(norm)

    def mkdir(self, path: str) -> None:
        self._require_mounted()
        self.backend.mkdir(normalize_path(path))

    def rmdir(self, path: str) -> None:
        self._require_mounted()
        self.backend.rmdir(normalize_path(path))

    def listdir(self, path: str) -> list[str]:
        self._require_mounted()
        return self.backend.listdir(normalize_path(path))

    def rename(self, old: str, new: str) -> None:
        self._require_mounted()
        if self.table.lookup(normalize_path(old)) is not None:
            raise FileStateError(f"{old} is open through CRFS; close it first")
        self.backend.rename(normalize_path(old), normalize_path(new))

    def truncate(self, path: str, size: int) -> None:
        self._require_mounted()
        if self.table.lookup(normalize_path(path)) is not None:
            raise FileStateError(f"{path} is open through CRFS; close it first")
        self.backend.truncate(normalize_path(path), size)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """One atomic snapshot of the pipeline counters.

        Served straight from the kernel's :class:`PipelineStats`
        registry — the timing plane's ``SimCRFS.stats()`` returns the
        identical schema from the identical code path.
        """
        return self.kernel.snapshot()
