"""Compatibility shim — the write planner moved to :mod:`repro.pipeline`.

The pure aggregation state machine now lives in
:mod:`repro.pipeline.planner`, alongside the rest of the plane-agnostic
pipeline kernel (drain accounting, error latch, event stream).  This
module re-exports it so existing ``repro.core.planner`` imports keep
working.
"""

from ..pipeline.planner import Fill, PlanOp, Seal, SealReason, WritePlanner

__all__ = ["SealReason", "Fill", "Seal", "WritePlanner", "PlanOp"]
