"""POSIX-style integer-fd facade over a CRFS mount.

Checkpoint libraries (BLCR among them) are written against the classic
``open/write/lseek/close`` fd interface.  :class:`PosixShim` adapts a
:class:`~repro.core.mount.CRFS` mount to that shape so such code can be
pointed at CRFS without modification:

>>> from repro import CRFS, MemBackend
>>> from repro.core.posix import PosixShim, O_CREAT, O_WRONLY, O_TRUNC
>>> with CRFS(MemBackend()) as crfs:            # doctest: +SKIP
...     px = PosixShim(crfs)
...     fd = px.open("/ckpt.img", O_WRONLY | O_CREAT | O_TRUNC)
...     px.write(fd, b"snapshot")
...     px.close(fd)

Supported flags: O_RDONLY / O_WRONLY / O_RDWR (advisory — CRFS handles
are bidirectional), O_CREAT, O_TRUNC, O_APPEND, O_EXCL.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Dict

from ..errors import BadFileDescriptor, FileExists
from .handle import CRFSFile
from .mount import CRFS

__all__ = [
    "PosixShim",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "O_CREAT",
    "O_TRUNC",
    "O_APPEND",
    "O_EXCL",
    "SEEK_SET",
    "SEEK_CUR",
    "SEEK_END",
]

O_RDONLY = os.O_RDONLY
O_WRONLY = os.O_WRONLY
O_RDWR = os.O_RDWR
O_CREAT = os.O_CREAT
O_TRUNC = os.O_TRUNC
O_APPEND = os.O_APPEND
O_EXCL = os.O_EXCL

SEEK_SET, SEEK_CUR, SEEK_END = 0, 1, 2


class _FdState:
    __slots__ = ("handle", "append")

    def __init__(self, handle: CRFSFile, append: bool):
        self.handle = handle
        self.append = append


class PosixShim:
    """Integer-fd adapter for one CRFS mount."""

    def __init__(self, fs: CRFS):
        self.fs = fs
        self._fds: Dict[int, _FdState] = {}
        self._next_fd = itertools.count(3)
        self._lock = threading.Lock()

    # -- fd table -----------------------------------------------------------

    def _state(self, fd: int) -> _FdState:
        with self._lock:
            state = self._fds.get(fd)
        if state is None:
            raise BadFileDescriptor(f"fd {fd}")
        return state

    # -- calls ---------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644) -> int:
        """POSIX open(2) subset; returns an integer fd."""
        create = bool(flags & O_CREAT)
        if flags & O_EXCL and create and self.fs.exists(path):
            raise FileExists(path)
        handle = self.fs.open(
            path, create=create, truncate=bool(flags & O_TRUNC)
        )
        if flags & O_APPEND:
            handle.seek(0, SEEK_END)
        with self._lock:
            fd = next(self._next_fd)
            self._fds[fd] = _FdState(handle, append=bool(flags & O_APPEND))
        return fd

    def write(self, fd: int, data: bytes) -> int:
        state = self._state(fd)
        if state.append:
            state.handle.seek(0, SEEK_END)
        return state.handle.write(data)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return self._state(fd).handle.pwrite(data, offset)

    def read(self, fd: int, size: int) -> bytes:
        return self._state(fd).handle.read(size)

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        return self._state(fd).handle.pread(size, offset)

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        return self._state(fd).handle.seek(offset, whence)

    def fsync(self, fd: int) -> None:
        self._state(fd).handle.fsync()

    def close(self, fd: int) -> None:
        state = self._state(fd)
        with self._lock:
            del self._fds[fd]
        state.handle.close()

    def fstat_size(self, fd: int) -> int:
        return self._state(fd).handle.size()

    # -- namespace passthrough ------------------------------------------------

    def unlink(self, path: str) -> None:
        self.fs.unlink(path)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self.fs.mkdir(path)

    def rmdir(self, path: str) -> None:
        self.fs.rmdir(path)

    def rename(self, old: str, new: str) -> None:
        self.fs.rename(old, new)

    def listdir(self, path: str) -> list[str]:
        return self.fs.listdir(path)

    def open_fds(self) -> int:
        with self._lock:
            return len(self._fds)
