"""The IO thread pool that drains the work queue.

The paper (Section IV-B): "CRFS manipulates a pool of worker IO threads
waiting on the work queue...  The IO thread then calls a write() with the
underlying filesystem to write the data to its actual file.  Once
completed, the 'complete chunk count' in the file's metadata entry is
incremented.  Then the chunk is returned to the buffer pool to be reused."

The thread count is the paper's IO-throttling knob: fewer threads means
fewer concurrent writes hitting the back-end filesystem.  Completion
accounting goes through the entry's shared
:class:`~repro.pipeline.kernel.FilePipeline`, which publishes a
``ChunkWritten`` event on the unified stream; the pool's counters
(``chunks_written``/``bytes_written``/``errors``) are views over the
:class:`~repro.pipeline.stats.PipelineStats` registry counting those
events.

The same workers also service restart-readahead prefetches
(:class:`~repro.core.readcache.ReadChunk`), queued on the work queue's
low-priority band so speculative reads never delay a checkpoint
writeback.

Resilience: each chunk writeback is driven under the mount's
:class:`~repro.pipeline.resilience.RetryPolicy` before an error is
latched — failed attempts back off and reissue (``ChunkRetried`` on the
stream), per-attempt outcomes feed the
:class:`~repro.pipeline.resilience.BackendHealth` circuit breaker.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..pipeline import PipelineStats
from ..pipeline.events import WorkersDrained
from ..pipeline.kernel import EmitFn
from ..pipeline.resilience import BackendHealth, RetryPolicy, run_attempts
from .buffer_pool import BufferPool
from .chunk import Chunk
from .filetable import FileEntry
from .readcache import ReadChunk
from .workqueue import QueueClosed, WorkQueue

if TYPE_CHECKING:  # pragma: no cover
    from ..backends.base import Backend

__all__ = ["IOThreadPool", "WorkItem"]


@dataclass
class WorkItem:
    """A sealed chunk bound for the backing filesystem."""

    chunk: Chunk
    entry: FileEntry


class IOThreadPool:
    """N daemon threads: get chunk -> pwrite to backend -> account -> recycle."""

    def __init__(
        self,
        backend: "Backend",
        queue: WorkQueue,
        pool: BufferPool,
        nthreads: int,
        name: str = "crfs-io",
        stats: PipelineStats | None = None,
        retry: RetryPolicy | None = None,
        health: BackendHealth | None = None,
        emit: EmitFn | None = None,
        batch_chunks: int = 1,
    ):
        if nthreads < 1:
            raise ValueError(f"need at least 1 IO thread, got {nthreads}")
        if batch_chunks < 1:
            raise ValueError(f"batch_chunks must be >= 1, got {batch_chunks}")
        self.backend = backend
        self.queue = queue
        self.pool = pool
        self.nthreads = nthreads
        self.batch_chunks = batch_chunks
        self.stats = stats if stats is not None else PipelineStats()
        self.retry = retry if retry is not None else RetryPolicy()
        self.health = health
        # Shutdown drain time goes out on the mount's event stream when
        # one is wired; standalone pools fall back to feeding the stats
        # registry directly so the counter exists either way.
        self._emit = emit if emit is not None else self.stats.on_event
        self._threads: list[threading.Thread] = []
        self._started = False

    # -- stats views (counted from ChunkWritten events) ------------------------

    @property
    def chunks_written(self) -> int:
        return self.stats.chunks_written

    @property
    def bytes_written(self) -> int:
        return self.stats.bytes_out

    @property
    def errors(self) -> int:
        return self.stats.io_errors

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for i in range(self.nthreads):
            t = threading.Thread(
                target=self._worker, name=f"crfs-io-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)

    @staticmethod
    def _chainable(prev: object, nxt: object) -> bool:
        """Whether ``nxt`` extends ``prev``'s file run: same entry, and
        its chunk starts exactly where ``prev``'s valid bytes end."""
        if not isinstance(prev, WorkItem) or not isinstance(nxt, WorkItem):
            return False
        if prev.entry is not nxt.entry:
            return False
        return nxt.chunk.file_offset == prev.chunk.file_offset + prev.chunk.valid

    def _worker(self) -> None:
        while True:
            try:
                if self.batch_chunks > 1:
                    items = self.queue.get_batch(self.batch_chunks, self._chainable)
                else:
                    items = [self.queue.get()]
            except QueueClosed:
                return
            if isinstance(items[0], ReadChunk):
                # Readahead prefetch (low band): the cache leases its
                # buffer with try_acquire and drops starved fetches, so
                # this path can never park the worker on a full pool —
                # shutdown() always drains.  Low-band items are never
                # batched, so the list is a singleton.
                items[0].cache.service_prefetch(items[0])
                continue
            if len(items) == 1:
                self._write_one(items[0])
            else:
                self._write_batch(items)

    def _write_one(self, item: WorkItem) -> None:
        chunk, entry = item.chunk, item.entry
        start = entry.pipeline.clock()
        # Retry the pwrite under the policy before latching; only the
        # error that survives retry exhaustion reaches the entry.  One
        # payload view for all attempts — the chunk stays leased until
        # the completion below.
        payload = chunk.payload()
        error = run_attempts(
            self.retry,
            lambda: self.backend.pwrite(
                entry.backend_handle, payload, chunk.file_offset
            ),
            path=entry.path,
            file_offset=chunk.file_offset,
            clock=entry.pipeline.clock,
            health=self.health,
            on_retry=lambda attempt, delay, exc: entry.pipeline.note_retry(
                chunk.file_offset, attempt, delay, exc
            ),
        )
        # Account *before* recycling: once complete_chunk_count rises a
        # drain-waiter may proceed, and that is safe even if the chunk
        # is still being reset.
        entry.note_chunk_complete(
            error, nbytes=chunk.valid, file_offset=chunk.file_offset, start=start
        )
        self.pool.release(chunk)

    def _write_batch(self, items: list[WorkItem]) -> None:
        """Issue a gathered run of contiguous chunks as one pwritev.

        The batch is one backend op: one retry schedule at the batch's
        base offset, one health record, and — on exhaustion — the same
        surviving error attributed to every chunk in the batch.  If the
        breaker is already open the batch is broken back into per-chunk
        writes, which route through the degraded accounting individually.
        """
        entry = items[0].entry
        chunks = [item.chunk for item in items]
        base = chunks[0].file_offset
        total = sum(c.valid for c in chunks)
        if self.health is not None and self.health.degraded:
            entry.pipeline.note_batch_broken(base, len(chunks), "degraded")
            for item in items:
                self._write_one(item)
            return
        start = entry.pipeline.clock()
        # One iovec list per batch, built up front and reused across
        # retry attempts — the payloads are views of pooled buffers that
        # stay leased (and stable) until the completions below recycle
        # them, so re-slicing per attempt would only re-allocate.
        views = [c.payload() for c in chunks]
        error = run_attempts(
            self.retry,
            lambda: self.backend.pwritev(entry.backend_handle, views, base),
            path=entry.path,
            file_offset=base,
            clock=entry.pipeline.clock,
            health=self.health,
            on_retry=lambda attempt, delay, exc: entry.pipeline.note_retry(
                base, attempt, delay, exc
            ),
        )
        entry.pipeline.note_batch(base, len(chunks), total, start=start, error=error)
        # Per-chunk completion in offset order keeps the drain counters
        # and the error latch exactly as the unbatched path would have
        # left them (a failed vectored write latches on the first chunk
        # and counts an io_error for every one).
        for chunk in chunks:
            entry.note_chunk_complete(
                error, nbytes=chunk.valid, file_offset=chunk.file_offset, start=start
            )
            self.pool.release(chunk)

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain-close the queue and join the workers.

        ``timeout`` is one shared deadline across all worker joins, not
        a per-thread allowance — N stuck threads cannot stretch shutdown
        to N×timeout.  The time the drain-close took is published as a
        ``WorkersDrained`` event (``stats()['drain']`` accumulates it),
        so callers never re-time shutdown themselves.
        """
        was_started = self._started
        start = time.monotonic()
        self.queue.close()
        deadline = start + timeout
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        alive = [t.name for t in self._threads if t.is_alive()]
        if alive:
            raise TimeoutError(f"IO threads did not exit: {alive}")
        self._threads.clear()
        self._started = False
        if was_started:
            self._emit(WorkersDrained(duration=time.monotonic() - start, t=start))
