"""The work queue between writers and the IO thread pool.

The paper (Section IV-B): "Data chunks are eventually handed over to the
Work Queue for actual writing... Whenever a chunk is enqueued, an IO
thread wakes up and fetches the chunk off the queue."

Item storage and service order live in a
:class:`~repro.pipeline.tenancy.DRRScheduler` shared with the timing
plane's ``SimQueue``: per-tenant sub-queues served weighted
deficit-round-robin under contention, which degrades to exact FIFO for
a single-tenant mount.  This class adds what is thread-specific —
the mutex, the condition variables, capacity/quota blocking and the
drain-close protocol.

Close semantics are drain-then-stop: after :meth:`close`, queued items
are still handed out, and once empty every getter receives
:class:`QueueClosed` — that is how the IO threads learn to exit at
unmount without dropping in-flight chunks.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping

from ..errors import QueueFullTimeout, ShutdownError
from ..pipeline import AdmissionWait, PipelineStats, QueuePressure
from ..pipeline.tenancy import DEFAULT_TENANT, DRRScheduler

__all__ = ["WorkQueue", "QueueClosed", "QueueFullTimeout"]

#: Sentinel distinguishing "caller never passed timeout" (fine for any
#: band) from an explicit value (a contract violation for the low band,
#: whose puts never block).
_DEFAULT_TIMEOUT: Any = object()


class QueueClosed(ShutdownError):
    """Raised from get()/put() once the queue has shut down."""


class WorkQueue:
    """Bounded (optionally unbounded) thread-safe queue with drain-close.

    Two priority bands: the default (high) band carries writeback
    chunks, the low band readahead prefetches — ``get`` always drains
    the high band first, so prefetch never delays a checkpoint write.
    ``capacity`` bounds the high band only; low-band puts never block
    (prefetch volume is already bounded by cache admission, and a
    blocking low put from a reader holding cache locks could deadlock).

    Multi-tenant mounts add per-tenant ``quotas`` on queued high-band
    chunks: a tenant at its quota blocks *its own* writers at
    :meth:`put` (admission control), leaving other tenants' puts and the
    IO workers untouched.

    Depth accounting is published as ``QueuePressure`` /
    ``AdmissionWait`` events into the shared
    :class:`~repro.pipeline.stats.PipelineStats` registry.
    """

    def __init__(
        self,
        capacity: int = 0,
        stats: PipelineStats | None = None,
        scheduler: DRRScheduler | None = None,
        quotas: Mapping[str, int] | None = None,
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity  # 0 = unbounded
        self.stats = stats if stats is not None else PipelineStats()
        self.scheduler = scheduler if scheduler is not None else DRRScheduler()
        self.quotas = {t: q for t, q in (quotas or {}).items() if q > 0}
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # -- stats views (counted from QueuePressure events) ------------------------

    @property
    def total_puts(self) -> int:
        return self.stats.queue_puts

    @property
    def max_depth(self) -> int:
        return self.stats.queue_max_depth

    def __len__(self) -> int:
        with self._lock:
            return len(self.scheduler)

    def depth(self, tenant: str) -> int:
        """Queued high-band chunks for ``tenant`` (the admission gauge)."""
        with self._lock:
            return self.scheduler.depth(tenant)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- put -------------------------------------------------------------------

    def _put_blocked(self, tenant: str, quota: int) -> bool:
        """Whether a high-band put must wait (caller holds the lock):
        the band is at capacity, or the tenant is at its quota."""
        if self.capacity and self.scheduler.high_len >= self.capacity:
            return True
        return bool(quota) and self.scheduler.depth(tenant) >= quota

    def _wake_putters(self) -> None:
        """Wake blocked putters after a high-band item left the queue
        (caller holds the lock).  With quotas, waiters block on
        *different* predicates (their own tenant's depth), so everyone
        must recheck; without, one waiter per freed slot suffices."""
        if self.quotas:
            self._not_full.notify_all()
        else:
            self._not_full.notify()

    def put(
        self,
        item: Any,
        timeout: float | None = _DEFAULT_TIMEOUT,
        low: bool = False,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        """Enqueue ``item`` for ``tenant``; raises :class:`QueueClosed`
        once closed.

        Band contract: high-band puts block while the band is at
        ``capacity`` or the tenant is at its ``queue_quota``, and raise
        :class:`QueueFullTimeout` after ``timeout`` seconds (None = wait
        forever; default 30 s).  The bound is a *deadline*: wakeups that
        do not admit the put wait only on the remainder.  Low-band puts
        NEVER block — the band is unbounded and quota-exempt by design
        (prefetch volume is capped upstream by cache admission, and a
        blocking low put from a reader holding cache locks could
        deadlock) — so passing ``timeout`` with ``low=True`` is a
        contract violation and raises :class:`ValueError` instead of
        being silently ignored.
        """
        if low and timeout is not _DEFAULT_TIMEOUT:
            raise ValueError(
                "timeout does not apply to low-band puts — they never block"
            )
        if timeout is _DEFAULT_TIMEOUT:
            timeout = 30.0
        with self._not_full:
            if low:
                if self._closed:
                    raise QueueClosed("work queue closed")
                self.scheduler.push(tenant, item, low=True)
                self.stats.on_event(
                    QueuePressure(
                        depth=len(self.scheduler),
                        tenant=tenant,
                        tenant_depth=self.scheduler.depth(tenant),
                    )
                )
                self._not_empty.notify()
                return
            quota = self.quotas.get(tenant, 0)
            deadline = None if timeout is None else time.monotonic() + timeout
            admission_noted = False
            while self._put_blocked(tenant, quota) and not self._closed:
                if not admission_noted and quota and (
                    self.scheduler.depth(tenant) >= quota
                ):
                    # Count the blocking put once, not once per wakeup.
                    self.stats.on_event(
                        AdmissionWait(
                            tenant=tenant, depth=self.scheduler.depth(tenant)
                        )
                    )
                    admission_noted = True
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise QueueFullTimeout(
                        f"work queue full for {timeout}s "
                        f"(tenant {tenant!r}) — IO stalled?"
                    )
                if not self._not_full.wait(timeout=remaining):
                    raise QueueFullTimeout(
                        f"work queue full for {timeout}s "
                        f"(tenant {tenant!r}) — IO stalled?"
                    )
            if self._closed:
                raise QueueClosed("work queue closed")
            self.scheduler.push(tenant, item)
            self.stats.on_event(
                QueuePressure(
                    depth=len(self.scheduler),
                    tenant=tenant,
                    tenant_depth=self.scheduler.depth(tenant),
                )
            )
            self._not_empty.notify()

    # -- get -------------------------------------------------------------------

    def get(self, timeout: float | None = None) -> Any:
        """Take the next item in scheduler service order, high band
        first; blocks while empty; raises QueueClosed once closed *and*
        both bands drained.  ``timeout`` is a deadline: wakeups that
        find the queue still empty wait only on the remainder."""
        with self._not_empty:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not len(self.scheduler):
                if self._closed:
                    raise QueueClosed("work queue closed")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("work queue get timed out")
                if not self._not_empty.wait(timeout=remaining):
                    raise TimeoutError("work queue get timed out")
            was_high = self.scheduler.high_len > 0
            popped = self.scheduler.pop()
            assert popped is not None
            _, item = popped
            if was_high:
                self._wake_putters()
            return item

    def get_batch(
        self,
        limit: int,
        chain: Callable[[Any, Any], bool],
        timeout: float | None = None,
    ) -> list[Any]:
        """Take the next item plus up to ``limit - 1`` queued high-band
        items that ``chain`` accepts as its continuation.

        Blocking, close and band semantics are exactly :meth:`get`'s:
        the wait is for the *first* item only, the high band drains
        before the low band, and a low-band item is never batched
        (prefetches carry no contiguity).  The gather scans only the
        popped tenant's sub-queue — ``chain(batch[-1], candidate)`` —
        skipping non-matching items and preserving their relative order,
        so a batch never spans tenants; the gathered run is charged
        against the tenant's DRR deficit, so a long coalesced batch
        still costs its weight.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._not_empty:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not len(self.scheduler):
                if self._closed:
                    raise QueueClosed("work queue closed")
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("work queue get timed out")
                if not self._not_empty.wait(timeout=remaining):
                    raise TimeoutError("work queue get timed out")
            was_high = self.scheduler.high_len > 0
            popped = self.scheduler.pop()
            assert popped is not None
            tenant, item = popped
            if not was_high:
                return [item]
            batch = [item]
            if limit > 1:
                batch.extend(
                    self.scheduler.gather(tenant, limit - 1, chain, item)
                )
            if self.quotas:
                self._not_full.notify_all()
            else:
                for _ in batch:
                    self._not_full.notify()
            return batch

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
