"""The work queue between writers and the IO thread pool.

The paper (Section IV-B): "Data chunks are eventually handed over to the
Work Queue for actual writing... Whenever a chunk is enqueued, an IO
thread wakes up and fetches the chunk off the queue."

Close semantics are drain-then-stop: after :meth:`close`, queued items
are still handed out, and once empty every getter receives
:class:`QueueClosed` — that is how the IO threads learn to exit at
unmount without dropping in-flight chunks.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque

from ..errors import ShutdownError
from ..pipeline import PipelineStats, QueuePressure

__all__ = ["WorkQueue", "QueueClosed"]


class QueueClosed(ShutdownError):
    """Raised from get()/put() once the queue has shut down."""


class WorkQueue:
    """Bounded (optionally unbounded) thread-safe FIFO with drain-close.

    Two priority bands: the default (high) band carries writeback
    chunks, the low band readahead prefetches — ``get`` always drains
    the high band first, so prefetch never delays a checkpoint write.
    ``capacity`` bounds the high band only; low-band puts never block
    (prefetch volume is already bounded by cache admission, and a
    blocking low put from a reader holding cache locks could deadlock).

    Depth accounting is published as ``QueuePressure`` events into the
    shared :class:`~repro.pipeline.stats.PipelineStats` registry.
    """

    def __init__(self, capacity: int = 0, stats: PipelineStats | None = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity  # 0 = unbounded
        self.stats = stats if stats is not None else PipelineStats()
        self._items: Deque[Any] = deque()
        self._low: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # -- stats views (counted from QueuePressure events) ------------------------

    @property
    def total_puts(self) -> int:
        return self.stats.queue_puts

    @property
    def max_depth(self) -> int:
        return self.stats.queue_max_depth

    def __len__(self) -> int:
        with self._lock:
            return len(self._items) + len(self._low)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: Any, timeout: float | None = 30.0, low: bool = False) -> None:
        with self._not_full:
            if low:
                if self._closed:
                    raise QueueClosed("work queue closed")
                self._low.append(item)
                self.stats.on_event(
                    QueuePressure(depth=len(self._items) + len(self._low))
                )
                self._not_empty.notify()
                return
            while (
                self.capacity
                and len(self._items) >= self.capacity
                and not self._closed
            ):
                if not self._not_full.wait(timeout=timeout):
                    raise ShutdownError(f"work queue full for {timeout}s — IO stalled?")
            if self._closed:
                raise QueueClosed("work queue closed")
            self._items.append(item)
            self.stats.on_event(
                QueuePressure(depth=len(self._items) + len(self._low))
            )
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Take the next item, high band first; blocks while empty;
        raises QueueClosed once closed *and* both bands drained."""
        with self._not_empty:
            while not self._items and not self._low:
                if self._closed:
                    raise QueueClosed("work queue closed")
                if not self._not_empty.wait(timeout=timeout):
                    raise TimeoutError("work queue get timed out")
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
            else:
                item = self._low.popleft()
            return item

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
