"""The work queue between writers and the IO thread pool.

The paper (Section IV-B): "Data chunks are eventually handed over to the
Work Queue for actual writing... Whenever a chunk is enqueued, an IO
thread wakes up and fetches the chunk off the queue."

Close semantics are drain-then-stop: after :meth:`close`, queued items
are still handed out, and once empty every getter receives
:class:`QueueClosed` — that is how the IO threads learn to exit at
unmount without dropping in-flight chunks.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque

from ..errors import QueueFullTimeout, ShutdownError
from ..pipeline import PipelineStats, QueuePressure

__all__ = ["WorkQueue", "QueueClosed", "QueueFullTimeout"]

#: Sentinel distinguishing "caller never passed timeout" (fine for any
#: band) from an explicit value (a contract violation for the low band,
#: whose puts never block).
_DEFAULT_TIMEOUT: Any = object()


class QueueClosed(ShutdownError):
    """Raised from get()/put() once the queue has shut down."""


class WorkQueue:
    """Bounded (optionally unbounded) thread-safe FIFO with drain-close.

    Two priority bands: the default (high) band carries writeback
    chunks, the low band readahead prefetches — ``get`` always drains
    the high band first, so prefetch never delays a checkpoint write.
    ``capacity`` bounds the high band only; low-band puts never block
    (prefetch volume is already bounded by cache admission, and a
    blocking low put from a reader holding cache locks could deadlock).

    Depth accounting is published as ``QueuePressure`` events into the
    shared :class:`~repro.pipeline.stats.PipelineStats` registry.
    """

    def __init__(self, capacity: int = 0, stats: PipelineStats | None = None):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity  # 0 = unbounded
        self.stats = stats if stats is not None else PipelineStats()
        self._items: Deque[Any] = deque()
        self._low: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # -- stats views (counted from QueuePressure events) ------------------------

    @property
    def total_puts(self) -> int:
        return self.stats.queue_puts

    @property
    def max_depth(self) -> int:
        return self.stats.queue_max_depth

    def __len__(self) -> int:
        with self._lock:
            return len(self._items) + len(self._low)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(
        self, item: Any, timeout: float | None = _DEFAULT_TIMEOUT, low: bool = False
    ) -> None:
        """Enqueue ``item``; raises :class:`QueueClosed` once closed.

        Band contract: high-band puts block while the band is at
        ``capacity`` and raise :class:`QueueFullTimeout` after
        ``timeout`` seconds (None = wait forever; default 30 s).
        Low-band puts NEVER block — the band is unbounded by design
        (prefetch volume is capped upstream by cache admission, and a
        blocking low put from a reader holding cache locks could
        deadlock) — so passing ``timeout`` with ``low=True`` is a
        contract violation and raises :class:`ValueError` instead of
        being silently ignored.
        """
        if low and timeout is not _DEFAULT_TIMEOUT:
            raise ValueError(
                "timeout does not apply to low-band puts — they never block"
            )
        if timeout is _DEFAULT_TIMEOUT:
            timeout = 30.0
        with self._not_full:
            if low:
                if self._closed:
                    raise QueueClosed("work queue closed")
                self._low.append(item)
                self.stats.on_event(
                    QueuePressure(depth=len(self._items) + len(self._low))
                )
                self._not_empty.notify()
                return
            while (
                self.capacity
                and len(self._items) >= self.capacity
                and not self._closed
            ):
                if not self._not_full.wait(timeout=timeout):
                    raise QueueFullTimeout(
                        f"work queue full for {timeout}s — IO stalled?"
                    )
            if self._closed:
                raise QueueClosed("work queue closed")
            self._items.append(item)
            self.stats.on_event(
                QueuePressure(depth=len(self._items) + len(self._low))
            )
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Take the next item, high band first; blocks while empty;
        raises QueueClosed once closed *and* both bands drained."""
        with self._not_empty:
            while not self._items and not self._low:
                if self._closed:
                    raise QueueClosed("work queue closed")
                if not self._not_empty.wait(timeout=timeout):
                    raise TimeoutError("work queue get timed out")
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
            else:
                item = self._low.popleft()
            return item

    def get_batch(
        self,
        limit: int,
        chain: Callable[[Any, Any], bool],
        timeout: float | None = None,
    ) -> list[Any]:
        """Take the next item plus up to ``limit - 1`` queued high-band
        items that ``chain`` accepts as its continuation.

        Blocking, close and band semantics are exactly :meth:`get`'s: the
        wait is for the *first* item only, the high band drains before
        the low band, and a low-band item is never batched (prefetches
        carry no contiguity).  The gather scans the whole high band —
        ``chain(batch[-1], candidate)`` — skipping non-matching items
        and preserving their relative order, so interleaved multi-writer
        queues still coalesce each writer's contiguous runs.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._not_empty:
            while not self._items and not self._low:
                if self._closed:
                    raise QueueClosed("work queue closed")
                if not self._not_empty.wait(timeout=timeout):
                    raise TimeoutError("work queue get timed out")
            if not self._items:
                return [self._low.popleft()]
            batch = [self._items.popleft()]
            self._not_full.notify()
            if limit > 1:
                remaining: Deque[Any] = deque()
                while self._items and len(batch) < limit:
                    candidate = self._items.popleft()
                    if chain(batch[-1], candidate):
                        batch.append(candidate)
                        self._not_full.notify()
                    else:
                        remaining.append(candidate)
                remaining.extend(self._items)
                self._items = remaining
            return batch

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
