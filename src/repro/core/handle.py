"""CRFSFile: a file-object-style handle onto a CRFS mount.

Provides both cursor I/O (``write``/``read``/``seek``/``tell``, enough to
hand to code expecting a binary file object) and positional I/O
(``pwrite``/``pread``, what a checkpoint writer actually uses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import FileStateError

if TYPE_CHECKING:  # pragma: no cover
    from .filetable import FileEntry
    from .mount import CRFS

__all__ = ["CRFSFile"]


class CRFSFile:
    """One open reference to a CRFS file.

    Multiple handles may share a path (the open-file table refcounts);
    each handle keeps its own cursor.  Closing flushes and drains per the
    paper's close() semantics.
    """

    def __init__(self, fs: "CRFS", entry: "FileEntry"):
        self._fs = fs
        self._entry = entry
        self._pos = 0
        self._closed = False

    # -- state ---------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._entry.path

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise FileStateError(f"{self._entry.path}: handle is closed")

    # -- positional I/O ---------------------------------------------------------

    def pwrite(self, data: bytes | bytearray | memoryview, offset: int) -> int:
        """Write at an explicit offset (does not move the cursor)."""
        self._check_open()
        return self._fs._write(self._entry, data, offset)

    def pread(self, size: int, offset: int) -> bytes:
        """Read at an explicit offset (does not move the cursor).

        Passthrough by default; with ``read_cache_chunks`` configured
        the mount serves it from the per-file readahead cache with
        read-your-writes semantics (see :meth:`CRFS._read`)."""
        self._check_open()
        return self._fs._read(self._entry, size, offset)

    # -- cursor I/O ----------------------------------------------------------

    def write(self, data: bytes | bytearray | memoryview) -> int:
        self._check_open()
        n = self._fs._write(self._entry, data, self._pos)
        self._pos += n
        return n

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        if size < 0:
            size = max(0, self.size() - self._pos)
        out = self._fs._read(self._entry, size, self._pos)
        self._pos += len(out)
        return out

    def seek(self, offset: int, whence: int = 0) -> int:
        self._check_open()
        if whence == 0:
            new = offset
        elif whence == 1:
            new = self._pos + offset
        elif whence == 2:
            new = self.size() + offset
        else:
            raise ValueError(f"bad whence: {whence}")
        if new < 0:
            raise ValueError("negative seek position")
        self._pos = new
        return new

    def tell(self) -> int:
        return self._pos

    def size(self) -> int:
        """Logical file size: backend size or the aggregation append
        point, whichever is larger (buffered bytes count)."""
        self._check_open()
        backend_size = self._fs.backend.file_size(self._entry.backend_handle)
        return max(backend_size, self._entry.planner.append_point)

    # -- durability ---------------------------------------------------------

    def flush(self) -> None:
        """Seal the partial chunk (asynchronous; does not wait)."""
        self._check_open()
        with self._entry.write_lock:
            self._fs._flush_locked(self._entry)

    def fsync(self) -> None:
        """Flush, drain, and fsync the backing file (Section IV-D2)."""
        self._check_open()
        self._fs._fsync(self._entry)

    def close(self) -> None:
        """Flush + drain + release (Section IV-C).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._fs._close_entry(self._entry)

    # -- protocol sugar ---------------------------------------------------------

    def __enter__(self) -> "CRFSFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def writable(self) -> bool:
        return not self._closed

    def readable(self) -> bool:
        return not self._closed

    def seekable(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else f"pos={self._pos}"
        return f"<CRFSFile {self._entry.path} {state}>"
