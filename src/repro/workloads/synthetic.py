"""Synthetic raw-bandwidth workload (paper Figure 5's method).

"In this test we ran 8 parallel processes in a node each writing 1 GB
data into CRFS.  Once a filled chunk is picked up by an IO thread it is
discarded without being written to a back-end filesystem."

The workload is a plain sequence of equal-size writes per process; the
write size defaults to the FUSE big_writes request size so the writer
itself adds no extra splitting.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GiB, KiB

__all__ = ["RawWriteWorkload"]


@dataclass(frozen=True)
class RawWriteWorkload:
    """N processes x total_bytes each, written in fixed-size calls."""

    processes: int = 8
    bytes_per_process: int = 1 * GiB
    write_size: int = 128 * KiB

    def __post_init__(self) -> None:
        if self.processes < 1:
            raise ValueError("need at least one process")
        if self.bytes_per_process <= 0:
            raise ValueError("bytes_per_process must be positive")
        if self.write_size <= 0:
            raise ValueError("write_size must be positive")

    @property
    def total_bytes(self) -> int:
        return self.processes * self.bytes_per_process

    def write_sizes(self) -> list[int]:
        """The per-process write-call sequence."""
        full, rem = divmod(self.bytes_per_process, self.write_size)
        sizes = [self.write_size] * full
        if rem:
            sizes.append(rem)
        return sizes
