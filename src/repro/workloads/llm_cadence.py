"""The LLM cadence-checkpoint workload.

Drives the incremental-checkpoint path the way an LLM trainer does:
every iteration boundary, each tensor-shard file checkpoints a
deterministic dirty subset of its chunks (generation 0 is a full dump),
and a restart reassembles the current image across the generation
chain.  A thin workload-facing wrapper over
:class:`repro.checkpoint.llm.LLMCheckpointPlan` so experiments and the
perf runner share one source of truth for shard paths and dirty draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..checkpoint.llm import LLMCheckpointPlan
from ..units import MiB

__all__ = ["LLMCadenceWorkload"]


@dataclass(frozen=True)
class LLMCadenceWorkload:
    """Deterministic cadence-checkpoint schedule for one mount."""

    shards: int = 2
    shard_bytes: int = 4 * MiB
    iterations: int = 8
    dirty_fraction: float = 0.25
    path_prefix: str = "/shard"

    @property
    def plan(self) -> LLMCheckpointPlan:
        return LLMCheckpointPlan(
            shards=self.shards,
            shard_bytes=self.shard_bytes,
            iterations=self.iterations,
            dirty_fraction=self.dirty_fraction,
            path_prefix=self.path_prefix,
        )

    def shard_path(self, shard: int) -> str:
        return self.plan.shard_path(shard)

    def nchunks(self, chunk_size: int) -> int:
        return self.plan.nchunks(chunk_size)

    def dirty_chunks(
        self, seed: int, shard: int, iteration: int, chunk_size: int
    ) -> tuple[int, ...] | None:
        """Dirty declaration for one (shard, iteration); ``None`` means
        a full dump (always at iteration 0)."""
        return self.plan.dirty_chunks(seed, shard, iteration, chunk_size)

    def schedule(
        self, seed: int, chunk_size: int
    ) -> list[tuple[int, int, tuple[int, ...] | None]]:
        """The full run as ``(iteration, shard, dirty)`` checkpoints in
        execution order — iteration-major, the order a trainer hits the
        iteration barrier and dumps each shard."""
        return [
            (iteration, shard, self.dirty_chunks(seed, shard, iteration, chunk_size))
            for iteration in range(self.iterations)
            for shard in range(self.shards)
        ]
