"""NAS parallel benchmark LU footprint model.

The paper checkpoints NPB LU classes B, C and D.  For checkpoint I/O the
application is just resident memory: ``app_total_bytes`` per class is
backed out of paper Table II's MPICH2 (lowest-overhead stack) rows:

    total_checkpoint(MPICH2, class, 128) = app_total + 128 * overhead

Class D is ~10x class C is ~3x class B — the LU grid scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MB

__all__ = ["NASClass", "LU_CLASSES", "lu_class", "app_total_bytes"]


@dataclass(frozen=True)
class NASClass:
    """One NPB problem class of the LU benchmark."""

    name: str
    #: Aggregate application data across all ranks (bytes) — what a
    #: whole-job checkpoint must persist, before MPI-stack overheads.
    app_total: int

    def per_rank(self, nprocs: int) -> int:
        return self.app_total // nprocs


#: Backed out of Table II MPICH2 totals minus 128 x 0.4 MB stack overhead.
LU_CLASSES: dict[str, NASClass] = {
    "B": NASClass("B", app_total=int(446.6 * MB)),
    "C": NASClass("C", app_total=int(1308.4 * MB)),
    "D": NASClass("D", app_total=int(13210.0 * MB)),
}


def lu_class(name: str) -> NASClass:
    try:
        return LU_CLASSES[name.upper()]
    except KeyError:
        raise KeyError(f"unknown LU class {name!r}; know {sorted(LU_CLASSES)}") from None


def app_total_bytes(class_name: str) -> int:
    return lu_class(class_name).app_total
