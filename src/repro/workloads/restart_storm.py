"""Restart-storm workload: mass concurrent restore after a failure.

The paper treats restart as a single-rank sequential read (Section
V-F), but the CRIU-style failover scenarios in the related work make
mass concurrent restore the hard case: N ranks on M nodes all re-read
their checkpoint images at once after a node dies.  This module models
that storm as data — per-rank image sizes, the sequential read-request
plan, and deterministic arrival jitter — so the registry experiment and
the perf harness replay the identical storm from the same seed.

Arrivals are drawn per (node, rank) from the seeded RNG tree
(``rng_for(seed, "storm/<node>/<rank>")``), uniform on ``[0,
jitter_s)``: real failover restores do not start in lockstep (detection
and scheduling skew spread them out), and the spread is itself a knob —
``jitter_s=0`` is the synchronized worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import KiB, MiB
from ..util.rng import rng_for

__all__ = ["RestartStormWorkload"]


@dataclass(frozen=True)
class RestartStormWorkload:
    """N ranks x M nodes concurrently restoring one image each."""

    ranks: int = 8
    nodes: int = 1
    image_bytes: int = 8 * MiB
    read_request: int = 256 * KiB
    jitter_s: float = 0.0
    #: Per-read restore work (CRIU-style page injection: map + copy the
    #: pages just read before asking for more).  This is what readahead
    #: overlaps with the next fetch; 0 models a pure read-back storm.
    think_s: float = 0.0

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError("need at least one rank")
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.image_bytes <= 0:
            raise ValueError("image_bytes must be positive")
        if self.read_request <= 0:
            raise ValueError("read_request must be positive")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        if self.think_s < 0:
            raise ValueError("think_s must be >= 0")

    @property
    def total_ranks(self) -> int:
        return self.ranks * self.nodes

    @property
    def total_bytes(self) -> int:
        return self.total_ranks * self.image_bytes

    def image_path(self, node: int, rank: int) -> str:
        return f"/ckpt/node{node}/rank{rank}.img"

    def arrival(self, seed: int, node: int, rank: int) -> float:
        """This rank's restore start offset, uniform on [0, jitter_s)."""
        if self.jitter_s == 0.0:
            return 0.0
        rng = rng_for(seed, f"storm/{node}/{rank}")
        return float(rng.random() * self.jitter_s)

    def arrivals(self, seed: int) -> list[tuple[int, int, float]]:
        """Every (node, rank, arrival) of the storm, in spawn order."""
        return [
            (node, rank, self.arrival(seed, node, rank))
            for node in range(self.nodes)
            for rank in range(self.ranks)
        ]

    def read_plan(self) -> list[int]:
        """One rank's sequential restore read-call sequence."""
        full, rem = divmod(self.image_bytes, self.read_request)
        sizes = [self.read_request] * full
        if rem:
            sizes.append(rem)
        return sizes
