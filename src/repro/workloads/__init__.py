"""Workload models: NAS LU footprints, synthetic raw-bandwidth writers
and the mass-concurrent restart storm."""

from .llm_cadence import LLMCadenceWorkload
from .nas import NASClass, LU_CLASSES, lu_class, app_total_bytes
from .restart_storm import RestartStormWorkload
from .synthetic import RawWriteWorkload

__all__ = [
    "NASClass",
    "LU_CLASSES",
    "lu_class",
    "app_total_bytes",
    "LLMCadenceWorkload",
    "RawWriteWorkload",
    "RestartStormWorkload",
]
