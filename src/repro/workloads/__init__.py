"""Workload models: NAS LU footprints and synthetic raw-bandwidth writers."""

from .nas import NASClass, LU_CLASSES, lu_class, app_total_bytes
from .synthetic import RawWriteWorkload

__all__ = [
    "NASClass",
    "LU_CLASSES",
    "lu_class",
    "app_total_bytes",
    "RawWriteWorkload",
]
