"""Byte-size units, parsing and formatting.

The paper quotes sizes in both binary multiples ("4 MB buffer chunk",
meaning 4 MiB) and decimal throughput (MB/s).  We follow the systems
convention: storage sizes are binary (KiB/MiB/GiB), bandwidths are decimal
(MB/s = 1e6 bytes/s) — matching how the paper's figures read.
"""

from __future__ import annotations

import re

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "MB",
    "GB",
    "parse_size",
    "format_size",
    "format_bandwidth",
]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Decimal megabyte, used for bandwidths (MB/s) as in the paper's figures.
MB = 1_000_000
GB = 1_000_000_000

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": GiB * 1024,
    "tb": GiB * 1024,
    "tib": GiB * 1024,
}


def parse_size(text: str | int) -> int:
    """Parse a human size string like ``"4M"``, ``"128KiB"`` or ``"16 MB"``.

    Integers pass through unchanged.  Suffixes are binary (``K``/``KB``/
    ``KiB`` are all 1024) because that is how chunk/pool sizes are specified
    throughout the paper.  Raises ``ValueError`` on garbage.
    """
    if isinstance(text, int):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text}")
        return text
    s = text.strip().lower()
    if not s:
        raise ValueError("empty size string")
    m = re.fullmatch(r"(\d+(?:\.\d+)?)\s*([a-z]*)", s)
    if m is None:
        raise ValueError(f"malformed size string {text!r}")
    num, suffix = m.group(1), m.group(2)
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    value = float(num) * _SUFFIXES[suffix]
    if value != int(value):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(value)


def format_size(nbytes: float) -> str:
    """Render a byte count with a binary suffix (``6.0 GiB`` style)."""
    n = float(nbytes)
    for unit, div in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= div:
            return f"{n / div:.1f} {unit}"
    return f"{int(n)} B"


def format_bandwidth(bytes_per_sec: float) -> str:
    """Render a bandwidth in decimal MB/s or GB/s, as the paper does."""
    if abs(bytes_per_sec) >= GB:
        return f"{bytes_per_sec / GB:.2f} GB/s"
    return f"{bytes_per_sec / MB:.1f} MB/s"
