"""Hierarchical async staging: the tiered backend (ROADMAP item 2).

``TieredBackend`` composes a chain of ordinary backends — e.g. Mem →
LocalDir → an NFS/Lustre-like store — into one :class:`Backend`.  The
mount's IO workers write into **tier 0** only, so a chunk writeback
completes at staging speed; background *pump* workers (a private
:class:`~repro.core.workqueue.WorkQueue` drained by dedicated threads,
batch-aware like the coalesced-writeback path) copy each accepted
extent tier-to-tier until every tier holds the full image.

Durability is a *level*: ``fsync`` waits until the file's extents have
reached tiers ``0..fsync_tier`` (the ``fsync_tier`` CRFSConfig knob;
-1 = the deepest tier) and then fsyncs exactly those tiers.  Reads are
always served from tier 0, which by construction holds every byte.

Resilience applies **per tier**: each migration destination gets its
own :class:`~repro.pipeline.resilience.RetryPolicy` chain and
:class:`~repro.pipeline.resilience.BackendHealth` breaker (surfaced as
``TierDegraded``/``TierRecovered`` on the unified stream).  A migration
whose retries exhaust *strands* its extents at the shallower tier — a
broken PFS degrades the mount to "durable on local disk" instead of
dragging it into synchronous write-through; the strand error latches
and surfaces from any ``fsync`` whose durability level includes the
broken tier.

The accounting (what each tier is owed, what stranded where) lives in
the plane-agnostic :class:`~repro.pipeline.staging.StagingCore`, which
the timing plane's pump model drives identically — the ``tiers``
section of ``stats()`` is bit-identical across planes.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional, Sequence

from ..errors import BackendTimeoutError, ShutdownError
from ..pipeline.events import PipelineEvent
from ..pipeline.resilience import BackendHealth, RetryPolicy, run_attempts
from ..pipeline.staging import StagedFile, StagingCore, tier_health_emit
from .base import Backend, BackendStat

__all__ = ["TieredBackend"]

EmitFn = Callable[[PipelineEvent], None]


class _TierHandle:
    """One open file across every tier: the per-tier inner handles plus
    the shared staging debt."""

    __slots__ = ("path", "inner", "staged")

    def __init__(self, path: str, inner: list[Any], staged: StagedFile):
        self.path = path
        self.inner = inner
        self.staged = staged


class _Extent:
    """One pump work item: ``chunks`` accepted extents, contiguous in
    ``handle``'s file, bound for tier ``tier``."""

    __slots__ = ("handle", "tier", "offset", "length", "chunks", "lengths")

    def __init__(
        self,
        handle: _TierHandle,
        tier: int,
        offset: int,
        length: int,
        chunks: int = 1,
        lengths: tuple[int, ...] | None = None,
    ):
        self.handle = handle
        self.tier = tier
        self.offset = offset
        self.length = length
        self.chunks = chunks
        #: Original per-extent lengths, kept so a coalesced migration can
        #: still issue a *vectored* destination write (one iovec per
        #: accepted extent, like the writeback batching it mirrors).
        self.lengths = lengths if lengths is not None else (length,)


def _chainable(prev: _Extent, nxt: _Extent) -> bool:
    """Whether ``nxt`` extends ``prev`` into one migration op: same
    file, same destination tier, contiguous bytes."""
    return (
        nxt.handle is prev.handle
        and nxt.tier == prev.tier
        and nxt.offset == prev.offset + prev.length
    )


class TieredBackend(Backend):
    """A chain of backends staged tier-to-tier by background pumps."""

    name = "tiered"

    def __init__(
        self,
        tiers: Sequence[Backend],
        fsync_tier: int = -1,
        pump_threads: int = 1,
        pump_batch_chunks: int = 1,
        retry: RetryPolicy | None = None,
        breaker_threshold: int = 0,
        emit: EmitFn | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if len(tiers) < 2:
            raise ValueError(
                f"TieredBackend needs >= 2 tiers, got {len(tiers)} "
                "(a single tier is just that backend)"
            )
        self.tiers: list[Backend] = list(tiers)
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker_threshold = breaker_threshold
        self._emit: EmitFn = emit if emit is not None else (lambda event: None)
        self._clock = clock if clock is not None else time.perf_counter
        self._sleep = sleep
        self._fsync_tier_knob = fsync_tier
        self._pump_threads = pump_threads
        self._pump_batch = pump_batch_chunks
        # One lock guards the staging accounting; the idle condition
        # wakes fsync/drain waiters whenever debt is paid (or forgiven).
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._pump_depth = 0
        self._workers: list[threading.Thread] = []
        self._started = False
        self._shutdown = False
        self._rebuild()
        # Private queue: its QueuePressure events land in its own stats
        # sink, never the mount's `queue` section.
        from ..core.workqueue import WorkQueue

        self._queue = WorkQueue()

    def _rebuild(self) -> None:
        """(Re)derive the staging core and per-tier breakers from the
        current emit/clock/policy — called at construction and again
        from :meth:`bind` once the mount's kernel exists."""
        self._core = StagingCore(
            ntiers=len(self.tiers),
            fsync_tier=self._fsync_tier_knob,
            emit=self._emit,
            clock=self._clock,
        )
        # healths[k] guards migrations *into* tier k (k >= 1); tier 0 is
        # covered by the mount's own breaker, since tier-0 writes are the
        # mount's backend writes.
        self._healths: list[Optional[BackendHealth]] = [None]
        for tier in range(1, len(self.tiers)):
            self._healths.append(
                BackendHealth(
                    threshold=self._breaker_threshold,
                    emit=tier_health_emit(self._emit, tier),
                    clock=self._clock,
                )
            )

    # -- mount wiring ---------------------------------------------------------

    def bind(
        self,
        emit: EmitFn,
        clock: Callable[[], float],
        retry: RetryPolicy | None = None,
        breaker_threshold: int | None = None,
        fsync_tier: int = -1,
        pump_threads: int | None = None,
        pump_batch_chunks: int | None = None,
    ) -> None:
        """Wire this backend into a mount's pipeline kernel: tier events
        join the unified stream, per-tier breakers use the kernel clock,
        and the config's staging knobs take effect.  Must be called
        before any IO (the mount does it at construction)."""
        if self._started:
            raise ShutdownError("cannot bind a tiered backend after IO started")
        self._emit = emit
        self._clock = clock
        if retry is not None:
            self._retry = retry
        if breaker_threshold is not None:
            self._breaker_threshold = breaker_threshold
        self._fsync_tier_knob = fsync_tier
        if pump_threads is not None:
            self._pump_threads = pump_threads
        if pump_batch_chunks is not None:
            self._pump_batch = pump_batch_chunks
        self._rebuild()

    @property
    def fsync_tier(self) -> int:
        """The resolved durability level (tier index) fsync syncs through."""
        return self._core.fsync_tier

    def resolve_fsync_tier(self, tier: int) -> int:
        """Normalize an ``fsync_tier`` knob (-1 = deepest) against this
        chain (raises on out-of-range)."""
        return StagingCore.resolve_tier(tier, len(self.tiers))

    @property
    def outstanding(self) -> int:
        """Total arrivals still owed across all files and tiers."""
        with self._lock:
            return self._core.outstanding

    # -- pump lifecycle -------------------------------------------------------

    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            if self._shutdown:
                raise ShutdownError("tiered backend is shut down")
            self._started = True
            for i in range(self._pump_threads):
                t = threading.Thread(
                    target=self._pump_worker, name=f"crfs-pump-{i}", daemon=True
                )
                self._workers.append(t)
                t.start()

    def _pump_worker(self) -> None:
        while True:
            try:
                if self._pump_batch > 1:
                    extents = self._queue.get_batch(self._pump_batch, _chainable)
                else:
                    extents = [self._queue.get()]
            except ShutdownError:
                return
            with self._lock:
                self._pump_depth -= len(extents)
            self._migrate(extents)

    def _enqueue(self, extent: _Extent) -> None:
        """Hand one extent to the pump (caller holds the lock); the
        depth gauge counts queued extents, maintained here rather than
        read back from the queue so both planes publish the same
        workload-determined depths."""
        self._pump_depth += 1
        self._core.enqueued(extent.tier, self._pump_depth)
        self._queue.put(extent)

    def _migrate(self, extents: list[_Extent]) -> None:
        """One pump op: read the contiguous run from tier k-1 and write
        it into tier k under the destination tier's own retry/breaker.
        On success the run is forwarded toward tier k+1; on retry
        exhaustion it strands where it is."""
        handle = extents[0].handle
        sf = handle.staged
        tier = extents[0].tier
        offset = extents[0].offset
        total = sum(e.length for e in extents)
        chunks = sum(e.chunks for e in extents)
        lengths = [n for e in extents for n in e.lengths]
        start = self._clock()

        def attempt() -> None:
            payload = self.tiers[tier - 1].pread(
                handle.inner[tier - 1], total, offset
            )
            view = memoryview(payload)
            if len(lengths) > 1:
                views, at = [], 0
                for n in lengths:
                    views.append(view[at : at + n])
                    at += n
                self.tiers[tier].pwritev(handle.inner[tier], views, offset)
            else:
                self.tiers[tier].pwrite(handle.inner[tier], view, offset)

        error = run_attempts(
            self._retry,
            attempt,
            path=handle.path,
            file_offset=offset,
            clock=self._clock,
            health=self._healths[tier],
            on_retry=lambda attempt_no, delay, exc: self._core.retried(
                tier, handle.path, offset, attempt_no, delay, exc
            ),
            sleep=self._sleep,
        )
        deferred_close = False
        with self._idle:
            if error is None:
                self._core.migrated(sf, tier, offset, total, chunks, start)
                if tier + 1 < len(self.tiers):
                    self._enqueue(
                        _Extent(
                            handle, tier + 1, offset, total, chunks,
                            lengths=tuple(lengths),
                        )
                    )
            else:
                self._core.stranded(sf, tier, offset, total, chunks, start, error)
            if sf.closing and sum(sf.pending) == 0:
                sf.closing = False
                deferred_close = True
            self._idle.notify_all()
        if deferred_close:
            self._close_inner(handle)

    # -- data plane -----------------------------------------------------------

    def open(self, path: str, create: bool = True, truncate: bool = False) -> Any:
        self._ensure_started()
        inner = [t.open(path, create, truncate) for t in self.tiers]
        return _TierHandle(path, inner, self._core.file(path))

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        n = self.tiers[0].pwrite(handle.inner[0], data, offset)
        self._stage(handle, offset, n)
        return n

    def pwritev(
        self, handle: Any, views: Sequence[bytes | memoryview], offset: int
    ) -> int:
        n = self.tiers[0].pwritev(handle.inner[0], views, offset)
        self._stage(handle, offset, n)
        return n

    def _stage(self, handle: _TierHandle, offset: int, length: int) -> None:
        """Tier 0 accepted one extent: account it and hand it to the pump."""
        with self._lock:
            self._core.accept(handle.staged, offset, length)
            self._enqueue(_Extent(handle, 1, offset, length))

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        # Tier 0 is a full replica by construction — reads never wait on
        # the pump.
        return self.tiers[0].pread(handle.inner[0], size, offset)

    def pread_into(self, handle: Any, buf: memoryview | bytearray, offset: int) -> int:
        return self.tiers[0].pread_into(handle.inner[0], buf, offset)

    def fsync(self, handle: Any) -> None:
        self.fsync_through(handle, self._core.fsync_tier)

    def fsync_through(
        self, handle: Any, tier: int, timeout: float | None = 60.0
    ) -> None:
        """Durability through tier ``tier``: wait until every extent the
        file staged has arrived at (or stranded short of) tiers
        0..``tier``, surface the shallowest strand error if any, then
        fsync those tiers in order.  ``timeout`` is a deadline."""
        tier = StagingCore.resolve_tier(tier, len(self.tiers))
        sf: StagedFile = handle.staged
        with self._idle:
            deadline = None if timeout is None else time.monotonic() + timeout
            while sf.pending_through(tier) > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                stuck = remaining is not None and remaining <= 0
                if stuck or not self._idle.wait(timeout=remaining):
                    raise BackendTimeoutError(
                        f"{handle.path}: tier-{tier} sync stuck "
                        f"({sf.pending_through(tier)} extent(s) in flight)"
                    )
            error = sf.sync_error(tier)
        if error is not None:
            raise error
        for level in range(tier + 1):
            self.tiers[level].fsync(handle.inner[level])
        with self._lock:
            self._core.synced(sf, tier)

    def close(self, handle: Any) -> None:
        """Release the handle.  A file with migrations still in flight
        defers the underlying per-tier closes to the pump worker that
        pays its last debt — close never waits for deep tiers."""
        with self._lock:
            if sum(handle.staged.pending) > 0:
                handle.staged.closing = True
                return
        self._close_inner(handle)

    def _close_inner(self, handle: _TierHandle) -> None:
        for tier, backend in enumerate(self.tiers):
            backend.close(handle.inner[tier])

    def file_size(self, handle: Any) -> int:
        return self.tiers[0].file_size(handle.inner[0])

    # -- drain / shutdown -----------------------------------------------------

    def drain(self, timeout: float | None = 30.0) -> None:
        """Block until the pump has no migrations outstanding anywhere
        (every extent arrived at the deepest tier or stranded)."""
        with self._idle:
            deadline = None if timeout is None else time.monotonic() + timeout
            while self._core.outstanding > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                stuck = remaining is not None and remaining <= 0
                if stuck or not self._idle.wait(timeout=remaining):
                    raise BackendTimeoutError(
                        f"tier pump drain stuck "
                        f"({self._core.outstanding} arrival(s) outstanding)"
                    )

    def shutdown(self, timeout: float | None = 30.0) -> None:
        """Drain the pump, then stop its workers.  Idempotent; the queue
        closes (drain-then-stop) even when the drain times out, so
        workers always exit once their current op finishes."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            started = self._started
        try:
            if started:
                self.drain(timeout)
        finally:
            self._queue.close()
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            stuck = []
            for worker in self._workers:
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                worker.join(timeout=remaining)
                if worker.is_alive():
                    stuck.append(worker.name)
            if stuck:
                raise BackendTimeoutError(
                    f"tier pump worker(s) did not exit: {', '.join(stuck)}"
                )

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.tiers[0].exists(path)

    def stat(self, path: str) -> BackendStat:
        return self.tiers[0].stat(path)

    def listdir(self, path: str) -> list[str]:
        return self.tiers[0].listdir(path)

    def _fanout(self, op: Callable[[Backend], None]) -> None:
        """Apply a namespace mutation to every tier; deeper tiers may
        not have received the path yet, so absence there is not an
        error."""
        op(self.tiers[0])
        for backend in self.tiers[1:]:
            try:
                op(backend)
            except FileNotFoundError:
                pass

    def unlink(self, path: str) -> None:
        self._fanout(lambda b: b.unlink(path))

    def mkdir(self, path: str) -> None:
        for backend in self.tiers:
            backend.mkdir(path)

    def rmdir(self, path: str) -> None:
        self._fanout(lambda b: b.rmdir(path))

    def rename(self, old: str, new: str) -> None:
        self._fanout(lambda b: b.rename(old, new))

    def truncate(self, path: str, size: int) -> None:
        self._fanout(lambda b: b.truncate(path, size))
