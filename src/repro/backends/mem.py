"""In-memory backend: a full directory tree with POSIX-ish semantics.

The default backing store for tests and examples.  Matches the POSIX
behaviours CRFS relies on:

* sparse positional writes (a pwrite past EOF zero-fills the gap — chunk
  writeback can complete out of order);
* unlink-while-open keeps data reachable through existing handles;
* rename replaces an existing file atomically.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, Sequence

from ..errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from .base import Backend, BackendStat, normalize_path, split_path

__all__ = ["MemBackend"]


class _FileNode:
    __slots__ = ("data", "lock", "nlink")

    def __init__(self) -> None:
        self.data = bytearray()
        self.lock = threading.Lock()
        self.nlink = 1


class _DirNode:
    __slots__ = ("children",)

    def __init__(self) -> None:
        self.children: Dict[str, Any] = {}


class _Handle:
    __slots__ = ("fd", "node", "path", "closed")

    def __init__(self, fd: int, node: _FileNode, path: str):
        self.fd = fd
        self.node = node
        self.path = path
        self.closed = False


class MemBackend(Backend):
    """Thread-safe in-memory filesystem tree."""

    name = "mem"

    def __init__(self) -> None:
        self._root = _DirNode()
        self._tree_lock = threading.RLock()
        self._fd_counter = itertools.count(3)  # 0-2 reserved, as tradition
        self._handles: Dict[int, _Handle] = {}
        # -- stats
        self.total_pwrites = 0
        self.total_bytes_written = 0
        self.total_fsyncs = 0

    # -- tree walking ------------------------------------------------------

    def _walk_dir(self, path: str) -> _DirNode:
        node: Any = self._root
        norm = normalize_path(path)
        if norm == "/":
            return node
        for part in norm.strip("/").split("/"):
            if not isinstance(node, _DirNode):
                raise NotADirectory(path)
            if part not in node.children:
                raise FileNotFound(path)
            node = node.children[part]
        if not isinstance(node, _DirNode):
            raise NotADirectory(path)
        return node

    def _lookup(self, path: str) -> Any:
        parent_path, name = split_path(path)
        if name == "":
            return self._root
        parent = self._walk_dir(parent_path)
        if name not in parent.children:
            raise FileNotFound(path)
        return parent.children[name]

    # -- data plane ----------------------------------------------------------

    def open(self, path: str, create: bool = True, truncate: bool = False) -> int:
        with self._tree_lock:
            parent_path, name = split_path(path)
            if name == "":
                raise IsADirectory(path)
            parent = self._walk_dir(parent_path)
            node = parent.children.get(name)
            if node is None:
                if not create:
                    raise FileNotFound(path)
                node = _FileNode()
                parent.children[name] = node
            elif isinstance(node, _DirNode):
                raise IsADirectory(path)
            if truncate:
                with node.lock:
                    del node.data[:]
            fd = next(self._fd_counter)
            self._handles[fd] = _Handle(fd, node, normalize_path(path))
            return fd

    def _handle(self, fd: Any) -> _Handle:
        h = self._handles.get(fd)
        if h is None or h.closed:
            raise BadFileDescriptor(f"fd {fd!r}")
        return h

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        h = self._handle(handle)
        # Splice the caller's view straight into the node's bytearray —
        # no intermediate bytes().  The slice assignment consumes the
        # view before returning, which is the pwrite aliasing contract.
        view = data if isinstance(data, memoryview) else memoryview(data)
        length = view.nbytes
        if length == 0:  # POSIX: zero-length writes do not extend the file
            return 0
        node = h.node
        with node.lock:
            end = offset + length
            if end > len(node.data):
                node.data.extend(b"\x00" * (end - len(node.data)))
            node.data[offset:end] = view
        self.total_pwrites += 1
        self.total_bytes_written += length
        return length

    def pwritev(
        self, handle: Any, views: Sequence[bytes | memoryview], offset: int
    ) -> int:
        h = self._handle(handle)
        vs = [v if isinstance(v, memoryview) else memoryview(v) for v in views]
        total = sum(v.nbytes for v in vs)
        if total == 0:
            return 0
        node = h.node
        with node.lock:
            end = offset + total
            if end > len(node.data):
                node.data.extend(b"\x00" * (end - len(node.data)))
            # One zero-extend, then back-to-back splices — no b"".join
            # materialization of the whole batch.
            pos = offset
            for v in vs:
                node.data[pos : pos + v.nbytes] = v
                pos += v.nbytes
        # One backend op for the whole batch: the point of the gather.
        self.total_pwrites += 1
        self.total_bytes_written += total
        return total

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        h = self._handle(handle)
        # The one materialization the bytes-returning signature demands
        # (exactly the requested region; see Backend.pread).  Callers
        # with their own buffer use pread_into and skip it.  Going
        # through a view avoids the bytearray-slice + bytes() double
        # copy.
        with h.node.lock:
            src = memoryview(h.node.data)
            try:
                return bytes(src[offset : offset + size])
            finally:
                src.release()

    def pread_into(self, handle: Any, buf: memoryview | bytearray, offset: int) -> int:
        h = self._handle(handle)
        out = memoryview(buf)
        with h.node.lock:
            data = h.node.data
            n = min(len(out), max(0, len(data) - offset))
            if n:
                src = memoryview(data)
                try:
                    out[:n] = src[offset : offset + n]
                finally:
                    src.release()
        return n

    def fsync(self, handle: Any) -> None:
        self._handle(handle)  # validate only; memory is already "stable"
        self.total_fsyncs += 1

    def close(self, handle: Any) -> None:
        h = self._handle(handle)
        h.closed = True
        with self._tree_lock:
            del self._handles[h.fd]

    def file_size(self, handle: Any) -> int:
        h = self._handle(handle)
        with h.node.lock:
            return len(h.node.data)

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def stat(self, path: str) -> BackendStat:
        with self._tree_lock:
            node = self._lookup(path)
            if isinstance(node, _DirNode):
                return BackendStat(size=0, is_dir=True, nlink=2 + len(node.children))
            return BackendStat(size=len(node.data), is_dir=False, nlink=node.nlink)

    def unlink(self, path: str) -> None:
        with self._tree_lock:
            parent_path, name = split_path(path)
            parent = self._walk_dir(parent_path)
            node = parent.children.get(name)
            if node is None:
                raise FileNotFound(path)
            if isinstance(node, _DirNode):
                raise IsADirectory(path)
            node.nlink -= 1
            del parent.children[name]

    def mkdir(self, path: str) -> None:
        with self._tree_lock:
            parent_path, name = split_path(path)
            if name == "":
                raise FileExists(path)
            parent = self._walk_dir(parent_path)
            if name in parent.children:
                raise FileExists(path)
            parent.children[name] = _DirNode()

    def rmdir(self, path: str) -> None:
        with self._tree_lock:
            parent_path, name = split_path(path)
            if name == "":
                raise DirectoryNotEmpty(path)
            parent = self._walk_dir(parent_path)
            node = parent.children.get(name)
            if node is None:
                raise FileNotFound(path)
            if not isinstance(node, _DirNode):
                raise NotADirectory(path)
            if node.children:
                raise DirectoryNotEmpty(path)
            del parent.children[name]

    def listdir(self, path: str) -> list[str]:
        with self._tree_lock:
            node = self._lookup(path)
            if not isinstance(node, _DirNode):
                raise NotADirectory(path)
            return sorted(node.children)

    def rename(self, old: str, new: str) -> None:
        with self._tree_lock:
            old_parent_path, old_name = split_path(old)
            new_parent_path, new_name = split_path(new)
            old_parent = self._walk_dir(old_parent_path)
            if old_name not in old_parent.children:
                raise FileNotFound(old)
            new_parent = self._walk_dir(new_parent_path)
            node = old_parent.children[old_name]
            existing = new_parent.children.get(new_name)
            if existing is not None:
                if isinstance(existing, _DirNode) and not isinstance(node, _DirNode):
                    raise IsADirectory(new)
                if isinstance(existing, _DirNode) and existing.children:
                    raise DirectoryNotEmpty(new)
            del old_parent.children[old_name]
            new_parent.children[new_name] = node

    def truncate(self, path: str, size: int) -> None:
        with self._tree_lock:
            node = self._lookup(path)
            if isinstance(node, _DirNode):
                raise IsADirectory(path)
        with node.lock:
            if size < len(node.data):
                del node.data[size:]
            else:
                node.data.extend(b"\x00" * (size - len(node.data)))

    # -- test/debug helpers -----------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Whole-file read by path (test convenience; one deliberate
        whole-image materialization — not a hot-path API)."""
        node = self._lookup(path)
        if isinstance(node, _DirNode):
            raise IsADirectory(path)
        with node.lock:
            return bytes(node.data)
