"""Null backend: accepts and discards all data.

This is the measurement rig of paper Figure 5: "Once a filled chunk is
picked up by an IO thread it is discarded without being written to a
back-end filesystem.  With this we can measure the raw performance of
CRFS to aggregate write streams, precluding the impacts of different
back-end filesystems."

Namespace ops maintain just enough state (paths and sizes) for the CRFS
mount's bookkeeping to work.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from ..errors import BadFileDescriptor, FileNotFound
from .base import Backend, BackendStat, normalize_path

__all__ = ["NullBackend"]


class NullBackend(Backend):
    """Discards writes; reads return zeros up to the recorded size."""

    name = "null"

    def __init__(self) -> None:
        self._sizes: dict[str, int] = {}
        self._dirs: set[str] = {"/"}
        self._fd_paths: dict[int, str] = {}
        self._fds = itertools.count(3)
        self._lock = threading.Lock()
        self.total_pwrites = 0
        self.total_bytes = 0

    def open(self, path: str, create: bool = True, truncate: bool = False) -> int:
        norm = normalize_path(path)
        with self._lock:
            if norm not in self._sizes:
                if not create:
                    raise FileNotFound(path)
                self._sizes[norm] = 0
            elif truncate:
                self._sizes[norm] = 0
            fd = next(self._fds)
            self._fd_paths[fd] = norm
            return fd

    def _path(self, handle: Any) -> str:
        with self._lock:
            try:
                return self._fd_paths[handle]
            except KeyError:
                raise BadFileDescriptor(f"fd {handle!r}") from None

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        path = self._path(handle)
        n = len(data)
        with self._lock:
            if n:  # POSIX: zero-length writes do not extend the file
                self._sizes[path] = max(self._sizes[path], offset + n)
            self.total_pwrites += 1
            self.total_bytes += n
        return n

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        path = self._path(handle)
        with self._lock:
            end = min(offset + size, self._sizes[path])
        return b"\x00" * max(0, end - offset)

    def fsync(self, handle: Any) -> None:
        self._path(handle)

    def close(self, handle: Any) -> None:
        self._path(handle)
        with self._lock:
            del self._fd_paths[handle]

    def file_size(self, handle: Any) -> int:
        path = self._path(handle)
        with self._lock:
            return self._sizes[path]

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        norm = normalize_path(path)
        with self._lock:
            return norm in self._sizes or norm in self._dirs

    def stat(self, path: str) -> BackendStat:
        norm = normalize_path(path)
        with self._lock:
            if norm in self._dirs:
                return BackendStat(size=0, is_dir=True)
            if norm in self._sizes:
                return BackendStat(size=self._sizes[norm], is_dir=False)
        raise FileNotFound(path)

    def unlink(self, path: str) -> None:
        norm = normalize_path(path)
        with self._lock:
            if norm not in self._sizes:
                raise FileNotFound(path)
            del self._sizes[norm]

    def mkdir(self, path: str) -> None:
        with self._lock:
            self._dirs.add(normalize_path(path))

    def rmdir(self, path: str) -> None:
        norm = normalize_path(path)
        with self._lock:
            self._dirs.discard(norm)

    def listdir(self, path: str) -> list[str]:
        norm = normalize_path(path)
        prefix = norm.rstrip("/") + "/"
        with self._lock:
            names = set()
            for p in list(self._sizes) + list(self._dirs):
                if p.startswith(prefix) and p != norm:
                    names.add(p[len(prefix) :].split("/")[0])
            return sorted(names)

    def rename(self, old: str, new: str) -> None:
        o, n = normalize_path(old), normalize_path(new)
        with self._lock:
            if o not in self._sizes:
                raise FileNotFound(old)
            self._sizes[n] = self._sizes.pop(o)

    def truncate(self, path: str, size: int) -> None:
        norm = normalize_path(path)
        with self._lock:
            if norm not in self._sizes:
                raise FileNotFound(path)
            self._sizes[norm] = size
