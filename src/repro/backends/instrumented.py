"""Instrumented backend: records every operation passing through.

Wraps any other backend and keeps an op log with sizes, offsets and
wall-clock durations — the functional-plane analogue of the paper's
extended-BLCR profiling ("we extended the BLCR library to record the
information for all write operations, including number of writes, size
of a write and time cost for each write").

:class:`PipelineOpRecorder` is the plane-agnostic counterpart: it builds
the same kind of op log from the unified pipeline event stream, so one
recorder subscribed to a :class:`~repro.pipeline.kernel.PipelineKernel`
captures the pipeline's behaviour on *either* plane — including the
simulated one, which has no Backend to wrap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from ..pipeline import (
    ChunkSealed,
    ChunkWritten,
    FileClosed,
    FileOpened,
    PipelineEvent,
    PipelineObserver,
    WriteObserved,
)
from .base import Backend, BackendStat

__all__ = ["InstrumentedBackend", "OpRecord", "PipelineOpRecorder"]


@dataclass(frozen=True)
class OpRecord:
    """One backend operation."""

    op: str
    path: str
    size: int
    offset: int
    start: float
    duration: float


class PipelineOpRecorder(PipelineObserver):
    """Op log built from the unified pipeline event stream.

    Event-to-op mapping: ``WriteObserved`` -> ``"write"`` (or
    ``"write_through"``), ``ChunkSealed`` -> ``"seal"`` (offset/size are
    the sealed chunk's), ``ChunkWritten`` -> ``"chunk_write"`` (or
    ``"chunk_error"``), ``FileOpened``/``FileClosed`` -> ``"open"`` /
    ``"close"``.  Timestamps are in the emitting plane's clock.
    """

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self._lock = threading.Lock()

    def on_event(self, event: PipelineEvent) -> None:
        if isinstance(event, WriteObserved):
            rec = OpRecord(
                op="write_through" if event.write_through else "write",
                path=event.path,
                size=event.length,
                offset=event.offset,
                start=event.start,
                duration=event.duration,
            )
        elif isinstance(event, ChunkSealed):
            rec = OpRecord(
                op="seal",
                path=event.path,
                size=event.length,
                offset=event.file_offset,
                start=event.t,
                duration=0.0,
            )
        elif isinstance(event, ChunkWritten):
            rec = OpRecord(
                op="chunk_error" if event.error is not None else "chunk_write",
                path=event.path,
                size=event.length,
                offset=event.file_offset,
                start=event.start,
                duration=event.duration,
            )
        elif isinstance(event, FileOpened):
            rec = OpRecord(
                op="open", path=event.path, size=0, offset=0, start=event.t,
                duration=0.0,
            )
        elif isinstance(event, FileClosed):
            rec = OpRecord(
                op="close", path=event.path, size=0, offset=0, start=event.t,
                duration=0.0,
            )
        else:
            return
        with self._lock:
            self.records.append(rec)

    def ops(self, kind: str | None = None) -> list[OpRecord]:
        with self._lock:
            if kind is None:
                return list(self.records)
            return [r for r in self.records if r.op == kind]

    def write_sizes(self) -> list[int]:
        """Sizes of application writes, in order."""
        return [r.size for r in self.ops("write")]

    def chunk_sizes(self) -> list[int]:
        """Sizes of completed chunk writebacks, in order."""
        return [r.size for r in self.ops("chunk_write")]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()


class InstrumentedBackend(Backend):
    """Delegating wrapper that appends an :class:`OpRecord` per call."""

    name = "instrumented"

    def __init__(self, inner: Backend, clock=time.perf_counter):
        self.inner = inner
        self.clock = clock
        self.records: list[OpRecord] = []
        self._lock = threading.Lock()
        self._handle_paths: dict[Any, str] = {}

    def _record(self, op: str, path: str, size: int, offset: int, start: float) -> None:
        rec = OpRecord(
            op=op,
            path=path,
            size=size,
            offset=offset,
            start=start,
            duration=self.clock() - start,
        )
        with self._lock:
            self.records.append(rec)

    def ops(self, kind: str | None = None) -> list[OpRecord]:
        with self._lock:
            if kind is None:
                return list(self.records)
            return [r for r in self.records if r.op == kind]

    def write_sizes(self) -> list[int]:
        """Sizes of all pwrites, in order — Table I's raw material."""
        return [r.size for r in self.ops("pwrite")]

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    # -- data plane ----------------------------------------------------------

    def open(self, path: str, create: bool = True, truncate: bool = False) -> Any:
        start = self.clock()
        handle = self.inner.open(path, create=create, truncate=truncate)
        with self._lock:
            self._handle_paths[handle] = path
        self._record("open", path, 0, 0, start)
        return handle

    def _path_of(self, handle: Any) -> str:
        with self._lock:
            return self._handle_paths.get(handle, "?")

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        start = self.clock()
        n = self.inner.pwrite(handle, data, offset)
        self._record("pwrite", self._path_of(handle), len(data), offset, start)
        return n

    def pwritev(
        self, handle: Any, views: Sequence[bytes | memoryview], offset: int
    ) -> int:
        start = self.clock()
        n = self.inner.pwritev(handle, views, offset)
        size = sum(len(v) for v in views)
        self._record("pwritev", self._path_of(handle), size, offset, start)
        return n

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        start = self.clock()
        out = self.inner.pread(handle, size, offset)
        self._record("pread", self._path_of(handle), len(out), offset, start)
        return out

    def pread_into(self, handle: Any, buf: memoryview | bytearray, offset: int) -> int:
        start = self.clock()
        n = self.inner.pread_into(handle, buf, offset)
        self._record("pread_into", self._path_of(handle), n, offset, start)
        return n

    def fsync(self, handle: Any) -> None:
        start = self.clock()
        self.inner.fsync(handle)
        self._record("fsync", self._path_of(handle), 0, 0, start)

    def close(self, handle: Any) -> None:
        start = self.clock()
        path = self._path_of(handle)
        self.inner.close(handle)
        with self._lock:
            self._handle_paths.pop(handle, None)
        self._record("close", path, 0, 0, start)

    def file_size(self, handle: Any) -> int:
        return self.inner.file_size(handle)

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def stat(self, path: str) -> BackendStat:
        return self.inner.stat(path)

    def unlink(self, path: str) -> None:
        start = self.clock()
        self.inner.unlink(path)
        self._record("unlink", path, 0, 0, start)

    def mkdir(self, path: str) -> None:
        start = self.clock()
        self.inner.mkdir(path)
        self._record("mkdir", path, 0, 0, start)

    def rmdir(self, path: str) -> None:
        start = self.clock()
        self.inner.rmdir(path)
        self._record("rmdir", path, 0, 0, start)

    def listdir(self, path: str) -> list[str]:
        return self.inner.listdir(path)

    def rename(self, old: str, new: str) -> None:
        start = self.clock()
        self.inner.rename(old, new)
        self._record("rename", old, 0, 0, start)

    def truncate(self, path: str, size: int) -> None:
        start = self.clock()
        self.inner.truncate(path, size)
        self._record("truncate", path, size, 0, start)
