"""Fault-injecting backend: scripted errors and delays.

Exercises the CRFS error paths the paper's design implies but does not
evaluate: an asynchronous chunk write that fails must be latched in the
file's metadata entry and surfaced at close()/fsync() — the only places
a POSIX application can observe writeback errors.  Also injects delays,
to drive the buffer pool into backpressure deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .base import Backend, BackendStat

__all__ = ["FaultyBackend", "FaultRule"]


@dataclass
class FaultRule:
    """Fire on the Nth matching op (1-based), optionally repeatedly.

    ``op`` matches the backend method name ('pwrite', 'fsync', ...);
    ``error`` is raised when the rule fires; ``delay`` seconds are slept
    before the op proceeds (or before raising).
    """

    op: str
    nth: int = 1
    every: bool = False
    error: BaseException | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValueError("nth is 1-based")


class FaultyBackend(Backend):
    """Delegating wrapper that applies :class:`FaultRule` schedules."""

    name = "faulty"

    def __init__(self, inner: Backend, rules: list[FaultRule] | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.rules = list(rules or [])
        self._sleep = sleep
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self.faults_fired = 0

    def add_rule(self, rule: FaultRule) -> None:
        with self._lock:
            self.rules.append(rule)

    def _check(self, op: str) -> None:
        with self._lock:
            self._counts[op] = self._counts.get(op, 0) + 1
            count = self._counts[op]
            to_fire = [
                r
                for r in self.rules
                if r.op == op and (count == r.nth or (r.every and count >= r.nth))
            ]
        for rule in to_fire:
            if rule.delay:
                self._sleep(rule.delay)
            if rule.error is not None:
                with self._lock:
                    self.faults_fired += 1
                raise rule.error

    # -- data plane ----------------------------------------------------------

    def open(self, path: str, create: bool = True, truncate: bool = False) -> Any:
        self._check("open")
        return self.inner.open(path, create=create, truncate=truncate)

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        self._check("pwrite")
        return self.inner.pwrite(handle, data, offset)

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        self._check("pread")
        return self.inner.pread(handle, size, offset)

    def fsync(self, handle: Any) -> None:
        self._check("fsync")
        self.inner.fsync(handle)

    def close(self, handle: Any) -> None:
        self._check("close")
        self.inner.close(handle)

    def file_size(self, handle: Any) -> int:
        return self.inner.file_size(handle)

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def stat(self, path: str) -> BackendStat:
        return self.inner.stat(path)

    def unlink(self, path: str) -> None:
        self._check("unlink")
        self.inner.unlink(path)

    def mkdir(self, path: str) -> None:
        self._check("mkdir")
        self.inner.mkdir(path)

    def rmdir(self, path: str) -> None:
        self._check("rmdir")
        self.inner.rmdir(path)

    def listdir(self, path: str) -> list[str]:
        return self.inner.listdir(path)

    def rename(self, old: str, new: str) -> None:
        self._check("rename")
        self.inner.rename(old, new)

    def truncate(self, path: str, size: int) -> None:
        self._check("truncate")
        self.inner.truncate(path, size)
