"""Fault-injecting backend: scripted errors and delays.

Exercises the CRFS error paths the paper's design implies but does not
evaluate: an asynchronous chunk write that fails must be latched in the
file's metadata entry and surfaced at close()/fsync() — the only places
a POSIX application can observe writeback errors.  Also injects delays,
to drive the buffer pool into backpressure deterministically.

Rule flavours (see :class:`FaultRule`): one-shot (``nth``), persistent
(``every``), periodic (``period`` — e.g. "every pwrite fails once" is
``period=2``), bounded outages (``until``), and seeded probabilistic
(``p``/``seed``), optionally scoped to paths with an fnmatch glob.

The rule matching itself lives in :class:`FaultSchedule`, which the
timing plane's :class:`~repro.simio.faulty.FaultySimFilesystem` shares
— one rule list drives identical fault schedules on both planes.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..util.rng import rng_for
from .base import Backend, BackendStat

__all__ = ["FaultyBackend", "FaultRule", "FaultSchedule"]


@dataclass
class FaultRule:
    """Fire on matching ops; ``op`` matches the backend method name
    ('pwrite', 'fsync', ...), ``path`` is an optional fnmatch glob the
    op's path must match (None matches everything).

    Firing schedule, for the Nth matching op (1-based count per op):

    * default: exactly the ``nth`` op;
    * ``every=True``: every op from ``nth`` on;
    * ``period=k``: ops ``nth``, ``nth+k``, ``nth+2k``, ... (``period=2``
      from ``nth=1`` fails every first attempt when a retry follows);
    * ``p=0.x``: each op from ``nth`` on fires with probability ``p``,
      drawn from a deterministic per-rule stream seeded by ``seed``;
    * ``until=m``: cap any of the above at op ``m`` (a bounded outage).

    ``error`` is raised when the rule fires; ``delay`` seconds are slept
    before the op proceeds (or before raising).
    """

    op: str
    nth: int = 1
    every: bool = False
    error: BaseException | None = None
    delay: float = 0.0
    p: float | None = None
    seed: int = 0
    path: str | None = None
    period: int = 0
    until: int | None = None

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise ValueError("nth is 1-based")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.period < 0:
            raise ValueError(f"period must be >= 0, got {self.period}")
        if self.until is not None and self.until < self.nth:
            raise ValueError(f"until ({self.until}) must be >= nth ({self.nth})")

    def matches(self, op: str, path: str | None) -> bool:
        if self.op != op:
            return False
        if self.path is None:
            return True
        return path is not None and fnmatch.fnmatch(path, self.path)

    def fires(self, count: int, rng: Callable[[], "np.random.Generator"]) -> bool:
        """Whether the rule fires on the ``count``-th matching op.

        ``rng`` lazily supplies the rule's deterministic stream; it is
        drawn from only for probabilistic rules, so deterministic rules
        stay draw-free.
        """
        if count < self.nth:
            return False
        if self.until is not None and count > self.until:
            return False
        if self.p is not None:
            return float(rng().uniform()) < self.p
        if self.period:
            return (count - self.nth) % self.period == 0
        return self.every or count == self.nth


class FaultSchedule:
    """Thread-safe op counter + rule matcher, shared by both planes.

    :meth:`decide` bumps the per-op count and returns what the injector
    should do — ``(delay_seconds, error_or_None)`` — leaving *how* to
    delay (real sleep vs. virtual timeout) to the caller.
    """

    def __init__(self, rules: Iterable[FaultRule] | None = None):
        self.rules: list[FaultRule] = list(rules or [])
        self._counts: dict[str, int] = {}
        self._rngs: dict[int, np.random.Generator] = {}
        self._lock = threading.Lock()
        self.faults_fired = 0

    def add_rule(self, rule: FaultRule) -> None:
        with self._lock:
            self.rules.append(rule)

    def _rng(self, rule: FaultRule) -> np.random.Generator:
        """The rule's lazily-created deterministic stream (draw order is
        op-call order, so single-threaded schedules replay exactly)."""
        key = id(rule)
        rng = self._rngs.get(key)
        if rng is None:
            rng = rng_for(rule.seed, f"faultrule/{rule.op}/{rule.path or '*'}")
            self._rngs[key] = rng
        return rng

    def decide(self, op: str, path: str | None = None) -> tuple[float, BaseException | None]:
        """Count one ``op`` and return ``(delay, error)`` per the rules.

        Rules are consulted in list order; delays accumulate, the first
        firing rule with an error wins (later rules are not consulted,
        matching the pre-schedule behaviour of raising at the first
        erroring rule).
        """
        with self._lock:
            self._counts[op] = self._counts.get(op, 0) + 1
            count = self._counts[op]
            delay = 0.0
            error: BaseException | None = None
            for rule in self.rules:
                if not rule.matches(op, path):
                    continue
                if not rule.fires(count, lambda r=rule: self._rng(r)):
                    continue
                delay += rule.delay
                if rule.error is not None:
                    self.faults_fired += 1
                    error = rule.error
                    break
            return delay, error


class _FaultyHandle:
    """Wraps an inner handle with the path it was opened at, so the
    data-plane ops can be matched per-path."""

    __slots__ = ("inner", "path")

    def __init__(self, inner: Any, path: str):
        self.inner = inner
        self.path = path


def _unwrap(handle: Any) -> tuple[Any, str | None]:
    if isinstance(handle, _FaultyHandle):
        return handle.inner, handle.path
    return handle, None


class FaultyBackend(Backend):
    """Delegating wrapper that applies :class:`FaultRule` schedules.

    Every op — data plane and namespace plane — routes through the
    schedule, so rules can target metadata traffic (``file_size``,
    ``exists``, ``stat``, ``listdir``) as well as the write path.
    """

    name = "faulty"

    def __init__(self, inner: Backend, rules: list[FaultRule] | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.inner = inner
        self.schedule = FaultSchedule(rules)
        self._sleep = sleep

    @property
    def rules(self) -> list[FaultRule]:
        return self.schedule.rules

    @property
    def faults_fired(self) -> int:
        return self.schedule.faults_fired

    def add_rule(self, rule: FaultRule) -> None:
        self.schedule.add_rule(rule)

    def _check(self, op: str, path: str | None = None) -> None:
        delay, error = self.schedule.decide(op, path)
        if delay:
            self._sleep(delay)
        if error is not None:
            raise error

    # -- data plane ----------------------------------------------------------

    def open(self, path: str, create: bool = True, truncate: bool = False) -> Any:
        self._check("open", path)
        return _FaultyHandle(self.inner.open(path, create=create, truncate=truncate), path)

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        inner, path = _unwrap(handle)
        self._check("pwrite", path)
        return self.inner.pwrite(inner, data, offset)

    def pwritev(
        self, handle: Any, views: Sequence[bytes | memoryview], offset: int
    ) -> int:
        # A vectored write is one backend op: one "pwritev" count, one
        # possible fault for the whole batch (mirrored by the timing
        # plane's FaultySimFilesystem.writev).
        inner, path = _unwrap(handle)
        self._check("pwritev", path)
        return self.inner.pwritev(inner, views, offset)

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        inner, path = _unwrap(handle)
        self._check("pread", path)
        return self.inner.pread(inner, size, offset)

    def pread_into(self, handle: Any, buf: memoryview | bytearray, offset: int) -> int:
        # Counts as a "pread" for fault matching — the rule vocabulary
        # targets the logical op, not the buffer-ownership variant.
        inner, path = _unwrap(handle)
        self._check("pread", path)
        return self.inner.pread_into(inner, buf, offset)

    def fsync(self, handle: Any) -> None:
        inner, path = _unwrap(handle)
        self._check("fsync", path)
        self.inner.fsync(inner)

    def close(self, handle: Any) -> None:
        inner, path = _unwrap(handle)
        self._check("close", path)
        self.inner.close(inner)

    def file_size(self, handle: Any) -> int:
        inner, path = _unwrap(handle)
        self._check("file_size", path)
        return self.inner.file_size(inner)

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        self._check("exists", path)
        return self.inner.exists(path)

    def stat(self, path: str) -> BackendStat:
        self._check("stat", path)
        return self.inner.stat(path)

    def unlink(self, path: str) -> None:
        self._check("unlink", path)
        self.inner.unlink(path)

    def mkdir(self, path: str) -> None:
        self._check("mkdir", path)
        self.inner.mkdir(path)

    def rmdir(self, path: str) -> None:
        self._check("rmdir", path)
        self.inner.rmdir(path)

    def listdir(self, path: str) -> list[str]:
        self._check("listdir", path)
        return self.inner.listdir(path)

    def rename(self, old: str, new: str) -> None:
        self._check("rename", old)
        self.inner.rename(old, new)

    def truncate(self, path: str, size: int) -> None:
        self._check("truncate", path)
        self.inner.truncate(path, size)
