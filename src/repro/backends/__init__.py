"""Storage backends for the functional plane.

CRFS is a *stackable* filesystem: it stores no data itself and relies on
a backing store ("CRFS can be mounted over any standard filesystem like
ext3, NFS and Lustre").  On the functional plane the backing store is a
:class:`~repro.backends.base.Backend`:

* :class:`~repro.backends.mem.MemBackend` — in-memory tree, the default
  for tests and examples;
* :class:`~repro.backends.localdir.LocalDirBackend` — a real directory,
  so CRFS-written files are ordinary files on disk;
* :class:`~repro.backends.null.NullBackend` — discards writes; this is
  the paper's Figure 5 method for measuring raw aggregation bandwidth
  ("once a filled chunk is picked up by an IO thread it is discarded");
* :class:`~repro.backends.instrumented.InstrumentedBackend` — records
  every op (the profiling substrate for Table I-style analysis);
* :class:`~repro.backends.faulty.FaultyBackend` — injects failures and
  delays to test the error-latching and backpressure paths;
* :class:`~repro.backends.tiered.TieredBackend` — hierarchical async
  staging: writes land in tier 0, background pumps migrate them
  tier-to-tier (mem → local disk → PFS) with per-tier durability.
"""

from .base import Backend, BackendStat
from .mem import MemBackend
from .localdir import LocalDirBackend
from .null import NullBackend
from .instrumented import InstrumentedBackend, OpRecord, PipelineOpRecorder
from .faulty import FaultyBackend, FaultRule
from .tiered import TieredBackend

__all__ = [
    "Backend",
    "BackendStat",
    "MemBackend",
    "LocalDirBackend",
    "NullBackend",
    "InstrumentedBackend",
    "OpRecord",
    "PipelineOpRecorder",
    "FaultyBackend",
    "FaultRule",
    "TieredBackend",
]
