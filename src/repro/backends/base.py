"""Backend interface: the slice of POSIX a stackable filesystem needs.

Offsets are explicit (pwrite/pread) because CRFS's IO threads write
chunks positionally and concurrently; there is no shared file cursor.
Handles are opaque; each backend chooses its own representation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["Backend", "BackendStat"]


@dataclass(frozen=True)
class BackendStat:
    """Minimal stat result (what checkpoint tooling actually consults)."""

    size: int
    is_dir: bool
    nlink: int = 1


class Backend(ABC):
    """Abstract backing store.

    Methods mirror the operations CRFS routes down (Section IV): data ops
    via handles, namespace ops via paths, everything else passthrough.
    Implementations must be thread-safe: CRFS's IO threads call
    :meth:`pwrite` concurrently with application threads calling
    namespace ops.
    """

    name = "backend"

    # -- data plane ---------------------------------------------------------

    @abstractmethod
    def open(self, path: str, create: bool = True, truncate: bool = False) -> Any:
        """Open (optionally create/truncate) a file; returns a handle."""

    @abstractmethod
    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        """Write ``data`` at ``offset``; returns bytes written (all of it).

        Aliasing contract: the backend consumes ``data`` before
        returning — the caller may mutate (or recycle) the underlying
        buffer the moment the call returns.  Backends must therefore
        either copy the bytes out synchronously or write them to their
        store within the call; they must never retain a live view of the
        caller's buffer.  (The CRFS mount leans on this: pooled chunk
        buffers are recycled immediately after drain, and the POSIX shim
        extends the same promise to application ``pwrite`` callers —
        the ingest copy into the chunk buffer is the snapshot point.)
        """

    def pwritev(
        self, handle: Any, views: Sequence[bytes | memoryview], offset: int
    ) -> int:
        """Write ``views`` back-to-back starting at ``offset``; returns
        the total bytes written (all of them).

        The coalesced-writeback capability: one vectored call per batch
        of contiguous chunks.  The default loops over :meth:`pwrite`, so
        every backend supports it; backends with a real gather primitive
        (``os.pwritev``, a single buffer splice) override it to make the
        batch one backend operation.
        """
        total = 0
        for view in views:
            total += self.pwrite(handle, view, offset + total)
        return total

    @abstractmethod
    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        """Read up to ``size`` bytes at ``offset`` (short read at EOF).

        Returning ``bytes`` makes one materialization at the backend
        boundary a property of this signature; callers that own a
        destination buffer (the read cache filling a pooled chunk) use
        :meth:`pread_into` instead and skip it.
        """

    def pread_into(self, handle: Any, buf: memoryview | bytearray, offset: int) -> int:
        """Read up to ``len(buf)`` bytes at ``offset`` into ``buf``;
        returns the byte count (short read at EOF).

        The readinto-style path for callers with their own destination
        (pooled cache buffers).  This default routes through
        :meth:`pread` and splices — it still pays the backend-boundary
        copy, but in one place.  Backends with direct access to their
        store (:class:`~repro.backends.mem.MemBackend` splicing from the
        node, :class:`~repro.backends.localdir.LocalDirBackend` via
        ``os.preadv``) override it to fill ``buf`` without the
        intermediate ``bytes``.
        """
        out = memoryview(buf)
        data = self.pread(handle, len(out), offset)
        n = len(data)
        out[:n] = data
        return n

    @abstractmethod
    def fsync(self, handle: Any) -> None:
        """Flush the file's data to stable storage."""

    @abstractmethod
    def close(self, handle: Any) -> None:
        """Release the handle."""

    @abstractmethod
    def file_size(self, handle: Any) -> int:
        """Current size of the open file."""

    # -- namespace plane ------------------------------------------------------

    @abstractmethod
    def exists(self, path: str) -> bool: ...

    @abstractmethod
    def stat(self, path: str) -> BackendStat: ...

    @abstractmethod
    def unlink(self, path: str) -> None: ...

    @abstractmethod
    def mkdir(self, path: str) -> None: ...

    @abstractmethod
    def rmdir(self, path: str) -> None: ...

    @abstractmethod
    def listdir(self, path: str) -> list[str]: ...

    @abstractmethod
    def rename(self, old: str, new: str) -> None: ...

    @abstractmethod
    def truncate(self, path: str, size: int) -> None: ...


def normalize_path(path: str) -> str:
    """Canonical form: absolute, no '.', no '..', no duplicate slashes.

    Shared by backends and the CRFS mount so the open-file hash table and
    the backend agree on keys.
    """
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


def split_path(path: str) -> tuple[str, str]:
    """(parent, name) of a normalized path; root has parent '/' name ''."""
    norm = normalize_path(path)
    if norm == "/":
        return "/", ""
    parent, _, name = norm.rpartition("/")
    return (parent or "/", name)
