"""Local-directory backend: CRFS over a real filesystem subtree.

Maps the virtual namespace onto a root directory with ``os.pread``/
``os.pwrite``, so files written through CRFS are ordinary files — the
paper's property that "an application can be restarted directly from the
back-end filesystem, without the need to mount CRFS" holds literally.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Sequence

from ..errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from .base import Backend, BackendStat, normalize_path

__all__ = ["LocalDirBackend"]


class LocalDirBackend(Backend):
    """Backend rooted at a real directory.  Paths may not escape the root."""

    name = "localdir"

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()

    def _real(self, path: str) -> str:
        # normalize_path resolves '..' inside the virtual namespace, so the
        # joined path can never climb above the root.
        rel = normalize_path(path).lstrip("/")
        return os.path.join(self.root, rel) if rel else self.root

    # -- data plane ---------------------------------------------------------

    def open(self, path: str, create: bool = True, truncate: bool = False) -> int:
        real = self._real(path)
        flags = os.O_RDWR
        if create:
            flags |= os.O_CREAT
        if truncate:
            flags |= os.O_TRUNC
        try:
            return os.open(real, flags, 0o644)
        except FileNotFoundError:
            raise FileNotFound(path) from None
        except IsADirectoryError:
            raise IsADirectory(path) from None
        except NotADirectoryError:
            raise NotADirectory(path) from None

    def pwrite(self, handle: Any, data: bytes | memoryview, offset: int) -> int:
        view = memoryview(data)
        total = 0
        while total < len(view):
            total += os.pwrite(handle, view[total:], offset + total)
        return total

    def pwritev(
        self, handle: Any, views: Sequence[bytes | memoryview], offset: int
    ) -> int:
        if not hasattr(os, "pwritev"):  # pragma: no cover - platform fallback
            return super().pwritev(handle, views, offset)
        bufs = [memoryview(v) for v in views if len(v)]
        if not bufs:
            return 0
        expected = sum(len(b) for b in bufs)
        total = os.pwritev(handle, bufs, offset)
        while total < expected:  # pragma: no cover - rare partial pwritev
            skip = total
            for b in bufs:
                if skip >= len(b):
                    skip -= len(b)
                    continue
                total += self.pwrite(handle, b[skip:], offset + total)
                skip = 0
        return total

    def pread(self, handle: Any, size: int, offset: int) -> bytes:
        first = os.pread(handle, size, offset)
        if len(first) == size or not first:
            # The common case: one syscall returned the whole region (or
            # a clean EOF).  Hand the kernel's bytes straight back — no
            # bytearray accumulation + bytes() double copy.
            return first
        out = bytearray(first)
        while len(out) < size:  # pragma: no cover - rare partial pread
            piece = os.pread(handle, size - len(out), offset + len(out))
            if not piece:
                break
            out.extend(piece)
        return bytes(out)

    def pread_into(self, handle: Any, buf: memoryview | bytearray, offset: int) -> int:
        if not hasattr(os, "preadv"):  # pragma: no cover - platform fallback
            return super().pread_into(handle, buf, offset)
        out = memoryview(buf)
        total = 0
        while total < len(out):
            n = os.preadv(handle, [out[total:]], offset + total)
            if not n:
                break
            total += n
        return total

    def fsync(self, handle: Any) -> None:
        os.fsync(handle)

    def close(self, handle: Any) -> None:
        os.close(handle)

    def file_size(self, handle: Any) -> int:
        return os.fstat(handle).st_size

    # -- namespace plane ------------------------------------------------------

    def exists(self, path: str) -> bool:
        return os.path.lexists(self._real(path))

    def stat(self, path: str) -> BackendStat:
        try:
            st = os.stat(self._real(path))
        except FileNotFoundError:
            raise FileNotFound(path) from None
        import stat as stat_mod

        return BackendStat(
            size=st.st_size,
            is_dir=stat_mod.S_ISDIR(st.st_mode),
            nlink=st.st_nlink,
        )

    def unlink(self, path: str) -> None:
        try:
            os.unlink(self._real(path))
        except FileNotFoundError:
            raise FileNotFound(path) from None
        except IsADirectoryError:
            raise IsADirectory(path) from None
        except PermissionError as exc:  # unlinking a dir on some platforms
            raise IsADirectory(path) from exc

    def mkdir(self, path: str) -> None:
        try:
            os.mkdir(self._real(path))
        except FileExistsError:
            raise FileExists(path) from None
        except FileNotFoundError:
            raise FileNotFound(path) from None

    def rmdir(self, path: str) -> None:
        try:
            os.rmdir(self._real(path))
        except FileNotFoundError:
            raise FileNotFound(path) from None
        except NotADirectoryError:
            raise NotADirectory(path) from None
        except OSError as exc:
            import errno

            if exc.errno == errno.ENOTEMPTY:
                raise DirectoryNotEmpty(path) from None
            raise

    def listdir(self, path: str) -> list[str]:
        try:
            return sorted(os.listdir(self._real(path)))
        except FileNotFoundError:
            raise FileNotFound(path) from None
        except NotADirectoryError:
            raise NotADirectory(path) from None

    def rename(self, old: str, new: str) -> None:
        try:
            os.rename(self._real(old), self._real(new))
        except FileNotFoundError:
            raise FileNotFound(old) from None

    def truncate(self, path: str, size: int) -> None:
        try:
            os.truncate(self._real(path), size)
        except FileNotFoundError:
            raise FileNotFound(path) from None
