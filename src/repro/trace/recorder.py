"""Per-write trace records.

The paper: "We extended the BLCR library to record the information for
all write operations, including number of writes, size of a write and
time cost for each write."  A :class:`WriteTrace` is that log.

:class:`TraceObserver` fills one from the unified pipeline event stream:
subscribe it to a mount's :class:`~repro.pipeline.kernel.PipelineKernel`
(either plane) and every ``WriteObserved`` event becomes a
:class:`WriteRecord` — no manual ``trace.add`` calls around the write
loop.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from ..pipeline import PipelineEvent, PipelineObserver, WriteObserved

__all__ = ["WriteRecord", "WriteTrace", "TraceObserver"]


@dataclass(frozen=True)
class WriteRecord:
    """One write(): who, how big, when, how long."""

    rank: int
    size: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class WriteTrace:
    """An append-only collection of write records with analysis views."""

    def __init__(self, records: Iterable[WriteRecord] = ()):
        self.records: list[WriteRecord] = list(records)

    def add(self, rank: int, size: int, start: float, duration: float) -> None:
        self.records.append(
            WriteRecord(rank=rank, size=size, start=start, duration=duration)
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WriteRecord]:
        return iter(self.records)

    # -- views -----------------------------------------------------------

    def ranks(self) -> list[int]:
        return sorted({r.rank for r in self.records})

    def for_rank(self, rank: int) -> list[WriteRecord]:
        return [r for r in self.records if r.rank == rank]

    def sizes(self) -> np.ndarray:
        return np.asarray([r.size for r in self.records], dtype=np.int64)

    def durations(self) -> np.ndarray:
        return np.asarray([r.duration for r in self.records], dtype=float)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes().sum()) if self.records else 0

    @property
    def total_time(self) -> float:
        return float(self.durations().sum()) if self.records else 0.0

    def merge(self, other: "WriteTrace") -> "WriteTrace":
        return WriteTrace(self.records + other.records)


_RANK_RE = re.compile(r"rank(\d+)")


def _rank_from_path(path: str) -> int:
    """Default rank extraction: ``.../rank7.img`` -> 7, else 0."""
    m = _RANK_RE.search(path)
    return int(m.group(1)) if m else 0


class TraceObserver(PipelineObserver):
    """Builds a :class:`WriteTrace` from ``WriteObserved`` events.

    ``rank_of`` maps a file path to the writing rank; the default parses
    ``rank<N>`` out of the path (the checkpoint-file naming convention
    used throughout the experiments).
    """

    def __init__(
        self,
        trace: Optional[WriteTrace] = None,
        rank_of: Optional[Callable[[str], int]] = None,
    ):
        self.trace = trace if trace is not None else WriteTrace()
        self.rank_of = rank_of if rank_of is not None else _rank_from_path

    def on_event(self, event: PipelineEvent) -> None:
        if isinstance(event, WriteObserved):
            self.trace.add(
                self.rank_of(event.path), event.length, event.start, event.duration
            )
