"""Per-write trace records.

The paper: "We extended the BLCR library to record the information for
all write operations, including number of writes, size of a write and
time cost for each write."  A :class:`WriteTrace` is that log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

__all__ = ["WriteRecord", "WriteTrace"]


@dataclass(frozen=True)
class WriteRecord:
    """One write(): who, how big, when, how long."""

    rank: int
    size: int
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class WriteTrace:
    """An append-only collection of write records with analysis views."""

    def __init__(self, records: Iterable[WriteRecord] = ()):
        self.records: list[WriteRecord] = list(records)

    def add(self, rank: int, size: int, start: float, duration: float) -> None:
        self.records.append(
            WriteRecord(rank=rank, size=size, start=start, duration=duration)
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[WriteRecord]:
        return iter(self.records)

    # -- views -----------------------------------------------------------

    def ranks(self) -> list[int]:
        return sorted({r.rank for r in self.records})

    def for_rank(self, rank: int) -> list[WriteRecord]:
        return [r for r in self.records if r.rank == rank]

    def sizes(self) -> np.ndarray:
        return np.asarray([r.size for r in self.records], dtype=np.int64)

    def durations(self) -> np.ndarray:
        return np.asarray([r.duration for r in self.records], dtype=float)

    @property
    def total_bytes(self) -> int:
        return int(self.sizes().sum()) if self.records else 0

    @property
    def total_time(self) -> float:
        return float(self.durations().sum()) if self.records else 0.0

    def merge(self, other: "WriteTrace") -> "WriteTrace":
        return WriteTrace(self.records + other.records)
