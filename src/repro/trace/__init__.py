"""Trace capture and analysis: the paper's profiling instruments.

* :mod:`repro.trace.recorder` — per-write records (the extended-BLCR
  logging of Section III);
* :mod:`repro.trace.profile` — Table-I style bucket profiles (% writes /
  % data / % time per size bucket);
* :mod:`repro.trace.cumulative` — per-process cumulative write-time
  curves (Figures 3 and 11);
* :mod:`repro.trace.blk` — block-trace analytics (Figure 10: address
  scatter, seek counts, sequentiality).
"""

from .recorder import TraceObserver, WriteRecord, WriteTrace
from .profile import ProfileRow, bucket_profile, render_profile
from .cumulative import cumulative_curves, completion_spread
from .blk import BlockTraceSummary, summarize_block_trace

__all__ = [
    "TraceObserver",
    "WriteRecord",
    "WriteTrace",
    "ProfileRow",
    "bucket_profile",
    "render_profile",
    "cumulative_curves",
    "completion_spread",
    "BlockTraceSummary",
    "summarize_block_trace",
]
