"""Block-trace analytics (paper Figure 10).

The paper uses blktrace to show the disk-address pattern during
checkpoint writeback: native ext3 is a cloud of scattered addresses
(seeks), CRFS over ext3 is near-monotone (sequential).  The simulated
disk captures the same (time, block, size) stream; this module reduces
it to the numbers the figure is making an argument with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..simio.disk import BlockTraceEntry

__all__ = ["BlockTraceSummary", "summarize_block_trace"]


@dataclass(frozen=True)
class BlockTraceSummary:
    """Sequentiality metrics of one disk's access stream."""

    ios: int
    bytes: int
    seeks: int  # accesses not contiguous with their predecessor
    seek_fraction: float
    mean_abs_jump_blocks: float  # mean |address delta| at discontinuities
    monotone_fraction: float  # fraction of forward-moving accesses
    span_blocks: int  # total address range touched


def summarize_block_trace(
    trace: Sequence[BlockTraceEntry], block_size: int = 4096
) -> BlockTraceSummary:
    if not trace:
        return BlockTraceSummary(0, 0, 0, 0.0, 0.0, 0.0, 0)
    starts = np.asarray([t.block for t in trace], dtype=np.int64)
    lengths = np.asarray([t.nblocks for t in trace], dtype=np.int64)
    ends = starts + lengths
    total_bytes = int(sum(t.nblocks for t in trace)) * block_size
    if len(trace) == 1:
        return BlockTraceSummary(
            ios=1,
            bytes=total_bytes,
            seeks=0,
            seek_fraction=0.0,
            mean_abs_jump_blocks=0.0,
            monotone_fraction=1.0,
            span_blocks=int(ends.max() - starts.min()),
        )
    deltas = starts[1:] - ends[:-1]
    seeks = int(np.count_nonzero(deltas != 0))
    jumps = np.abs(deltas[deltas != 0])
    forward = int(np.count_nonzero(starts[1:] >= starts[:-1]))
    return BlockTraceSummary(
        ios=len(trace),
        bytes=total_bytes,
        seeks=seeks,
        seek_fraction=seeks / (len(trace) - 1),
        mean_abs_jump_blocks=float(jumps.mean()) if len(jumps) else 0.0,
        monotone_fraction=forward / (len(trace) - 1),
        span_blocks=int(ends.max() - starts.min()),
    )
