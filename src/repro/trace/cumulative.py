"""Cumulative write-time curves (paper Figures 3 and 11).

"Each line represents the time spent by a process to perform write
operations, shown in a cumulative manner with respect to the write
size."  For each rank: sort its writes by size ascending and emit the
running sum of their durations against the size axis.  The figure's
message is the *endpoint spread* across ranks: 4-8 s natively, nearly
coincident under CRFS.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .recorder import WriteTrace

__all__ = ["cumulative_curves", "completion_spread"]


def cumulative_curves(trace: WriteTrace) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Per rank: (sizes ascending, cumulative seconds) arrays."""
    out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for rank in trace.ranks():
        recs = trace.for_rank(rank)
        order = np.argsort([r.size for r in recs], kind="stable")
        sizes = np.asarray([recs[i].size for i in order], dtype=np.int64)
        cum = np.cumsum([recs[i].duration for i in order])
        out[rank] = (sizes, cum)
    return out


def completion_spread(trace: WriteTrace) -> dict[str, float]:
    """Endpoint statistics of the per-rank total write time.

    ``spread_ratio`` (max/min) is the figure's headline: ~2 for native
    ext3 (4 s..8 s), ~1 under CRFS.
    """
    totals = []
    for rank in trace.ranks():
        totals.append(sum(r.duration for r in trace.for_rank(rank)))
    if not totals:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "spread_ratio": 0.0}
    mn, mx = min(totals), max(totals)
    return {
        "min": mn,
        "max": mx,
        "mean": float(np.mean(totals)),
        "spread_ratio": mx / mn if mn > 0 else float("inf"),
    }
