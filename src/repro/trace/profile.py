"""Table-I style checkpoint write profiles.

Buckets a :class:`~repro.trace.recorder.WriteTrace` by write size and
reports the three percentage columns of paper Table I: share of writes,
share of data, share of (per-write observed) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..checkpoint.sizedist import TABLE1_BUCKETS, BucketSpec
from ..util.tables import TextTable
from .recorder import WriteTrace

__all__ = ["ProfileRow", "bucket_profile", "render_profile"]


@dataclass(frozen=True)
class ProfileRow:
    """One profile row: bucket + the three Table-I percentages."""

    label: str
    lo: int
    hi: int  # 0 = open-ended
    count: int
    pct_writes: float
    pct_data: float
    pct_time: float


def bucket_profile(
    trace: WriteTrace, buckets: Sequence[BucketSpec] = TABLE1_BUCKETS
) -> list[ProfileRow]:
    """Bucket the trace; percentages sum to ~100 each (empty trace -> zeros)."""
    sizes = trace.sizes()
    durations = trace.durations()
    n = len(sizes)
    total_data = sizes.sum() if n else 0
    total_time = durations.sum() if n else 0.0
    rows: list[ProfileRow] = []
    for b in buckets:
        hi = b.hi if b.hi else np.inf
        mask = (sizes >= b.lo) & (sizes < hi) if n else np.zeros(0, dtype=bool)
        count = int(mask.sum())
        rows.append(
            ProfileRow(
                label=b.label,
                lo=b.lo,
                hi=b.hi,
                count=count,
                pct_writes=100.0 * count / n if n else 0.0,
                pct_data=100.0 * float(sizes[mask].sum()) / total_data
                if total_data
                else 0.0,
                pct_time=100.0 * float(durations[mask].sum()) / total_time
                if total_time
                else 0.0,
            )
        )
    return rows


def render_profile(rows: Sequence[ProfileRow], title: str | None = None) -> str:
    """Render rows exactly like paper Table I."""
    table = TextTable(
        ["Write Size", "% of Writes", "% of Data", "% of Time"], title=title
    )
    for r in rows:
        table.add_row([r.label, f"{r.pct_writes:.2f}", f"{r.pct_data:.2f}", f"{r.pct_time:.2f}"])
    return table.render()
