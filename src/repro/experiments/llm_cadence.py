"""LLM cadence checkpointing through the delta pipeline (repo artifact).

The paper's workloads rewrite whole BLCR images per epoch; an LLM
trainer checkpoints a few huge tensor-shard files every iteration with
most bytes unchanged.  This experiment drives the ``llm_cadence`` perf
scenario on both planes and proves the incremental-checkpoint chain
end to end:

* the ``stats()["delta"]`` section matches an *independent* recount of
  the workload's dirty draws — the pipeline wrote exactly the chunks
  the cadence schedule declared, nothing more;
* the real plane reassembles every shard byte-identically across the
  generation chain and reports the identical delta section;
* the steady-state write savings agree with the
  :class:`~repro.mpi.stacks.LLMStack` sizing arithmetic experiments
  use to provision checkpoint bandwidth.
"""

from __future__ import annotations

from ..mpi.stacks import LLMStack
from ..perf.runner import run_scenario_real, run_scenario_sim
from ..perf.scenarios import SCENARIOS
from ..units import MiB
from ..util.tables import TextTable
from ..workloads import LLMCadenceWorkload
from .base import Check, ExperimentResult
from .common import DEFAULT_SEED

PAPER = {
    "narrative": "incremental (delta) checkpoints for iteration-cadence "
    "LLM workloads (repo artifact; extends the paper's full-image model)"
}


def run(seed: int = DEFAULT_SEED, fast: bool = False) -> ExperimentResult:
    scn = SCENARIOS["llm_cadence"]
    cs = scn.config.chunk_size
    shard_bytes = scn.image_for(0, fast)
    wl = LLMCadenceWorkload(
        shards=scn.nwriters,
        shard_bytes=shard_bytes,
        iterations=scn.delta_generations,
        dirty_fraction=scn.delta_dirty_fraction,
    )
    nchunks = wl.nchunks(cs)

    # Independent recount of the cadence schedule: what the delta
    # section *must* say if the pipeline wrote exactly the declared
    # dirty chunks.  Shard sizes are chunk-divisible by construction.
    expected_dirty = sum(
        nchunks if dirty is None else len(dirty)
        for _it, _shard, dirty in wl.schedule(seed, cs)
    )
    generations = wl.shards * wl.iterations
    expected = {
        "generations": generations,
        "dirty_chunks": expected_dirty,
        "clean_chunks": generations * nchunks - expected_dirty,
        "bytes_written": expected_dirty * cs,
        "logical_bytes": generations * shard_bytes,
    }

    sim = run_scenario_sim(scn, seed=seed, fast=fast)
    real = run_scenario_real(scn, seed=seed, fast=fast)
    delta = sim["stats"]["delta"]
    savings = 1.0 - delta["bytes_written"] / delta["logical_bytes"]

    stack = LLMStack(shards=wl.shards, dirty_fraction=wl.dirty_fraction)
    # The stack's provisioning arithmetic, evaluated at this scenario's
    # model size (shard framing removed so the shapes are comparable).
    model_total = wl.shards * (shard_bytes - stack.shard_overhead)
    stack_ratio = stack.delta_bytes_per_checkpoint(
        model_total
    ) / stack.job_checkpoint_size(model_total)

    table = TextTable(
        ["quantity", "value"],
        title="LLM cadence checkpointing (delta pipeline, sim plane)",
    )
    for row in (
        ("shards x iterations", f"{wl.shards} x {wl.iterations}"),
        ("shard size", f"{shard_bytes / MiB:.2f} MiB ({nchunks} chunks)"),
        ("dirty fraction (configured)", f"{wl.dirty_fraction:.2f}"),
        ("generations committed", str(delta["generations"])),
        ("dirty / clean chunks", f"{delta['dirty_chunks']} / {delta['clean_chunks']}"),
        ("bytes written (delta)", str(delta["bytes_written"])),
        ("bytes full rewrite would write", str(delta["logical_bytes"])),
        ("write savings", f"{savings:.1%}"),
        ("chain restores", str(delta["restores"])),
        ("reassembly reads / bytes", f"{delta['reassembly_reads']} / {delta['reassembly_bytes']}"),
        ("restore span (virtual s)", f"{sim['restore_span_s']:.4f}"),
        ("checkpoint goodput (MiB/s)", f"{sim['goodput_mib_s']:.2f}"),
    ):
        table.add_row(list(row))

    checks = [
        Check(
            "the delta section matches an independent recount of the "
            "cadence schedule's dirty draws",
            all(delta[k] == v for k, v in expected.items()),
            f"expected {expected}, measured "
            f"{ {k: delta[k] for k in expected} }",
        ),
        Check(
            "delta writes stay within dirty_fraction + 0.1 of a full "
            "rewrite",
            0
            < delta["bytes_written"]
            <= (wl.dirty_fraction + 0.1) * delta["logical_bytes"],
            f"savings {savings:.1%} (floor "
            f"{1.0 - (wl.dirty_fraction + 0.1):.0%})",
        ),
        Check(
            "every shard restored across the chain, crossing generations",
            delta["restores"] == wl.shards
            and delta["reassembly_bytes"] == wl.shards * shard_bytes
            and delta["reassembly_reads"] > delta["restores"]
            and sim["restore_span_s"] > 0,
            f"{delta['restores']} restores, {delta['reassembly_reads']} "
            f"owner runs, span {sim['restore_span_s']:.4f}s",
        ),
        Check(
            "the real plane reassembled byte-identical images and "
            "reports the identical delta section",
            real["stats"]["delta"] == delta,
            f"real-plane delta section: {real['stats']['delta']}",
        ),
        Check(
            "the LLMStack provisioning arithmetic agrees with the "
            "measured steady-state dirty fraction",
            abs(stack_ratio - wl.dirty_fraction) < 1e-9
            and abs(
                delta["bytes_written"] / delta["logical_bytes"]
                - wl.dirty_fraction
            )
            < 0.1,
            f"stack ratio {stack_ratio:.4f}, measured "
            f"{delta['bytes_written'] / delta['logical_bytes']:.4f}, "
            f"configured {wl.dirty_fraction:.2f}",
        ),
    ]
    return ExperimentResult(
        name="llm_cadence",
        title="LLM iteration-cadence delta checkpointing (generation chain)",
        table=table.render(),
        measured={"sim": sim["stats"]["delta"], "expected": expected,
                  "restore_span_s": sim["restore_span_s"]},
        paper=PAPER,
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
