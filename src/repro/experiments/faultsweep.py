"""Fault sweep: writeback resilience under injected backend faults.

Beyond the paper's artifacts: the paper's IO-thread pool assumes the
backing filesystem never fails a ``write()``; this experiment measures
what the resilience layer (retry/backoff + circuit breaker, see
``pipeline/resilience.py``) buys when it does.  It sweeps fault mode ×
retry budget on both planes and reports goodput (fraction of the
checkpoint that landed in the backing store), retries, latched errors,
and — where the breaker trips — the recovery latency.

Functional-plane rows drive the real threaded mount over a
:class:`~repro.backends.faulty.FaultyBackend`; timing-plane rows drive
:class:`~repro.simcrfs.SimCRFS` over a
:class:`~repro.simio.faulty.FaultySimFilesystem` — the same
:class:`~repro.backends.faulty.FaultRule` vocabulary on both.
"""

from __future__ import annotations

from typing import Any

from ..backends import FaultRule, FaultyBackend, MemBackend, TieredBackend
from ..config import CRFSConfig
from ..core import CRFS
from ..errors import BackendIOError
from ..pipeline import BackendDegraded, BackendRecovered, PipelineObserver
from ..sim import SharedBandwidth, Simulator
from ..simcrfs import SimCRFS
from ..simio.faulty import FaultySimFilesystem
from ..simio.nullfs import NullSimFilesystem
from ..simio.tiered import TieredSimFilesystem
from ..simio.params import DEFAULT_HW
from ..units import KiB
from ..util.rng import rng_for
from ..util.tables import TextTable
from .base import Check, ExperimentResult
from .common import DEFAULT_SEED

PAPER = {
    "narrative": "resilient writeback under backend faults "
    "(beyond the paper: its testbed never fails a write)"
}

CHUNK = 64 * KiB
#: Single IO thread keeps the functional plane's fault schedule
#: deterministic (chunk pwrites hit the FaultyBackend in seal order).
CONFIG = CRFSConfig(chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1)
#: Fast, deterministic backoff for the sweep (microseconds of real sleep).
RETRY_KNOBS = dict(retry_backoff=1e-4, retry_backoff_max=1e-3)


def _workload(fast: bool) -> list[int]:
    """A fixed append stream: whole chunks plus a trailing partial."""
    nchunks = 8 if fast else 24
    return [CHUNK] * nchunks + [CHUNK // 2]


def _fault_rules(mode: str, seed: int) -> list[FaultRule]:
    """The fault matrix axis, shared verbatim by both planes."""
    if mode == "none":
        return []
    if mode == "transient":
        # every chunk write fails exactly once, then its retry succeeds
        return [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))]
    if mode == "flaky":
        return [FaultRule(op="pwrite", p=0.3, seed=seed, error=OSError("EIO"))]
    if mode == "outage":
        # ops 1..2 fail, then the backend heals — a bounded outage
        return [
            FaultRule(op="pwrite", nth=1, until=2, every=True, error=OSError("EIO"))
        ]
    raise ValueError(f"unknown fault mode {mode!r}")


class _BreakerWatch(PipelineObserver):
    """Capture breaker transitions off the unified event stream."""

    def __init__(self) -> None:
        self.trip_times: list[float] = []
        self.downtimes: list[float] = []

    def on_event(self, event: Any) -> None:
        if isinstance(event, BackendDegraded):
            self.trip_times.append(event.t)
        elif isinstance(event, BackendRecovered):
            self.downtimes.append(event.downtime)


def _functional_row(mode: str, attempts: int, sizes: list[int], seed: int) -> dict:
    mem = MemBackend()
    backend = FaultyBackend(mem, _fault_rules(mode, seed), sleep=lambda s: None)
    config = CONFIG.with_(retry_attempts=attempts, **RETRY_KNOBS)
    path = "/rank0.img"
    write_errors = close_errors = 0
    with CRFS(backend, config) as fs:
        f = fs.open(path)
        for size in sizes:
            try:
                f.write(b"\xa5" * size)
            except BackendIOError:
                write_errors += 1
        try:
            f.close()
        except BackendIOError:
            close_errors += 1
        stats = fs.stats()
    total = sum(sizes)
    landed = mem.stat(path).size if mem.exists(path) else 0
    return {
        "plane": "functional",
        "mode": mode,
        "attempts": attempts,
        "goodput": landed / total,
        "retried": stats["resilience"]["chunks_retried"],
        "latched": stats["resilience"]["errors_latched"],
        "write_errors": write_errors,
        "close_errors": close_errors,
        "content": mem.pread(mem.open(path, create=False), landed, 0)
        if landed
        else b"",
    }


def _timing_row(mode: str, attempts: int, sizes: list[int], seed: int) -> dict:
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    inner = NullSimFilesystem(sim, hw, rng_for(seed, f"faultsweep/{mode}/{attempts}"))
    backend = FaultySimFilesystem(inner, _fault_rules(mode, seed))
    watch = _BreakerWatch()
    # threshold 2: the outage (2 failing ops) trips the breaker exactly
    # when every attempt inside it has failed
    config = CONFIG.with_(
        retry_attempts=attempts, breaker_threshold=2, **RETRY_KNOBS
    )
    crfs = SimCRFS(sim, hw, config, backend, membus, observers=(watch,))
    errors: list[str] = []

    def writer(name: str, stream: list[int]):
        f = crfs.open(name)
        for size in stream:
            try:
                yield from crfs.write(f, size)
            except BackendIOError:
                errors.append(f"{name}:write")
                break
        try:
            yield from crfs.close(f)
        except BackendIOError:
            errors.append(f"{name}:close")

    if attempts > 1:
        # one file: the in-chunk retry chain rides out the outage
        procs = [sim.spawn(writer("/rank0.img", sizes))]
    else:
        # no retries: each failing chunk latches its file; spread the
        # stream over files so the breaker trips and later files probe
        per_file = max(1, len(sizes) // 4)
        streams = [sizes[i : i + per_file] for i in range(0, len(sizes), per_file)]
        procs = [
            sim.spawn(writer(f"/rank{i}.img", stream))
            for i, stream in enumerate(streams)
        ]
    sim.run_until_complete(procs)
    stats = crfs.stats()
    total = sum(sizes)
    return {
        "plane": "timing",
        "mode": mode,
        "attempts": attempts,
        "goodput": (stats["bytes_out"] + stats["write_through_bytes"]) / total
        if total
        else 0.0,
        "retried": stats["resilience"]["chunks_retried"],
        "latched": stats["resilience"]["errors_latched"],
        "trips": stats["resilience"]["breaker_trips"],
        "recoveries": stats["resilience"]["breaker_recoveries"],
        "degraded_writes": stats["resilience"]["degraded_writes"],
        "recovery_latency": watch.downtimes[0] if watch.downtimes else 0.0,
        "errors": len(errors),
    }


# -- tiered rows: deep-tier faults against the staging pump -------------------
#
# The per-tier resilience claim: a fault on the *deep* tier of a
# staging chain is absorbed by that tier's own retry chain and breaker
# — migrations strand ("durable at tier 0") instead of dragging the
# mount into write-through, and the mount-level resilience counters
# never move.  Single pump thread and batch size 1 keep the deep-tier
# fault schedule in seal order, so every counter below is
# workload-determined and comparable across planes.

#: The tier counters a free-running (ungated) run still determines:
#: everything except the pump-queue depth gauge and time-valued fields.
_TIER_COMPARED = (
    "chunks_staged",
    "bytes_staged",
    "chunks_migrated",
    "bytes_migrated",
    "chunks_stranded",
    "bytes_stranded",
    "migrate_errors",
    "migrate_retries",
    "breaker_trips",
    "breaker_recoveries",
)


def _tier_fault_rules(mode: str) -> list[FaultRule]:
    """Deep-tier fault axis (applies to migration pwrites only)."""
    if mode == "tier_transient":
        # every odd deep write fails: with retries each migration rides
        # it out; without, odd extents strand and even ones land
        return [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))]
    if mode == "tier_dead":
        # the deep store never comes back: everything strands at tier 0
        return [FaultRule(op="pwrite", nth=1, every=True, error=OSError("EIO"))]
    raise ValueError(f"unknown tier fault mode {mode!r}")


def _tier_config(attempts: int) -> CRFSConfig:
    return CONFIG.with_(
        retry_attempts=attempts,
        breaker_threshold=2,
        tier_pump_threads=1,
        tier_pump_batch_chunks=1,
        **RETRY_KNOBS,
    )


def _tier_row_fields(stats: dict, total: int, sync_errors: int) -> dict:
    per_tier = stats["tiers"]["per_tier"]
    return {
        "deep_goodput": per_tier["1"]["bytes_staged"] / total,
        "stranded": per_tier["1"]["chunks_stranded"],
        "migrate_retries": per_tier["1"]["migrate_retries"],
        "tier_trips": per_tier["1"]["breaker_trips"],
        "mount_retried": stats["resilience"]["chunks_retried"],
        "mount_trips": stats["resilience"]["breaker_trips"],
        "sync_errors": sync_errors,
        "compared": {
            level: {k: counters[k] for k in _TIER_COMPARED}
            for level, counters in per_tier.items()
        },
    }


def _functional_tier_row(mode: str, attempts: int, sizes: list[int]) -> dict:
    tier0 = MemBackend()
    deep_mem = MemBackend()
    deep = FaultyBackend(deep_mem, _tier_fault_rules(mode), sleep=lambda s: None)
    path = "/rank0.img"
    sync_errors = 0
    with CRFS(TieredBackend([tier0, deep]), _tier_config(attempts)) as fs:
        f = fs.open(path)
        for size in sizes:
            f.write(b"\xa5" * size)
        try:
            # Durability through the deepest tier: waits out the pump,
            # surfaces the strand error when the deep tier is gone.
            f.fsync()
        except OSError:
            sync_errors += 1
        f.close()
        stats = fs.stats()
    deep_size = deep_mem.stat(path).size if deep_mem.exists(path) else 0
    row = {"plane": "functional", "mode": mode, "attempts": attempts}
    row.update(_tier_row_fields(stats, sum(sizes), sync_errors))
    row["deep_content"] = (
        deep_mem.pread(deep_mem.open(path, create=False), deep_size, 0)
        if deep_size
        else b""
    )
    row["tier0_content"] = tier0.pread(
        tier0.open(path, create=False), tier0.stat(path).size, 0
    )
    return row


def _timing_tier_row(mode: str, attempts: int, sizes: list[int], seed: int) -> dict:
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    deep = FaultySimFilesystem(
        NullSimFilesystem(sim, hw, rng_for(seed, f"faultsweep/{mode}/deep")),
        _tier_fault_rules(mode),
    )
    backend = TieredSimFilesystem(
        [NullSimFilesystem(sim, hw, rng_for(seed, f"faultsweep/{mode}/t0")), deep]
    )
    crfs = SimCRFS(sim, hw, _tier_config(attempts), backend, membus)
    sync_errors = [0]

    def writer():
        f = crfs.open("/rank0.img")
        for size in sizes:
            yield from crfs.write(f, size)
        try:
            yield from crfs.fsync(f)
        except OSError:
            sync_errors[0] += 1
        yield from crfs.close(f)

    sim.run_until_complete([sim.spawn(writer())])
    sim.run_until_complete([sim.spawn(crfs.drain_staging(), name="drain")])
    crfs.shutdown()
    row = {"plane": "timing", "mode": mode, "attempts": attempts}
    row.update(_tier_row_fields(crfs.stats(), sum(sizes), sync_errors[0]))
    return row


def run(seed: int = DEFAULT_SEED, fast: bool = False) -> ExperimentResult:
    sizes = _workload(fast)
    func_rows = [
        _functional_row(mode, attempts, sizes, seed)
        for mode in ("none", "transient", "flaky")
        for attempts in (1, 4)
    ]
    timing_rows = [
        _timing_row(mode, attempts, sizes, seed)
        for mode in ("none", "outage")
        for attempts in (1, 4)
    ]
    tier_cells = [
        (mode, attempts)
        for mode in ("tier_transient", "tier_dead")
        for attempts in (1, 4)
    ]
    func_tier_rows = [
        _functional_tier_row(mode, attempts, sizes) for mode, attempts in tier_cells
    ]
    timing_tier_rows = [
        _timing_tier_row(mode, attempts, sizes, seed)
        for mode, attempts in tier_cells
    ]

    table = TextTable(
        [
            "plane",
            "fault mode",
            "attempts",
            "goodput",
            "retried",
            "latched",
            "trips",
            "recoveries",
            "recovery latency",
        ],
        title="Fault rate x retry budget (goodput = landed/attempted bytes)",
    )
    for row in func_rows + timing_rows:
        table.add_row(
            [
                row["plane"],
                row["mode"],
                str(row["attempts"]),
                f"{row['goodput']:.3f}",
                str(row["retried"]),
                str(row["latched"]),
                str(row.get("trips", "-")),
                str(row.get("recoveries", "-")),
                f"{row['recovery_latency']:.4f}s"
                if row.get("recovery_latency")
                else "-",
            ]
        )

    tier_table = TextTable(
        [
            "plane",
            "deep-tier fault",
            "attempts",
            "deep goodput",
            "migrate retries",
            "stranded",
            "tier-1 trips",
            "mount retried",
            "sync errors",
        ],
        title="Deep-tier fault x retry budget (tiered staging: a strand "
        "means durable at tier 0, never mount write-through)",
    )
    for row in func_tier_rows + timing_tier_rows:
        tier_table.add_row(
            [
                row["plane"],
                row["mode"],
                str(row["attempts"]),
                f"{row['deep_goodput']:.3f}",
                str(row["migrate_retries"]),
                str(row["stranded"]),
                str(row["tier_trips"]),
                str(row["mount_retried"]),
                str(row["sync_errors"]),
            ]
        )

    by = {(r["plane"], r["mode"], r["attempts"]): r for r in func_rows + timing_rows}
    clean = by[("functional", "none", 1)]
    recovered = by[("functional", "transient", 4)]
    exhausted = by[("functional", "transient", 1)]
    flaky = by[("functional", "flaky", 4)]
    outage = by[("timing", "outage", 4)]
    probe = by[("timing", "outage", 1)]

    checks = [
        Check(
            "no-fault rows are clean (goodput 1.0, nothing retried or latched)",
            all(
                by[k]["goodput"] == 1.0
                and by[k]["retried"] == 0
                and by[k]["latched"] == 0
                for k in by
                if k[1] == "none"
            ),
        ),
        Check(
            "retries ride out transient faults: every-pwrite-fails-once "
            "completes with zero latched errors and byte-identical output",
            recovered["latched"] == 0
            and recovered["close_errors"] == 0
            and recovered["retried"] > 0
            and recovered["content"] == clean["content"],
            f"retried {recovered['retried']} chunks",
        ),
        Check(
            "with retries exhausted the error still latches and surfaces "
            "at close()",
            exhausted["latched"] > 0 and exhausted["close_errors"] > 0,
            f"latched {exhausted['latched']}",
        ),
        Check(
            "probabilistic faults exercise the retry path",
            flaky["retried"] > 0,
            f"retried {flaky['retried']}",
        ),
        Check(
            "a bounded outage with retry budget trips the breaker and "
            "recovers with zero latched errors",
            outage["latched"] == 0
            and outage["trips"] >= 1
            and outage["recoveries"] >= 1
            and outage["recovery_latency"] > 0
            and outage["goodput"] == 1.0,
            f"recovered after {outage['recovery_latency']:.4f}s virtual downtime",
        ),
        Check(
            "without retries the outage latches, trips the breaker, and a "
            "degraded write-through probe restores async mode",
            probe["latched"] > 0
            and probe["trips"] >= 1
            and probe["degraded_writes"] >= 1
            and probe["recoveries"] >= 1,
            f"{probe['degraded_writes']} degraded write(s) probed the backend",
        ),
    ]

    tby = {
        (r["plane"], r["mode"], r["attempts"]): r
        for r in func_tier_rows + timing_tier_rows
    }
    t_recovered = tby[("functional", "tier_transient", 4)]
    t_dead = tby[("functional", "tier_dead", 4)]
    checks += [
        Check(
            "tier rows: workload-determined tier counters bit-identical "
            "across planes in every cell",
            all(
                tby[("functional", mode, attempts)]["compared"]
                == tby[("timing", mode, attempts)]["compared"]
                for mode, attempts in tier_cells
            ),
            f"{len(tier_cells)} cells x {len(_TIER_COMPARED)} counters/tier",
        ),
        Check(
            "per-tier retries ride out transient deep faults: zero strands "
            "and the deep tier holds the image byte-identically",
            t_recovered["stranded"] == 0
            and t_recovered["sync_errors"] == 0
            and t_recovered["migrate_retries"] == len(sizes)
            and t_recovered["deep_content"] == t_recovered["tier0_content"],
            f"retried {t_recovered['migrate_retries']} migration(s)",
        ),
        Check(
            "a dead deep tier degrades to durable-at-tier-0: every extent "
            "strands, the deep-durability fsync surfaces the error, and "
            "tier 0 still holds the full image",
            t_dead["stranded"] == len(sizes)
            and t_dead["deep_goodput"] == 0.0
            and t_dead["sync_errors"] == 1
            and t_dead["deep_content"] == b""
            and len(t_dead["tier0_content"]) == sum(sizes),
            f"{t_dead['stranded']} extent(s) stranded at tier 0",
        ),
        Check(
            "breaker attribution stays on the faulty tier: mount-level "
            "resilience counters never move in any tier cell, and only "
            "the dead deep tier trips its breaker",
            all(
                r["mount_retried"] == 0 and r["mount_trips"] == 0
                for r in tby.values()
            )
            and all(
                tby[(plane, "tier_dead", attempts)]["tier_trips"] == 1
                for plane in ("functional", "timing")
                for attempts in (1, 4)
            )
            and all(
                tby[(plane, "tier_transient", 4)]["tier_trips"] == 0
                for plane in ("functional", "timing")
            ),
            "tier-1 breaker only; resilience section untouched",
        ),
    ]
    measured = {
        "rows": [
            {k: v for k, v in row.items() if k != "content"}
            for row in func_rows + timing_rows
        ],
        "tier_rows": [
            {
                k: v
                for k, v in row.items()
                if k not in ("deep_content", "tier0_content", "compared")
            }
            for row in func_tier_rows + timing_tier_rows
        ],
    }
    return ExperimentResult(
        name="faultsweep",
        title="Writeback resilience: fault rate x retry budget",
        table=table.render() + "\n\n" + tier_table.render(),
        measured=measured,
        paper=PAPER,
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
