"""Fault sweep: writeback resilience under injected backend faults.

Beyond the paper's artifacts: the paper's IO-thread pool assumes the
backing filesystem never fails a ``write()``; this experiment measures
what the resilience layer (retry/backoff + circuit breaker, see
``pipeline/resilience.py``) buys when it does.  It sweeps fault mode ×
retry budget on both planes and reports goodput (fraction of the
checkpoint that landed in the backing store), retries, latched errors,
and — where the breaker trips — the recovery latency.

Functional-plane rows drive the real threaded mount over a
:class:`~repro.backends.faulty.FaultyBackend`; timing-plane rows drive
:class:`~repro.simcrfs.SimCRFS` over a
:class:`~repro.simio.faulty.FaultySimFilesystem` — the same
:class:`~repro.backends.faulty.FaultRule` vocabulary on both.
"""

from __future__ import annotations

from typing import Any

from ..backends import FaultRule, FaultyBackend, MemBackend
from ..config import CRFSConfig
from ..core import CRFS
from ..errors import BackendIOError
from ..pipeline import BackendDegraded, BackendRecovered, PipelineObserver
from ..sim import SharedBandwidth, Simulator
from ..simcrfs import SimCRFS
from ..simio.faulty import FaultySimFilesystem
from ..simio.nullfs import NullSimFilesystem
from ..simio.params import DEFAULT_HW
from ..units import KiB
from ..util.rng import rng_for
from ..util.tables import TextTable
from .base import Check, ExperimentResult
from .common import DEFAULT_SEED

PAPER = {
    "narrative": "resilient writeback under backend faults "
    "(beyond the paper: its testbed never fails a write)"
}

CHUNK = 64 * KiB
#: Single IO thread keeps the functional plane's fault schedule
#: deterministic (chunk pwrites hit the FaultyBackend in seal order).
CONFIG = CRFSConfig(chunk_size=CHUNK, pool_size=4 * CHUNK, io_threads=1)
#: Fast, deterministic backoff for the sweep (microseconds of real sleep).
RETRY_KNOBS = dict(retry_backoff=1e-4, retry_backoff_max=1e-3)


def _workload(fast: bool) -> list[int]:
    """A fixed append stream: whole chunks plus a trailing partial."""
    nchunks = 8 if fast else 24
    return [CHUNK] * nchunks + [CHUNK // 2]


def _fault_rules(mode: str, seed: int) -> list[FaultRule]:
    """The fault matrix axis, shared verbatim by both planes."""
    if mode == "none":
        return []
    if mode == "transient":
        # every chunk write fails exactly once, then its retry succeeds
        return [FaultRule(op="pwrite", nth=1, period=2, error=OSError("EIO"))]
    if mode == "flaky":
        return [FaultRule(op="pwrite", p=0.3, seed=seed, error=OSError("EIO"))]
    if mode == "outage":
        # ops 1..2 fail, then the backend heals — a bounded outage
        return [
            FaultRule(op="pwrite", nth=1, until=2, every=True, error=OSError("EIO"))
        ]
    raise ValueError(f"unknown fault mode {mode!r}")


class _BreakerWatch(PipelineObserver):
    """Capture breaker transitions off the unified event stream."""

    def __init__(self) -> None:
        self.trip_times: list[float] = []
        self.downtimes: list[float] = []

    def on_event(self, event: Any) -> None:
        if isinstance(event, BackendDegraded):
            self.trip_times.append(event.t)
        elif isinstance(event, BackendRecovered):
            self.downtimes.append(event.downtime)


def _functional_row(mode: str, attempts: int, sizes: list[int], seed: int) -> dict:
    mem = MemBackend()
    backend = FaultyBackend(mem, _fault_rules(mode, seed), sleep=lambda s: None)
    config = CONFIG.with_(retry_attempts=attempts, **RETRY_KNOBS)
    path = "/rank0.img"
    write_errors = close_errors = 0
    with CRFS(backend, config) as fs:
        f = fs.open(path)
        for size in sizes:
            try:
                f.write(b"\xa5" * size)
            except BackendIOError:
                write_errors += 1
        try:
            f.close()
        except BackendIOError:
            close_errors += 1
        stats = fs.stats()
    total = sum(sizes)
    landed = mem.stat(path).size if mem.exists(path) else 0
    return {
        "plane": "functional",
        "mode": mode,
        "attempts": attempts,
        "goodput": landed / total,
        "retried": stats["resilience"]["chunks_retried"],
        "latched": stats["resilience"]["errors_latched"],
        "write_errors": write_errors,
        "close_errors": close_errors,
        "content": mem.pread(mem.open(path, create=False), landed, 0)
        if landed
        else b"",
    }


def _timing_row(mode: str, attempts: int, sizes: list[int], seed: int) -> dict:
    sim = Simulator()
    hw = DEFAULT_HW
    membus = SharedBandwidth(sim, hw.membus_bandwidth)
    inner = NullSimFilesystem(sim, hw, rng_for(seed, f"faultsweep/{mode}/{attempts}"))
    backend = FaultySimFilesystem(inner, _fault_rules(mode, seed))
    watch = _BreakerWatch()
    # threshold 2: the outage (2 failing ops) trips the breaker exactly
    # when every attempt inside it has failed
    config = CONFIG.with_(
        retry_attempts=attempts, breaker_threshold=2, **RETRY_KNOBS
    )
    crfs = SimCRFS(sim, hw, config, backend, membus, observers=(watch,))
    errors: list[str] = []

    def writer(name: str, stream: list[int]):
        f = crfs.open(name)
        for size in stream:
            try:
                yield from crfs.write(f, size)
            except BackendIOError:
                errors.append(f"{name}:write")
                break
        try:
            yield from crfs.close(f)
        except BackendIOError:
            errors.append(f"{name}:close")

    if attempts > 1:
        # one file: the in-chunk retry chain rides out the outage
        procs = [sim.spawn(writer("/rank0.img", sizes))]
    else:
        # no retries: each failing chunk latches its file; spread the
        # stream over files so the breaker trips and later files probe
        per_file = max(1, len(sizes) // 4)
        streams = [sizes[i : i + per_file] for i in range(0, len(sizes), per_file)]
        procs = [
            sim.spawn(writer(f"/rank{i}.img", stream))
            for i, stream in enumerate(streams)
        ]
    sim.run_until_complete(procs)
    stats = crfs.stats()
    total = sum(sizes)
    return {
        "plane": "timing",
        "mode": mode,
        "attempts": attempts,
        "goodput": (stats["bytes_out"] + stats["write_through_bytes"]) / total
        if total
        else 0.0,
        "retried": stats["resilience"]["chunks_retried"],
        "latched": stats["resilience"]["errors_latched"],
        "trips": stats["resilience"]["breaker_trips"],
        "recoveries": stats["resilience"]["breaker_recoveries"],
        "degraded_writes": stats["resilience"]["degraded_writes"],
        "recovery_latency": watch.downtimes[0] if watch.downtimes else 0.0,
        "errors": len(errors),
    }


def run(seed: int = DEFAULT_SEED, fast: bool = False) -> ExperimentResult:
    sizes = _workload(fast)
    func_rows = [
        _functional_row(mode, attempts, sizes, seed)
        for mode in ("none", "transient", "flaky")
        for attempts in (1, 4)
    ]
    timing_rows = [
        _timing_row(mode, attempts, sizes, seed)
        for mode in ("none", "outage")
        for attempts in (1, 4)
    ]

    table = TextTable(
        [
            "plane",
            "fault mode",
            "attempts",
            "goodput",
            "retried",
            "latched",
            "trips",
            "recoveries",
            "recovery latency",
        ],
        title="Fault rate x retry budget (goodput = landed/attempted bytes)",
    )
    for row in func_rows + timing_rows:
        table.add_row(
            [
                row["plane"],
                row["mode"],
                str(row["attempts"]),
                f"{row['goodput']:.3f}",
                str(row["retried"]),
                str(row["latched"]),
                str(row.get("trips", "-")),
                str(row.get("recoveries", "-")),
                f"{row['recovery_latency']:.4f}s"
                if row.get("recovery_latency")
                else "-",
            ]
        )

    by = {(r["plane"], r["mode"], r["attempts"]): r for r in func_rows + timing_rows}
    clean = by[("functional", "none", 1)]
    recovered = by[("functional", "transient", 4)]
    exhausted = by[("functional", "transient", 1)]
    flaky = by[("functional", "flaky", 4)]
    outage = by[("timing", "outage", 4)]
    probe = by[("timing", "outage", 1)]

    checks = [
        Check(
            "no-fault rows are clean (goodput 1.0, nothing retried or latched)",
            all(
                by[k]["goodput"] == 1.0
                and by[k]["retried"] == 0
                and by[k]["latched"] == 0
                for k in by
                if k[1] == "none"
            ),
        ),
        Check(
            "retries ride out transient faults: every-pwrite-fails-once "
            "completes with zero latched errors and byte-identical output",
            recovered["latched"] == 0
            and recovered["close_errors"] == 0
            and recovered["retried"] > 0
            and recovered["content"] == clean["content"],
            f"retried {recovered['retried']} chunks",
        ),
        Check(
            "with retries exhausted the error still latches and surfaces "
            "at close()",
            exhausted["latched"] > 0 and exhausted["close_errors"] > 0,
            f"latched {exhausted['latched']}",
        ),
        Check(
            "probabilistic faults exercise the retry path",
            flaky["retried"] > 0,
            f"retried {flaky['retried']}",
        ),
        Check(
            "a bounded outage with retry budget trips the breaker and "
            "recovers with zero latched errors",
            outage["latched"] == 0
            and outage["trips"] >= 1
            and outage["recoveries"] >= 1
            and outage["recovery_latency"] > 0
            and outage["goodput"] == 1.0,
            f"recovered after {outage['recovery_latency']:.4f}s virtual downtime",
        ),
        Check(
            "without retries the outage latches, trips the breaker, and a "
            "degraded write-through probe restores async mode",
            probe["latched"] > 0
            and probe["trips"] >= 1
            and probe["degraded_writes"] >= 1
            and probe["recoveries"] >= 1,
            f"{probe['degraded_writes']} degraded write(s) probed the backend",
        ),
    ]
    measured = {
        "rows": [
            {k: v for k, v in row.items() if k != "content"}
            for row in func_rows + timing_rows
        ]
    }
    return ExperimentResult(
        name="faultsweep",
        title="Writeback resilience: fault rate x retry budget",
        table=table.render(),
        measured=measured,
        paper=PAPER,
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
