"""Figure 10 — block IO layer trace on one node (LU.C.64, ext3).

The paper's blktrace plots: native checkpointing scatters disk accesses
("a high degree of randomness... a lot of disk head seeks"); CRFS
coalesces into relatively sequential writes.  The reproduction compares
the simulated disk's access stream under both modes.
"""

from __future__ import annotations

from ..trace.blk import summarize_block_trace
from ..util.tables import TextTable
from .base import Check, ExperimentResult
from .common import DEFAULT_SEED, run_cell

PAPER = {
    "narrative": "native: random, seek-heavy; CRFS: relatively sequential",
}


def run(seed: int = DEFAULT_SEED, fast: bool = False) -> ExperimentResult:
    native = run_cell("MVAPICH2", "C", "ext3", use_crfs=False, nprocs=64, nnodes=8,
                      seed=seed)
    crfs = run_cell("MVAPICH2", "C", "ext3", use_crfs=True, nprocs=64, nnodes=8,
                    seed=seed)
    s_nat = summarize_block_trace(native.node0_disk_trace)
    s_crfs = summarize_block_trace(crfs.node0_disk_trace)

    table = TextTable(
        ["metric", "native ext3", "ext3+CRFS"],
        title="Fig 10 reproduction: node-0 block-layer trace during checkpoint",
    )
    table.add_row(["disk ios", s_nat.ios, s_crfs.ios])
    table.add_row(["bytes written", s_nat.bytes, s_crfs.bytes])
    table.add_row(["seeks", s_nat.seeks, s_crfs.seeks])
    table.add_row(["seek fraction", f"{s_nat.seek_fraction:.3f}", f"{s_crfs.seek_fraction:.3f}"])
    table.add_row(
        ["mean jump (blocks)", f"{s_nat.mean_abs_jump_blocks:.0f}",
         f"{s_crfs.mean_abs_jump_blocks:.0f}"]
    )
    table.add_row(
        ["monotone fraction", f"{s_nat.monotone_fraction:.3f}",
         f"{s_crfs.monotone_fraction:.3f}"]
    )

    checks = [
        Check(
            "native trace is seek-heavy vs CRFS",
            s_nat.seek_fraction > 1.5 * max(s_crfs.seek_fraction, 1e-9)
            or s_nat.seeks > 2 * s_crfs.seeks,
            f"seek fraction {s_nat.seek_fraction:.3f} vs {s_crfs.seek_fraction:.3f}",
        ),
        Check(
            "CRFS issues fewer, larger disk ios",
            s_crfs.ios < s_nat.ios,
            f"{s_crfs.ios} vs {s_nat.ios}",
        ),
        Check(
            "both traces actually wrote checkpoint data",
            s_nat.bytes > 0 and s_crfs.bytes > 0,
        ),
    ]
    return ExperimentResult(
        name="fig10",
        title="Block IO Layer Trace on One Node (LU.C.64, ext3)",
        table=table.render(),
        measured={
            "native": s_nat.__dict__,
            "crfs": s_crfs.__dict__,
        },
        paper=PAPER,
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
