"""Figure 7 — checkpoint writing time with MPICH2 (TCP transport)."""

from __future__ import annotations

from .base import ExperimentResult
from .common import DEFAULT_SEED
from .figs678 import checkpoint_grid

#: class -> fs -> (native s, CRFS s), read off paper Fig 7.
PAPER = {
    "B": {"ext3": (0.8, 0.1), "lustre": (1.2, 0.1), "nfs": (9.3, 1.1)},
    "C": {"ext3": (1.8, 0.2), "lustre": (2.8, 0.3), "nfs": (18.5, 7.7)},
    "D": {"ext3": (17.6, 2.2), "lustre": (25.8, 19.7), "nfs": (117.3, 157.3)},
}


def run(seed: int = DEFAULT_SEED, fast: bool = False) -> ExperimentResult:
    return checkpoint_grid("fig7", "MPICH2", PAPER, seed=seed, fast=fast)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
