"""Shared experiment result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Check", "ExperimentResult"]


@dataclass(frozen=True)
class Check:
    """One shape assertion against the paper (who wins / by what factor)."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        out = f"[{mark}] {self.description}"
        if self.detail:
            out += f" — {self.detail}"
        return out


@dataclass
class ExperimentResult:
    """Everything one experiment reproduction produced."""

    name: str  # e.g. "fig6"
    title: str  # paper artifact title
    table: str  # rendered report (the paper's rows/series)
    measured: dict[str, Any] = field(default_factory=dict)
    paper: dict[str, Any] = field(default_factory=dict)
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = [f"== {self.name}: {self.title} ==", "", self.table, ""]
        for c in self.checks:
            lines.append(str(c))
        return "\n".join(lines)
